#include "src/bindings/primary_backup_binding.h"

#include <algorithm>

namespace icg {
namespace {

bool Contains(const std::vector<ConsistencyLevel>& levels, ConsistencyLevel level) {
  return std::find(levels.begin(), levels.end(), level) != levels.end();
}

}  // namespace

void PrimaryBackupBinding::SubmitOperation(const Operation& op,
                                           const std::vector<ConsistencyLevel>& levels,
                                           ResponseCallback callback) {
  const bool weak = Contains(levels, ConsistencyLevel::kWeak);
  const bool strong = Contains(levels, ConsistencyLevel::kStrong);

  switch (op.type) {
    case OpType::kGet:
      if (weak) {
        client_->ReadWeak(op.key, [callback](StatusOr<OpResult> result) {
          callback(std::move(result), ConsistencyLevel::kWeak, ResponseKind::kValue);
        });
      }
      if (strong) {
        client_->ReadStrong(op.key, [callback](StatusOr<OpResult> result) {
          callback(std::move(result), ConsistencyLevel::kStrong, ResponseKind::kValue);
        });
      }
      return;
    case OpType::kPut: {
      const ConsistencyLevel level =
          strong ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak;
      client_->Write(op.key, op.value, [callback, level](StatusOr<OpResult> result) {
        callback(std::move(result), level, ResponseKind::kValue);
      });
      return;
    }
    case OpType::kMultiGet:
    case OpType::kEnqueue:
    case OpType::kDequeue:
    case OpType::kPeek:
      callback(
          Status::InvalidArgument("primary-backup binding supports key-value operations only"),
          levels.back(), ResponseKind::kValue);
      return;
  }
}

}  // namespace icg
