#include "src/bindings/primary_backup_binding.h"

namespace icg {

InvocationPlan PrimaryBackupBinding::PlanInvocation(const Operation& op,
                                                    const LevelSet& levels) {
  InvocationPlan plan;
  switch (op.type) {
    case OpType::kGet:
      if (levels.Contains(ConsistencyLevel::kWeak)) {
        plan.AddStep(ConsistencyLevel::kWeak,
                     [client = client_](const Operation& get, LevelEmitter emit) {
                       client->ReadWeak(get.key, EmitAt(std::move(emit), ConsistencyLevel::kWeak));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kStrong)) {
        plan.AddStep(ConsistencyLevel::kStrong,
                     [client = client_](const Operation& get, LevelEmitter emit) {
                       client->ReadStrong(get.key,
                                          EmitAt(std::move(emit), ConsistencyLevel::kStrong));
                     });
      }
      return plan;
    case OpType::kPut:
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& put, LevelEmitter emit) {
        client->Write(put.key, put.value, EmitAt(std::move(emit), level));
      });
      return plan;
    default:
      return InvocationPlan::Rejected(
          Status::InvalidArgument("primary-backup binding supports key-value operations only"));
  }
}

}  // namespace icg
