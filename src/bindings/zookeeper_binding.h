// Binding to the coordination service (Correctable ZooKeeper, §5.2).
//
// Data type: replicated queues. Levels: WEAK (local simulation at the session server) and
// STRONG (Zab-committed result). invokeWeak/invokeStrong map to single-level execution;
// invoke() yields the CZK fast-path preliminary followed by the atomic final.
#ifndef ICG_BINDINGS_ZOOKEEPER_BINDING_H_
#define ICG_BINDINGS_ZOOKEEPER_BINDING_H_

#include <string>
#include <vector>

#include "src/correctables/binding.h"
#include "src/zab/cluster.h"

namespace icg {

class ZooKeeperBinding : public Binding {
 public:
  explicit ZooKeeperBinding(ZabClient* client) : client_(client) {}

  std::string Name() const override { return "zookeeper"; }

  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;

 private:
  ZabClient* client_;
};

}  // namespace icg

#endif  // ICG_BINDINGS_ZOOKEEPER_BINDING_H_
