// Binding over a causally consistent store complemented by a client-side cache (§5.2):
// invoke() reveals two views — one from cache (very fast, possibly stale) and one from
// the causally consistent store. Supports cache-bypassing (invokeStrong -> CAUSAL only)
// and direct cache access (invokeWeak -> CACHE only), e.g., for disconnected mobile
// operation. Coherence is write-through.
#ifndef ICG_BINDINGS_CACHED_CAUSAL_BINDING_H_
#define ICG_BINDINGS_CACHED_CAUSAL_BINDING_H_

#include <string>
#include <vector>

#include "src/correctables/binding.h"
#include "src/stores/causal_store.h"

namespace icg {

class CachedCausalBinding : public Binding {
 public:
  CachedCausalBinding(CausalClient* client, ClientCache* cache)
      : client_(client), cache_(cache) {}

  std::string Name() const override { return "cached-causal"; }

  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kCache, ConsistencyLevel::kCausal};
  }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;

  // Backed by CausalReplica's multi-key read/write handlers, so cross-tick batches flush
  // as one round-trip instead of one per key.
  bool SupportsBatchedReads() const override { return true; }
  bool SupportsBatchedWrites() const override { return true; }

  // Disconnected operation: reads resolve from cache only; writes fail fast.
  void SetDisconnected(bool disconnected) { disconnected_ = disconnected; }

 private:
  CausalClient* client_;
  ClientCache* cache_;
  bool disconnected_ = false;
};

}  // namespace icg

#endif  // ICG_BINDINGS_CACHED_CAUSAL_BINDING_H_
