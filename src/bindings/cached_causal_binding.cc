#include "src/bindings/cached_causal_binding.h"

#include "src/bindings/cache_refresh.h"

namespace icg {

InvocationPlan CachedCausalBinding::PlanInvocation(const Operation& op,
                                                   const LevelSet& levels) {
  InvocationPlan plan;
  switch (op.type) {
    case OpType::kGet:
      if (levels.Contains(ConsistencyLevel::kCache)) {
        plan.AddStep(ConsistencyLevel::kCache,
                     [cache = cache_](const Operation& get, LevelEmitter emit) {
                       emit(ConsistencyLevel::kCache, cache->Get(get.key).value_or(OpResult{}));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kCausal)) {
        if (disconnected_) {
          plan.AddStep(ConsistencyLevel::kCausal, [](const Operation&, LevelEmitter emit) {
            emit(ConsistencyLevel::kCausal,
                 Status::Unavailable("disconnected: causal store unreachable"));
          });
        } else {
          plan.AddStep(ConsistencyLevel::kCausal,
                       [client = client_](const Operation& get, LevelEmitter emit) {
                         client->Read(get.key,
                                      EmitAt(std::move(emit), ConsistencyLevel::kCausal));
                       });
        }
      }
      plan.refresh = CacheReadRefresh(cache_);
      return plan;
    case OpType::kMultiGet:
      // Batched read: same level structure as kGet, one multi-key round-trip per level.
      if (levels.Contains(ConsistencyLevel::kCache)) {
        plan.AddStep(ConsistencyLevel::kCache,
                     [cache = cache_](const Operation& get, LevelEmitter emit) {
                       emit(ConsistencyLevel::kCache, CacheMultiLookup(cache, get.keys));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kCausal)) {
        if (disconnected_) {
          plan.AddStep(ConsistencyLevel::kCausal, [](const Operation&, LevelEmitter emit) {
            emit(ConsistencyLevel::kCausal,
                 Status::Unavailable("disconnected: causal store unreachable"));
          });
        } else {
          plan.AddStep(ConsistencyLevel::kCausal,
                       [client = client_](const Operation& get, LevelEmitter emit) {
                         client->MultiRead(get.keys,
                                           EmitAt(std::move(emit), ConsistencyLevel::kCausal));
                       });
        }
      }
      plan.refresh = CacheReadRefresh(cache_);
      return plan;
    case OpType::kPut:
      if (disconnected_) {
        return InvocationPlan::Rejected(
            Status::Unavailable("disconnected: causal store unreachable"));
      }
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& put, LevelEmitter emit) {
        client->Write(put.key, put.value, EmitAt(std::move(emit), level));
      });
      plan.refresh = CacheWriteRefresh(cache_);
      return plan;
    case OpType::kMultiPut:
      // Batched flush: rejected while disconnected — the pipeline fans the rejection to
      // exactly the writes queued in this batch.
      if (disconnected_) {
        return InvocationPlan::Rejected(
            Status::Unavailable("disconnected: causal store unreachable"));
      }
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& puts, LevelEmitter emit) {
        client->MultiWrite(puts.keys, puts.values, EmitAt(std::move(emit), level));
      });
      plan.refresh = CacheWriteRefresh(cache_);
      return plan;
    default:
      return InvocationPlan::Rejected(
          Status::InvalidArgument("cached-causal binding supports key-value operations only"));
  }
}

}  // namespace icg
