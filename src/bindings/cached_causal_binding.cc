#include "src/bindings/cached_causal_binding.h"

#include <algorithm>

namespace icg {
namespace {

bool Contains(const std::vector<ConsistencyLevel>& levels, ConsistencyLevel level) {
  return std::find(levels.begin(), levels.end(), level) != levels.end();
}

}  // namespace

void CachedCausalBinding::SubmitOperation(const Operation& op,
                                          const std::vector<ConsistencyLevel>& levels,
                                          ResponseCallback callback) {
  const bool want_cache = Contains(levels, ConsistencyLevel::kCache);
  const bool want_causal = Contains(levels, ConsistencyLevel::kCausal);
  const ConsistencyLevel strongest = levels.back();

  switch (op.type) {
    case OpType::kGet: {
      if (want_cache) {
        const auto cached = cache_->Get(op.key);
        callback(cached.value_or(OpResult{}), ConsistencyLevel::kCache, ResponseKind::kValue);
      }
      if (want_causal) {
        if (disconnected_) {
          callback(Status::Unavailable("disconnected: causal store unreachable"),
                   ConsistencyLevel::kCausal, ResponseKind::kValue);
          return;
        }
        ClientCache* cache = cache_;
        const std::string key = op.key;
        client_->Read(op.key, [callback, cache, key](StatusOr<OpResult> result) {
          if (result.ok() && result->found) {
            cache->Put(key, result.value());
          }
          callback(std::move(result), ConsistencyLevel::kCausal, ResponseKind::kValue);
        });
      }
      return;
    }
    case OpType::kPut: {
      if (disconnected_) {
        callback(Status::Unavailable("disconnected: causal store unreachable"), strongest,
                 ResponseKind::kValue);
        return;
      }
      ClientCache* cache = cache_;
      const std::string key = op.key;
      const std::string value = op.value;
      client_->Write(op.key, op.value,
                     [callback, cache, key, value, strongest](StatusOr<OpResult> result) {
                       if (result.ok()) {
                         OpResult cached;
                         cached.found = true;
                         cached.value = value;
                         cached.version = result->version;
                         cache->Put(key, cached);
                       }
                       callback(std::move(result), strongest, ResponseKind::kValue);
                     });
      return;
    }
    case OpType::kMultiGet:
    case OpType::kEnqueue:
    case OpType::kDequeue:
    case OpType::kPeek:
      callback(
          Status::InvalidArgument("cached-causal binding supports key-value operations only"),
          strongest, ResponseKind::kValue);
      return;
  }
}

}  // namespace icg
