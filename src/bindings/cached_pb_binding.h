// Three-level binding for the smartphone news reader (§4.4, Listing 6): a local cache, a
// nearby backup, and a distant primary. One invoke() fans out into three actual requests:
//
//   CACHE  -> the client-side cache, resolving almost immediately;
//   WEAK   -> the closest backup replica, a fresher view;
//   STRONG -> the primary, the most up-to-date view, arriving last.
//
// Coherence is write-through: writes go to the primary and refresh the cache on ack;
// every read view also refreshes the cache, so the cache holds the freshest view seen.
#ifndef ICG_BINDINGS_CACHED_PB_BINDING_H_
#define ICG_BINDINGS_CACHED_PB_BINDING_H_

#include <string>
#include <vector>

#include "src/correctables/binding.h"
#include "src/stores/causal_store.h"  // ClientCache
#include "src/stores/pb_store.h"

namespace icg {

class CachedPbBinding : public Binding {
 public:
  CachedPbBinding(PbClient* client, ClientCache* cache) : client_(client), cache_(cache) {}

  std::string Name() const override { return "cached-primary-backup"; }

  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kCache, ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;

  // Backed by PbNode's multi-key read/write handlers, so cross-tick batches flush as one
  // round-trip per level instead of one per key.
  bool SupportsBatchedReads() const override { return true; }
  bool SupportsBatchedWrites() const override { return true; }

 private:
  PbClient* client_;
  ClientCache* cache_;
};

}  // namespace icg

#endif  // ICG_BINDINGS_CACHED_PB_BINDING_H_
