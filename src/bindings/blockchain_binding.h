// Blockchain binding (§4.5): Correctables "track transaction confirmations as they
// accumulate and eventually the transaction becomes an irrevocable part of the
// blockchain, i.e., strongly-consistent with high probability".
//
// A kPut submits a transaction. Each confirmation delivers a WEAK preliminary view whose
// seqno carries the confirmation count (including regressions to 0 after reorgs); the
// Correctable closes with a STRONG final view once `confirm_depth` confirmations
// accumulate. This exercises the multi-view capability of Correctables beyond two views.
#ifndef ICG_BINDINGS_BLOCKCHAIN_BINDING_H_
#define ICG_BINDINGS_BLOCKCHAIN_BINDING_H_

#include <string>
#include <vector>

#include "src/correctables/binding.h"
#include "src/stores/chain_sim.h"

namespace icg {

class BlockchainBinding : public Binding {
 public:
  explicit BlockchainBinding(ChainSim* chain) : chain_(chain) {}

  std::string Name() const override { return "blockchain"; }

  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;

 private:
  ChainSim* chain_;
};

}  // namespace icg

#endif  // ICG_BINDINGS_BLOCKCHAIN_BINDING_H_
