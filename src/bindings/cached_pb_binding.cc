#include "src/bindings/cached_pb_binding.h"

#include <algorithm>

namespace icg {
namespace {

bool Contains(const std::vector<ConsistencyLevel>& levels, ConsistencyLevel level) {
  return std::find(levels.begin(), levels.end(), level) != levels.end();
}

}  // namespace

void CachedPbBinding::SubmitOperation(const Operation& op,
                                      const std::vector<ConsistencyLevel>& levels,
                                      ResponseCallback callback) {
  const bool want_cache = Contains(levels, ConsistencyLevel::kCache);
  const bool want_weak = Contains(levels, ConsistencyLevel::kWeak);
  const bool want_strong = Contains(levels, ConsistencyLevel::kStrong);
  const ConsistencyLevel strongest = levels.back();

  switch (op.type) {
    case OpType::kGet: {
      if (want_cache) {
        // Cache view: resolves synchronously. A miss is reported as found=false at the
        // CACHE level so the caller still sees one view per requested level.
        const auto cached = cache_->Get(op.key);
        callback(cached.value_or(OpResult{}), ConsistencyLevel::kCache, ResponseKind::kValue);
      }
      if (want_weak) {
        ClientCache* cache = cache_;
        const std::string key = op.key;
        client_->ReadWeak(op.key, [callback, cache, key](StatusOr<OpResult> result) {
          if (result.ok() && result->found) {
            cache->Put(key, result.value());
          }
          callback(std::move(result), ConsistencyLevel::kWeak, ResponseKind::kValue);
        });
      }
      if (want_strong) {
        ClientCache* cache = cache_;
        const std::string key = op.key;
        client_->ReadStrong(op.key, [callback, cache, key](StatusOr<OpResult> result) {
          if (result.ok() && result->found) {
            cache->Put(key, result.value());
          }
          callback(std::move(result), ConsistencyLevel::kStrong, ResponseKind::kValue);
        });
      }
      return;
    }
    case OpType::kPut: {
      // Write-through: the cache updates only when the store acknowledges.
      ClientCache* cache = cache_;
      const std::string key = op.key;
      const std::string value = op.value;
      client_->Write(op.key, op.value,
                     [callback, cache, key, value, strongest](StatusOr<OpResult> result) {
                       if (result.ok()) {
                         OpResult cached;
                         cached.found = true;
                         cached.value = value;
                         cached.version = result->version;
                         cache->Put(key, cached);
                       }
                       callback(std::move(result), strongest, ResponseKind::kValue);
                     });
      return;
    }
    case OpType::kMultiGet:
    case OpType::kEnqueue:
    case OpType::kDequeue:
    case OpType::kPeek:
      callback(Status::InvalidArgument("cached-pb binding supports key-value operations only"),
               strongest, ResponseKind::kValue);
      return;
  }
}

}  // namespace icg
