#include "src/bindings/cached_pb_binding.h"

#include "src/bindings/cache_refresh.h"

namespace icg {

InvocationPlan CachedPbBinding::PlanInvocation(const Operation& op, const LevelSet& levels) {
  InvocationPlan plan;
  switch (op.type) {
    case OpType::kGet:
      if (levels.Contains(ConsistencyLevel::kCache)) {
        // Cache view: resolves synchronously. A miss is reported as found=false at the
        // CACHE level so the caller still sees one view per requested level.
        plan.AddStep(ConsistencyLevel::kCache,
                     [cache = cache_](const Operation& get, LevelEmitter emit) {
                       emit(ConsistencyLevel::kCache, cache->Get(get.key).value_or(OpResult{}));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kWeak)) {
        plan.AddStep(ConsistencyLevel::kWeak,
                     [client = client_](const Operation& get, LevelEmitter emit) {
                       client->ReadWeak(get.key, EmitAt(std::move(emit), ConsistencyLevel::kWeak));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kStrong)) {
        plan.AddStep(ConsistencyLevel::kStrong,
                     [client = client_](const Operation& get, LevelEmitter emit) {
                       client->ReadStrong(get.key,
                                          EmitAt(std::move(emit), ConsistencyLevel::kStrong));
                     });
      }
      plan.refresh = CacheReadRefresh(cache_);
      return plan;
    case OpType::kMultiGet:
      // Batched read: the same per-level fan-out as kGet, each level one multi-key
      // round-trip whose payload joins the per-key parts in request order.
      if (levels.Contains(ConsistencyLevel::kCache)) {
        plan.AddStep(ConsistencyLevel::kCache,
                     [cache = cache_](const Operation& get, LevelEmitter emit) {
                       emit(ConsistencyLevel::kCache, CacheMultiLookup(cache, get.keys));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kWeak)) {
        plan.AddStep(ConsistencyLevel::kWeak,
                     [client = client_](const Operation& get, LevelEmitter emit) {
                       client->MultiReadWeak(get.keys,
                                             EmitAt(std::move(emit), ConsistencyLevel::kWeak));
                     });
      }
      if (levels.Contains(ConsistencyLevel::kStrong)) {
        plan.AddStep(ConsistencyLevel::kStrong,
                     [client = client_](const Operation& get, LevelEmitter emit) {
                       client->MultiReadStrong(
                           get.keys, EmitAt(std::move(emit), ConsistencyLevel::kStrong));
                     });
      }
      plan.refresh = CacheReadRefresh(cache_);
      return plan;
    case OpType::kPut:
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& put, LevelEmitter emit) {
        client->Write(put.key, put.value, EmitAt(std::move(emit), level));
      });
      // Write-through: the pipeline refreshes the cache only when the store acknowledges.
      plan.refresh = CacheWriteRefresh(cache_);
      return plan;
    case OpType::kMultiPut:
      // Batched flush: the primary applies the entries in order and acknowledges once.
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& puts, LevelEmitter emit) {
        client->MultiWrite(puts.keys, puts.values, EmitAt(std::move(emit), level));
      });
      plan.refresh = CacheWriteRefresh(cache_);
      return plan;
    default:
      return InvocationPlan::Rejected(
          Status::InvalidArgument("cached-pb binding supports key-value operations only"));
  }
}

}  // namespace icg
