// Write-through RefreshHook factories shared by the cache-backed bindings: keep a
// ClientCache coherent with every view the store surfaces (reads) or every acknowledged
// write. The invocation pipeline calls the hook once per successful full-value response;
// cache-level views are skipped (the cache does not need to learn its own answers).
//
// Lives in the bindings layer: it adapts the store-side ClientCache to the
// pipeline-side RefreshHook contract, and the stores must not depend upward on it.
#ifndef ICG_BINDINGS_CACHE_REFRESH_H_
#define ICG_BINDINGS_CACHE_REFRESH_H_

#include "src/correctables/binding.h"
#include "src/stores/causal_store.h"  // ClientCache

namespace icg {

// Both hooks understand the batched shapes too: a kMultiGet view (or kMultiPut ack) is
// split back into per-key entries before refreshing, so one batched round-trip leaves
// the cache exactly as coherent as the per-key requests it replaced.
RefreshHook CacheReadRefresh(ClientCache* cache);
RefreshHook CacheWriteRefresh(ClientCache* cache);

// The cache-level view of a batched read: per-key lookups joined in request order
// (missing keys contribute empty parts; `found` only if every key hit, `seqno` = hits).
OpResult CacheMultiLookup(ClientCache* cache, const std::vector<std::string>& keys);

}  // namespace icg

#endif  // ICG_BINDINGS_CACHE_REFRESH_H_
