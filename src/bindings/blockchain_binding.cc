#include "src/bindings/blockchain_binding.h"

#include <algorithm>

namespace icg {
namespace {

bool Contains(const std::vector<ConsistencyLevel>& levels, ConsistencyLevel level) {
  return std::find(levels.begin(), levels.end(), level) != levels.end();
}

}  // namespace

void BlockchainBinding::SubmitOperation(const Operation& op,
                                        const std::vector<ConsistencyLevel>& levels,
                                        ResponseCallback callback) {
  if (op.type != OpType::kPut) {
    callback(Status::InvalidArgument("blockchain binding supports transaction submission "
                                     "(kPut) only"),
             levels.back(), ResponseKind::kValue);
    return;
  }
  const bool weak = Contains(levels, ConsistencyLevel::kWeak);
  const bool strong = Contains(levels, ConsistencyLevel::kStrong);
  const std::string txid = op.key;

  chain_->SubmitTransaction(
      txid, [callback, txid, weak, strong](int confirmations, bool irreversible) {
        OpResult result;
        result.found = true;
        result.value = txid;
        result.seqno = confirmations;
        if (irreversible) {
          callback(std::move(result),
                   strong ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak,
                   ResponseKind::kValue);
          return;
        }
        if (weak && strong) {
          // Intermediate confirmation counts are incremental WEAK views.
          callback(std::move(result), ConsistencyLevel::kWeak, ResponseKind::kValue);
        } else if (weak && !strong && confirmations >= 1) {
          // Weak-only invocation: first inclusion is good enough; report and stop caring.
          callback(std::move(result), ConsistencyLevel::kWeak, ResponseKind::kValue);
        }
      });
}

}  // namespace icg
