#include "src/bindings/blockchain_binding.h"

namespace icg {

InvocationPlan BlockchainBinding::PlanInvocation(const Operation& op, const LevelSet& levels) {
  if (op.type != OpType::kPut) {
    return InvocationPlan::Rejected(Status::InvalidArgument(
        "blockchain binding supports transaction submission (kPut) only"));
  }
  const bool weak = levels.Contains(ConsistencyLevel::kWeak);
  const bool strong = levels.Contains(ConsistencyLevel::kStrong);
  InvocationPlan plan;
  plan.AddSpan(levels.levels(), [chain = chain_, weak, strong](const Operation& put,
                                                               LevelEmitter emit) {
    chain->SubmitTransaction(
        put.key, [emit, txid = put.key, weak, strong](int confirmations, bool irreversible) {
          OpResult result;
          result.found = true;
          result.value = txid;
          result.seqno = confirmations;
          if (irreversible) {
            emit(strong ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak,
                 std::move(result));
            return;
          }
          if (weak && strong) {
            // Intermediate confirmation counts are incremental WEAK views.
            emit(ConsistencyLevel::kWeak, std::move(result));
          } else if (weak && !strong && confirmations >= 1) {
            // Weak-only invocation: first inclusion is good enough; report and stop
            // caring (the pipeline ignores the stream once the Correctable closed).
            emit(ConsistencyLevel::kWeak, std::move(result));
          }
        });
  });
  return plan;
}

}  // namespace icg
