#include "src/bindings/zookeeper_binding.h"

#include <algorithm>

namespace icg {
namespace {

bool Contains(const std::vector<ConsistencyLevel>& levels, ConsistencyLevel level) {
  return std::find(levels.begin(), levels.end(), level) != levels.end();
}

}  // namespace

void ZooKeeperBinding::SubmitOperation(const Operation& op,
                                       const std::vector<ConsistencyLevel>& levels,
                                       ResponseCallback callback) {
  const bool weak = Contains(levels, ConsistencyLevel::kWeak);
  const bool strong = Contains(levels, ConsistencyLevel::kStrong);
  const bool icg = weak && strong;
  const ConsistencyLevel final_level =
      strong ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak;

  auto forward = [callback, final_level](StatusOr<OpResult> result, bool is_final,
                                         ResponseKind kind) {
    const ConsistencyLevel level = is_final ? final_level : ConsistencyLevel::kWeak;
    callback(std::move(result), level, kind);
  };

  switch (op.type) {
    case OpType::kEnqueue:
      if (!strong && weak) {
        // A weak-only enqueue still has to commit (there is no meaningful "eventual"
        // enqueue in ZooKeeper); the weak level only controls which view is reported.
        client_->Enqueue(op.key, op.value, /*icg=*/true,
                         [callback](StatusOr<OpResult> result, bool is_final, ResponseKind kind) {
                           if (!is_final) {
                             callback(std::move(result), ConsistencyLevel::kWeak, kind);
                           }
                         });
        return;
      }
      client_->Enqueue(op.key, op.value, icg, forward);
      return;
    case OpType::kDequeue:
      if (!strong && weak) {
        client_->Dequeue(op.key, /*icg=*/true,
                         [callback](StatusOr<OpResult> result, bool is_final, ResponseKind kind) {
                           if (!is_final) {
                             callback(std::move(result), ConsistencyLevel::kWeak, kind);
                           }
                         });
        return;
      }
      client_->Dequeue(op.key, icg, forward);
      return;
    case OpType::kPeek:
      // Local head read at the session server; inherently weak.
      if (strong) {
        callback(Status::InvalidArgument("peek is only available at WEAK consistency"),
                 levels.back(), ResponseKind::kValue);
        return;
      }
      client_->Peek(op.key, forward);
      return;
    case OpType::kGet:
    case OpType::kMultiGet:
    case OpType::kPut:
      callback(Status::InvalidArgument("zookeeper binding supports queue operations only"),
               levels.back(), ResponseKind::kValue);
      return;
  }
}

}  // namespace icg
