#include "src/bindings/zookeeper_binding.h"

namespace icg {

InvocationPlan ZooKeeperBinding::PlanInvocation(const Operation& op, const LevelSet& levels) {
  const bool weak = levels.Contains(ConsistencyLevel::kWeak);
  const bool strong = levels.Contains(ConsistencyLevel::kStrong);
  InvocationPlan plan;
  switch (op.type) {
    case OpType::kEnqueue:
    case OpType::kDequeue:
      plan.AddSpan(levels.levels(), [client = client_, weak, strong](const Operation& qop,
                                                                     LevelEmitter emit) {
        if (!strong) {
          // A weak-only queue write still has to commit (there is no meaningful
          // "eventual" enqueue in ZooKeeper): issue the ICG path but surface only the
          // fast local view; the commit lands in the background.
          auto weak_only = [emit](StatusOr<OpResult> result, bool is_final,
                                  ResponseKind kind) {
            if (!is_final) {
              emit(ConsistencyLevel::kWeak, std::move(result), kind);
            }
          };
          if (qop.type == OpType::kEnqueue) {
            client->Enqueue(qop.key, qop.value, /*icg=*/true, weak_only);
          } else {
            client->Dequeue(qop.key, /*icg=*/true, weak_only);
          }
          return;
        }
        const bool icg = weak && strong;  // CZK fast-path preliminary + atomic final
        auto forward = [emit](StatusOr<OpResult> result, bool is_final, ResponseKind kind) {
          emit(is_final ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak,
               std::move(result), kind);
        };
        if (qop.type == OpType::kEnqueue) {
          client->Enqueue(qop.key, qop.value, icg, forward);
        } else {
          client->Dequeue(qop.key, icg, forward);
        }
      });
      return plan;
    case OpType::kPeek:
      // Local head read at the session server; inherently weak.
      if (strong) {
        return InvocationPlan::Rejected(
            Status::InvalidArgument("peek is only available at WEAK consistency"));
      }
      plan.AddStep(ConsistencyLevel::kWeak, [client = client_](const Operation& qop,
                                                               LevelEmitter emit) {
        client->Peek(qop.key, [emit](StatusOr<OpResult> result, bool, ResponseKind kind) {
          emit(ConsistencyLevel::kWeak, std::move(result), kind);
        });
      });
      return plan;
    default:
      return InvocationPlan::Rejected(
          Status::InvalidArgument("zookeeper binding supports queue operations only"));
  }
}

}  // namespace icg
