// Binding to a primary-backup store: the paper's Listing 7, transcribed.
//
//   def submitOperation(operation, consLevels, callback):
//     if WEAK in consLevels:    callback(queryClosestBackup(operation), WEAK)
//     if STRONG in consLevels:  callback(queryPrimary(operation), STRONG)
//
// Both queries run in parallel (the "more sophisticated binding" the paper mentions);
// the library's monotonicity enforcement handles any reordering.
#ifndef ICG_BINDINGS_PRIMARY_BACKUP_BINDING_H_
#define ICG_BINDINGS_PRIMARY_BACKUP_BINDING_H_

#include <string>
#include <vector>

#include "src/correctables/binding.h"
#include "src/stores/pb_store.h"

namespace icg {

class PrimaryBackupBinding : public Binding {
 public:
  explicit PrimaryBackupBinding(PbClient* client) : client_(client) {}

  std::string Name() const override { return "primary-backup"; }

  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;

 private:
  PbClient* client_;
};

}  // namespace icg

#endif  // ICG_BINDINGS_PRIMARY_BACKUP_BINDING_H_
