#include "src/bindings/cache_refresh.h"

namespace icg {

RefreshHook CacheReadRefresh(ClientCache* cache) {
  return [cache](const Operation& op, const OpResult& result, ConsistencyLevel level) {
    if (level == ConsistencyLevel::kCache) {
      return;
    }
    if (op.type == OpType::kMultiGet) {
      // A batched read refreshes every key it covered, from its slice of the payload.
      // Per-key versions matter here: installing the batch-wide max would wedge the
      // version-guarded cache against later legitimate refreshes of slower keys.
      const std::vector<std::string> parts = SplitMultiValue(result.value, op.keys.size());
      const bool per_key_found = result.key_found.size() == op.keys.size();
      const bool per_key_versions = result.key_versions.size() == op.keys.size();
      for (size_t i = 0; i < op.keys.size(); ++i) {
        const bool found = per_key_found ? static_cast<bool>(result.key_found[i])
                                         : (result.found || !parts[i].empty());
        if (!found) {
          continue;  // this key missed; nothing to install
        }
        OpResult per_key;
        per_key.found = true;
        per_key.value = parts[i];
        per_key.version = per_key_versions ? result.key_versions[i] : result.version;
        cache->Refresh(op.keys[i], per_key);
      }
      return;
    }
    if (!result.found) {
      return;
    }
    cache->Refresh(op.key, result);
  };
}

RefreshHook CacheWriteRefresh(ClientCache* cache) {
  return [cache](const Operation& op, const OpResult& ack, ConsistencyLevel) {
    if (op.type == OpType::kMultiPut) {
      // Entries applied in order: refresh in the same order so a later write to the same
      // key within the batch wins in the cache exactly as it did in the store — under
      // each entry's own acknowledged version where the store reported them.
      const bool per_key_versions = ack.key_versions.size() == op.keys.size();
      for (size_t i = 0; i < op.keys.size() && i < op.values.size(); ++i) {
        OpResult cached;
        cached.found = true;
        cached.value = op.values[i];
        cached.version = per_key_versions ? ack.key_versions[i] : ack.version;
        cache->Refresh(op.keys[i], cached);
      }
      return;
    }
    OpResult cached;
    cached.found = true;
    cached.value = op.value;
    cached.version = ack.version;
    cache->Refresh(op.key, cached);
  };
}

OpResult CacheMultiLookup(ClientCache* cache, const std::vector<std::string>& keys) {
  return JoinMultiLookup(
      keys, [cache](const std::string& key) { return cache->Get(key); });
}

}  // namespace icg
