#include "src/bindings/cache_refresh.h"

namespace icg {

RefreshHook CacheReadRefresh(ClientCache* cache) {
  return [cache](const Operation& op, const OpResult& result, ConsistencyLevel level) {
    if (level == ConsistencyLevel::kCache || !result.found) {
      return;
    }
    cache->Refresh(op.key, result);
  };
}

RefreshHook CacheWriteRefresh(ClientCache* cache) {
  return [cache](const Operation& op, const OpResult& ack, ConsistencyLevel) {
    OpResult cached;
    cached.found = true;
    cached.value = op.value;
    cached.version = ack.version;
    cache->Refresh(op.key, cached);
  };
}

}  // namespace icg
