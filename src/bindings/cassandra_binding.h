// Binding to the quorum store (Correctable Cassandra, §5.2).
//
// Levels: WEAK (R=1, the coordinator's local state) and STRONG (R=`strong_read_quorum`).
// invoke() with both levels triggers the single-request ICG path: the coordinator flushes
// a preliminary response before gathering the quorum. With `confirmations` enabled, this
// is the *CC variant whose final views shrink to digest confirmations when they match the
// preliminary (Figure 8).
#ifndef ICG_BINDINGS_CASSANDRA_BINDING_H_
#define ICG_BINDINGS_CASSANDRA_BINDING_H_

#include <string>
#include <vector>

#include "src/correctables/binding.h"
#include "src/kvstore/cluster.h"

namespace icg {

struct CassandraBindingConfig {
  int strong_read_quorum = 2;  // R for the STRONG level (2 = CC2, 3 = CC3)
  bool confirmations = false;  // the *CC bandwidth optimization
};

class CassandraBinding : public Binding {
 public:
  CassandraBinding(KvClient* client, CassandraBindingConfig config)
      : client_(client), config_(config) {}

  std::string Name() const override { return "cassandra"; }

  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;

  // The quorum store serves multigets (CoordinateMultiRead) and ordered multiputs
  // (CoordinateMultiWrite), so the pipeline may widen batches across ticks.
  bool SupportsBatchedReads() const override { return true; }
  bool SupportsBatchedWrites() const override { return true; }

 private:
  KvClient* client_;
  CassandraBindingConfig config_;
};

}  // namespace icg

#endif  // ICG_BINDINGS_CASSANDRA_BINDING_H_
