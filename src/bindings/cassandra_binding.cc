#include "src/bindings/cassandra_binding.h"

#include <algorithm>

namespace icg {
namespace {

bool Contains(const std::vector<ConsistencyLevel>& levels, ConsistencyLevel level) {
  return std::find(levels.begin(), levels.end(), level) != levels.end();
}

}  // namespace

void CassandraBinding::SubmitOperation(const Operation& op,
                                       const std::vector<ConsistencyLevel>& levels,
                                       ResponseCallback callback) {
  const bool weak = Contains(levels, ConsistencyLevel::kWeak);
  const bool strong = Contains(levels, ConsistencyLevel::kStrong);

  switch (op.type) {
    case OpType::kGet:
    case OpType::kMultiGet: {
      ReadOptions options;
      options.read_quorum = strong ? config_.strong_read_quorum : 1;
      options.want_preliminary = weak && strong;  // the ICG path
      options.confirmations = config_.confirmations && weak && strong;
      auto forward = [callback, strong](StatusOr<OpResult> result, bool is_final,
                                        ResponseKind kind) {
        // A non-final response is always the WEAK view; the final response lands at the
        // strongest requested level.
        const ConsistencyLevel level =
            is_final ? (strong ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak)
                     : ConsistencyLevel::kWeak;
        callback(std::move(result), level, kind);
      };
      if (op.type == OpType::kGet) {
        client_->Read(op.key, options, forward);
      } else {
        client_->MultiRead(op.keys, options, forward);
      }
      return;
    }
    case OpType::kPut: {
      // Writes use W=1 (§6.2.1): a single acknowledgement, reported at the strongest
      // requested level.
      const ConsistencyLevel level =
          strong ? ConsistencyLevel::kStrong : ConsistencyLevel::kWeak;
      client_->Write(op.key, op.value,
                     [callback, level](StatusOr<OpResult> result, bool, ResponseKind kind) {
                       callback(std::move(result), level, kind);
                     });
      return;
    }
    case OpType::kEnqueue:
    case OpType::kDequeue:
    case OpType::kPeek:
      callback(Status::InvalidArgument("cassandra binding supports key-value operations only"),
               levels.back(), ResponseKind::kValue);
      return;
  }
}

}  // namespace icg
