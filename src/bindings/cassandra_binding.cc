#include "src/bindings/cassandra_binding.h"

namespace icg {

InvocationPlan CassandraBinding::PlanInvocation(const Operation& op, const LevelSet& levels) {
  InvocationPlan plan;
  switch (op.type) {
    case OpType::kGet:
    case OpType::kMultiGet: {
      const bool weak = levels.Contains(ConsistencyLevel::kWeak);
      const bool strong = levels.Contains(ConsistencyLevel::kStrong);
      ReadOptions options;
      options.read_quorum = strong ? config_.strong_read_quorum : 1;
      options.want_preliminary = weak && strong;  // the single-request ICG path
      options.confirmations = config_.confirmations && weak && strong;
      // One round-trip covers the whole span: a non-final response is always the WEAK
      // view; the final response lands at the strongest requested level.
      plan.AddSpan(levels.levels(),
                   [client = client_, options, strongest = levels.strongest()](
                       const Operation& read, LevelEmitter emit) {
                     auto forward = [emit, strongest](StatusOr<OpResult> result, bool is_final,
                                                      ResponseKind kind) {
                       emit(is_final ? strongest : ConsistencyLevel::kWeak, std::move(result),
                            kind);
                     };
                     if (read.type == OpType::kGet) {
                       client->Read(read.key, options, forward);
                     } else {
                       client->MultiRead(read.keys, options, forward);
                     }
                   });
      return plan;
    }
    case OpType::kPut:
      // Writes use W=1 (§6.2.1): a single acknowledgement, reported at the strongest
      // requested level.
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& put, LevelEmitter emit) {
        client->Write(put.key, put.value,
                      [emit, level](StatusOr<OpResult> result, bool, ResponseKind kind) {
                        emit(level, std::move(result), kind);
                      },
                      put.timestamp);
      });
      return plan;
    case OpType::kMultiPut:
      // A batched flush: one submission applies every entry in order (preserving per-key
      // program order) and acknowledges once, still at W=1.
      plan.AddStep(levels.strongest(), [client = client_, level = levels.strongest()](
                                           const Operation& puts, LevelEmitter emit) {
        client->MultiWrite(puts.keys, puts.values,
                           [emit, level](StatusOr<OpResult> result, bool, ResponseKind kind) {
                             emit(level, std::move(result), kind);
                           },
                           puts.timestamps);
      });
      return plan;
    default:
      return InvocationPlan::Rejected(
          Status::InvalidArgument("cassandra binding supports key-value operations only"));
  }
}

}  // namespace icg
