// The binding API (§5.1): the line between consistency semantics (library side) and the
// protocols implementing them (storage side).
//
// A binding encapsulates one concrete storage stack configuration. It advertises its
// consistency levels and, for each invocation, *plans* how they are satisfied: which
// store round-trips to issue and which levels each round-trip reports. Everything else —
// weakest-first delivery, out-of-order suppression, the §5.2 digest-confirmation
// optimization, client-cache write-through, error fan-in, and same-tick read coalescing —
// is owned by the shared InvocationPipeline (src/correctables/invocation_pipeline.h), so
// a new backend only declares levels and small LevelFetcher callables.
#ifndef ICG_CORRECTABLES_BINDING_H_
#define ICG_CORRECTABLES_BINDING_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/small_vec.h"
#include "src/common/status.h"
#include "src/correctables/consistency.h"
#include "src/correctables/operation.h"

namespace icg {

enum class ResponseKind {
  kValue,         // response carries the result payload
  kConfirmation,  // response is a digest-only confirmation of the previous view
};

// A validated, ascending selection of consistency levels for one invocation. Wraps the
// level vector with the membership/ordering queries plans are built from.
class LevelSet {
 public:
  LevelSet() = default;
  explicit LevelSet(LevelVec levels) : levels_(std::move(levels)) {}
  explicit LevelSet(const std::vector<ConsistencyLevel>& levels)
      : levels_(levels.begin(), levels.end()) {}

  bool Contains(ConsistencyLevel level) const {
    for (const ConsistencyLevel l : levels_) {
      if (l == level) {
        return true;
      }
    }
    return false;
  }
  ConsistencyLevel weakest() const { return levels_.front(); }
  ConsistencyLevel strongest() const { return levels_.back(); }
  bool single() const { return levels_.size() == 1; }
  bool empty() const { return levels_.empty(); }
  const LevelVec& levels() const { return levels_; }

 private:
  LevelVec levels_;
};

// Delivery handle a LevelFetcher uses to report responses. Cheap to copy into store
// callbacks; may be invoked any number of times (streaming levels, e.g. blockchain
// confirmation counts, emit repeatedly at the same level).
class LevelEmitter {
 public:
  // 64 inline bytes: the pipeline's sinks capture a shared plan/batch handle plus an
  // inline level list, and must not heap-allocate per emission chain. The result passes
  // by rvalue reference so the chain of sinks forwards one materialized StatusOr instead
  // of moving it at every hop.
  using Sink =
      InlineFunction<void(ConsistencyLevel, StatusOr<OpResult>&&, ResponseKind), 64>;

  explicit LevelEmitter(Sink sink) : sink_(std::move(sink)) {}

  void operator()(ConsistencyLevel level, StatusOr<OpResult> result,
                  ResponseKind kind = ResponseKind::kValue) const {
    sink_(level, std::move(result), kind);
  }

 private:
  Sink sink_;
};

// Adapter from a LevelEmitter to the single-response callback shape most store clients
// take, reporting at a fixed `level`. The capacity fits the captured emitter inline, so
// handing it to a store client costs no allocation.
inline InlineFunction<void(StatusOr<OpResult>), 80> EmitAt(LevelEmitter emit,
                                                           ConsistencyLevel level) {
  return [emit = std::move(emit), level](StatusOr<OpResult> result) {
    emit(level, std::move(result));
  };
}

// Issues the store round-trip for one FetchStep, reporting responses through `emit`.
using LevelFetcher = InlineFunction<void(const Operation& op, LevelEmitter emit), 64>;

// One store round-trip covering an ascending subset of the requested levels. A
// single-level step emits exactly one response; a multi-level step (the single-request
// ICG path) emits a preliminary at its weakest level and a final at its strongest.
// The declaration is enforced: the executors drop emissions at undeclared levels.
struct FetchStep {
  LevelVec levels;
  LevelFetcher fetch;
};

// Write-through hook the pipeline invokes with every successful full-value response, so
// client caches stay coherent with the freshest view the store surfaced.
using RefreshHook = InlineFunction<void(const Operation&, const OpResult&, ConsistencyLevel), 48>;

// How one invocation is satisfied: the fetch steps together cover the requested level
// set exactly. Implementations are expected to exploit the level set — e.g. a
// single-level request must not pay the multi-response protocol cost.
struct InvocationPlan {
  Status reject;           // non-OK: fail the invocation without issuing any request
  SmallVec<FetchStep, 2> steps;  // a plan is 1 step (single round-trip) or 2 (fallback)
  RefreshHook refresh;     // optional cache write-through

  static InvocationPlan Rejected(Status status) {
    InvocationPlan plan;
    plan.reject = std::move(status);
    return plan;
  }

  InvocationPlan& AddStep(ConsistencyLevel level, LevelFetcher fetch) {
    steps.push_back(FetchStep{LevelVec{level}, std::move(fetch)});
    return *this;
  }
  InvocationPlan& AddSpan(LevelVec levels, LevelFetcher fetch) {
    steps.push_back(FetchStep{std::move(levels), std::move(fetch)});
    return *this;
  }
};

class Binding {
 public:
  virtual ~Binding() = default;

  virtual std::string Name() const = 0;

  // Supported levels, ordered weakest to strongest. Must be non-empty and stable.
  virtual std::vector<ConsistencyLevel> SupportedLevels() const = 0;

  // Level-provider contract: describes how `op` is satisfied at `levels` (a validated,
  // ascending subset of SupportedLevels()). Called once per invocation; the returned
  // plan's fetchers are run by the InvocationPipeline.
  virtual InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) = 0;

  // Routing scope of `op` for batching and coalescing — reads AND writes: two operations
  // may share one store round-trip only if their scopes match. Flat bindings use the
  // default (everything in one scope); a routing binding returns the shard so operations
  // bound for different coordinators never join the same batch — even if a rebalance
  // moves the key's shard while a batch window is open (the scheduler re-consults the
  // scope at flush time). Must agree between a read and a write of the same key.
  virtual std::string CoalescingScope(const Operation& op) const {
    (void)op;
    return std::string();
  }

  // Whether this binding can satisfy a kMultiGet covering several accumulated reads in
  // one store round-trip. The pipeline only widens read batches across ticks (and merges
  // distinct keys into one multiget) when this returns true; otherwise reads keep the
  // legacy same-tick coalescing path.
  virtual bool SupportsBatchedReads() const { return false; }

  // Whether this binding can satisfy a kMultiPut (several writes applied in order) in
  // one store submission. The pipeline only queues and flushes writes as a batch when
  // this returns true; otherwise every write launches individually.
  virtual bool SupportsBatchedWrites() const { return false; }

  // Called once per raw response in the legacy fan-out shape; kept for binding-level
  // tests and tools that drive a binding without a Correctable client.
  using ResponseCallback =
      std::function<void(StatusOr<OpResult> result, ConsistencyLevel level, ResponseKind kind)>;

  // Convenience: plans `op` and runs the fetch steps, forwarding each raw response (and
  // applying the plan's refresh hook). Ordering/confirmation semantics live in the
  // stateful InvocationPipeline, not here. Implemented in invocation_pipeline.cc.
  void SubmitOperation(const Operation& op, const LevelVec& levels,
                       ResponseCallback callback);
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_BINDING_H_
