// The binding API (§5.1): the line between consistency semantics (library side) and the
// protocols implementing them (storage side).
//
// A binding encapsulates one concrete storage stack configuration. It advertises its
// consistency levels and executes operations, invoking the callback once per requested
// level, weakest first. The strongest requested level is the final response; it may be
// delivered either as a full value or as a confirmation that the preliminary value was
// correct (ResponseKind::kConfirmation, the §5.2 bandwidth optimization).
#ifndef ICG_CORRECTABLES_BINDING_H_
#define ICG_CORRECTABLES_BINDING_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/correctables/consistency.h"
#include "src/correctables/operation.h"

namespace icg {

enum class ResponseKind {
  kValue,         // response carries the result payload
  kConfirmation,  // response is a digest-only confirmation of the previous view
};

class Binding {
 public:
  virtual ~Binding() = default;

  virtual std::string Name() const = 0;

  // Supported levels, ordered weakest to strongest. Must be non-empty and stable.
  virtual std::vector<ConsistencyLevel> SupportedLevels() const = 0;

  // Called once per delivered view. For errors, `result` holds the status; `level`
  // identifies which requested level the (non-)response corresponds to.
  using ResponseCallback =
      std::function<void(StatusOr<OpResult> result, ConsistencyLevel level, ResponseKind kind)>;

  // Executes `op` so that a view is produced for each entry of `levels` (a validated,
  // ascending subset of SupportedLevels()), invoking `callback` per view, weakest first.
  // Implementations are expected to exploit the level set: e.g., a single-level request
  // must not pay the multi-response protocol cost.
  virtual void SubmitOperation(const Operation& op, const std::vector<ConsistencyLevel>& levels,
                               ResponseCallback callback) = 0;
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_BINDING_H_
