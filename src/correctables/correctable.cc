#include "src/correctables/correctable.h"

namespace icg {

const char* CorrectableStateName(CorrectableState state) {
  switch (state) {
    case CorrectableState::kUpdating:
      return "UPDATING";
    case CorrectableState::kFinal:
      return "FINAL";
    case CorrectableState::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace icg
