#include "src/correctables/operation.h"

#include <sstream>
#include <utility>

namespace icg {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kGet:
      return "GET";
    case OpType::kMultiGet:
      return "MULTIGET";
    case OpType::kPut:
      return "PUT";
    case OpType::kEnqueue:
      return "ENQUEUE";
    case OpType::kDequeue:
      return "DEQUEUE";
    case OpType::kPeek:
      return "PEEK";
  }
  return "?";
}

Operation Operation::Get(std::string key) {
  return Operation{.type = OpType::kGet, .key = std::move(key), .value = {}, .keys = {}};
}
Operation Operation::MultiGet(std::vector<std::string> keys) {
  return Operation{.type = OpType::kMultiGet, .key = {}, .value = {}, .keys = std::move(keys)};
}
Operation Operation::Put(std::string key, std::string value) {
  return Operation{.type = OpType::kPut, .key = std::move(key), .value = std::move(value)};
}
Operation Operation::Enqueue(std::string queue, std::string element) {
  return Operation{.type = OpType::kEnqueue, .key = std::move(queue), .value = std::move(element)};
}
Operation Operation::Dequeue(std::string queue) {
  return Operation{.type = OpType::kDequeue, .key = std::move(queue), .value = {}};
}
Operation Operation::Peek(std::string queue) {
  return Operation{.type = OpType::kPeek, .key = std::move(queue), .value = {}};
}

int64_t Operation::WireBytes() const {
  int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                  static_cast<int64_t>(value.size());
  for (const auto& k : keys) {
    bytes += static_cast<int64_t>(k.size()) + 2;
  }
  return bytes;
}

std::string Operation::ToString() const {
  std::ostringstream os;
  os << OpTypeName(type) << "(" << key;
  if (!value.empty()) {
    os << ", " << value.size() << "B";
  }
  os << ")";
  return os.str();
}

int64_t OpResult::WireBytes() const {
  return kResponseHeaderBytes + static_cast<int64_t>(value.size());
}

std::string OpResult::ToString() const {
  std::ostringstream os;
  if (!found) {
    return "(not found)";
  }
  os << "{" << value.size() << "B";
  if (seqno >= 0) {
    os << " seq=" << seqno;
  }
  os << " " << icg::ToString(version) << "}";
  return os.str();
}

}  // namespace icg
