#include "src/correctables/operation.h"

#include <sstream>
#include <utility>

namespace icg {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kGet:
      return "GET";
    case OpType::kMultiGet:
      return "MULTIGET";
    case OpType::kPut:
      return "PUT";
    case OpType::kMultiPut:
      return "MULTIPUT";
    case OpType::kEnqueue:
      return "ENQUEUE";
    case OpType::kDequeue:
      return "DEQUEUE";
    case OpType::kPeek:
      return "PEEK";
  }
  return "?";
}

namespace {

Operation MakeOp(OpType type, std::string key, std::string value = {}) {
  Operation op;
  op.type = type;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

}  // namespace

Operation Operation::Get(std::string key) { return MakeOp(OpType::kGet, std::move(key)); }
Operation Operation::MultiGet(std::vector<std::string> keys) {
  Operation op;
  op.type = OpType::kMultiGet;
  op.keys = std::move(keys);
  return op;
}
Operation Operation::Put(std::string key, std::string value) {
  return MakeOp(OpType::kPut, std::move(key), std::move(value));
}
Operation Operation::MultiPut(std::vector<std::string> keys, std::vector<std::string> values) {
  Operation op;
  op.type = OpType::kMultiPut;
  op.keys = std::move(keys);
  op.values = std::move(values);
  return op;
}
Operation Operation::Enqueue(std::string queue, std::string element) {
  return MakeOp(OpType::kEnqueue, std::move(queue), std::move(element));
}
Operation Operation::Dequeue(std::string queue) {
  return MakeOp(OpType::kDequeue, std::move(queue));
}
Operation Operation::Peek(std::string queue) { return MakeOp(OpType::kPeek, std::move(queue)); }

int64_t Operation::WireBytes() const {
  int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                  static_cast<int64_t>(value.size());
  for (const auto& k : keys) {
    bytes += static_cast<int64_t>(k.size()) + 2;
  }
  for (const auto& v : values) {
    bytes += static_cast<int64_t>(v.size()) + 2;
  }
  // Client-assigned LWW stamps ride the wire too (8 bytes each).
  if (timestamp != 0) {
    bytes += 8;
  }
  bytes += static_cast<int64_t>(timestamps.size()) * 8;
  return bytes;
}

std::string JoinMultiValue(const std::vector<std::string>& parts) {
  std::string joined;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      joined += kMultiValueSeparator;
    }
    joined += parts[i];
  }
  return joined;
}

OpResult JoinMultiLookup(
    const std::vector<std::string>& keys,
    const std::function<std::optional<OpResult>(const std::string&)>& lookup) {
  OpResult joined;
  joined.found = true;
  joined.seqno = 0;
  joined.key_found.reserve(keys.size());
  joined.key_versions.reserve(keys.size());
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (const auto& key : keys) {
    const std::optional<OpResult> hit = lookup(key);
    if (!hit.has_value() || !hit->found) {
      joined.found = false;
      joined.key_found.push_back(false);
      joined.key_versions.push_back(Version{});
      parts.emplace_back();
      continue;
    }
    parts.push_back(hit->value);
    joined.key_found.push_back(true);
    joined.key_versions.push_back(hit->version);
    joined.seqno++;
    if (joined.version < hit->version) {
      joined.version = hit->version;
    }
  }
  joined.value = JoinMultiValue(parts);
  return joined;
}

std::vector<std::string> SplitMultiValue(const std::string& value, size_t count) {
  std::vector<std::string> parts;
  parts.reserve(count);
  size_t start = 0;
  while (parts.size() + 1 < count) {
    const size_t sep = value.find(kMultiValueSeparator, start);
    if (sep == std::string::npos) {
      break;
    }
    parts.push_back(value.substr(start, sep - start));
    start = sep + 1;
  }
  if (count > 0) {
    parts.push_back(value.substr(start));
  }
  parts.resize(count);
  return parts;
}

std::string Operation::ToString() const {
  std::ostringstream os;
  os << OpTypeName(type) << "(" << key;
  if (!value.empty()) {
    os << ", " << value.size() << "B";
  }
  os << ")";
  return os.str();
}

int64_t OpResult::WireBytes() const {
  return kResponseHeaderBytes + static_cast<int64_t>(value.size());
}

std::string OpResult::ToString() const {
  std::ostringstream os;
  if (!found) {
    return "(not found)";
  }
  os << "{" << value.size() << "B";
  if (seqno >= 0) {
    os << " seq=" << seqno;
  }
  os << " " << icg::ToString(version) << "}";
  return os.str();
}

}  // namespace icg
