#include "src/correctables/batch_scheduler.h"

#include <cassert>
#include <utility>

namespace icg {
namespace {

std::string CohortKey(bool is_read, const std::string& scope, const LevelVec& levels) {
  std::string key(is_read ? "r" : "w");
  key.push_back('\0');
  key += scope;
  key.push_back('\0');
  key += LevelsToString(levels);
  return key;
}

}  // namespace

BatchScheduler::BatchScheduler(EventLoop* loop, FlushFn flush)
    : loop_(loop), flush_(std::move(flush)) {
  assert(flush_ != nullptr);
}

BatchScheduler::~BatchScheduler() {
  for (const auto& [key, open] : pending_) {
    if (open.timer != 0 && loop_ != nullptr) {
      loop_->Cancel(open.timer);
    }
  }
}

void BatchScheduler::SetConfig(const BatchConfig& config) {
  config_ = config;
  if (loop_ == nullptr || pending_.empty()) {
    return;
  }
  // Re-arm every pending cohort against the new window, measured from the cohort's
  // original open time. Timers are cancelled before anything flushes and each cohort
  // is handled exactly once, so a waiter can neither be stranded (its timer cancelled
  // with no replacement) nor delivered twice (Flush erases before invoking).
  std::vector<std::string> flush_now;
  const SimTime now = loop_->Now();
  for (auto& [key, open] : pending_) {
    if (open.timer != 0) {
      loop_->Cancel(open.timer);
      open.timer = 0;
    }
    const SimTime deadline = open.opened_at + config_.batch_window;
    if (config_.batch_window == 0 || deadline <= now ||
        open.cohort.ops.size() >= config_.max_batch_ops) {
      // Shrink-to-0 (batching disabled: no timer would ever fire again), a deadline
      // already in the past under the new window, or a cohort the new size cap says is
      // full — all flush now. Collected first: Flush mutates pending_.
      flush_now.push_back(key);
      continue;
    }
    const std::string timer_key = key;
    open.timer = loop_->ScheduleAt(deadline, [this, timer_key]() { Flush(timer_key); });
  }
  for (const std::string& key : flush_now) {
    Flush(key);
  }
}

void BatchScheduler::Admit(bool is_read, std::string scope, const LevelVec& levels,
                           Operation op, std::shared_ptr<void> waiter) {
  assert(enabled());
  std::string key = CohortKey(is_read, scope, levels);
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    Open open;
    open.cohort.is_read = is_read;
    open.cohort.scope = std::move(scope);
    open.cohort.levels = levels;
    open.opened_at = loop_->Now();
    // The window opens with the cohort's first admission; later joiners do not extend
    // it, so no waiter is delayed more than one batch_window.
    open.timer = loop_->Schedule(config_.batch_window,
                                 [this, key]() { Flush(key); });
    it = pending_.emplace(std::move(key), std::move(open)).first;
  }
  it->second.cohort.ops.push_back(Pending{std::move(op), std::move(waiter)});
  if (it->second.cohort.ops.size() >= config_.max_batch_ops) {
    Flush(it->first);
  }
}

void BatchScheduler::Flush(const std::string& key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    return;  // already flushed (size cap raced the timer)
  }
  if (it->second.timer != 0) {
    loop_->Cancel(it->second.timer);
  }
  Cohort cohort = std::move(it->second.cohort);
  // Erase before invoking the flush handler: a handler callback may submit follow-up
  // operations that must open a fresh cohort, not append to the one being flushed.
  pending_.erase(it);
  flush_(std::move(cohort));
}

void BatchScheduler::FlushAll() {
  while (!pending_.empty()) {
    Flush(pending_.begin()->first);
  }
}

size_t BatchScheduler::pending_ops() const {
  size_t total = 0;
  for (const auto& [key, open] : pending_) {
    total += open.cohort.ops.size();
  }
  return total;
}

}  // namespace icg
