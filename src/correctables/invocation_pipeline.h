// InvocationPipeline: the shared per-invocation engine behind every binding.
//
// The paper's claim is that incremental consistency guarantees are *one* abstraction
// regardless of the storage stack behind it. The pipeline is where that abstraction's
// semantics live, so concrete bindings stay thin level providers:
//
//   * level-set validation and weakest-first delivery;
//   * out-of-order suppression (a weaker view arriving after a stronger one is dropped,
//     keeping the Correctable's level sequence monotone even against misbehaving
//     storage);
//   * the §5.2 digest-confirmation optimization (a confirmation final closes the
//     Correctable with the preliminary value);
//   * client-cache write-through via the plan's RefreshHook;
//   * error fan-in (preliminary-level errors are tolerated while a stronger view may
//     still arrive; final-level errors fail the Correctable) and timeout arming;
//   * read coalescing: same-key reads with the same level set submitted within one
//     event-loop tick share a single store round-trip, its responses fanned back out to
//     every waiting Correctable;
//   * cross-tick batching (BatchConfig::batch_window > 0): reads for one coalescing
//     scope accumulate across ticks and flush as a single multiget round-trip serving
//     the whole cohort (per-waiter fan-back-out, including per-waiter confirmation
//     reconstruction); writes to one scope queue and flush as a single in-order multiput
//     submission. Scope keys come from Binding::CoalescingScope for reads AND writes,
//     re-consulted at flush time so a rebalance mid-window re-routes instead of letting
//     a batch span shards. With batch_window == 0 the legacy same-tick behaviour is
//     preserved bit-for-bit.
#ifndef ICG_CORRECTABLES_INVOCATION_PIPELINE_H_
#define ICG_CORRECTABLES_INVOCATION_PIPELINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/pooled.h"
#include "src/common/small_vec.h"
#include "src/correctables/batch_scheduler.h"
#include "src/correctables/binding.h"
#include "src/correctables/correctable.h"
#include "src/sim/event_loop.h"

namespace icg {

// Counters surfaced through CorrectableClient::stats(). The invocation-kind counters are
// maintained by the client; everything from views_delivered down by the pipeline.
struct ClientStats {
  int64_t invocations = 0;
  int64_t weak_invocations = 0;
  int64_t strong_invocations = 0;
  int64_t icg_invocations = 0;
  int64_t views_delivered = 0;
  int64_t confirmations = 0;         // finals delivered as confirmations
  int64_t divergences = 0;           // finals that differed from the last preliminary
  int64_t stale_views_dropped = 0;   // out-of-order weaker views suppressed
  int64_t errors = 0;
  int64_t timeouts = 0;
  int64_t batched_invocations = 0;   // read batches that served more than one invocation
  int64_t coalesced_reads = 0;       // reads that shared another read's store round-trip
  int64_t cross_tick_batches = 0;    // window flushes that merged >= 2 invocations into
                                     // one store submission (reads or writes)
  int64_t batched_writes = 0;        // writes submitted through a batched multiput
  int64_t overload_sheds = 0;        // invocations failed by per-shard backpressure
                                     // (retryable OVERLOADED finals)
};

class InvocationPipeline {
 public:
  // `loop` may be null (synchronous unit tests): timeouts cannot be armed, view
  // timestamps read as zero, and read coalescing / cross-tick batching are disabled
  // (there is no tick). `binding` and `stats` must outlive the pipeline.
  InvocationPipeline(Binding* binding, EventLoop* loop, ClientStats* stats);

  // Fails invocations whose final view has not arrived within `timeout` (0 disables).
  // The timer arms at submission, so a waiter queued in a pending cross-tick batch still
  // times out on its own schedule — and fails alone.
  void SetTimeout(SimDuration timeout) { timeout_ = timeout; }

  // Configures cross-tick batching. batch_window == 0 (the default) keeps the legacy
  // same-tick coalescing path untouched.
  void SetBatchConfig(const BatchConfig& config) { scheduler_.SetConfig(config); }
  const BatchConfig& batch_config() const { return scheduler_.config(); }

  // Flushes every pending cross-tick cohort immediately (explicit barrier / teardown).
  void FlushPendingBatches() { scheduler_.FlushAll(); }
  size_t pending_batched_ops() const { return scheduler_.pending_ops(); }

  // Validates `levels`, plans `op` with the binding, and drives a Correctable through
  // one view per requested level, weakest first. Same-key kGet submissions with the same
  // level set within one event-loop tick coalesce onto the first submission's round-trip;
  // with a batch window configured, kGet/kPut submissions accumulate per coalescing
  // scope and flush as batched store submissions.
  Correctable<OpResult> Submit(Operation op, LevelVec levels);

 private:
  // Per-waiter delivery state: one per submitted Correctable.
  struct Invocation {
    Invocation(EventLoop* loop, ConsistencyLevel strongest)
        : source(loop), strongest(strongest) {}
    CorrectableSource<OpResult> source;
    ConsistencyLevel strongest;
    TimerId timer = 0;
  };

  // One planned store round-trip set, fanned out to one or more waiters.
  struct Batch {
    Operation op;
    LevelSet level_set;
    bool coalescable = false;
    bool done = false;           // strongest-level response delivered
    std::string map_key;         // open_batches_ entry while joinable
    SmallVec<std::shared_ptr<Invocation>, 2> waiters;
    struct Emission {
      ConsistencyLevel level;
      StatusOr<OpResult> result;
      ResponseKind kind;
    };
    SmallVec<Emission, 2> history;  // replayed to late same-tick joiners
  };

  // One flushed cross-tick cohort running as a batched store submission. For reads the
  // multiget payload is sliced back out per key; for writes the single multiput ack (or
  // error) fans out to every queued waiter.
  struct Fanout {
    Operation op;  // kMultiGet / kMultiPut
    LevelSet level_set;
    bool is_read = false;
    std::vector<std::string> keys;  // reads: distinct keys, in op.keys order
    std::vector<std::vector<std::shared_ptr<Invocation>>> key_waiters;  // parallel to keys
    std::vector<std::shared_ptr<Invocation>> write_waiters;  // writes: arrival order
  };

  void ArmTimeout(const std::shared_ptr<Invocation>& inv);
  void CancelTimeout(Invocation& inv);
  // Plans `op` against the binding and runs the plan's steps into `sink` (shared
  // rejection/coverage validation for both the per-batch and fan-out paths).
  void RunPlan(std::shared_ptr<const Operation> op, const LevelSet& level_set,
               LevelEmitter::Sink sink);
  void Launch(const std::shared_ptr<Batch>& batch);
  void OnEmission(const std::shared_ptr<Batch>& batch, ConsistencyLevel level,
                  StatusOr<OpResult> result, ResponseKind kind);
  // Cross-tick flush handlers.
  void OnCohortFlush(BatchScheduler::Cohort cohort);
  void FlushReadGroup(const LevelVec& levels, std::vector<BatchScheduler::Pending> ops);
  void FlushWriteGroup(const LevelVec& levels, std::vector<BatchScheduler::Pending> ops);
  void OnFanoutEmission(const std::shared_ptr<Fanout>& fanout, ConsistencyLevel level,
                        StatusOr<OpResult> result, ResponseKind kind);
  // Translates one raw response into a view transition on one waiter. Takes the result
  // by value: fan-out callers copy per waiter anyway, and the last waiter of an emission
  // can be handed the original without a copy.
  void Deliver(Invocation& inv, ConsistencyLevel level, StatusOr<OpResult> result,
               ResponseKind kind);

  Binding* binding_;
  EventLoop* loop_;
  ClientStats* stats_;
  // SupportedLevels() and Name() return fresh containers per call; both are stable by
  // contract, so hot paths read these cached copies instead of allocating per submission.
  std::vector<ConsistencyLevel> supported_levels_;
  std::string binding_name_;
  SimDuration timeout_ = 0;
  // Joinable read batches of the current submission tick; wholesale-cleared when the
  // tick advances (entries for lost responses must not accumulate).
  SimTime batch_tick_ = 0;
  // Per-client monotone write clock: every kPut is stamped max(now, last + 1) at
  // submission, so a writer's same-key writes carry strictly increasing LWW timestamps
  // however they are later batched or re-routed (see Operation::timestamp).
  SimTime last_write_stamp_ = 0;
  // Pool-allocated nodes: map churn (one insert/erase per coalescable read batch)
  // recycles node blocks instead of hitting the global allocator.
  std::map<std::string, std::shared_ptr<Batch>, std::less<std::string>,
           PoolAllocator<std::pair<const std::string, std::shared_ptr<Batch>>>>
      open_batches_;
  // Reused lookup-key buffer for BatchKey construction; its capacity persists across
  // submissions, so steady-state key building allocates nothing.
  std::string scratch_key_;
  BatchScheduler scheduler_;  // must follow loop_ (init order)
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_INVOCATION_PIPELINE_H_
