// CorrectableClient: the application-facing library entry point (§3.2).
//
//   invokeWeak(op)   -> single final view at the weakest supported level
//   invokeStrong(op) -> single final view at the strongest supported level
//   invoke(op)       -> incremental views at every supported level (ICG)
//   invoke(op, lvls) -> incremental views at a chosen ascending subset of levels
//
// The client creates Correctables and counts invocation kinds; all per-level semantics
// (view translation, monotonicity, confirmations, timeouts, read coalescing) are owned
// by the shared InvocationPipeline it drives.
#ifndef ICG_CORRECTABLES_CLIENT_H_
#define ICG_CORRECTABLES_CLIENT_H_

#include <memory>
#include <vector>

#include "src/correctables/binding.h"
#include "src/correctables/correctable.h"
#include "src/correctables/invocation_pipeline.h"
#include "src/correctables/operation.h"
#include "src/sim/event_loop.h"

namespace icg {

class CorrectableClient {
 public:
  // `loop` may be null when the binding is synchronous (unit tests); timeouts then
  // cannot be armed and view timestamps read as zero.
  explicit CorrectableClient(std::shared_ptr<Binding> binding, EventLoop* loop = nullptr);

  // Fails invocations whose final view has not arrived within `timeout` (0 disables).
  void SetTimeout(SimDuration timeout) { pipeline_.SetTimeout(timeout); }

  // Cross-tick batching: with batch_window > 0, reads and writes accumulate per
  // coalescing scope for up to one window and flush as batched store submissions.
  // batch_window == 0 (the default) keeps the legacy same-tick coalescing behaviour.
  void SetBatchConfig(const BatchConfig& config) { pipeline_.SetBatchConfig(config); }
  const BatchConfig& batch_config() const { return pipeline_.batch_config(); }
  // Flushes every pending batch cohort immediately (explicit barrier / teardown).
  void FlushPendingBatches() { pipeline_.FlushPendingBatches(); }

  Correctable<OpResult> InvokeWeak(Operation op);
  Correctable<OpResult> InvokeStrong(Operation op);
  // All supported levels.
  Correctable<OpResult> Invoke(Operation op);
  // A chosen subset; must be ascending and supported, else the result is already failed
  // with INVALID_ARGUMENT.
  Correctable<OpResult> Invoke(Operation op, LevelVec levels);

  const ClientStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ClientStats{}; }

  const Binding& binding() const { return *binding_; }
  EventLoop* loop() const { return loop_; }

 private:
  Correctable<OpResult> Submit(Operation op, LevelVec levels);

  std::shared_ptr<Binding> binding_;
  EventLoop* loop_;
  // Cached once (the Binding contract declares the set stable): SupportedLevels()
  // returns a fresh vector per call, which would put an allocation on every invoke.
  std::vector<ConsistencyLevel> supported_levels_;
  ClientStats stats_;
  InvocationPipeline pipeline_;  // must follow binding_ and stats_ (init order)
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_CLIENT_H_
