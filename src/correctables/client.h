// CorrectableClient: the application-facing library entry point (§3.2).
//
//   invokeWeak(op)   -> single final view at the weakest supported level
//   invokeStrong(op) -> single final view at the strongest supported level
//   invoke(op)       -> incremental views at every supported level (ICG)
//   invoke(op, lvls) -> incremental views at a chosen ascending subset of levels
//
// The client creates Correctables, translates binding responses into view transitions,
// enforces level monotonicity, applies the confirmation optimization, and optionally
// arms a timeout that fails the Correctable if the final view never arrives.
#ifndef ICG_CORRECTABLES_CLIENT_H_
#define ICG_CORRECTABLES_CLIENT_H_

#include <memory>
#include <vector>

#include "src/correctables/binding.h"
#include "src/correctables/correctable.h"
#include "src/correctables/operation.h"
#include "src/sim/event_loop.h"

namespace icg {

struct ClientStats {
  int64_t invocations = 0;
  int64_t weak_invocations = 0;
  int64_t strong_invocations = 0;
  int64_t icg_invocations = 0;
  int64_t views_delivered = 0;
  int64_t confirmations = 0;        // finals delivered as confirmations
  int64_t divergences = 0;          // finals that differed from the last preliminary
  int64_t stale_views_dropped = 0;  // out-of-order weaker views suppressed
  int64_t errors = 0;
  int64_t timeouts = 0;
};

class CorrectableClient {
 public:
  // `loop` may be null when the binding is synchronous (unit tests); timeouts then
  // cannot be armed and view timestamps read as zero.
  explicit CorrectableClient(std::shared_ptr<Binding> binding, EventLoop* loop = nullptr);

  // Fails invocations whose final view has not arrived within `timeout` (0 disables).
  void SetTimeout(SimDuration timeout) { timeout_ = timeout; }

  Correctable<OpResult> InvokeWeak(Operation op);
  Correctable<OpResult> InvokeStrong(Operation op);
  // All supported levels.
  Correctable<OpResult> Invoke(Operation op);
  // A chosen subset; must be ascending and supported, else the result is already failed
  // with INVALID_ARGUMENT.
  Correctable<OpResult> Invoke(Operation op, std::vector<ConsistencyLevel> levels);

  const ClientStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ClientStats{}; }

  const Binding& binding() const { return *binding_; }
  EventLoop* loop() const { return loop_; }

 private:
  Correctable<OpResult> Submit(Operation op, std::vector<ConsistencyLevel> levels);

  std::shared_ptr<Binding> binding_;
  EventLoop* loop_;
  SimDuration timeout_ = 0;
  ClientStats stats_;
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_CLIENT_H_
