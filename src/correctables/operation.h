// Storage-agnostic operation descriptors passed from the client library to bindings.
//
// Applications build Operations with the factory helpers; bindings translate them into
// storage-specific protocols. A single tagged struct (rather than per-store templates)
// keeps the API surface "thin and consistency-based" as the paper advocates: the
// operation says *what*, the binding decides *how*.
#ifndef ICG_CORRECTABLES_OPERATION_H_
#define ICG_CORRECTABLES_OPERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace icg {

enum class OpType : uint8_t {
  kGet,       // read value at key
  kMultiGet,  // read several keys in one request (batched, e.g. fetching all ads)
  kPut,       // write value at key
  kEnqueue,   // append element to the queue named by key
  kDequeue,   // remove and return the queue head
  kPeek,      // read the queue head without removing
};

const char* OpTypeName(OpType type);

struct Operation {
  OpType type = OpType::kGet;
  std::string key;    // record key, or queue name for queue operations
  std::string value;  // put payload / enqueue element; empty otherwise
  std::vector<std::string> keys;  // kMultiGet only

  static Operation Get(std::string key);
  static Operation MultiGet(std::vector<std::string> keys);
  static Operation Put(std::string key, std::string value);
  static Operation Enqueue(std::string queue, std::string element);
  static Operation Dequeue(std::string queue);
  static Operation Peek(std::string queue);

  bool IsRead() const {
    return type == OpType::kGet || type == OpType::kMultiGet || type == OpType::kPeek;
  }
  bool IsQueueOp() const {
    return type == OpType::kEnqueue || type == OpType::kDequeue || type == OpType::kPeek;
  }

  // Approximate wire size of the request (header + key + payload), for byte accounting.
  int64_t WireBytes() const;

  std::string ToString() const;
};

// Separator between per-key payloads in a kMultiGet result value.
inline constexpr char kMultiValueSeparator = '\x1e';

// The result of an operation as observed under some consistency level. For kMultiGet,
// `value` holds the per-key payloads joined by kMultiValueSeparator (missing keys
// contribute an empty payload), `found` means every key was found, and `seqno` counts
// the keys found.
struct OpResult {
  bool found = false;  // key existed / queue non-empty
  std::string value;   // read value or dequeued element
  // Queue element sequence number (ticket position); -1 for key-value results. For a
  // dequeue preliminary view this is the observed head position, which the ticket app
  // uses as the remaining-stock estimate.
  int64_t seqno = -1;
  // Version of the value (key-value stores); default for queue results.
  Version version{};

  friend bool operator==(const OpResult&, const OpResult&) = default;

  // Approximate wire size of a response carrying this result.
  int64_t WireBytes() const;

  std::string ToString() const;
};

// Wire-size constants shared by the simulated protocols. The paper reports ~270 B for a
// ZooKeeper enqueue request+response pair and ~130 B for the extra preliminary response;
// these headers make those magnitudes come out naturally.
inline constexpr int64_t kRequestHeaderBytes = 48;
inline constexpr int64_t kResponseHeaderBytes = 40;
inline constexpr int64_t kConfirmationBytes = 24;  // digest-only final (§5.2)

}  // namespace icg

#endif  // ICG_CORRECTABLES_OPERATION_H_
