// Storage-agnostic operation descriptors passed from the client library to bindings.
//
// Applications build Operations with the factory helpers; bindings translate them into
// storage-specific protocols. A single tagged struct (rather than per-store templates)
// keeps the API surface "thin and consistency-based" as the paper advocates: the
// operation says *what*, the binding decides *how*.
#ifndef ICG_CORRECTABLES_OPERATION_H_
#define ICG_CORRECTABLES_OPERATION_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace icg {

enum class OpType : uint8_t {
  kGet,       // read value at key
  kMultiGet,  // read several keys in one request (batched, e.g. fetching all ads)
  kPut,       // write value at key
  kMultiPut,  // apply several writes in one request, in order (cross-tick write batching)
  kEnqueue,   // append element to the queue named by key
  kDequeue,   // remove and return the queue head
  kPeek,      // read the queue head without removing
};

const char* OpTypeName(OpType type);

struct Operation {
  OpType type = OpType::kGet;
  std::string key;    // record key, or queue name for queue operations
  std::string value;  // put payload / enqueue element; empty otherwise
  std::vector<std::string> keys;    // kMultiGet / kMultiPut
  std::vector<std::string> values;  // kMultiPut only; parallel to `keys`, applied in order
  // Client-assigned LWW timestamp of a kPut (0 = unassigned: the coordinator stamps at
  // apply time, the legacy behaviour). The pipeline stamps every write at submission
  // with a per-client monotone clock, so one writer's same-key writes keep their program
  // order even when a live rebalance hands the key to a different coordinator mid-stream
  // (coordinator apply-time stamps would invert across the handoff whenever the old
  // coordinator's queue drains later than the new one's).
  SimTime timestamp = 0;
  std::vector<SimTime> timestamps;  // kMultiPut: per-entry stamps, parallel to `keys`

  static Operation Get(std::string key);
  static Operation MultiGet(std::vector<std::string> keys);
  static Operation Put(std::string key, std::string value);
  // `keys` and `values` must be the same length; entries apply in vector order, so two
  // writes to the same key keep their program order inside the batch.
  static Operation MultiPut(std::vector<std::string> keys, std::vector<std::string> values);
  static Operation Enqueue(std::string queue, std::string element);
  static Operation Dequeue(std::string queue);
  static Operation Peek(std::string queue);

  bool IsRead() const {
    return type == OpType::kGet || type == OpType::kMultiGet || type == OpType::kPeek;
  }
  bool IsQueueOp() const {
    return type == OpType::kEnqueue || type == OpType::kDequeue || type == OpType::kPeek;
  }

  // Approximate wire size of the request (header + key + payload), for byte accounting.
  int64_t WireBytes() const;

  std::string ToString() const;
};

// Separator between per-key payloads in a kMultiGet result value. Payload values must
// not contain this byte — the simulated wire format is separator-based, so a value
// embedding it would shift every later key's slice. (All workloads and apps in this
// repo satisfy that; a length-prefixed format is the lift if one ever must not.)
inline constexpr char kMultiValueSeparator = '\x1e';

// Joins per-key payloads into the kMultiGet/kMultiPut wire format (parts separated by
// kMultiValueSeparator; missing keys contribute an empty part).
std::string JoinMultiValue(const std::vector<std::string>& parts);

// Splits a multi-value payload into exactly `count` per-key parts (the inverse of
// JoinMultiValue; short payloads pad with empty parts).
std::vector<std::string> SplitMultiValue(const std::string& value, size_t count);

// The result of an operation as observed under some consistency level. For kMultiGet,
// `value` holds the per-key payloads joined by kMultiValueSeparator (missing keys
// contribute an empty payload), `found` means every key was found, and `seqno` counts
// the keys found.
struct OpResult {
  bool found = false;  // key existed / queue non-empty
  std::string value;   // read value or dequeued element
  // Queue element sequence number (ticket position); -1 for key-value results. For a
  // dequeue preliminary view this is the observed head position, which the ticket app
  // uses as the remaining-stock estimate.
  int64_t seqno = -1;
  // Version of the value (key-value stores); default for queue results.
  Version version{};
  // Per-key detail of a batched (kMultiGet / kMultiPut) result, parallel to the
  // request's key order. The joined `found`/`version` above lose which key missed and
  // which version belongs to whom; responders that know fill these so fan-out and cache
  // refresh can be exact per key. Empty when unavailable (e.g. legacy responders) —
  // consumers then fall back to the joined fields.
  std::vector<bool> key_found;
  std::vector<Version> key_versions;

  friend bool operator==(const OpResult&, const OpResult&) = default;

  // Approximate wire size of a response carrying this result.
  int64_t WireBytes() const;

  std::string ToString() const;
};

// Builds a batched read result from per-key lookups, the one definition shared by every
// multi-key responder (stores, client cache): payloads joined in key order, `found` =
// every key found, `seqno` = keys found, `version` = freshest, and the per-key
// found/version detail filled in. `lookup` returns nullopt for a missing key.
OpResult JoinMultiLookup(
    const std::vector<std::string>& keys,
    const std::function<std::optional<OpResult>(const std::string&)>& lookup);

// Wire-size constants shared by the simulated protocols. The paper reports ~270 B for a
// ZooKeeper enqueue request+response pair and ~130 B for the extra preliminary response;
// these headers make those magnitudes come out naturally.
inline constexpr int64_t kRequestHeaderBytes = 48;
inline constexpr int64_t kResponseHeaderBytes = 40;
inline constexpr int64_t kConfirmationBytes = 24;  // digest-only final (§5.2)

}  // namespace icg

#endif  // ICG_CORRECTABLES_OPERATION_H_
