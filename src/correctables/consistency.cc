#include "src/correctables/consistency.h"

#include <algorithm>

namespace icg {

const char* ConsistencyLevelName(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kCache:
      return "CACHE";
    case ConsistencyLevel::kWeak:
      return "WEAK";
    case ConsistencyLevel::kCausal:
      return "CAUSAL";
    case ConsistencyLevel::kStrong:
      return "STRONG";
  }
  return "?";
}

bool ValidLevelSelection(const LevelVec& levels,
                         const std::vector<ConsistencyLevel>& supported) {
  if (levels.empty()) {
    return false;
  }
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0 && !IsStronger(levels[i], levels[i - 1])) {
      return false;
    }
    if (std::find(supported.begin(), supported.end(), levels[i]) == supported.end()) {
      return false;
    }
  }
  return true;
}

std::string LevelsToString(const LevelVec& levels) {
  std::string out = "[";
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += ConsistencyLevelName(levels[i]);
  }
  out += "]";
  return out;
}

}  // namespace icg
