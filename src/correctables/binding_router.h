// BindingRouter: per-key routing across sharded storage endpoints (Dynamo/Cassandra
// style), expressed as a Binding so the whole Correctables stack works unchanged on top.
//
// The router owns N child bindings — one per coordinator endpoint — and delegates each
// invocation to the shard owning its key. Because routing stays per-key, every guarantee
// the InvocationPipeline enforces per Correctable (weakest-first monotone views, §5.2
// confirmations, timeouts) survives partitioned traffic: an invocation only ever talks
// to one shard's endpoint, whose level sequence is exactly a flat binding's. The two
// cross-shard concerns are handled here:
//
//   * multiget scatter-gather: a kMultiGet whose keys span shards is split into per-shard
//     sub-reads; the router merges per-level, emitting the merged view for level L only
//     once every shard reported at L, so the merged sequence is still monotone. Per-shard
//     digest confirmations are reconstructed from that shard's preliminary; the merged
//     final is itself a confirmation only if every shard confirmed.
//   * coalescing scope: CoalescingScope() returns the key's shard (qualified by the ring
//     epoch), so the pipeline never lets reads bound for different coordinators — or
//     different ring generations — share one batch.
//
// Two properties turn the static router into a *live* one:
//
//   * ApplyRing installs a new shard set + routing function under a strictly increasing
//     epoch (stale installations are rejected). In-flight invocations keep the child
//     bindings they were planned against alive through their shared_ptr captures, so a
//     removed coordinator drains naturally; *pending* batched cohorts re-route at flush
//     time because the pipeline re-consults CoalescingScope then — and the epoch in the
//     scope string guarantees a cohort formed under the old ring never merges with
//     post-rebalance traffic.
//   * per-shard backpressure: SetShardQueueLimit bounds each child's outstanding
//     invocations. A shard at its limit sheds new work with a retryable OVERLOADED
//     status (surfaced through the pipeline like any rejection), so a hot shard degrades
//     alone instead of queueing the whole client.
#ifndef ICG_CORRECTABLES_BINDING_ROUTER_H_
#define ICG_CORRECTABLES_BINDING_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/correctables/binding.h"

namespace icg {

// Maps a key to the index of the shard (child binding) owning it. Must return a value in
// [0, num_shards) and be stable between ring installations.
using ShardFn = std::function<size_t(const std::string& key)>;

// One consistent read of a router's backpressure state: every per-shard row and the
// epoch come from the same ring generation (LoadSnapshot is a single call on the
// router's thread, so it can never straddle an ApplyRing), and `retired_sheds` carries
// the shed totals of every counter block retired by past ring changes. That makes
// total_sheds() monotone across epochs — the property a controller differencing
// consecutive snapshots needs, since per-index reads before and after a membership
// change are incomparable (indices reshuffle and departed blocks vanish).
struct RouterLoadSnapshot {
  struct Shard {
    size_t outstanding = 0;
    int64_t sheds = 0;
  };

  uint64_t epoch = 0;
  std::vector<Shard> shards;        // current ring order
  int64_t retired_sheds = 0;        // sheds of blocks retired by past ApplyRing calls

  size_t total_outstanding() const {
    size_t total = 0;
    for (const Shard& shard : shards) total += shard.outstanding;
    return total;
  }
  // Monotone across ring changes: retired blocks' sheds are folded in at retirement.
  int64_t total_sheds() const {
    int64_t total = retired_sheds;
    for (const Shard& shard : shards) total += shard.sheds;
    return total;
  }
};

class BindingRouter : public Binding {
 public:
  // All shards must support an identical level vector (the router advertises it as its
  // own); `shard_of` must map every key into [0, shards.size()).
  BindingRouter(std::vector<std::shared_ptr<Binding>> shards, ShardFn shard_of,
                uint64_t epoch = 0);

  std::string Name() const override;
  std::vector<ConsistencyLevel> SupportedLevels() const override;
  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;
  std::string CoalescingScope(const Operation& op) const override;

  // Batching capabilities pass through to the shard bindings (identical by the
  // constructor contract, like SupportedLevels). Batched writes are strictly
  // shard-local: a kMultiPut whose keys span shards is rejected — the pipeline's
  // scope-keyed write queues never produce one, so a rejection flags a caller bypassing
  // the scheduler. Batched reads may span shards (multiget scatter-gather).
  bool SupportsBatchedReads() const override;
  bool SupportsBatchedWrites() const override;

  // Installs a new shard set + routing function under `epoch`. Epochs must strictly
  // increase: a stale installation (epoch <= ring_epoch()) is rejected with CONFLICT and
  // leaves the current ring untouched. Shards present in both generations (matched by
  // binding identity) keep their outstanding/shed accounting; departed shards stay alive
  // through in-flight invocations' captures, but their counter blocks are retired
  // atomically with the swap — outstanding zeroed, late decrements clamped — so a shard
  // that never answers (crashed coordinator) cannot underflow or pin phantom load.
  Status ApplyRing(uint64_t epoch, std::vector<std::shared_ptr<Binding>> shards,
                   ShardFn shard_of);
  uint64_t ring_epoch() const { return epoch_; }

  // Bounds each shard's outstanding invocations; 0 (the default) disables shedding.
  // Applies to everything the router plans, including batched cohort flushes — a shed
  // flush fails exactly that cohort's waiters with a retryable OVERLOADED status.
  void SetShardQueueLimit(size_t limit) { queue_limit_ = limit; }
  size_t shard_queue_limit() const { return queue_limit_; }

  size_t num_shards() const { return shards_.size(); }
  // The shard index `key` routes to (bounds-checked against num_shards()).
  size_t ShardIndexFor(const std::string& key) const;
  Binding& shard(size_t index) const { return *shards_.at(index).binding; }

  // Backpressure observability, per current-ring shard index. Outstanding counts decay
  // as finals (values, confirmations, or errors) arrive; an invocation whose store never
  // answers at the final level pins its slot until it does.
  size_t ShardOutstanding(size_t index) const { return shards_.at(index).counters->outstanding; }
  int64_t ShardSheds(size_t index) const { return shards_.at(index).counters->sheds; }
  int64_t TotalSheds() const;

  // Consistent snapshot of epoch + every shard's outstanding/sheds + the retired-shed
  // aggregate, for controllers and tests that must never read torn across an ApplyRing.
  RouterLoadSnapshot LoadSnapshot() const;

 private:
  // Heap-shared so emit-wrappers of in-flight invocations outlive ring changes: a
  // departed shard's decrements land on its retired counter block, never on a stale
  // index of the new ring.
  //
  // A block leaving the ring is *retired* atomically with ApplyRing: its outstanding
  // count is zeroed (a removed or crashed shard will never drain normally — a count
  // left behind would pin phantom load forever) and decrements are clamped at zero, so
  // a late terminal from an in-flight invocation — or one that never answers at all,
  // like a crashed coordinator's — can neither underflow the counter nor corrupt a
  // live shard's accounting.
  struct ShardCounters {
    size_t outstanding = 0;
    int64_t sheds = 0;
    bool retired = false;

    void Release() {
      if (outstanding > 0) {  // clamp: retirement may have zeroed it already
        outstanding--;
      }
    }
  };
  struct Shard {
    std::shared_ptr<Binding> binding;
    std::shared_ptr<ShardCounters> counters;
  };

  // Wraps the plan's final-covering steps so `counters->outstanding` drops exactly once
  // when the strongest requested level is emitted (value, confirmation, or error).
  static void TrackOutstanding(InvocationPlan& plan, ConsistencyLevel strongest,
                               std::shared_ptr<ShardCounters> counters);
  bool ShedIfOverloaded(size_t shard_index);
  // The one shard-local planning path: admission-check the shard (`what` names the
  // shed work in the error message), delegate the plan, and claim an outstanding slot.
  InvocationPlan PlanOnShard(size_t shard, const Operation& op, const LevelSet& levels,
                             const char* what);

  std::vector<Shard> shards_;
  ShardFn shard_of_;
  uint64_t epoch_ = 0;
  size_t queue_limit_ = 0;
  // Sheds folded in from counter blocks retired by ApplyRing (see RouterLoadSnapshot).
  int64_t retired_sheds_ = 0;
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_BINDING_ROUTER_H_
