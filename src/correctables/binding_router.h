// BindingRouter: per-key routing across sharded storage endpoints (Dynamo/Cassandra
// style), expressed as a Binding so the whole Correctables stack works unchanged on top.
//
// The router owns N child bindings — one per coordinator endpoint — and delegates each
// invocation to the shard owning its key. Because routing stays per-key, every guarantee
// the InvocationPipeline enforces per Correctable (weakest-first monotone views, §5.2
// confirmations, timeouts) survives partitioned traffic: an invocation only ever talks
// to one shard's endpoint, whose level sequence is exactly a flat binding's. The two
// cross-shard concerns are handled here:
//
//   * multiget scatter-gather: a kMultiGet whose keys span shards is split into per-shard
//     sub-reads; the router merges per-level, emitting the merged view for level L only
//     once every shard reported at L, so the merged sequence is still monotone. Per-shard
//     digest confirmations are reconstructed from that shard's preliminary; the merged
//     final is itself a confirmation only if every shard confirmed.
//   * coalescing scope: CoalescingScope() returns the key's shard, so the pipeline never
//     lets reads bound for different coordinators share one batch.
#ifndef ICG_CORRECTABLES_BINDING_ROUTER_H_
#define ICG_CORRECTABLES_BINDING_ROUTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/correctables/binding.h"

namespace icg {

// Maps a key to the index of the shard (child binding) owning it. Must return a value in
// [0, num_shards) and be stable for the lifetime of the router.
using ShardFn = std::function<size_t(const std::string& key)>;

class BindingRouter : public Binding {
 public:
  // All shards must support an identical level vector (the router advertises it as its
  // own); `shard_of` must map every key into [0, shards.size()).
  BindingRouter(std::vector<std::shared_ptr<Binding>> shards, ShardFn shard_of);

  std::string Name() const override;
  std::vector<ConsistencyLevel> SupportedLevels() const override;
  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override;
  std::string CoalescingScope(const Operation& op) const override;

  // Batching capabilities pass through to the shard bindings (identical by the
  // constructor contract, like SupportedLevels). Batched writes are strictly
  // shard-local: a kMultiPut whose keys span shards is rejected — the pipeline's
  // scope-keyed write queues never produce one, so a rejection flags a caller bypassing
  // the scheduler. Batched reads may span shards (multiget scatter-gather).
  bool SupportsBatchedReads() const override;
  bool SupportsBatchedWrites() const override;

  size_t num_shards() const { return shards_.size(); }
  // The shard index `key` routes to (bounds-checked against num_shards()).
  size_t ShardIndexFor(const std::string& key) const;
  Binding& shard(size_t index) const { return *shards_.at(index); }

 private:
  std::vector<std::shared_ptr<Binding>> shards_;
  ShardFn shard_of_;
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_BINDING_ROUTER_H_
