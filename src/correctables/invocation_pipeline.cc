#include "src/correctables/invocation_pipeline.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"

namespace icg {
namespace {

bool StepDeclares(const LevelVec& declared, ConsistencyLevel level) {
  return std::find(declared.begin(), declared.end(), level) != declared.end();
}

// Coalescing key: operations join the same batch only if key, level set, and the
// binding's routing scope all match (different level sets need different view
// sequences; different scopes mean different store endpoints, so sharing a round-trip
// would send one waiter's read to the wrong coordinator). Builds into `out` so a
// persistent scratch buffer absorbs the construction.
void BatchKeyInto(std::string& out, const Binding& binding, const Operation& op,
                  const LevelVec& levels) {
  out.clear();
  out += binding.CoalescingScope(op);
  out.push_back('\0');
  out += op.key;
  out.push_back('\0');
  for (const ConsistencyLevel level : levels) {
    out += ConsistencyLevelName(level);
    out.push_back(',');
  }
}

// A plan whose steps never declare the strongest requested level could not possibly
// close the Correctable; catch the binding bug up front instead of hanging forever.
bool PlanCoversFinal(const InvocationPlan& plan, ConsistencyLevel strongest) {
  for (const FetchStep& step : plan.steps) {
    if (StepDeclares(step.levels, strongest)) {
      return true;
    }
  }
  return false;
}

// Shared per-plan execution state, kept alive by the step emitters.
struct PlanRun {
  std::shared_ptr<const Operation> op;
  RefreshHook refresh;
  // Points at the pipeline's cached name (pipeline path) or at owned_name (raw
  // SubmitOperation path): referenced only by the undeclared-level debug log, so the
  // hot path never constructs a name string.
  const std::string* binding_name = nullptr;
  std::string owned_name;
  LevelEmitter::Sink sink;  // receives declaration-checked, refresh-applied emissions
};

// The one definition of "run a plan", shared by the stateful pipeline and the raw
// Binding::SubmitOperation path: runs every fetch step, enforcing the step's declared
// levels (an emission at an undeclared level is a binding bug and is dropped) and
// applying the plan's write-through refresh hook before forwarding to the sink.
void RunPlanSteps(std::shared_ptr<PlanRun> run, SmallVec<FetchStep, 2>& steps) {
  for (FetchStep& step : steps) {
    LevelEmitter emit([run, declared = std::move(step.levels)](
                          ConsistencyLevel level, StatusOr<OpResult>&& result,
                          ResponseKind kind) {
      if (!StepDeclares(declared, level)) {
        ICG_DEBUG << "binding " << *run->binding_name << " emitted undeclared level "
                  << ConsistencyLevelName(level) << "; dropped";
        return;
      }
      if (run->refresh && result.ok() && kind == ResponseKind::kValue) {
        run->refresh(*run->op, result.value(), level);
      }
      run->sink(level, std::move(result), kind);
    });
    step.fetch(*run->op, std::move(emit));
  }
}

}  // namespace

InvocationPipeline::InvocationPipeline(Binding* binding, EventLoop* loop, ClientStats* stats)
    : binding_(binding), loop_(loop), stats_(stats),
      supported_levels_(binding->SupportedLevels()),
      binding_name_(binding->Name()),
      scheduler_(loop, [this](BatchScheduler::Cohort cohort) {
        OnCohortFlush(std::move(cohort));
      }) {
  assert(binding_ != nullptr);
  assert(stats_ != nullptr);
}

Correctable<OpResult> InvocationPipeline::Submit(Operation op, LevelVec levels) {
  if (!ValidLevelSelection(levels, supported_levels_)) {
    stats_->errors++;
    return Correctable<OpResult>::Failed(Status::InvalidArgument(
        "invalid consistency level selection " + LevelsToString(levels) + " for binding " +
        binding_->Name()));
  }

  // Stamp writes with the client's monotone clock (loop-less clients keep the legacy
  // coordinator-stamped behaviour): program order per writer survives batching windows
  // and live ring changes because the stamp, not the apply instant, decides LWW.
  if (op.type == OpType::kPut && loop_ != nullptr) {
    last_write_stamp_ = std::max<SimTime>(loop_->Now(), last_write_stamp_ + 1);
    op.timestamp = last_write_stamp_;
  }

  auto inv = PooledMakeShared<Invocation>(loop_, levels.back());
  auto correctable = inv->source.GetCorrectable();
  // Arm the timeout before launching so even a binding that never emits is covered.
  ArmTimeout(inv);

  // Cross-tick batching: with a window open, reads and writes queue per coalescing
  // scope — writes use the very same scope key as reads (Binding::CoalescingScope), so
  // a routed write can never batch across shard boundaries — and flush as one batched
  // store submission. Bindings that cannot serve multiget/multiput keep the legacy path.
  if (scheduler_.enabled()) {
    const bool batch_read = op.type == OpType::kGet && binding_->SupportsBatchedReads();
    const bool batch_write = op.type == OpType::kPut && binding_->SupportsBatchedWrites();
    if (batch_read || batch_write) {
      std::string scope = binding_->CoalescingScope(op);
      scheduler_.Admit(batch_read, std::move(scope), levels, std::move(op), inv);
      return correctable;
    }
  }

  const bool coalescable = loop_ != nullptr && op.type == OpType::kGet;
  if (coalescable) {
    // Joinability ends with the tick: once virtual time advances, every remaining entry
    // (e.g. a batch whose final response was lost) is dead weight — drop them all so the
    // map never outgrows one tick's worth of distinct reads. In-flight batches keep
    // living through the shared_ptrs captured in their emitters.
    if (loop_->Now() != batch_tick_) {
      batch_tick_ = loop_->Now();
      open_batches_.clear();
    }
    BatchKeyInto(scratch_key_, *binding_, op, levels);
    auto it = open_batches_.find(scratch_key_);
    if (it != open_batches_.end()) {
      const std::shared_ptr<Batch>& batch = it->second;
      if (!batch->done) {
        // Piggyback on the in-flight round-trip: no new store request is issued.
        stats_->coalesced_reads++;
        if (batch->waiters.size() == 1) {
          stats_->batched_invocations++;
        }
        batch->waiters.push_back(inv);
        // Catch up on anything the batch already surfaced this tick (synchronous
        // levels, e.g. the client cache, resolve during the leader's submission).
        for (const Batch::Emission& e : batch->history) {
          Deliver(*inv, e.level, e.result, e.kind);
        }
        return correctable;
      }
      open_batches_.erase(it);
    }
  }

  auto batch = PooledMakeShared<Batch>();
  batch->op = std::move(op);
  batch->level_set = LevelSet(std::move(levels));
  batch->coalescable = coalescable;
  batch->waiters.push_back(std::move(inv));
  if (coalescable) {
    batch->map_key = scratch_key_;  // short keys stay in SSO storage
    open_batches_[batch->map_key] = batch;
  }
  Launch(batch);
  return correctable;
}

void InvocationPipeline::ArmTimeout(const std::shared_ptr<Invocation>& inv) {
  if (timeout_ <= 0 || loop_ == nullptr) {
    return;
  }
  ClientStats* stats = stats_;
  inv->timer = loop_->Schedule(timeout_, [stats, inv]() {
    if (inv->source.Fail(Status::Timeout("no final view within timeout"))) {
      stats->timeouts++;
    }
  });
}

void InvocationPipeline::CancelTimeout(Invocation& inv) {
  if (inv.timer != 0 && loop_ != nullptr) {
    loop_->Cancel(inv.timer);
    inv.timer = 0;
  }
}

void InvocationPipeline::RunPlan(std::shared_ptr<const Operation> op, const LevelSet& level_set,
                                 LevelEmitter::Sink sink) {
  InvocationPlan plan = binding_->PlanInvocation(*op, level_set);
  const ConsistencyLevel strongest = level_set.strongest();
  if (!plan.reject.ok()) {
    sink(strongest, std::move(plan.reject), ResponseKind::kValue);
    return;
  }
  if (!PlanCoversFinal(plan, strongest)) {
    sink(strongest,
         Status::Internal("plan from binding '" + binding_->Name() +
                          "' does not cover the strongest requested level"),
         ResponseKind::kValue);
    return;
  }
  auto run = PooledMakeShared<PlanRun>();
  run->op = std::move(op);
  run->refresh = std::move(plan.refresh);
  run->binding_name = &binding_name_;
  run->sink = std::move(sink);
  RunPlanSteps(std::move(run), plan.steps);
}

void InvocationPipeline::Launch(const std::shared_ptr<Batch>& batch) {
  // Aliasing constructor: the run shares the batch's operation instead of copying it.
  RunPlan(std::shared_ptr<const Operation>(batch, &batch->op), batch->level_set,
          [this, batch](ConsistencyLevel level, StatusOr<OpResult>&& result,
                        ResponseKind kind) {
            OnEmission(batch, level, std::move(result), kind);
          });
}

void InvocationPipeline::OnEmission(const std::shared_ptr<Batch>& batch,
                                    ConsistencyLevel level, StatusOr<OpResult> result,
                                    ResponseKind kind) {
  if (!batch->level_set.Contains(level)) {
    ICG_DEBUG << "binding " << binding_->Name() << " emitted unrequested level "
              << ConsistencyLevelName(level) << "; dropped";
    return;
  }
  if (level == batch->level_set.strongest()) {
    batch->done = true;
    if (!batch->map_key.empty()) {
      auto it = open_batches_.find(batch->map_key);
      if (it != open_batches_.end() && it->second == batch) {
        open_batches_.erase(it);
      }
      batch->map_key.clear();
    }
  }
  // Record for same-tick late joiners. The final emission itself is never recorded:
  // setting `done` above just made joining impossible, so nobody could replay it — and
  // streaming tails (e.g. blockchain confirmations) stop accumulating the same way.
  if (batch->coalescable && !batch->done) {
    batch->history.push_back(Batch::Emission{level, result, kind});
  }
  // Deliver to the waiters present when this response arrived; the last one is handed
  // the result itself (no copy).
  const size_t present = batch->waiters.size();
  if (!batch->coalescable) {
    // Only coalescable batches are joinable, so this waiter list cannot grow (or
    // reallocate) under the loop: deliver by reference, skipping the shared_ptr copies.
    for (size_t i = 0; i < present; ++i) {
      if (i + 1 == present) {
        Deliver(*batch->waiters[i], level, std::move(result), kind);
      } else {
        Deliver(*batch->waiters[i], level, result, kind);
      }
    }
    return;
  }
  // A callback may submit a new same-tick read that joins this batch mid-loop; such
  // joiners already received this emission through the history replay, so the bound must
  // not move. Copy the shared_ptr per iteration: push_back may reallocate under us.
  for (size_t i = 0; i < present; ++i) {
    std::shared_ptr<Invocation> inv = batch->waiters[i];
    if (i + 1 == present) {
      Deliver(*inv, level, std::move(result), kind);
    } else {
      Deliver(*inv, level, result, kind);
    }
  }
}

void InvocationPipeline::OnCohortFlush(BatchScheduler::Cohort cohort) {
  // Re-consult the binding's scope per queued operation: a ring rebalance may have moved
  // keys while the window was open. Operations whose scope changed flush in their own
  // re-routed group, so a batched submission never spans scopes.
  std::map<std::string, std::vector<BatchScheduler::Pending>> groups;
  std::vector<std::string> order;  // first-arrival order, for deterministic launches
  for (auto& pending : cohort.ops) {
    std::string scope = binding_->CoalescingScope(pending.op);
    auto [it, inserted] = groups.emplace(std::move(scope), std::vector<BatchScheduler::Pending>());
    if (inserted) {
      order.push_back(it->first);
    }
    it->second.push_back(std::move(pending));
  }
  for (const std::string& scope : order) {
    if (cohort.is_read) {
      FlushReadGroup(cohort.levels, std::move(groups[scope]));
    } else {
      FlushWriteGroup(cohort.levels, std::move(groups[scope]));
    }
  }
}

void InvocationPipeline::FlushReadGroup(const LevelVec& levels,
                                        std::vector<BatchScheduler::Pending> ops) {
  const size_t waiters = ops.size();
  std::vector<std::string> keys;  // distinct, in arrival order
  std::map<std::string, size_t> key_index;
  std::vector<std::vector<std::shared_ptr<Invocation>>> key_waiters;
  for (auto& pending : ops) {
    auto inv = std::static_pointer_cast<Invocation>(std::move(pending.waiter));
    auto [it, inserted] = key_index.emplace(pending.op.key, keys.size());
    if (inserted) {
      keys.push_back(pending.op.key);
      key_waiters.emplace_back();
    }
    key_waiters[it->second].push_back(std::move(inv));
  }
  if (waiters > 1) {
    stats_->cross_tick_batches++;
    stats_->batched_invocations++;
    stats_->coalesced_reads += static_cast<int64_t>(waiters) - 1;
  }

  if (keys.size() == 1) {
    // One distinct key: the flush is an ordinary (possibly multi-waiter) read batch; the
    // existing launch/delivery machinery applies unchanged.
    auto batch = PooledMakeShared<Batch>();
    batch->op = Operation::Get(keys.front());
    batch->level_set = LevelSet(levels);
    for (auto& inv : key_waiters.front()) {
      batch->waiters.push_back(std::move(inv));
    }
    Launch(batch);
    return;
  }

  auto fanout = PooledMakeShared<Fanout>();
  fanout->op = Operation::MultiGet(keys);
  fanout->level_set = LevelSet(levels);
  fanout->is_read = true;
  fanout->keys = std::move(keys);
  fanout->key_waiters = std::move(key_waiters);
  RunPlan(std::shared_ptr<const Operation>(fanout, &fanout->op), fanout->level_set,
          [this, fanout](ConsistencyLevel level, StatusOr<OpResult>&& result,
                         ResponseKind kind) {
            OnFanoutEmission(fanout, level, std::move(result), kind);
          });
}

void InvocationPipeline::FlushWriteGroup(const LevelVec& levels,
                                         std::vector<BatchScheduler::Pending> ops) {
  if (ops.size() == 1) {
    // A lone queued write launches exactly like an unbatched one (just window-delayed).
    auto batch = PooledMakeShared<Batch>();
    batch->op = std::move(ops.front().op);
    batch->level_set = LevelSet(levels);
    batch->waiters.push_back(std::static_pointer_cast<Invocation>(std::move(ops.front().waiter)));
    Launch(batch);
    return;
  }
  stats_->cross_tick_batches++;
  stats_->batched_writes += static_cast<int64_t>(ops.size());

  // Arrival order is program order: the multiput applies entries in vector order, so two
  // queued writes to the same key land in submission order.
  auto fanout = PooledMakeShared<Fanout>();
  std::vector<std::string> keys;
  std::vector<std::string> values;
  std::vector<SimTime> timestamps;
  keys.reserve(ops.size());
  values.reserve(ops.size());
  timestamps.reserve(ops.size());
  for (auto& pending : ops) {
    keys.push_back(std::move(pending.op.key));
    values.push_back(std::move(pending.op.value));
    timestamps.push_back(pending.op.timestamp);  // submission-time stamps ride along
    fanout->write_waiters.push_back(
        std::static_pointer_cast<Invocation>(std::move(pending.waiter)));
  }
  fanout->op = Operation::MultiPut(std::move(keys), std::move(values));
  fanout->op.timestamps = std::move(timestamps);
  fanout->level_set = LevelSet(levels);
  fanout->is_read = false;
  RunPlan(std::shared_ptr<const Operation>(fanout, &fanout->op), fanout->level_set,
          [this, fanout](ConsistencyLevel level, StatusOr<OpResult>&& result,
                         ResponseKind kind) {
            OnFanoutEmission(fanout, level, std::move(result), kind);
          });
}

void InvocationPipeline::OnFanoutEmission(const std::shared_ptr<Fanout>& fanout,
                                          ConsistencyLevel level, StatusOr<OpResult> result,
                                          ResponseKind kind) {
  if (!fanout->level_set.Contains(level)) {
    ICG_DEBUG << "binding " << binding_->Name() << " emitted unrequested level "
              << ConsistencyLevelName(level) << " on a batched submission; dropped";
    return;
  }

  if (!fanout->is_read) {
    // One ack (or error) covers the whole batched write: every queued waiter sees it —
    // under its own entry's acknowledged version when the store reported them
    // (write_waiters is parallel to the multiput's entries).
    const bool per_entry_versions =
        result.ok() && result.value().key_versions.size() == fanout->write_waiters.size();
    for (size_t i = 0; i < fanout->write_waiters.size(); ++i) {
      if (per_entry_versions) {
        OpResult ack = result.value();
        ack.version = ack.key_versions[i];
        ack.key_found.clear();
        ack.key_versions.clear();
        ack.seqno = -1;
        Deliver(*fanout->write_waiters[i], level, StatusOr<OpResult>(std::move(ack)), kind);
      } else {
        Deliver(*fanout->write_waiters[i], level, result, kind);
      }
    }
    return;
  }

  if (!result.ok()) {
    // A failed batched flush fans the error to exactly the waiters in this batch; the
    // per-waiter delivery decides whether it is tolerable (preliminary) or terminal.
    for (const auto& waiters : fanout->key_waiters) {
      for (const std::shared_ptr<Invocation>& inv : waiters) {
        Deliver(*inv, level, result, kind);
      }
    }
    return;
  }

  if (kind == ResponseKind::kConfirmation) {
    // §5.2 reconstruction per waiter: the store confirmed the whole multiget, so each
    // waiter's final equals the preliminary slice it already holds.
    const StatusOr<OpResult> confirm{OpResult{}};
    for (const auto& waiters : fanout->key_waiters) {
      for (const std::shared_ptr<Invocation>& inv : waiters) {
        Deliver(*inv, level, confirm, ResponseKind::kConfirmation);
      }
    }
    return;
  }

  // Fan the joined multiget payload back out: each waiter sees only its own key's slice,
  // as if it had issued a lone read.
  const OpResult& joined = result.value();
  const std::vector<std::string> parts = SplitMultiValue(joined.value, fanout->keys.size());
  const bool per_key_found = joined.key_found.size() == fanout->keys.size();
  const bool per_key_versions = joined.key_versions.size() == fanout->keys.size();
  for (size_t i = 0; i < fanout->keys.size(); ++i) {
    OpResult slice;
    // Prefer the responder's per-key detail; without it, fall back to the joined fields
    // (`found` of a joined result ANDs across keys, so a key counts as found if the
    // whole batch was or its slice carries a payload — a found-but-empty value is then
    // indistinguishable from a miss, which is why responders should fill the detail).
    slice.found = per_key_found ? static_cast<bool>(joined.key_found[i])
                                : (joined.found || !parts[i].empty());
    slice.value = parts[i];
    slice.version = per_key_versions ? joined.key_versions[i] : joined.version;
    const StatusOr<OpResult> sliced{std::move(slice)};
    for (const std::shared_ptr<Invocation>& inv : fanout->key_waiters[i]) {
      Deliver(*inv, level, sliced, ResponseKind::kValue);
    }
  }
}

void InvocationPipeline::Deliver(Invocation& inv, ConsistencyLevel level,
                                 StatusOr<OpResult> result, ResponseKind kind) {
  const bool is_final_level = (level == inv.strongest);
  if (!result.ok()) {
    // Errors at preliminary levels are tolerated: a stronger view may still arrive.
    if (!is_final_level) {
      ICG_DEBUG << "preliminary level " << ConsistencyLevelName(level)
                << " failed: " << result.status().ToString();
      return;
    }
    if (inv.source.state() != CorrectableState::kUpdating) {
      return;
    }
    stats_->errors++;
    if (result.status().code() == StatusCode::kOverloaded) {
      stats_->overload_sheds++;  // backpressure shed: retryable by contract
    }
    CancelTimeout(inv);
    inv.source.Fail(result.status());
    return;
  }

  if (!is_final_level) {
    if (inv.source.Update(std::move(result).value(), level)) {
      stats_->views_delivered++;
    } else {
      stats_->stale_views_dropped++;
    }
    return;
  }

  if (inv.source.state() != CorrectableState::kUpdating) {
    return;  // duplicate finals (streaming levels after close) are ignored
  }
  CancelTimeout(inv);
  if (kind == ResponseKind::kConfirmation) {
    stats_->confirmations++;
    if (inv.source.CloseConfirmed(level)) {
      stats_->views_delivered++;
    }
    return;
  }
  // A full final: if a preliminary was delivered and differs, record the divergence
  // (this is the client-observable misspeculation signal of Figure 7).
  if (inv.source.HasView() && !(inv.source.LatestView().value == result.value())) {
    stats_->divergences++;
  }
  if (inv.source.Close(std::move(result).value(), level)) {
    stats_->views_delivered++;
  }
}

// Binding::SubmitOperation lives here rather than in a binding translation unit so the
// raw fan-out path and the pipeline share RunPlanSteps, the one definition of "run a
// plan" (rejection, coverage validation, declaration enforcement, refresh write-through).
void Binding::SubmitOperation(const Operation& op, const LevelVec& levels,
                              ResponseCallback callback) {
  LevelSet set(levels);
  InvocationPlan plan = PlanInvocation(op, set);
  if (!plan.reject.ok()) {
    callback(std::move(plan.reject), set.strongest(), ResponseKind::kValue);
    return;
  }
  if (!PlanCoversFinal(plan, set.strongest())) {
    callback(Status::Internal("plan from binding '" + Name() +
                              "' does not cover the strongest requested level"),
             set.strongest(), ResponseKind::kValue);
    return;
  }
  auto run = PooledMakeShared<PlanRun>();
  run->op = std::make_shared<const Operation>(op);
  run->refresh = std::move(plan.refresh);
  run->owned_name = Name();
  run->binding_name = &run->owned_name;
  run->sink = [callback](ConsistencyLevel level, StatusOr<OpResult>&& result,
                         ResponseKind kind) {
    callback(std::move(result), level, kind);
  };
  RunPlanSteps(std::move(run), plan.steps);
}

}  // namespace icg
