#include "src/correctables/client.h"

#include <cassert>
#include <utility>

#include "src/common/logging.h"

namespace icg {

CorrectableClient::CorrectableClient(std::shared_ptr<Binding> binding, EventLoop* loop)
    : binding_(std::move(binding)), loop_(loop) {
  assert(binding_ != nullptr);
  assert(!binding_->SupportedLevels().empty());
}

Correctable<OpResult> CorrectableClient::InvokeWeak(Operation op) {
  stats_.weak_invocations++;
  return Submit(std::move(op), {binding_->SupportedLevels().front()});
}

Correctable<OpResult> CorrectableClient::InvokeStrong(Operation op) {
  stats_.strong_invocations++;
  return Submit(std::move(op), {binding_->SupportedLevels().back()});
}

Correctable<OpResult> CorrectableClient::Invoke(Operation op) {
  stats_.icg_invocations++;
  return Submit(std::move(op), binding_->SupportedLevels());
}

Correctable<OpResult> CorrectableClient::Invoke(Operation op,
                                                std::vector<ConsistencyLevel> levels) {
  stats_.icg_invocations++;
  return Submit(std::move(op), std::move(levels));
}

Correctable<OpResult> CorrectableClient::Submit(Operation op,
                                                std::vector<ConsistencyLevel> levels) {
  stats_.invocations++;
  if (!ValidLevelSelection(levels, binding_->SupportedLevels())) {
    stats_.errors++;
    return Correctable<OpResult>::Failed(Status::InvalidArgument(
        "invalid consistency level selection " + LevelsToString(levels) + " for binding " +
        binding_->Name()));
  }

  CorrectableSource<OpResult> source(loop_);
  auto correctable = source.GetCorrectable();
  const ConsistencyLevel strongest = levels.back();

  // Arm the timeout before submitting so even a binding that never calls back is covered.
  TimerId timer = 0;
  if (timeout_ > 0 && loop_ != nullptr) {
    timer = loop_->Schedule(timeout_, [this, source]() mutable {
      if (source.Fail(Status::Timeout("no final view within timeout"))) {
        stats_.timeouts++;
      }
    });
  }

  binding_->SubmitOperation(
      op, levels,
      [this, source, strongest, timer](StatusOr<OpResult> result, ConsistencyLevel level,
                                       ResponseKind kind) mutable {
        const bool is_final_level = (level == strongest);
        if (!result.ok()) {
          // Errors at preliminary levels are tolerated: a stronger view may still arrive.
          if (is_final_level) {
            stats_.errors++;
            if (timer != 0 && loop_ != nullptr) {
              loop_->Cancel(timer);
            }
            source.Fail(result.status());
          } else {
            ICG_DEBUG << "preliminary level " << ConsistencyLevelName(level)
                      << " failed: " << result.status().ToString();
          }
          return;
        }

        if (!is_final_level) {
          if (source.Update(std::move(result).value(), level)) {
            stats_.views_delivered++;
          } else {
            stats_.stale_views_dropped++;
          }
          return;
        }

        if (timer != 0 && loop_ != nullptr) {
          loop_->Cancel(timer);
        }
        if (kind == ResponseKind::kConfirmation) {
          stats_.confirmations++;
          if (source.CloseConfirmed(level)) {
            stats_.views_delivered++;
          }
          return;
        }
        // A full final: if a preliminary was delivered and differs, record the divergence
        // (this is the client-observable misspeculation signal of Figure 7).
        auto handle = source.GetCorrectable();
        if (handle.HasView() && !(handle.LatestView().value == result.value())) {
          stats_.divergences++;
        }
        if (source.Close(std::move(result).value(), level)) {
          stats_.views_delivered++;
        }
      });
  return correctable;
}

}  // namespace icg
