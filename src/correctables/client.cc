#include "src/correctables/client.h"

#include <cassert>
#include <utility>

namespace icg {

CorrectableClient::CorrectableClient(std::shared_ptr<Binding> binding, EventLoop* loop)
    : binding_(std::move(binding)), loop_(loop), pipeline_(binding_.get(), loop, &stats_) {
  assert(binding_ != nullptr);
  assert(!binding_->SupportedLevels().empty());
}

Correctable<OpResult> CorrectableClient::InvokeWeak(Operation op) {
  stats_.weak_invocations++;
  return Submit(std::move(op), {binding_->SupportedLevels().front()});
}

Correctable<OpResult> CorrectableClient::InvokeStrong(Operation op) {
  stats_.strong_invocations++;
  return Submit(std::move(op), {binding_->SupportedLevels().back()});
}

Correctable<OpResult> CorrectableClient::Invoke(Operation op) {
  stats_.icg_invocations++;
  return Submit(std::move(op), binding_->SupportedLevels());
}

Correctable<OpResult> CorrectableClient::Invoke(Operation op,
                                                std::vector<ConsistencyLevel> levels) {
  stats_.icg_invocations++;
  return Submit(std::move(op), std::move(levels));
}

Correctable<OpResult> CorrectableClient::Submit(Operation op,
                                                std::vector<ConsistencyLevel> levels) {
  stats_.invocations++;
  return pipeline_.Submit(std::move(op), std::move(levels));
}

}  // namespace icg
