#include "src/correctables/client.h"

#include <cassert>
#include <utility>

namespace icg {

CorrectableClient::CorrectableClient(std::shared_ptr<Binding> binding, EventLoop* loop)
    : binding_(std::move(binding)), loop_(loop),
      supported_levels_(binding_->SupportedLevels()),
      pipeline_(binding_.get(), loop, &stats_) {
  assert(binding_ != nullptr);
  assert(!supported_levels_.empty());
}

Correctable<OpResult> CorrectableClient::InvokeWeak(Operation op) {
  stats_.weak_invocations++;
  return Submit(std::move(op), LevelVec{supported_levels_.front()});
}

Correctable<OpResult> CorrectableClient::InvokeStrong(Operation op) {
  stats_.strong_invocations++;
  return Submit(std::move(op), LevelVec{supported_levels_.back()});
}

Correctable<OpResult> CorrectableClient::Invoke(Operation op) {
  stats_.icg_invocations++;
  return Submit(std::move(op), LevelVec(supported_levels_.begin(), supported_levels_.end()));
}

Correctable<OpResult> CorrectableClient::Invoke(Operation op, LevelVec levels) {
  stats_.icg_invocations++;
  return Submit(std::move(op), std::move(levels));
}

Correctable<OpResult> CorrectableClient::Submit(Operation op, LevelVec levels) {
  stats_.invocations++;
  return pipeline_.Submit(std::move(op), std::move(levels));
}

}  // namespace icg
