// BatchScheduler: the cross-tick batching engine behind the InvocationPipeline.
//
// Same-tick read coalescing (PR 1) only amortizes round-trips for operations submitted
// at the same instant of virtual time; under sustained load every tick still pays one
// store round-trip per key, and writes always go out alone. The scheduler generalizes
// coalescing into a configurable *window*: operations for the same coalescing scope and
// level set accumulate for up to `batch_window` of simulated time, then flush as one
// cohort — reads as a single multiget round-trip serving every waiter, writes as a
// single in-order multiput store submission.
//
// Division of labour: the scheduler owns *when* and *with whom* an operation batches
// (cohort grouping, window timers, size caps). It never interprets waiters — they ride
// along as opaque handles — and it never talks to a binding. The pipeline owns *what a
// flush means*: it regroups a flushed cohort by the binding's current CoalescingScope
// (a rebalance may have moved keys while the window was open), launches the batched
// store submission, and fans responses back out per waiter. Per-waiter timers are armed
// at submission, so a waiter whose deadline expires inside a pending cohort fails alone
// while the rest of the cohort proceeds.
#ifndef ICG_CORRECTABLES_BATCH_SCHEDULER_H_
#define ICG_CORRECTABLES_BATCH_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/correctables/consistency.h"
#include "src/correctables/operation.h"
#include "src/sim/event_loop.h"

namespace icg {

struct BatchConfig {
  // How long operations accumulate before their cohort flushes. 0 disables cross-tick
  // batching entirely: the pipeline keeps the legacy behaviour (same-tick read
  // coalescing, one store submission per write) bit-for-bit.
  SimDuration batch_window = 0;
  // A cohort reaching this many operations flushes immediately instead of waiting out
  // the window (bounds store request sizes and worst-case queueing).
  size_t max_batch_ops = 128;
};

class BatchScheduler {
 public:
  // One admitted operation waiting in a cohort. `waiter` is the pipeline's per-invocation
  // delivery state, opaque to the scheduler.
  struct Pending {
    Operation op;
    std::shared_ptr<void> waiter;
  };

  // A flushed batch: every operation admitted for one (kind, scope, level-set) grouping,
  // in arrival order — which is what makes per-key program order of batched writes fall
  // out naturally.
  struct Cohort {
    bool is_read = false;
    std::string scope;
    LevelVec levels;
    std::vector<Pending> ops;
  };

  using FlushFn = std::function<void(Cohort cohort)>;

  // `loop` may be null (loop-less unit-test clients): enabled() is then always false.
  BatchScheduler(EventLoop* loop, FlushFn flush);
  // Cancels every pending flush timer: a timer firing after the owning pipeline is gone
  // would touch freed state.
  ~BatchScheduler();

  // Installs `config` for all future admissions AND re-arms every pending cohort
  // against it: each open cohort's deadline is re-derived from its original open time
  // (opened_at + new window), so no waiter is ever delayed by more than one *new*
  // batch_window. A cohort whose new deadline has already passed — including any
  // shrink-to-0 — flushes synchronously, and a cohort at or over the new max_batch_ops
  // flushes too. Old timers are cancelled before new ones arm and Flush() is
  // idempotent, so waiters are neither dropped nor double-flushed by reconfiguration.
  void SetConfig(const BatchConfig& config);
  const BatchConfig& config() const { return config_; }

  // Cross-tick batching is active only with a loop to schedule flush timers on and a
  // non-zero window.
  bool enabled() const { return loop_ != nullptr && config_.batch_window > 0; }

  // Queues `op` into the pending cohort for (is_read, scope, levels), opening the cohort
  // (and arming its flush timer) if none is pending. May flush synchronously when the
  // cohort hits max_batch_ops. Requires enabled().
  void Admit(bool is_read, std::string scope, const LevelVec& levels, Operation op,
             std::shared_ptr<void> waiter);

  // Flushes every pending cohort now (drain before teardown, tests, explicit barriers).
  void FlushAll();

  size_t pending_ops() const;
  size_t pending_cohorts() const { return pending_.size(); }

 private:
  struct Open {
    Cohort cohort;
    TimerId timer = 0;
    SimTime opened_at = 0;  // first admission; deadlines re-derive from this on SetConfig
  };

  void Flush(const std::string& key);

  EventLoop* loop_;
  FlushFn flush_;
  BatchConfig config_;
  std::map<std::string, Open> pending_;  // keyed by kind + scope + level-set
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_BATCH_SCHEDULER_H_
