#include "src/correctables/binding_router.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <utility>

namespace icg {
namespace {

// One shard's slice of a cross-shard multiget: the sub-keys it owns and their positions
// in the original key list (for reassembling the merged payload in request order).
struct ShardSlice {
  size_t shard = 0;
  std::vector<std::string> keys;
  std::vector<size_t> positions;
};

std::vector<ShardSlice> SliceByShard(const BindingRouter& router,
                                     const std::vector<std::string>& keys) {
  std::vector<ShardSlice> slices;
  std::map<size_t, size_t> slice_of_shard;  // shard index -> slices_ position
  for (size_t pos = 0; pos < keys.size(); ++pos) {
    const size_t shard = router.ShardIndexFor(keys[pos]);
    auto [it, inserted] = slice_of_shard.emplace(shard, slices.size());
    if (inserted) {
      slices.push_back(ShardSlice{shard, {}, {}});
    }
    slices[it->second].keys.push_back(keys[pos]);
    slices[it->second].positions.push_back(pos);
  }
  return slices;
}

// Per-level merge state of one scatter-gather: every shard's response at that level,
// completed (and emitted) once no slot is outstanding.
struct LevelGather {
  std::vector<std::optional<StatusOr<OpResult>>> slots;  // per slice
  std::vector<bool> confirmed;
  size_t outstanding = 0;
};

// Shared state of one cross-shard multiget, kept alive by the per-shard callbacks.
struct GatherState {
  std::vector<ShardSlice> slices;
  size_t total_keys = 0;
  LevelEmitter emit;
  std::map<ConsistencyLevel, LevelGather> levels;
  // Latest full value per slice, for reconstructing a shard's confirmation final (§5.2:
  // a confirmation promises the final equals the preliminary this shard already sent).
  std::vector<std::optional<OpResult>> latest_value;

  GatherState(std::vector<ShardSlice> s, size_t keys, const LevelVec& lvls,
              LevelEmitter e)
      : slices(std::move(s)), total_keys(keys), emit(std::move(e)),
        latest_value(slices.size()) {
    for (const ConsistencyLevel level : lvls) {
      LevelGather& gather = levels[level];
      gather.slots.resize(slices.size());
      gather.confirmed.resize(slices.size(), false);
      gather.outstanding = slices.size();
    }
  }
};

// Merges the completed level and reports it through the plan's emitter.
void EmitMergedLevel(GatherState& state, ConsistencyLevel level, const LevelGather& gather) {
  bool all_confirmed = true;
  for (size_t i = 0; i < state.slices.size(); ++i) {
    const StatusOr<OpResult>& slot = *gather.slots[i];
    if (!slot.ok()) {
      // Any failed shard fails the merged level; the pipeline decides whether that is
      // tolerable (preliminary) or terminal (final).
      state.emit(level, slot.status());
      return;
    }
    if (!gather.confirmed[i]) {
      all_confirmed = false;
    }
  }
  if (all_confirmed) {
    // Every shard confirmed its preliminary, so the merged final is the merged
    // preliminary too — surface it as a confirmation and let the pipeline close the
    // Correctable with the value it already delivered.
    state.emit(level, OpResult{}, ResponseKind::kConfirmation);
    return;
  }

  std::vector<std::string> parts(state.total_keys);
  OpResult merged;
  merged.found = true;
  merged.seqno = 0;
  merged.key_found.assign(state.total_keys, false);
  merged.key_versions.assign(state.total_keys, Version{});
  for (size_t i = 0; i < state.slices.size(); ++i) {
    const ShardSlice& slice = state.slices[i];
    // A confirmed shard did not resend its payload; its final is its recorded
    // preliminary.
    const OpResult& result =
        gather.confirmed[i] ? *state.latest_value[i] : gather.slots[i]->value();
    const std::vector<std::string> shard_parts = SplitMultiValue(result.value, slice.keys.size());
    const bool detail = result.key_found.size() == slice.keys.size();
    const bool versions = result.key_versions.size() == slice.keys.size();
    for (size_t k = 0; k < slice.keys.size(); ++k) {
      parts[slice.positions[k]] = shard_parts[k];
      merged.key_found[slice.positions[k]] =
          detail ? static_cast<bool>(result.key_found[k])
                 : (result.found || !shard_parts[k].empty());
      merged.key_versions[slice.positions[k]] =
          versions ? result.key_versions[k] : result.version;
    }
    merged.found = merged.found && result.found;
    merged.seqno += result.seqno > 0 ? result.seqno : 0;
    if (merged.version < result.version) {
      merged.version = result.version;
    }
  }
  merged.value = JoinMultiValue(parts);
  state.emit(level, std::move(merged));
}

void OnShardResponse(const std::shared_ptr<GatherState>& state, size_t slice_index,
                     StatusOr<OpResult> result, ConsistencyLevel level, ResponseKind kind) {
  auto it = state->levels.find(level);
  if (it == state->levels.end()) {
    return;  // level not part of this request; child declaration checks already warned
  }
  LevelGather& gather = it->second;
  if (gather.slots[slice_index].has_value()) {
    return;  // duplicate emission at this level (streaming shard); first one wins
  }
  if (kind == ResponseKind::kConfirmation && !state->latest_value[slice_index].has_value()) {
    // A confirmation with no recorded preliminary cannot be reconstructed; treat as a
    // shard protocol error rather than fabricating a value.
    result = Status::Internal("shard confirmation arrived before any preliminary value");
    kind = ResponseKind::kValue;
  }
  if (result.ok() && kind == ResponseKind::kValue) {
    state->latest_value[slice_index] = result.value();
  }
  gather.confirmed[slice_index] = (kind == ResponseKind::kConfirmation);
  gather.slots[slice_index] = std::move(result);
  gather.outstanding--;
  if (gather.outstanding == 0) {
    EmitMergedLevel(*state, level, gather);
  }
}

}  // namespace

BindingRouter::BindingRouter(std::vector<std::shared_ptr<Binding>> shards, ShardFn shard_of,
                             uint64_t epoch)
    : shard_of_(std::move(shard_of)), epoch_(epoch) {
  assert(!shards.empty());
  assert(shard_of_ != nullptr);
#ifndef NDEBUG
  const std::vector<ConsistencyLevel> levels = shards.front()->SupportedLevels();
  for (const auto& shard : shards) {
    assert(shard->SupportedLevels() == levels &&
           "router shards must support identical level vectors");
  }
#endif
  shards_.reserve(shards.size());
  for (auto& binding : shards) {
    shards_.push_back(Shard{std::move(binding), std::make_shared<ShardCounters>()});
  }
}

Status BindingRouter::ApplyRing(uint64_t epoch, std::vector<std::shared_ptr<Binding>> shards,
                                ShardFn shard_of) {
  if (epoch <= epoch_) {
    return Status::Conflict("stale ring installation: epoch " + std::to_string(epoch) +
                            " <= current " + std::to_string(epoch_));
  }
  if (shards.empty()) {
    return Status::InvalidArgument("a ring needs at least one shard");
  }
  if (shard_of == nullptr) {
    return Status::InvalidArgument("a ring needs a shard function");
  }
#ifndef NDEBUG
  const std::vector<ConsistencyLevel> levels = shards.front()->SupportedLevels();
  for (const auto& shard : shards) {
    assert(shard->SupportedLevels() == levels &&
           "router shards must support identical level vectors");
  }
#endif
  std::vector<Shard> next;
  next.reserve(shards.size());
  for (auto& binding : shards) {
    // A shard surviving the membership change keeps its counter block: its in-flight
    // invocations must still drain against the slots they occupy.
    std::shared_ptr<ShardCounters> counters;
    for (Shard& old : shards_) {
      if (old.binding == binding) {
        counters = old.counters;
        break;
      }
    }
    if (counters == nullptr) {
      counters = std::make_shared<ShardCounters>();
    }
    counters->retired = false;  // a re-admitted binding rejoins with live accounting
    next.push_back(Shard{std::move(binding), std::move(counters)});
  }
  // Retire the blocks of departed shards atomically with the ring swap: a removed (or
  // crashed) coordinator's in-flight invocations may never emit a terminal, so the
  // outstanding count they'd pin is dropped here; any terminal that *does* arrive late
  // clamps at zero (ShardCounters::Release) instead of underflowing.
  for (Shard& old : shards_) {
    bool survives = false;
    for (const Shard& kept : next) {
      if (kept.counters == old.counters) {
        survives = true;
        break;
      }
    }
    if (!survives) {
      old.counters->retired = true;
      old.counters->outstanding = 0;
      // Fold the departing block's sheds into the cross-epoch aggregate and zero the
      // block, so snapshot totals stay monotone across ring changes without double
      // counting if the same block is ever re-admitted.
      retired_sheds_ += old.counters->sheds;
      old.counters->sheds = 0;
    }
  }
  shards_ = std::move(next);
  shard_of_ = std::move(shard_of);
  epoch_ = epoch;
  return Status::Ok();
}

std::string BindingRouter::Name() const {
  return "router(" + shards_.front().binding->Name() + " x" + std::to_string(shards_.size()) +
         ")";
}

std::vector<ConsistencyLevel> BindingRouter::SupportedLevels() const {
  return shards_.front().binding->SupportedLevels();
}

size_t BindingRouter::ShardIndexFor(const std::string& key) const {
  const size_t index = shard_of_(key);
  assert(index < shards_.size());
  return index < shards_.size() ? index : 0;
}

std::string BindingRouter::CoalescingScope(const Operation& op) const {
  // One scope per (ring epoch, shard), for reads and writes alike: a key's read and its
  // write must land on the same coordinator, so they share one scope string — and a
  // rebalance bumps the epoch, so cohorts formed under the old ring never absorb
  // post-change traffic (the pipeline re-consults this at flush time anyway).
  return std::to_string(epoch_) + ":" + std::to_string(ShardIndexFor(op.key));
}

bool BindingRouter::SupportsBatchedReads() const {
  // Every shard must be able to serve a flushed multiget: capabilities may legitimately
  // differ across heterogeneous backends, and advertising the front shard's alone would
  // queue batches a slower shard then rejects.
  for (const auto& shard : shards_) {
    if (!shard.binding->SupportsBatchedReads()) {
      return false;
    }
  }
  return true;
}

bool BindingRouter::SupportsBatchedWrites() const {
  for (const auto& shard : shards_) {
    if (!shard.binding->SupportsBatchedWrites()) {
      return false;
    }
  }
  return true;
}

RouterLoadSnapshot BindingRouter::LoadSnapshot() const {
  // Single-threaded with ApplyRing (both run on the client's loop), so reading epoch,
  // shard rows, and the retired aggregate in one call is consistent by construction:
  // every row belongs to the epoch reported.
  RouterLoadSnapshot snapshot;
  snapshot.epoch = epoch_;
  snapshot.retired_sheds = retired_sheds_;
  snapshot.shards.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    snapshot.shards.push_back(
        RouterLoadSnapshot::Shard{shard.counters->outstanding, shard.counters->sheds});
  }
  return snapshot;
}

int64_t BindingRouter::TotalSheds() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.counters->sheds;
  }
  return total;
}

bool BindingRouter::ShedIfOverloaded(size_t shard_index) {
  if (queue_limit_ == 0) {
    return false;
  }
  ShardCounters& counters = *shards_[shard_index].counters;
  if (counters.outstanding < queue_limit_) {
    return false;
  }
  counters.sheds++;
  return true;
}

void BindingRouter::TrackOutstanding(InvocationPlan& plan, ConsistencyLevel strongest,
                                     std::shared_ptr<ShardCounters> counters) {
  // The slot is claimed only when a step covering the strongest level was actually
  // wrapped: its first emission at that level — value, confirmation, or error — is the
  // invocation's terminal response and releases the slot. A plan covering no such step
  // is rejected by the pipeline before any step runs; claiming a slot for it up front
  // would leak the slot forever.
  auto done = std::make_shared<bool>(false);
  bool wrapped_any = false;
  for (FetchStep& step : plan.steps) {
    if (std::find(step.levels.begin(), step.levels.end(), strongest) == step.levels.end()) {
      continue;
    }
    wrapped_any = true;
    LevelFetcher inner = std::move(step.fetch);
    step.fetch = [inner = std::move(inner), strongest, counters, done](
                     const Operation& op, LevelEmitter emit) {
      LevelEmitter wrapped([emit = std::move(emit), strongest, counters, done](
                               ConsistencyLevel level, StatusOr<OpResult> result,
                               ResponseKind kind) {
        if (level == strongest && !*done) {
          *done = true;
          counters->Release();
        }
        emit(level, std::move(result), kind);
      });
      inner(op, std::move(wrapped));
    };
  }
  if (wrapped_any) {
    counters->outstanding++;
  }
}

InvocationPlan BindingRouter::PlanOnShard(size_t shard, const Operation& op,
                                          const LevelSet& levels, const char* what) {
  if (ShedIfOverloaded(shard)) {
    return InvocationPlan::Rejected(Status::Overloaded(
        "shard " + std::to_string(shard) + " is over its queue limit; retry " + what));
  }
  InvocationPlan plan = shards_[shard].binding->PlanInvocation(op, levels);
  if (plan.reject.ok()) {
    TrackOutstanding(plan, levels.strongest(), shards_[shard].counters);
  }
  return plan;
}

InvocationPlan BindingRouter::PlanInvocation(const Operation& op, const LevelSet& levels) {
  if (op.type == OpType::kMultiPut) {
    // A batched write flush must already be shard-local (the pipeline queues writes per
    // coalescing scope and regroups on flush). Enforce it: spanning shards would apply
    // half a batch on the wrong coordinator.
    if (op.keys.empty()) {
      return InvocationPlan::Rejected(
          Status::InvalidArgument("multiput through the router needs at least one key"));
    }
    const size_t shard = ShardIndexFor(op.keys.front());
    for (const std::string& key : op.keys) {
      if (ShardIndexFor(key) != shard) {
        return InvocationPlan::Rejected(Status::InvalidArgument(
            "batched writes must not cross shard boundaries (key '" + key +
            "' is not on shard " + std::to_string(shard) + ")"));
      }
    }
    return PlanOnShard(shard, op, levels, "the batch");
  }
  if (op.type != OpType::kMultiGet) {
    // Single-key operations (and queue ops, routed by queue name) delegate wholesale:
    // the owning shard's plan *is* the router's plan, so refresh hooks, span steps, and
    // confirmation behaviour pass through untouched.
    return PlanOnShard(ShardIndexFor(op.key), op, levels, "the invocation");
  }

  if (op.keys.empty()) {
    return InvocationPlan::Rejected(
        Status::InvalidArgument("multiget through the router needs at least one key"));
  }
  std::vector<ShardSlice> slices = SliceByShard(*this, op.keys);
  if (slices.size() == 1) {
    return PlanOnShard(slices.front().shard, op, levels, "the batch");
  }

  // Admission across every involved shard: one overloaded coordinator sheds the whole
  // scatter-gather (its merged final could not complete anyway).
  for (const ShardSlice& slice : slices) {
    if (ShedIfOverloaded(slice.shard)) {
      return InvocationPlan::Rejected(Status::Overloaded(
          "shard " + std::to_string(slice.shard) +
          " is over its queue limit; retry the multiget"));
    }
  }

  // Cross-shard scatter-gather: one span step covering every requested level. Each
  // shard runs its own sub-plan (via SubmitOperation, the raw fan-out path, which also
  // applies that shard's refresh hook); the gather emits the merged view for a level
  // once all shards reported at it, keeping the merged sequence monotone. The involved
  // shards' bindings and counters are captured by value, so a mid-flight ring change
  // neither frees a child nor mis-indexes the accounting.
  std::vector<std::shared_ptr<Binding>> involved;
  std::vector<std::shared_ptr<ShardCounters>> involved_counters;
  involved.reserve(slices.size());
  involved_counters.reserve(slices.size());
  for (const ShardSlice& slice : slices) {
    involved.push_back(shards_[slice.shard].binding);
    involved_counters.push_back(shards_[slice.shard].counters);
  }
  const ConsistencyLevel strongest = levels.strongest();

  InvocationPlan plan;
  const size_t total_keys = op.keys.size();
  plan.AddSpan(levels.levels(),
               [involved, involved_counters, strongest, slices = std::move(slices), total_keys,
                request_levels = levels.levels()](const Operation& read, LevelEmitter emit) {
                 (void)read;  // sub-operations are rebuilt from the captured slices
                 // Slots are claimed here, when the scatter actually launches, and
                 // released together on the merged strongest-level emission.
                 for (const auto& counters : involved_counters) {
                   counters->outstanding++;
                 }
                 auto done = std::make_shared<bool>(false);
                 LevelEmitter tracked(
                     [emit = std::move(emit), involved_counters, strongest, done](
                         ConsistencyLevel level, StatusOr<OpResult> result,
                         ResponseKind kind) {
                       if (level == strongest && !*done) {
                         *done = true;
                         for (const auto& counters : involved_counters) {
                           counters->Release();
                         }
                       }
                       emit(level, std::move(result), kind);
                     });
                 auto state = std::make_shared<GatherState>(slices, total_keys,
                                                            request_levels, std::move(tracked));
                 for (size_t i = 0; i < state->slices.size(); ++i) {
                   const ShardSlice& slice = state->slices[i];
                   involved[i]->SubmitOperation(
                       Operation::MultiGet(slice.keys), request_levels,
                       [state, i](StatusOr<OpResult> result, ConsistencyLevel level,
                                  ResponseKind kind) {
                         OnShardResponse(state, i, std::move(result), level, kind);
                       });
                 }
               });
  return plan;
}

}  // namespace icg
