// Consistency levels exposed by the Correctables API.
//
// The library is "a thin, consistency-based interface" (§3.2): applications name the
// guarantee they need, bindings map it onto protocol mechanics (quorum sizes, cache
// bypassing, leader reads). Levels form a total order from weakest to strongest; an
// invoke() delivers views at strictly non-decreasing levels.
#ifndef ICG_CORRECTABLES_CONSISTENCY_H_
#define ICG_CORRECTABLES_CONSISTENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/small_vec.h"

namespace icg {

enum class ConsistencyLevel : int32_t {
  // Client-local cache content: no freshness guarantee at all (news-reader binding).
  kCache = 0,
  // Eventual consistency: one replica's local state (Cassandra R=1, ZooKeeper local
  // simulation, primary-backup backup read).
  kWeak = 1,
  // Causal consistency (causal-store binding).
  kCausal = 2,
  // Strong consistency: linearizable result (quorum read, Zab commit, primary read).
  kStrong = 3,
};

const char* ConsistencyLevelName(ConsistencyLevel level);

// The hot-path level container: invocations select 1-4 levels (there are only four), so
// the selection travels inline through the whole pipeline without touching the heap.
using LevelVec = SmallVec<ConsistencyLevel, 4>;

constexpr bool IsStronger(ConsistencyLevel a, ConsistencyLevel b) {
  return static_cast<int32_t>(a) > static_cast<int32_t>(b);
}
constexpr bool IsStrongerOrEqual(ConsistencyLevel a, ConsistencyLevel b) {
  return static_cast<int32_t>(a) >= static_cast<int32_t>(b);
}

// True if `levels` is non-empty, strictly ascending, and every entry occurs in
// `supported` (which is itself ordered weakest to strongest).
bool ValidLevelSelection(const LevelVec& levels,
                         const std::vector<ConsistencyLevel>& supported);

std::string LevelsToString(const LevelVec& levels);

}  // namespace icg

#endif  // ICG_CORRECTABLES_CONSISTENCY_H_
