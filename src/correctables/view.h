// A View is one incremental result of an operation on a replicated object: the value as
// observed under a particular consistency level at a particular time.
#ifndef ICG_CORRECTABLES_VIEW_H_
#define ICG_CORRECTABLES_VIEW_H_

#include "src/common/types.h"
#include "src/correctables/consistency.h"

namespace icg {

template <typename T>
struct View {
  T value{};
  ConsistencyLevel level = ConsistencyLevel::kWeak;
  // True for the view that closes the Correctable.
  bool is_final = false;
  // True when the final view was delivered as a confirmation message: the storage told
  // the client that the last preliminary value is the correct final value, without
  // re-sending the payload (§5.2 bandwidth optimization).
  bool confirmed_preliminary = false;
  // Virtual time at which the library delivered this view (0 when no loop is attached).
  SimTime delivered_at = 0;
};

}  // namespace icg

#endif  // ICG_CORRECTABLES_VIEW_H_
