// Correctable<T>: the paper's central abstraction (§3).
//
// A Correctable generalizes a Promise: instead of a single future value it represents a
// sequence of incremental views of an operation's result, each at a successively stronger
// consistency level. It starts in the UPDATING state; preliminary views trigger
// same-state transitions (onUpdate), and the object closes with a final view (onFinal) or
// an error (onError).
//
//   invoke(read(k))
//       .Speculate(prefetch)                       // run work on the preliminary view
//       .OnFinal([](const View<Ads>& v) { ... });  // deliver when confirmed/corrected
//
// Handles are cheap to copy (shared state). The producer side is CorrectableSource<T>,
// used by the client library; applications normally only consume.
//
// Threading: the whole library is loop-driven and thread-compatible — all calls must come
// from the thread running the owning event loop (or any single thread in loop-less use).
#ifndef ICG_CORRECTABLES_CORRECTABLE_H_
#define ICG_CORRECTABLES_CORRECTABLE_H_

#include <cassert>
#include <concepts>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/pooled.h"
#include "src/common/small_vec.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/correctables/consistency.h"
#include "src/correctables/view.h"
#include "src/sim/event_loop.h"

namespace icg {

enum class CorrectableState {
  kUpdating,  // no final result yet; zero or more preliminary views delivered
  kFinal,     // closed with a final view
  kError,     // closed with an error
};

const char* CorrectableStateName(CorrectableState state);

template <typename T>
class Correctable;

namespace internal {

template <typename T>
struct CorrectableShared {
  CorrectableState state = CorrectableState::kUpdating;
  std::optional<View<T>> latest;  // most recent view (preliminary or final)
  Status error;
  int views_delivered = 0;
  // Strongest level delivered so far; updates below it are dropped (monotonicity).
  std::optional<ConsistencyLevel> strongest_delivered;
  EventLoop* loop = nullptr;  // for view timestamps; may be null
  int firing_updates = 0;     // FireUpdate reentrancy depth (see ReleaseCallbacks)

  // One or two callbacks per list is the norm (a handler plus maybe a combinator), and
  // typical captures are a shared handle or two — both stay inline on the hot path.
  using ViewCallback = InlineFunction<void(const View<T>&), 48>;
  using StatusCallback = InlineFunction<void(const Status&), 48>;
  SmallVec<ViewCallback, 2> on_update;
  SmallVec<ViewCallback, 2> on_final;
  SmallVec<StatusCallback, 2> on_error;

  SimTime NowOrZero() const { return loop != nullptr ? loop->Now() : 0; }

  void FireUpdate(const View<T>& v) {
    // Hot path: iterate the live list in place, but with a fixed bound — a callback
    // that attaches another update callback must not cause a second delivery (attach
    // already replays the latest view) — and a state check, so fan-out stops if a
    // callback closes/fails the source. `firing_updates` defers the terminal clear of
    // on_update (see ReleaseCallbacks): the closure currently executing must not be
    // destroyed out from under its own stack frame.
    ++firing_updates;
    const size_t n = on_update.size();
    for (size_t i = 0; i < n && state == CorrectableState::kUpdating; ++i) {
      on_update[i](v);
    }
    if (--firing_updates == 0 && state != CorrectableState::kUpdating) {
      on_update.clear();  // the deferred terminal release
    }
  }
  // Terminal fires consume the callback lists: once the state is terminal, late
  // attaches replay immediately off `state` (promise semantics), so the stored
  // closures — and whatever they capture (timers, caches, upstream sources) — must be
  // released instead of kept alive for the Correctable's lifetime. The lists are moved
  // out before invoking anything, so a callback that closes over this shared state
  // cannot mutate the list being iterated.
  void FireFinal(const View<T>& v) {
    auto cbs = std::move(on_final);
    ReleaseCallbacks();
    for (size_t i = 0; i < cbs.size(); ++i) {
      cbs[i](v);
    }
  }
  void FireError(const Status& s) {
    auto cbs = std::move(on_error);
    ReleaseCallbacks();
    for (size_t i = 0; i < cbs.size(); ++i) {
      cbs[i](s);
    }
  }
  void ReleaseCallbacks() {
    if (firing_updates == 0) {
      on_update.clear();  // otherwise FireUpdate clears it once its frames unwind
    }
    on_final.clear();
    on_error.clear();
  }
};

template <typename U>
struct IsCorrectable : std::false_type {};
template <typename U>
struct IsCorrectable<Correctable<U>> : std::true_type {};

}  // namespace internal

// Producer handle. The client library (or a combinator) feeds views into the shared
// state; consumers hold Correctable<T> handles onto the same state.
template <typename T>
class CorrectableSource {
 public:
  explicit CorrectableSource(EventLoop* loop = nullptr)
      : shared_(PooledMakeShared<internal::CorrectableShared<T>>()) {
    shared_->loop = loop;
  }

  Correctable<T> GetCorrectable() const { return Correctable<T>(shared_); }

  // Delivers a preliminary view. Returns false (and drops the view) if the object is
  // already closed or if `level` would regress below an already-delivered level —
  // enforcing the monotonicity the paper requires even if storage responses reorder.
  bool Update(T value, ConsistencyLevel level) {
    auto& s = *shared_;
    if (s.state != CorrectableState::kUpdating) {
      return false;
    }
    if (s.strongest_delivered.has_value() && IsStronger(*s.strongest_delivered, level)) {
      return false;
    }
    // Built in place: emplace destroys the previous view and default-constructs the new
    // one directly in the optional, so no intermediate View is moved.
    View<T>& v = s.latest.emplace();
    v.value = std::move(value);
    v.level = level;
    v.is_final = false;
    v.delivered_at = s.NowOrZero();
    s.strongest_delivered = level;
    s.views_delivered++;
    s.FireUpdate(*s.latest);
    return true;
  }

  // Closes with the final view. Returns false if already closed.
  bool Close(T value, ConsistencyLevel level, bool confirmed_preliminary = false) {
    auto& s = *shared_;
    if (s.state != CorrectableState::kUpdating) {
      return false;
    }
    View<T>& v = s.latest.emplace();  // in place, as in Update
    v.value = std::move(value);
    v.level = level;
    v.is_final = true;
    v.confirmed_preliminary = confirmed_preliminary;
    v.delivered_at = s.NowOrZero();
    s.strongest_delivered = level;
    s.views_delivered++;
    s.state = CorrectableState::kFinal;
    s.FireFinal(*s.latest);
    return true;
  }

  // Closes by confirming the latest preliminary view: the storage reported (via a small
  // confirmation message) that the preliminary value is the final value. Fails the
  // Correctable if no preliminary view exists — a confirmation with nothing to confirm is
  // a protocol error.
  bool CloseConfirmed(ConsistencyLevel level) {
    auto& s = *shared_;
    if (s.state != CorrectableState::kUpdating) {
      return false;
    }
    if (!s.latest.has_value()) {
      Fail(Status::Internal("confirmation received before any preliminary view"));
      return false;
    }
    return Close(s.latest->value, level, /*confirmed_preliminary=*/true);
  }

  // Closes with an error. Returns false if already closed.
  bool Fail(Status status) {
    auto& s = *shared_;
    if (s.state != CorrectableState::kUpdating) {
      return false;
    }
    assert(!status.ok());
    s.state = CorrectableState::kError;
    s.error = std::move(status);
    s.FireError(s.error);
    return true;
  }

  CorrectableState state() const { return shared_->state; }
  // Producer-side peeks at the delivered sequence (no consumer handle needed, so hot
  // paths avoid the shared_ptr copy a GetCorrectable() would cost).
  bool HasView() const { return shared_->latest.has_value(); }
  const View<T>& LatestView() const {
    assert(HasView());
    return *shared_->latest;
  }

 private:
  std::shared_ptr<internal::CorrectableShared<T>> shared_;
};

// Consumer handle.
template <typename T>
class Correctable {
 public:
  using UpdateCallback = InlineFunction<void(const View<T>&), 48>;
  using FinalCallback = InlineFunction<void(const View<T>&), 48>;
  using ErrorCallback = InlineFunction<void(const Status&), 48>;

  // An empty Correctable that is already failed; useful for argument-validation paths.
  static Correctable<T> Failed(Status status) {
    CorrectableSource<T> src;
    src.Fail(std::move(status));
    return src.GetCorrectable();
  }

  // A Correctable already closed with `value` (level kStrong unless specified).
  static Correctable<T> FromValue(T value, ConsistencyLevel level = ConsistencyLevel::kStrong) {
    CorrectableSource<T> src;
    src.Close(std::move(value), level);
    return src.GetCorrectable();
  }

  CorrectableState state() const { return shared_->state; }
  bool is_final() const { return shared_->state == CorrectableState::kFinal; }
  bool is_error() const { return shared_->state == CorrectableState::kError; }

  bool HasView() const { return shared_->latest.has_value(); }
  const View<T>& LatestView() const {
    assert(HasView());
    return *shared_->latest;
  }
  int views_delivered() const { return shared_->views_delivered; }
  const Status& error() const { return shared_->error; }

  // The final value, or an error: the Correctable's error if failed, UNAVAILABLE if it
  // is still updating. Intended for use after the event loop has run to completion.
  StatusOr<T> Final() const {
    switch (shared_->state) {
      case CorrectableState::kFinal:
        return shared_->latest->value;
      case CorrectableState::kError:
        return shared_->error;
      case CorrectableState::kUpdating:
        return Status::Unavailable("correctable still updating");
    }
    return Status::Internal("corrupt correctable state");
  }

  // --- Callback registration ----------------------------------------------------------
  // Attaching after the fact replays state: a pending preliminary view triggers the
  // update callback immediately, a final view triggers the final callback, an error the
  // error callback. This gives late subscribers promise-like "already resolved" behavior.

  Correctable& OnUpdate(UpdateCallback cb) {
    auto& s = *shared_;
    if (s.state == CorrectableState::kUpdating && s.latest.has_value()) {
      cb(*s.latest);
    }
    if (s.state == CorrectableState::kUpdating) {
      s.on_update.push_back(std::move(cb));
    }
    return *this;
  }

  Correctable& OnFinal(FinalCallback cb) {
    auto& s = *shared_;
    if (s.state == CorrectableState::kFinal) {
      cb(*s.latest);
    } else if (s.state == CorrectableState::kUpdating) {
      s.on_final.push_back(std::move(cb));
    }
    return *this;
  }

  Correctable& OnError(ErrorCallback cb) {
    auto& s = *shared_;
    if (s.state == CorrectableState::kError) {
      cb(s.error);
    } else if (s.state == CorrectableState::kUpdating) {
      s.on_error.push_back(std::move(cb));
    }
    return *this;
  }

  // The paper's setCallbacks: any argument may be null.
  Correctable& SetCallbacks(UpdateCallback on_update, FinalCallback on_final,
                            ErrorCallback on_error = nullptr) {
    if (on_update) {
      OnUpdate(std::move(on_update));
    }
    if (on_final) {
      OnFinal(std::move(on_final));
    }
    if (on_error) {
      OnError(std::move(on_error));
    }
    return *this;
  }

  // --- Combinators ---------------------------------------------------------------------

  // Transforms every view with `fn`, preserving levels/finality. Part of the monadic API
  // inherited from Promises.
  template <typename F>
  auto Map(F fn) const -> Correctable<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    CorrectableSource<U> out(shared_->loop);
    auto self = *this;
    self.OnUpdate([out, fn](const View<T>& v) mutable { out.Update(fn(v.value), v.level); });
    self.OnFinal([out, fn](const View<T>& v) mutable {
      out.Close(fn(v.value), v.level, v.confirmed_preliminary);
    });
    self.OnError([out](const Status& s) mutable { out.Fail(s); });
    return out.GetCorrectable();
  }

  // The paper's speculate(speculationFunc[, abortFunc]) (§4.2, Listing 3).
  //
  // `spec` runs on every new view whose value differs from the previously speculated
  // input. It may be synchronous (T -> U) or asynchronous (T -> Correctable<U>). The
  // returned Correctable delivers each speculation's result as a preliminary view and
  // closes when the final view arrives:
  //   * if the final value matches the speculated input, the result closes immediately
  //     with the already-computed speculation result (speculation hit);
  //   * otherwise `abort` (if provided) is invoked with the invalidated input, `spec`
  //     re-runs on the final value, and the result closes with that re-execution.
  // `abort` also runs when an in-flight speculation is superseded by a newer view.
  template <typename F, typename AbortFn = std::nullptr_t>
  auto Speculate(F spec, AbortFn abort = nullptr) const {
    static_assert(std::equality_comparable<T>,
                  "Speculate requires an equality-comparable view type");
    using RawResult = std::invoke_result_t<F, const T&>;
    constexpr bool kAsync = internal::IsCorrectable<RawResult>::value;

    if constexpr (kAsync) {
      using U = std::decay_t<decltype(std::declval<RawResult>().Final().value())>;
      return SpeculateImpl<U>(std::move(spec), std::move(abort), std::true_type{});
    } else {
      using U = RawResult;
      return SpeculateImpl<U>(std::move(spec), std::move(abort), std::false_type{});
    }
  }

 private:
  template <typename U>
  friend class CorrectableSource;
  template <typename U>
  friend class Correctable;

  explicit Correctable(std::shared_ptr<internal::CorrectableShared<T>> shared)
      : shared_(std::move(shared)) {}

  template <typename U, typename F, typename AbortFn, bool Async>
  Correctable<U> SpeculateImpl(F spec, AbortFn abort,
                               std::integral_constant<bool, Async>) const {
    struct SpecState {
      CorrectableSource<U> out;
      std::optional<T> input;        // input of the current speculation epoch
      std::optional<U> result;       // result, once the current epoch completes
      bool result_failed = false;    // current epoch's speculation errored
      Status result_error;
      uint64_t epoch = 0;            // bumped whenever a new speculation starts
      bool close_on_result = false;  // final confirmed input; waiting for async result
      ConsistencyLevel close_level = ConsistencyLevel::kStrong;
      bool close_confirmed = false;

      explicit SpecState(EventLoop* loop) : out(loop) {}
    };
    auto st = PooledMakeShared<SpecState>(shared_->loop);
    auto spec_fn = PooledMakeShared<F>(std::move(spec));

    auto run_abort = [abort = std::move(abort)](const T& invalidated_input) {
      if constexpr (!std::is_same_v<AbortFn, std::nullptr_t>) {
        abort(invalidated_input);
      } else {
        (void)invalidated_input;
      }
    };

    // Starts a speculation epoch on `input`; `level` is the level of the view that
    // triggered it and is used for the preliminary result view.
    auto start_speculation = [st, spec_fn](const T& input, ConsistencyLevel level) {
      st->epoch++;
      const uint64_t my_epoch = st->epoch;
      st->input = input;
      st->result.reset();
      st->result_failed = false;

      auto deliver = [st, my_epoch, level](U result) {
        if (st->epoch != my_epoch) {
          return;  // superseded while running
        }
        st->result = result;
        if (st->close_on_result) {
          st->out.Close(std::move(result), st->close_level, st->close_confirmed);
        } else {
          st->out.Update(std::move(result), level);
        }
      };
      auto deliver_error = [st, my_epoch](const Status& status) {
        if (st->epoch != my_epoch) {
          return;
        }
        st->result_failed = true;
        st->result_error = status;
        if (st->close_on_result) {
          st->out.Fail(status);
        }
      };

      if constexpr (Async) {
        (*spec_fn)(input).SetCallbacks(nullptr, [deliver](const View<U>& v) { deliver(v.value); },
                                       deliver_error);
      } else {
        deliver((*spec_fn)(input));
      }
    };

    auto self = *this;
    self.OnUpdate([st, start_speculation, run_abort](const View<T>& v) {
      if (st->input.has_value() && *st->input == v.value) {
        return;  // same input: speculation already running or done
      }
      if (st->input.has_value() && !st->result.has_value() && !st->result_failed) {
        run_abort(*st->input);  // superseding an in-flight speculation
      } else if (st->input.has_value()) {
        run_abort(*st->input);  // superseding a completed speculation
      }
      start_speculation(v.value, v.level);
    });

    self.OnFinal([st, start_speculation, run_abort](const View<T>& v) {
      if (st->input.has_value() && *st->input == v.value) {
        // Speculation hit: the preliminary input was correct.
        if (st->result.has_value()) {
          st->out.Close(*st->result, v.level, v.confirmed_preliminary);
        } else if (st->result_failed) {
          // The speculation itself failed; retry once on the (identical) final input.
          st->close_on_result = true;
          st->close_level = v.level;
          st->close_confirmed = v.confirmed_preliminary;
          start_speculation(v.value, v.level);
        } else {
          // Async speculation still in flight: close as soon as it lands.
          st->close_on_result = true;
          st->close_level = v.level;
          st->close_confirmed = v.confirmed_preliminary;
        }
        return;
      }
      // Misspeculation (or no preliminary at all): abort, re-execute on the final value.
      if (st->input.has_value()) {
        run_abort(*st->input);
      }
      st->close_on_result = true;
      st->close_level = v.level;
      st->close_confirmed = false;
      start_speculation(v.value, v.level);
    });

    self.OnError([st](const Status& s) { st->out.Fail(s); });
    return st->out.GetCorrectable();
  }

  std::shared_ptr<internal::CorrectableShared<T>> shared_;
};

// Aggregation inherited from Promises: a Correctable over the vector of results.
// Delivers a preliminary view whenever every part has at least one view and any part
// updates (level = weakest of the latest levels); closes when all parts are final; fails
// on the first part error.
template <typename T>
Correctable<std::vector<T>> WhenAll(const std::vector<Correctable<T>>& parts) {
  struct AggState {
    CorrectableSource<std::vector<T>> out;
    std::vector<Correctable<T>> parts;
    size_t finals = 0;
  };
  auto st = PooledMakeShared<AggState>();
  st->parts = parts;

  if (parts.empty()) {
    st->out.Close({}, ConsistencyLevel::kStrong);
    return st->out.GetCorrectable();
  }

  auto snapshot = [st]() -> std::optional<std::pair<std::vector<T>, ConsistencyLevel>> {
    std::vector<T> values;
    values.reserve(st->parts.size());
    auto weakest = ConsistencyLevel::kStrong;
    for (const auto& p : st->parts) {
      if (!p.HasView()) {
        return std::nullopt;
      }
      values.push_back(p.LatestView().value);
      if (IsStronger(weakest, p.LatestView().level)) {
        weakest = p.LatestView().level;
      }
    }
    return std::make_pair(std::move(values), weakest);
  };

  for (auto& part : st->parts) {
    part.OnUpdate([st, snapshot](const View<T>&) {
      if (auto snap = snapshot()) {
        st->out.Update(std::move(snap->first), snap->second);
      }
    });
    part.OnFinal([st, snapshot](const View<T>&) {
      st->finals++;
      if (auto snap = snapshot()) {
        if (st->finals == st->parts.size()) {
          st->out.Close(std::move(snap->first), snap->second);
        } else {
          st->out.Update(std::move(snap->first), snap->second);
        }
      }
    });
    part.OnError([st](const Status& s) { st->out.Fail(s); });
  }
  return st->out.GetCorrectable();
}

}  // namespace icg

#endif  // ICG_CORRECTABLES_CORRECTABLE_H_
