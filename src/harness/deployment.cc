#include "src/harness/deployment.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace icg {

CassandraStack MakeCassandraStack(SimWorld& world, KvConfig kv_config,
                                  CassandraBindingConfig binding_config, Region client_region,
                                  Region coordinator_region, std::vector<Region> replica_regions,
                                  BatchConfig batch_config) {
  CassandraStack stack;
  stack.config = std::make_unique<KvConfig>(kv_config);
  stack.cluster = std::make_unique<KvCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), replica_regions);
  stack.kv_client = stack.cluster->MakeClient(client_region, coordinator_region);
  stack.binding = std::make_shared<CassandraBinding>(stack.kv_client.get(), binding_config);
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  stack.client->SetBatchConfig(batch_config);
  return stack;
}

CassandraClientEndpoint AddCassandraClient(SimWorld& world, CassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, Region coordinator_region,
                                           BatchConfig batch_config) {
  CassandraClientEndpoint endpoint;
  endpoint.kv_client = stack.cluster->MakeClient(client_region, coordinator_region);
  endpoint.binding =
      std::make_shared<CassandraBinding>(endpoint.kv_client.get(), binding_config);
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.binding, &world.loop());
  endpoint.client->SetBatchConfig(batch_config);
  return endpoint;
}

namespace {

// Key -> shard index through the versioned coordinator ring. The ring is captured as a
// shared_ptr-to-const (a membership change builds a successor ring rather than mutating
// this one), and the id list is copied, so the closure stays valid however the stack
// moves — and however many rings supersede it.
ShardFn RingShardFn(std::shared_ptr<const Partitioner> ring, std::vector<NodeId> coordinators) {
  return [ring = std::move(ring),
          coordinators = std::move(coordinators)](const std::string& key) -> size_t {
    const NodeId primary = ring->PrimaryFor(key);
    for (size_t i = 0; i < coordinators.size(); ++i) {
      if (coordinators[i] == primary) {
        return i;
      }
    }
    return 0;  // unreachable: the ring only contains coordinator ids
  };
}

}  // namespace

KvReplica* ShardedCassandraStack::FindReplica(NodeId id) const {
  for (const auto& replica : cluster->replicas()) {
    if (replica->id() == id) {
      return replica.get();
    }
  }
  return nullptr;
}

void ShardedCassandraStack::InstallRing(ShardedEndpoint& endpoint) {
  std::vector<std::shared_ptr<Binding>> shards(endpoint.shard_bindings.begin(),
                                               endpoint.shard_bindings.end());
  if (endpoint.router == nullptr) {
    endpoint.router = std::make_shared<BindingRouter>(
        std::move(shards), RingShardFn(shard_map_, coordinator_ids_), shard_map_->epoch());
  } else {
    const Status installed = endpoint.router->ApplyRing(
        shard_map_->epoch(), std::move(shards), RingShardFn(shard_map_, coordinator_ids_));
    assert(installed.ok());
    (void)installed;
  }
  endpoint.router->SetShardQueueLimit(queue_limit_);
}

ShardedEndpoint& ShardedCassandraStack::WireEndpoint(CassandraBindingConfig binding_config,
                                                     Region client_region,
                                                     BatchConfig batch_config) {
  auto endpoint = std::make_unique<ShardedEndpoint>();
  endpoint->region = client_region;
  endpoint->binding_config = binding_config;
  endpoint->client_node = world_->topology().AddNode(
      client_region, std::string("client-") + RegionName(client_region));
  for (const NodeId coordinator_id : coordinator_ids_) {
    KvReplica* coordinator = FindReplica(coordinator_id);
    assert(coordinator != nullptr);
    endpoint->kv_clients.push_back(
        std::make_unique<KvClient>(&world_->network(), endpoint->client_node, coordinator));
    endpoint->shard_bindings.push_back(
        std::make_shared<CassandraBinding>(endpoint->kv_clients.back().get(), binding_config));
  }
  InstallRing(*endpoint);
  endpoint->client = std::make_unique<CorrectableClient>(endpoint->router, &world_->loop());
  endpoint->client->SetBatchConfig(batch_config);
  endpoints_.push_back(std::move(endpoint));
  return *endpoints_.back();
}

Partitioner::RingDiff ShardedCassandraStack::AddCoordinator(NodeId replica_id) {
  KvReplica* replica = FindReplica(replica_id);
  assert(replica != nullptr && "AddCoordinator needs a replica of this cluster");
  assert(std::find(coordinator_ids_.begin(), coordinator_ids_.end(), replica_id) ==
             coordinator_ids_.end() &&
         "replica is already a coordinator");
  const std::shared_ptr<const Partitioner> old_ring = shard_map_;
  coordinator_ids_.push_back(replica_id);
  shard_map_ =
      std::make_shared<const Partitioner>(old_ring->WithNodes(coordinator_ids_));
  const Partitioner::RingDiff diff = Partitioner::Diff(*old_ring, *shard_map_);
  for (const auto& endpoint : endpoints_) {
    endpoint->kv_clients.push_back(
        std::make_unique<KvClient>(&world_->network(), endpoint->client_node, replica));
    endpoint->shard_bindings.push_back(std::make_shared<CassandraBinding>(
        endpoint->kv_clients.back().get(), endpoint->binding_config));
    InstallRing(*endpoint);
  }
  return diff;
}

Partitioner::RingDiff ShardedCassandraStack::RemoveCoordinator(NodeId replica_id) {
  const auto it = std::find(coordinator_ids_.begin(), coordinator_ids_.end(), replica_id);
  assert(it != coordinator_ids_.end() && "not a coordinator");
  assert(coordinator_ids_.size() > 1 && "cannot remove the last coordinator");
  const size_t index = static_cast<size_t>(it - coordinator_ids_.begin());
  const std::shared_ptr<const Partitioner> old_ring = shard_map_;
  coordinator_ids_.erase(it);
  shard_map_ =
      std::make_shared<const Partitioner>(old_ring->WithNodes(coordinator_ids_));
  const Partitioner::RingDiff diff = Partitioner::Diff(*old_ring, *shard_map_);
  for (const auto& endpoint : endpoints_) {
    // Retire rather than free: invocations already in flight against this coordinator
    // hold raw pointers into the binding and its connection; they finish their view
    // sequences while new traffic routes through the successor ring.
    endpoint->retired_kv_clients.push_back(std::move(endpoint->kv_clients[index]));
    endpoint->retired_bindings.push_back(std::move(endpoint->shard_bindings[index]));
    endpoint->kv_clients.erase(endpoint->kv_clients.begin() + static_cast<long>(index));
    endpoint->shard_bindings.erase(endpoint->shard_bindings.begin() +
                                   static_cast<long>(index));
    InstallRing(*endpoint);
  }
  return diff;
}

void ShardedCassandraStack::SetShardQueueLimit(size_t limit) {
  queue_limit_ = limit;
  for (const auto& endpoint : endpoints_) {
    endpoint->router->SetShardQueueLimit(limit);
  }
}

void ShardedCassandraStack::SetBatchWindow(SimDuration window) {
  for (const auto& endpoint : endpoints_) {
    BatchConfig config = endpoint->client->batch_config();
    config.batch_window = window;
    endpoint->client->SetBatchConfig(config);
  }
}

void ShardedCassandraStack::CrashCoordinator(NodeId replica_id) {
  KvReplica* replica = FindReplica(replica_id);
  assert(replica != nullptr && "CrashCoordinator needs a replica of this cluster");
  world_->network().Crash(replica_id);
  replica->Crash();
  FailoverEvent event;
  event.node = replica_id;
  event.crashed_at = world_->loop().Now();
  event.was_coordinator =
      std::find(coordinator_ids_.begin(), coordinator_ids_.end(), replica_id) !=
      coordinator_ids_.end();
  failover_log_.push_back(event);
}

void ShardedCassandraStack::RecoverCoordinator(NodeId replica_id) {
  KvReplica* replica = FindReplica(replica_id);
  assert(replica != nullptr && "RecoverCoordinator needs a replica of this cluster");
  world_->network().Restart(replica_id);
  replica->Recover();
  bool was_coordinator = false;
  for (auto it = failover_log_.rbegin(); it != failover_log_.rend(); ++it) {
    if (it->node == replica_id && it->rejoined_at < 0) {
      it->rejoined_at = world_->loop().Now();
      was_coordinator = it->was_coordinator;
      break;
    }
  }
  // Re-admit through the live membership path — but only if the detector actually
  // routed around it. A replica recovered before detection fired is still in the ring;
  // AddCoordinator would double-insert it.
  const bool in_ring = std::find(coordinator_ids_.begin(), coordinator_ids_.end(),
                                 replica_id) != coordinator_ids_.end();
  if (was_coordinator && !in_ring) {
    AddCoordinator(replica_id);
  }
  unanswered_probes_[replica_id] = 0;
}

void ShardedCassandraStack::EnableFailureDetection(FailoverConfig config) {
  failover_config_ = config;
  for (const NodeId id : coordinator_ids_) {
    unanswered_probes_[id] = 0;
  }
  if (detection_enabled_) {
    return;  // already probing; the new config takes effect from the next tick
  }
  detection_enabled_ = true;
  ScheduleProbe();
}

void ShardedCassandraStack::DisableFailureDetection() {
  detection_enabled_ = false;
  if (probe_timer_ != 0) {
    world_->loop().Cancel(probe_timer_);
    probe_timer_ = 0;
  }
}

void ShardedCassandraStack::ScheduleProbe() {
  probe_timer_ = world_->loop().Schedule(failover_config_.heartbeat_interval, [this]() {
    probe_timer_ = 0;
    if (!detection_enabled_) {
      return;
    }
    ProbeOnce();
    ScheduleProbe();
  });
}

void ShardedCassandraStack::ProbeOnce() {
  // Pass 1: evict anyone past the miss threshold. Collected before mutating so the
  // ring edit cannot invalidate the iteration.
  std::vector<NodeId> dead;
  for (const NodeId id : coordinator_ids_) {
    if (unanswered_probes_[id] >= failover_config_.miss_threshold) {
      dead.push_back(id);
    }
  }
  for (const NodeId id : dead) {
    if (coordinator_ids_.size() <= 1) {
      break;  // never evict the last coordinator; keep probing until someone rejoins
    }
    RemoveCoordinator(id);
    failovers_ += 1;
    unanswered_probes_.erase(id);
    for (auto it = failover_log_.rbegin(); it != failover_log_.rend(); ++it) {
      if (it->node == id && it->detected_at < 0) {
        it->detected_at = world_->loop().Now();
        break;
      }
    }
  }
  // Pass 2: probe every current ring member from the primary endpoint's node. Replies
  // ride the network back to the front loop and clear the counter; probes to a corpse
  // are dropped at send (Network crash semantics), so only silence accumulates.
  const NodeId prober = primary().client_node;
  for (const NodeId id : coordinator_ids_) {
    KvReplica* replica = FindReplica(id);
    assert(replica != nullptr);
    unanswered_probes_[id] += 1;
    const uint64_t probe_id = next_probe_id_++;
    world_->network().Send(
        prober, id, kRequestHeaderBytes, [this, replica, prober, probe_id]() {
          replica->HandlePing(prober, probe_id, [this, id = replica->id()](uint64_t) {
            const auto it = unanswered_probes_.find(id);
            if (it != unanswered_probes_.end()) {
              it->second = 0;  // late replies from an evicted node find no entry
            }
          });
        });
  }
}

ShardedCassandraStack MakeShardedCassandraStack(SimWorld& world, int n_coordinators,
                                                KvConfig kv_config,
                                                CassandraBindingConfig binding_config,
                                                Region client_region,
                                                std::vector<Region> replica_regions,
                                                BatchConfig batch_config) {
  ShardedCassandraStack stack;
  stack.world_ = &world;
  stack.config = std::make_unique<KvConfig>(kv_config);
  stack.cluster = std::make_unique<KvCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), replica_regions);
  const auto& replicas = stack.cluster->replicas();
  const size_t coordinators =
      std::min(replicas.size(), static_cast<size_t>(std::max(n_coordinators, 1)));
  for (size_t i = 0; i < coordinators; ++i) {
    stack.coordinator_ids_.push_back(replicas[i]->id());
  }
  stack.shard_map_ = std::make_shared<const Partitioner>(stack.coordinator_ids_,
                                                         /*replication_factor=*/1);
  stack.WireEndpoint(binding_config, client_region, batch_config);
  return stack;
}

ShardedEndpoint& AddShardedCassandraClient(SimWorld& world, ShardedCassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, BatchConfig batch_config) {
  (void)world;  // the stack already carries its world; kept for call-site symmetry
  return stack.WireEndpoint(binding_config, client_region, batch_config);
}

IntraWorldPlacement PlaceShardsAcrossLoops(LoopGroup& group, SimWorld& world,
                                           ShardedCassandraStack& stack, int max_lanes) {
  IntraWorldPlacement placement;
  placement.front_slot = group.IndexOf(&world.loop());
  if (placement.front_slot < 0) {
    placement.front_slot = group.Attach(&world.loop());
  }
  world.network().BindGroup(&group);

  // Default (max_lanes == 0): one fresh lane per replica — coordinators AND join
  // candidates. Lanes cannot be created once the group advances, so any replica that
  // may ever coordinate (a spare promoted via AddCoordinator, a crashed coordinator
  // re-admitted by RecoverCoordinator) must own its lane from the start; sharing would
  // put two coordinators' service queues on one thread and break the placement policy
  // for live membership changes.
  //
  // With max_lanes > 0, replicas share min(max_lanes, replicas) lanes round-robin; a
  // PlacementAdvisor-driven RebalanceShardPlacement loop can then migrate hot
  // co-tenants apart as load reveals itself.
  const size_t n_replicas = stack.cluster->replicas().size();
  const size_t n_lanes = max_lanes > 0
                             ? std::min(static_cast<size_t>(max_lanes), n_replicas)
                             : n_replicas;
  for (size_t i = 0; i < n_lanes; ++i) {
    placement.lane_slots.push_back(group.Attach(&world.AddLane()));
  }
  for (size_t i = 0; i < n_replicas; ++i) {
    const auto& replica = stack.cluster->replicas()[i];
    const int slot = placement.lane_slots[i % n_lanes];
    world.network().PlaceNode(replica->id(), slot);
    replica->RebindLoop();
    placement.replica_slots.push_back(slot);
  }
  return placement;
}

std::vector<PlacementMove> RebalanceShardPlacement(LoopGroup& group, SimWorld& world,
                                                   ShardedCassandraStack& stack,
                                                   IntraWorldPlacement& placement,
                                                   PlacementAdvisor& advisor,
                                                   SimDuration drain_window) {
  // Lane load = events the lane's loop ran + cross-loop messages delivered onto it;
  // replica load = its service-queue submissions. All virtual-time counters, so the
  // advisor's verdict — and therefore the migration schedule — is width-independent.
  std::vector<LaneSample> lanes;
  lanes.reserve(placement.lane_slots.size());
  for (const int slot : placement.lane_slots) {
    lanes.push_back(LaneSample{
        slot, group.loop(slot).events_processed() + group.slot_delivered_messages(slot)});
  }
  std::vector<EntitySample> entities;
  const auto& replicas = stack.cluster->replicas();
  entities.reserve(replicas.size());
  for (size_t i = 0; i < replicas.size(); ++i) {
    entities.push_back(EntitySample{static_cast<int>(i), placement.replica_slots[i],
                                    replicas[i]->service_queue().submitted()});
  }
  std::vector<PlacementMove> applied;
  for (const PlacementMove& move : advisor.Advise(lanes, entities)) {
    KvReplica* replica = replicas[static_cast<size_t>(move.entity)].get();
    if (!replica->CanMigrateLoop()) {
      continue;  // armed timers this interval; the advisor will reconsider next time
    }
    world.network().MigrateNode(replica->id(), move.to_slot);
    replica->MigrateLoop();
    // Fuse the two lanes for the drain window: messages already in flight toward the
    // old lane still run there, single-threaded with the replica's new-lane work.
    group.FuseLanes({move.from_slot, move.to_slot}, group.Now() + drain_window);
    placement.replica_slots[static_cast<size_t>(move.entity)] = move.to_slot;
    applied.push_back(move);
  }
  return applied;
}

ZooKeeperStack MakeZooKeeperStack(SimWorld& world, ZabConfig zab_config, Region client_region,
                                  Region session_region, Region leader_region,
                                  std::vector<Region> server_regions) {
  ZooKeeperStack stack;
  stack.config = std::make_unique<ZabConfig>(zab_config);
  stack.cluster = std::make_unique<ZabCluster>(&world.network(), &world.topology(),
                                               stack.config.get(), server_regions,
                                               leader_region);
  stack.zab_client = stack.cluster->MakeClient(client_region, session_region);
  stack.binding = std::make_shared<ZooKeeperBinding>(stack.zab_client.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  return stack;
}

ZooKeeperClientEndpoint AddZooKeeperClient(SimWorld& world, ZooKeeperStack& stack,
                                           Region client_region, Region session_region) {
  ZooKeeperClientEndpoint endpoint;
  endpoint.zab_client = stack.cluster->MakeClient(client_region, session_region);
  endpoint.binding = std::make_shared<ZooKeeperBinding>(endpoint.zab_client.get());
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.binding, &world.loop());
  return endpoint;
}

NewsStack MakeNewsStack(SimWorld& world, PbConfig pb_config, Region client_region,
                        Region backup_region, std::vector<Region> store_regions,
                        BatchConfig batch_config) {
  NewsStack stack;
  stack.config = std::make_unique<PbConfig>(pb_config);
  stack.cluster = std::make_unique<PbCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), store_regions);
  stack.pb_client = stack.cluster->MakeClient(client_region, backup_region);
  stack.cache = std::make_unique<ClientCache>();
  stack.binding =
      std::make_shared<CachedPbBinding>(stack.pb_client.get(), stack.cache.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  stack.client->SetBatchConfig(batch_config);
  return stack;
}

CausalStack MakeCausalStack(SimWorld& world, CausalConfig causal_config, Region client_region,
                            Region replica_region, std::vector<Region> store_regions,
                            BatchConfig batch_config) {
  CausalStack stack;
  stack.config = std::make_unique<CausalConfig>(causal_config);
  stack.cluster = std::make_unique<CausalCluster>(&world.network(), &world.topology(),
                                                  stack.config.get(), store_regions);
  stack.causal_client = stack.cluster->MakeClient(client_region, replica_region);
  stack.cache = std::make_unique<ClientCache>();
  stack.binding =
      std::make_shared<CachedCausalBinding>(stack.causal_client.get(), stack.cache.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  stack.client->SetBatchConfig(batch_config);
  return stack;
}

}  // namespace icg
