#include "src/harness/deployment.h"

#include <utility>

namespace icg {

CassandraStack MakeCassandraStack(SimWorld& world, KvConfig kv_config,
                                  CassandraBindingConfig binding_config, Region client_region,
                                  Region coordinator_region, std::vector<Region> replica_regions) {
  CassandraStack stack;
  stack.config = std::make_unique<KvConfig>(kv_config);
  stack.cluster = std::make_unique<KvCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), replica_regions);
  stack.kv_client = stack.cluster->MakeClient(client_region, coordinator_region);
  stack.binding = std::make_shared<CassandraBinding>(stack.kv_client.get(), binding_config);
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  return stack;
}

CassandraClientEndpoint AddCassandraClient(SimWorld& world, CassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, Region coordinator_region) {
  CassandraClientEndpoint endpoint;
  endpoint.kv_client = stack.cluster->MakeClient(client_region, coordinator_region);
  endpoint.binding =
      std::make_shared<CassandraBinding>(endpoint.kv_client.get(), binding_config);
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.binding, &world.loop());
  return endpoint;
}

ZooKeeperStack MakeZooKeeperStack(SimWorld& world, ZabConfig zab_config, Region client_region,
                                  Region session_region, Region leader_region,
                                  std::vector<Region> server_regions) {
  ZooKeeperStack stack;
  stack.config = std::make_unique<ZabConfig>(zab_config);
  stack.cluster = std::make_unique<ZabCluster>(&world.network(), &world.topology(),
                                               stack.config.get(), server_regions,
                                               leader_region);
  stack.zab_client = stack.cluster->MakeClient(client_region, session_region);
  stack.binding = std::make_shared<ZooKeeperBinding>(stack.zab_client.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  return stack;
}

ZooKeeperClientEndpoint AddZooKeeperClient(SimWorld& world, ZooKeeperStack& stack,
                                           Region client_region, Region session_region) {
  ZooKeeperClientEndpoint endpoint;
  endpoint.zab_client = stack.cluster->MakeClient(client_region, session_region);
  endpoint.binding = std::make_shared<ZooKeeperBinding>(endpoint.zab_client.get());
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.binding, &world.loop());
  return endpoint;
}

NewsStack MakeNewsStack(SimWorld& world, PbConfig pb_config, Region client_region,
                        Region backup_region, std::vector<Region> store_regions) {
  NewsStack stack;
  stack.config = std::make_unique<PbConfig>(pb_config);
  stack.cluster = std::make_unique<PbCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), store_regions);
  stack.pb_client = stack.cluster->MakeClient(client_region, backup_region);
  stack.cache = std::make_unique<ClientCache>();
  stack.binding =
      std::make_shared<CachedPbBinding>(stack.pb_client.get(), stack.cache.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  return stack;
}

CausalStack MakeCausalStack(SimWorld& world, CausalConfig causal_config, Region client_region,
                            Region replica_region, std::vector<Region> store_regions) {
  CausalStack stack;
  stack.config = std::make_unique<CausalConfig>(causal_config);
  stack.cluster = std::make_unique<CausalCluster>(&world.network(), &world.topology(),
                                                  stack.config.get(), store_regions);
  stack.causal_client = stack.cluster->MakeClient(client_region, replica_region);
  stack.cache = std::make_unique<ClientCache>();
  stack.binding =
      std::make_shared<CachedCausalBinding>(stack.causal_client.get(), stack.cache.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  return stack;
}

}  // namespace icg
