#include "src/harness/deployment.h"

#include <algorithm>
#include <utility>

namespace icg {

CassandraStack MakeCassandraStack(SimWorld& world, KvConfig kv_config,
                                  CassandraBindingConfig binding_config, Region client_region,
                                  Region coordinator_region, std::vector<Region> replica_regions,
                                  BatchConfig batch_config) {
  CassandraStack stack;
  stack.config = std::make_unique<KvConfig>(kv_config);
  stack.cluster = std::make_unique<KvCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), replica_regions);
  stack.kv_client = stack.cluster->MakeClient(client_region, coordinator_region);
  stack.binding = std::make_shared<CassandraBinding>(stack.kv_client.get(), binding_config);
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  stack.client->SetBatchConfig(batch_config);
  return stack;
}

CassandraClientEndpoint AddCassandraClient(SimWorld& world, CassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, Region coordinator_region,
                                           BatchConfig batch_config) {
  CassandraClientEndpoint endpoint;
  endpoint.kv_client = stack.cluster->MakeClient(client_region, coordinator_region);
  endpoint.binding =
      std::make_shared<CassandraBinding>(endpoint.kv_client.get(), binding_config);
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.binding, &world.loop());
  endpoint.client->SetBatchConfig(batch_config);
  return endpoint;
}

namespace {

// Key -> shard index through the stack's coordinator ring. The Partitioner lives behind
// a unique_ptr (stable across the stack being moved out of MakeShardedCassandraStack);
// the id list is copied into the lambda so nothing points at the local struct.
ShardFn RingShardFn(const Partitioner* ring, std::vector<NodeId> coordinators) {
  return [ring, coordinators = std::move(coordinators)](const std::string& key) -> size_t {
    const NodeId primary = ring->PrimaryFor(key);
    for (size_t i = 0; i < coordinators.size(); ++i) {
      if (coordinators[i] == primary) {
        return i;
      }
    }
    return 0;  // unreachable: the ring only contains coordinator ids
  };
}

// One client connection + binding per coordinator, assembled into a router.
ShardedCassandraClientEndpoint WireShardedEndpoint(SimWorld& world,
                                                   ShardedCassandraStack& stack,
                                                   CassandraBindingConfig binding_config,
                                                   Region client_region,
                                                   BatchConfig batch_config) {
  ShardedCassandraClientEndpoint endpoint;
  std::vector<std::shared_ptr<Binding>> shards;
  const NodeId client_node = world.topology().AddNode(
      client_region, std::string("client-") + RegionName(client_region));
  for (const NodeId coordinator_id : stack.coordinator_ids) {
    KvReplica* coordinator = nullptr;
    for (const auto& replica : stack.cluster->replicas()) {
      if (replica->id() == coordinator_id) {
        coordinator = replica.get();
      }
    }
    endpoint.kv_clients.push_back(
        std::make_unique<KvClient>(&world.network(), client_node, coordinator));
    endpoint.shard_bindings.push_back(
        std::make_shared<CassandraBinding>(endpoint.kv_clients.back().get(), binding_config));
    shards.push_back(endpoint.shard_bindings.back());
  }
  endpoint.router = std::make_shared<BindingRouter>(
      std::move(shards), RingShardFn(stack.shard_map.get(), stack.coordinator_ids));
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.router, &world.loop());
  endpoint.client->SetBatchConfig(batch_config);
  return endpoint;
}

}  // namespace

ShardedCassandraStack MakeShardedCassandraStack(SimWorld& world, int n_coordinators,
                                                KvConfig kv_config,
                                                CassandraBindingConfig binding_config,
                                                Region client_region,
                                                std::vector<Region> replica_regions,
                                                BatchConfig batch_config) {
  ShardedCassandraStack stack;
  stack.config = std::make_unique<KvConfig>(kv_config);
  stack.cluster = std::make_unique<KvCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), replica_regions);
  const auto& replicas = stack.cluster->replicas();
  const size_t coordinators =
      std::min(replicas.size(), static_cast<size_t>(std::max(n_coordinators, 1)));
  for (size_t i = 0; i < coordinators; ++i) {
    stack.coordinator_ids.push_back(replicas[i]->id());
  }
  stack.shard_map = std::make_unique<Partitioner>(stack.coordinator_ids,
                                                  /*replication_factor=*/1);
  ShardedCassandraClientEndpoint endpoint =
      WireShardedEndpoint(world, stack, binding_config, client_region, batch_config);
  stack.kv_clients = std::move(endpoint.kv_clients);
  stack.shard_bindings = std::move(endpoint.shard_bindings);
  stack.router = std::move(endpoint.router);
  stack.client = std::move(endpoint.client);
  return stack;
}

ShardedCassandraClientEndpoint AddShardedCassandraClient(SimWorld& world,
                                                         ShardedCassandraStack& stack,
                                                         CassandraBindingConfig binding_config,
                                                         Region client_region,
                                                         BatchConfig batch_config) {
  return WireShardedEndpoint(world, stack, binding_config, client_region, batch_config);
}

ZooKeeperStack MakeZooKeeperStack(SimWorld& world, ZabConfig zab_config, Region client_region,
                                  Region session_region, Region leader_region,
                                  std::vector<Region> server_regions) {
  ZooKeeperStack stack;
  stack.config = std::make_unique<ZabConfig>(zab_config);
  stack.cluster = std::make_unique<ZabCluster>(&world.network(), &world.topology(),
                                               stack.config.get(), server_regions,
                                               leader_region);
  stack.zab_client = stack.cluster->MakeClient(client_region, session_region);
  stack.binding = std::make_shared<ZooKeeperBinding>(stack.zab_client.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  return stack;
}

ZooKeeperClientEndpoint AddZooKeeperClient(SimWorld& world, ZooKeeperStack& stack,
                                           Region client_region, Region session_region) {
  ZooKeeperClientEndpoint endpoint;
  endpoint.zab_client = stack.cluster->MakeClient(client_region, session_region);
  endpoint.binding = std::make_shared<ZooKeeperBinding>(endpoint.zab_client.get());
  endpoint.client = std::make_unique<CorrectableClient>(endpoint.binding, &world.loop());
  return endpoint;
}

NewsStack MakeNewsStack(SimWorld& world, PbConfig pb_config, Region client_region,
                        Region backup_region, std::vector<Region> store_regions,
                        BatchConfig batch_config) {
  NewsStack stack;
  stack.config = std::make_unique<PbConfig>(pb_config);
  stack.cluster = std::make_unique<PbCluster>(&world.network(), &world.topology(),
                                              stack.config.get(), store_regions);
  stack.pb_client = stack.cluster->MakeClient(client_region, backup_region);
  stack.cache = std::make_unique<ClientCache>();
  stack.binding =
      std::make_shared<CachedPbBinding>(stack.pb_client.get(), stack.cache.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  stack.client->SetBatchConfig(batch_config);
  return stack;
}

CausalStack MakeCausalStack(SimWorld& world, CausalConfig causal_config, Region client_region,
                            Region replica_region, std::vector<Region> store_regions,
                            BatchConfig batch_config) {
  CausalStack stack;
  stack.config = std::make_unique<CausalConfig>(causal_config);
  stack.cluster = std::make_unique<CausalCluster>(&world.network(), &world.topology(),
                                                  stack.config.get(), store_regions);
  stack.causal_client = stack.cluster->MakeClient(client_region, replica_region);
  stack.cache = std::make_unique<ClientCache>();
  stack.binding =
      std::make_shared<CachedCausalBinding>(stack.causal_client.get(), stack.cache.get());
  stack.client = std::make_unique<CorrectableClient>(stack.binding, &world.loop());
  stack.client->SetBatchConfig(batch_config);
  return stack;
}

}  // namespace icg
