// Pre-wired deployments of the paper's experimental setups, shared by tests, benchmarks,
// and examples: a simulated WAN world plus ready-to-use storage stacks (cluster + client
// + binding + Correctables library instance).
#ifndef ICG_HARNESS_DEPLOYMENT_H_
#define ICG_HARNESS_DEPLOYMENT_H_

#include <map>
#include <memory>
#include <vector>

#include "src/bindings/cached_causal_binding.h"
#include "src/bindings/cached_pb_binding.h"
#include "src/bindings/cassandra_binding.h"
#include "src/bindings/zookeeper_binding.h"
#include "src/correctables/binding_router.h"
#include "src/correctables/client.h"
#include "src/harness/placement_advisor.h"
#include "src/kvstore/cluster.h"
#include "src/sim/event_loop.h"
#include "src/sim/loop_group.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"
#include "src/stores/pb_store.h"
#include "src/zab/cluster.h"

namespace icg {

// The simulated world: event loop + geographic topology + network. Construction order
// matters (the network holds pointers into the other two), hence this bundle.
//
// For intra-world parallel sharding a world can grow extra "lanes" — additional
// EventLoops it owns — onto which individual nodes are placed (via the network's
// cross-loop mode), while loop() stays the front-end loop carrying clients and routers.
class SimWorld {
 public:
  explicit SimWorld(uint64_t seed = 1, double jitter_sigma = 0.08)
      : network_(&loop_, &topology_, seed, jitter_sigma) {}

  EventLoop& loop() { return loop_; }
  Topology& topology() { return topology_; }
  Network& network() { return network_; }

  // Adds an owned lane loop (for LoopGroup placement). Setup-time only: the new lane
  // starts at virtual time 0, so create lanes before the group advances.
  EventLoop& AddLane() {
    lanes_.push_back(std::make_unique<EventLoop>());
    return *lanes_.back();
  }
  size_t lane_count() const { return lanes_.size(); }
  EventLoop& lane(size_t i) { return *lanes_.at(i); }

 private:
  EventLoop loop_;
  Topology topology_;
  Network network_;
  std::vector<std::unique_ptr<EventLoop>> lanes_;
};

// The paper's default Cassandra deployment: replicas in FRK/IRL/VRG (configurable),
// one client with a chosen coordinator, a Cassandra binding, and a Correctables client.
struct CassandraStack {
  std::unique_ptr<KvConfig> config;
  std::unique_ptr<KvCluster> cluster;
  std::unique_ptr<KvClient> kv_client;
  std::shared_ptr<CassandraBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

CassandraStack MakeCassandraStack(
    SimWorld& world, KvConfig kv_config, CassandraBindingConfig binding_config,
    Region client_region = Region::kIreland, Region coordinator_region = Region::kFrankfurt,
    std::vector<Region> replica_regions = {Region::kFrankfurt, Region::kIreland,
                                           Region::kVirginia},
    BatchConfig batch_config = {});

// Adds another client (own coordinator + binding + library instance) to an existing
// Cassandra deployment — the paper's "3 clients, one per region" load setups.
struct CassandraClientEndpoint {
  std::unique_ptr<KvClient> kv_client;
  std::shared_ptr<CassandraBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

CassandraClientEndpoint AddCassandraClient(SimWorld& world, CassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, Region coordinator_region,
                                           BatchConfig batch_config = {});

// One routed client endpoint of a sharded deployment: per-coordinator connections and
// bindings (ring order, parallel to the stack's coordinator list) assembled into a
// BindingRouter behind one CorrectableClient. Endpoints are heap-held and registered
// with their stack so live membership changes can rewire every router in place; when a
// coordinator is removed, its connection and binding retire into the `retired_*` lists
// (not freed) so in-flight invocations drain against live objects.
struct ShardedEndpoint {
  Region region = Region::kIreland;
  NodeId client_node = kInvalidNode;
  CassandraBindingConfig binding_config;
  std::vector<std::unique_ptr<KvClient>> kv_clients;  // one connection per coordinator
  std::vector<std::shared_ptr<CassandraBinding>> shard_bindings;
  std::vector<std::unique_ptr<KvClient>> retired_kv_clients;
  std::vector<std::shared_ptr<CassandraBinding>> retired_bindings;
  std::shared_ptr<BindingRouter> router;
  std::unique_ptr<CorrectableClient> client;
};

// Heartbeat failure detector tuning (see ShardedCassandraStack::EnableFailureDetection).
// Defaults give a ~150 ms detection window — three 50 ms ticks of silence — comfortably
// above the topology's worst client<->coordinator RTT (IRL<->VRG, 83 ms), so an answered
// probe always clears the counter before it can reach the threshold.
struct FailoverConfig {
  SimDuration heartbeat_interval = Millis(50);
  int miss_threshold = 3;
};

// One entry per CrashCoordinator call, timestamps filled in as the detector and the
// recovery path catch up (-1 = not yet).
struct FailoverEvent {
  NodeId node = kInvalidNode;
  SimTime crashed_at = -1;
  SimTime detected_at = -1;   // detector fired and the ring routed around the corpse
  SimTime rejoined_at = -1;   // RecoverCoordinator re-admitted it
  bool was_coordinator = false;
};

// Sharded Cassandra deployment: the same replica cluster, but per-key client traffic is
// routed across a *mutable* set of coordinator replicas through BindingRouters — one
// CassandraBinding (over its own client<->coordinator connection) per coordinator, with
// a dedicated versioned consistent-hash ring over the coordinator ids deciding key
// ownership. The application still sees a single CorrectableClient per endpoint, and
// coordinators can join or leave while load is running.
class ShardedCassandraStack {
 public:
  std::unique_ptr<KvConfig> config;
  std::unique_ptr<KvCluster> cluster;

  // The primary endpoint (the one MakeShardedCassandraStack wired).
  CorrectableClient* client() const { return endpoints_.front()->client.get(); }
  BindingRouter* router() const { return endpoints_.front()->router.get(); }
  ShardedEndpoint& primary() const { return *endpoints_.front(); }
  const std::vector<std::unique_ptr<ShardedEndpoint>>& endpoints() const { return endpoints_; }

  const std::vector<NodeId>& coordinator_ids() const { return coordinator_ids_; }
  const Partitioner& shard_map() const { return *shard_map_; }
  uint64_t ring_epoch() const { return shard_map_->epoch(); }

  // --- Live membership changes, operating on the running stack ------------------------
  // Promotes the cluster replica `replica_id` into the coordinator ring: every
  // registered endpoint gets a connection + child binding to it, and every router
  // installs the successor ring (epoch + 1). Returns the primary-ownership diff —
  // ~1/(N+1) of the keyspace captured by the newcomer, nothing traded between survivors.
  Partitioner::RingDiff AddCoordinator(NodeId replica_id);
  // Demotes `replica_id` out of the ring (it keeps serving quorum/replication traffic as
  // a plain replica). Its connections retire; in-flight invocations drain; pending
  // batched cohorts re-route at flush through the new ring.
  Partitioner::RingDiff RemoveCoordinator(NodeId replica_id);
  // Bounds every shard's outstanding invocations on every endpoint's router (0 =
  // unlimited); shed work fails with a retryable OVERLOADED status.
  void SetShardQueueLimit(size_t limit);
  size_t shard_queue_limit() const { return queue_limit_; }
  // Applies `window` to every endpoint's client (each keeps its own max_batch_ops),
  // re-arming pending cohorts through BatchScheduler::SetConfig — safe on a running
  // stack; under a LoopGroup call between rounds (driver thread), like the membership
  // changes. The orchestrator's batch-window actuator.
  void SetBatchWindow(SimDuration window);
  SimDuration batch_window() const { return client()->batch_config().batch_window; }

  // --- Crash, failure detection & failover --------------------------------------------
  // kill -9 of a replica: the network stops accepting its messages and the replica
  // wipes its volatile state (WAL/snapshot devices survive). Deliberately does NOT
  // touch the ring — routing around the corpse is the failure detector's job, so the
  // failover window (crash -> detection -> ApplyRing) is observable. Until the ring
  // changes, traffic to the dead shard piles onto its outstanding counter and — with a
  // queue limit set — sheds with retryable OVERLOADED; after it, pending cohorts
  // re-route at flush and new work maps to survivors.
  //
  // Threading: under a LoopGroup, call between rounds (driver thread) — the same
  // contract as Network::Crash. Single-loop worlds may call from a front-loop task.
  void CrashCoordinator(NodeId replica_id);
  // Restart + recovery + rejoin: restarts the node, rebuilds the replica from snapshot
  // + WAL replay (kicking off its anti-entropy bootstrap), and re-admits it through the
  // live AddCoordinator path at a fresh ring epoch. Works for crashed plain replicas
  // too (skipping ring re-admission unless it was a coordinator when it crashed).
  void RecoverCoordinator(NodeId replica_id);

  // Heartbeat failure detector on the front loop: probes every ring coordinator each
  // `heartbeat_interval`; `miss_threshold` consecutive unanswered probes declare it dead
  // and fail over (RemoveCoordinator). Recovered coordinators re-enter probing when
  // re-admitted. The prober is a repeating timer — call DisableFailureDetection() before
  // draining a world to quiescence (RunAll would otherwise never run out of events).
  void EnableFailureDetection(FailoverConfig config = {});
  void DisableFailureDetection();

  const std::vector<FailoverEvent>& failover_log() const { return failover_log_; }
  int64_t failovers() const { return failovers_; }

 private:
  friend ShardedCassandraStack MakeShardedCassandraStack(SimWorld&, int, KvConfig,
                                                         CassandraBindingConfig, Region,
                                                         std::vector<Region>, BatchConfig);
  friend ShardedEndpoint& AddShardedCassandraClient(SimWorld& world,
                                                    ShardedCassandraStack& stack,
                                                    CassandraBindingConfig binding_config,
                                                    Region client_region,
                                                    BatchConfig batch_config);

  ShardedEndpoint& WireEndpoint(CassandraBindingConfig binding_config, Region client_region,
                                BatchConfig batch_config);
  // Rebuilds `endpoint`'s shard vector in ring order and installs the current ring on
  // its router under the ring's epoch.
  void InstallRing(ShardedEndpoint& endpoint);
  KvReplica* FindReplica(NodeId id) const;
  void ScheduleProbe();
  void ProbeOnce();

  SimWorld* world_ = nullptr;
  std::vector<NodeId> coordinator_ids_;            // replicas acting as coordinators, ring order
  std::shared_ptr<const Partitioner> shard_map_;   // RF=1 versioned ring over coordinator_ids
  size_t queue_limit_ = 0;
  std::vector<std::unique_ptr<ShardedEndpoint>> endpoints_;  // [0] is the primary

  // Failure detector state (front loop only).
  FailoverConfig failover_config_;
  bool detection_enabled_ = false;
  TimerId probe_timer_ = 0;
  uint64_t next_probe_id_ = 1;
  std::map<NodeId, int> unanswered_probes_;  // consecutive probes without an ack
  std::vector<FailoverEvent> failover_log_;
  int64_t failovers_ = 0;
};

// Intra-world placement: which LoopGroup slot each piece of a sharded world landed on.
struct IntraWorldPlacement {
  int front_slot = -1;             // clients + routers (the world's own loop)
  std::vector<int> replica_slots;  // parallel to stack.cluster->replicas()
  std::vector<int> lane_slots;     // the distinct replica lanes (excludes front_slot)
};

// Splits ONE sharded deployment across the loops of `group`: EVERY cluster replica —
// coordinators and join candidates alike — is pinned to its own fresh lane of `world`,
// while every client endpoint and router stays on the world's front loop. Attaches the
// front loop to the group if it is not already attached, binds the world's network to
// the group, and rebinds each replica's timers/service queue to its lane.
//
// One lane per replica (not per coordinator) is what makes LIVE membership honor the
// placement policy: lanes cannot be created after the group starts advancing, so a
// spare promoted via AddCoordinator — or a crashed coordinator re-admitted through
// RecoverCoordinator — must already own the lane it will coordinate on. Previously
// spares shared coordinator lanes round-robin, so a promotion landed the new
// coordinator on another coordinator's lane (and a recovered one lost its placement).
//
// Latency trade: messages between loops are delivered at the group's next round
// barrier, so `group.Options::quantum` bounds the added cross-loop latency — a smaller
// quantum tightens client<->coordinator and quorum round trips at the cost of more
// barriers (synchronization overhead) per simulated second. Quanta well under the
// topology's RTTs make the added latency negligible.
//
// Call right after building the stack and its endpoints, before any load runs.
//
// `max_lanes` constrains how many replica lanes are created. 0 (the default) keeps the
// one-lane-per-replica policy above. A positive value creates min(max_lanes, replicas)
// lanes and assigns replicas round-robin — deliberate co-tenancy for machines with
// fewer cores than replicas, and the configuration under which stats-driven
// rebalancing (RebalanceShardPlacement) is meaningful: with private lanes there is
// nothing to rebalance.
IntraWorldPlacement PlaceShardsAcrossLoops(LoopGroup& group, SimWorld& world,
                                           ShardedCassandraStack& stack,
                                           int max_lanes = 0);

// One step of the stats-driven placement loop: samples per-lane load (events processed
// + cross-loop messages delivered per slot) and per-replica load (service-queue
// submissions), asks `advisor`, and applies the recommended migration live —
// Network::MigrateNode re-routes new traffic, KvReplica::MigrateLoop moves the
// replica's scheduling, and the old and new lanes are fused (LoopGroup::FuseLanes) for
// `drain_window` of virtual time so messages still in flight toward the old lane
// cannot race the replica's new-lane work. A replica holding armed timers
// (CanMigrateLoop() false) is skipped this interval and reconsidered the next.
//
// Call between rounds (e.g. every N RunUntil chunks) on the driver thread. Every
// decision derives from virtual-time counters, so rebalancing preserves bit-for-bit
// width determinism — the intra-world oracle runs this loop at widths 0/2/4/8.
// Returns the moves actually applied.
std::vector<PlacementMove> RebalanceShardPlacement(LoopGroup& group, SimWorld& world,
                                                   ShardedCassandraStack& stack,
                                                   IntraWorldPlacement& placement,
                                                   PlacementAdvisor& advisor,
                                                   SimDuration drain_window = Millis(300));

// Builds a cluster with one replica per `replica_regions` entry and routes traffic
// across the first `n_coordinators` of them (clamped to [1, #replicas]); the remaining
// replicas are join candidates for AddCoordinator.
ShardedCassandraStack MakeShardedCassandraStack(
    SimWorld& world, int n_coordinators, KvConfig kv_config,
    CassandraBindingConfig binding_config, Region client_region = Region::kIreland,
    std::vector<Region> replica_regions = {Region::kFrankfurt, Region::kIreland,
                                           Region::kVirginia},
    BatchConfig batch_config = {});

// Another routed client (own per-coordinator connections + router + library instance)
// against an existing sharded deployment; shares the stack's shard ring so every client
// agrees on key ownership, and participates in the stack's live membership changes. The
// returned reference is owned by (and stable for the lifetime of) the stack.
ShardedEndpoint& AddShardedCassandraClient(SimWorld& world, ShardedCassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, BatchConfig batch_config = {});

// ZooKeeper-like deployment: ensemble (leader region configurable), one session client.
struct ZooKeeperStack {
  std::unique_ptr<ZabConfig> config;
  std::unique_ptr<ZabCluster> cluster;
  std::unique_ptr<ZabClient> zab_client;
  std::shared_ptr<ZooKeeperBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

ZooKeeperStack MakeZooKeeperStack(
    SimWorld& world, ZabConfig zab_config, Region client_region = Region::kIreland,
    Region session_region = Region::kFrankfurt, Region leader_region = Region::kIreland,
    std::vector<Region> server_regions = {Region::kIreland, Region::kFrankfurt,
                                          Region::kVirginia});

struct ZooKeeperClientEndpoint {
  std::unique_ptr<ZabClient> zab_client;
  std::shared_ptr<ZooKeeperBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

ZooKeeperClientEndpoint AddZooKeeperClient(SimWorld& world, ZooKeeperStack& stack,
                                           Region client_region, Region session_region);

// News-reader deployment: primary-backup store + client-side cache, three-level binding.
struct NewsStack {
  std::unique_ptr<PbConfig> config;
  std::unique_ptr<PbCluster> cluster;
  std::unique_ptr<PbClient> pb_client;
  std::unique_ptr<ClientCache> cache;
  std::shared_ptr<CachedPbBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

NewsStack MakeNewsStack(SimWorld& world, PbConfig pb_config,
                        Region client_region = Region::kIreland,
                        Region backup_region = Region::kIreland,
                        std::vector<Region> store_regions = {Region::kVirginia,
                                                             Region::kIreland,
                                                             Region::kFrankfurt},
                        BatchConfig batch_config = {});

// Cached-causal deployment (the mobile/disconnected scenario): causally consistent
// geo-replicated store + client-side cache, two-level binding.
struct CausalStack {
  std::unique_ptr<CausalConfig> config;
  std::unique_ptr<CausalCluster> cluster;
  std::unique_ptr<CausalClient> causal_client;
  std::unique_ptr<ClientCache> cache;
  std::shared_ptr<CachedCausalBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

CausalStack MakeCausalStack(SimWorld& world, CausalConfig causal_config,
                            Region client_region = Region::kIreland,
                            Region replica_region = Region::kIreland,
                            std::vector<Region> store_regions = {Region::kIreland,
                                                                 Region::kFrankfurt,
                                                                 Region::kVirginia},
                            BatchConfig batch_config = {});

}  // namespace icg

#endif  // ICG_HARNESS_DEPLOYMENT_H_
