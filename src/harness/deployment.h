// Pre-wired deployments of the paper's experimental setups, shared by tests, benchmarks,
// and examples: a simulated WAN world plus ready-to-use storage stacks (cluster + client
// + binding + Correctables library instance).
#ifndef ICG_HARNESS_DEPLOYMENT_H_
#define ICG_HARNESS_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "src/bindings/cached_causal_binding.h"
#include "src/bindings/cached_pb_binding.h"
#include "src/bindings/cassandra_binding.h"
#include "src/bindings/zookeeper_binding.h"
#include "src/correctables/binding_router.h"
#include "src/correctables/client.h"
#include "src/kvstore/cluster.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"
#include "src/stores/pb_store.h"
#include "src/zab/cluster.h"

namespace icg {

// The simulated world: event loop + geographic topology + network. Construction order
// matters (the network holds pointers into the other two), hence this bundle.
class SimWorld {
 public:
  explicit SimWorld(uint64_t seed = 1, double jitter_sigma = 0.08)
      : network_(&loop_, &topology_, seed, jitter_sigma) {}

  EventLoop& loop() { return loop_; }
  Topology& topology() { return topology_; }
  Network& network() { return network_; }

 private:
  EventLoop loop_;
  Topology topology_;
  Network network_;
};

// The paper's default Cassandra deployment: replicas in FRK/IRL/VRG (configurable),
// one client with a chosen coordinator, a Cassandra binding, and a Correctables client.
struct CassandraStack {
  std::unique_ptr<KvConfig> config;
  std::unique_ptr<KvCluster> cluster;
  std::unique_ptr<KvClient> kv_client;
  std::shared_ptr<CassandraBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

CassandraStack MakeCassandraStack(
    SimWorld& world, KvConfig kv_config, CassandraBindingConfig binding_config,
    Region client_region = Region::kIreland, Region coordinator_region = Region::kFrankfurt,
    std::vector<Region> replica_regions = {Region::kFrankfurt, Region::kIreland,
                                           Region::kVirginia},
    BatchConfig batch_config = {});

// Adds another client (own coordinator + binding + library instance) to an existing
// Cassandra deployment — the paper's "3 clients, one per region" load setups.
struct CassandraClientEndpoint {
  std::unique_ptr<KvClient> kv_client;
  std::shared_ptr<CassandraBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

CassandraClientEndpoint AddCassandraClient(SimWorld& world, CassandraStack& stack,
                                           CassandraBindingConfig binding_config,
                                           Region client_region, Region coordinator_region,
                                           BatchConfig batch_config = {});

// Sharded Cassandra deployment: the same replica cluster, but per-key client traffic is
// routed across `n_coordinators` coordinator replicas through a BindingRouter — one
// CassandraBinding (over its own client<->coordinator connection) per coordinator, with
// a dedicated consistent-hash ring over the coordinator ids deciding key ownership. The
// application still sees a single CorrectableClient.
struct ShardedCassandraStack {
  std::unique_ptr<KvConfig> config;
  std::unique_ptr<KvCluster> cluster;
  std::vector<NodeId> coordinator_ids;     // replicas acting as coordinators, ring order
  std::unique_ptr<Partitioner> shard_map;  // RF=1 ring over coordinator_ids
  std::vector<std::unique_ptr<KvClient>> kv_clients;  // one connection per coordinator
  std::vector<std::shared_ptr<CassandraBinding>> shard_bindings;
  std::shared_ptr<BindingRouter> router;
  std::unique_ptr<CorrectableClient> client;
};

// Builds a cluster with one replica per `replica_regions` entry and routes traffic
// across the first `n_coordinators` of them (clamped to [1, #replicas]).
ShardedCassandraStack MakeShardedCassandraStack(
    SimWorld& world, int n_coordinators, KvConfig kv_config,
    CassandraBindingConfig binding_config, Region client_region = Region::kIreland,
    std::vector<Region> replica_regions = {Region::kFrankfurt, Region::kIreland,
                                           Region::kVirginia},
    BatchConfig batch_config = {});

// Another routed client (own per-coordinator connections + router + library instance)
// against an existing sharded deployment; shares the stack's shard ring so every client
// agrees on key ownership. The stack must outlive the endpoint.
struct ShardedCassandraClientEndpoint {
  std::vector<std::unique_ptr<KvClient>> kv_clients;
  std::vector<std::shared_ptr<CassandraBinding>> shard_bindings;
  std::shared_ptr<BindingRouter> router;
  std::unique_ptr<CorrectableClient> client;
};

ShardedCassandraClientEndpoint AddShardedCassandraClient(SimWorld& world,
                                                         ShardedCassandraStack& stack,
                                                         CassandraBindingConfig binding_config,
                                                         Region client_region,
                                                         BatchConfig batch_config = {});

// ZooKeeper-like deployment: ensemble (leader region configurable), one session client.
struct ZooKeeperStack {
  std::unique_ptr<ZabConfig> config;
  std::unique_ptr<ZabCluster> cluster;
  std::unique_ptr<ZabClient> zab_client;
  std::shared_ptr<ZooKeeperBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

ZooKeeperStack MakeZooKeeperStack(
    SimWorld& world, ZabConfig zab_config, Region client_region = Region::kIreland,
    Region session_region = Region::kFrankfurt, Region leader_region = Region::kIreland,
    std::vector<Region> server_regions = {Region::kIreland, Region::kFrankfurt,
                                          Region::kVirginia});

struct ZooKeeperClientEndpoint {
  std::unique_ptr<ZabClient> zab_client;
  std::shared_ptr<ZooKeeperBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

ZooKeeperClientEndpoint AddZooKeeperClient(SimWorld& world, ZooKeeperStack& stack,
                                           Region client_region, Region session_region);

// News-reader deployment: primary-backup store + client-side cache, three-level binding.
struct NewsStack {
  std::unique_ptr<PbConfig> config;
  std::unique_ptr<PbCluster> cluster;
  std::unique_ptr<PbClient> pb_client;
  std::unique_ptr<ClientCache> cache;
  std::shared_ptr<CachedPbBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

NewsStack MakeNewsStack(SimWorld& world, PbConfig pb_config,
                        Region client_region = Region::kIreland,
                        Region backup_region = Region::kIreland,
                        std::vector<Region> store_regions = {Region::kVirginia,
                                                             Region::kIreland,
                                                             Region::kFrankfurt},
                        BatchConfig batch_config = {});

// Cached-causal deployment (the mobile/disconnected scenario): causally consistent
// geo-replicated store + client-side cache, two-level binding.
struct CausalStack {
  std::unique_ptr<CausalConfig> config;
  std::unique_ptr<CausalCluster> cluster;
  std::unique_ptr<CausalClient> causal_client;
  std::unique_ptr<ClientCache> cache;
  std::shared_ptr<CachedCausalBinding> binding;
  std::unique_ptr<CorrectableClient> client;
};

CausalStack MakeCausalStack(SimWorld& world, CausalConfig causal_config,
                            Region client_region = Region::kIreland,
                            Region replica_region = Region::kIreland,
                            std::vector<Region> store_regions = {Region::kIreland,
                                                                 Region::kFrankfurt,
                                                                 Region::kVirginia},
                            BatchConfig batch_config = {});

}  // namespace icg

#endif  // ICG_HARNESS_DEPLOYMENT_H_
