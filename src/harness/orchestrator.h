// The self-driving control plane: a periodic virtual-time control loop that watches
// the load signals the deployment already exposes and drives its knobs itself.
//
//   signals                       decisions                  actuators
//   -------                       ---------                  ---------
//   RouterLoadSnapshot            OrchestratorPolicy         SetBatchWindow
//     per-shard outstanding   ->    pure, order-invariant ->   (batch-window ladder)
//     aggregate shed deltas         hysteresis + streaks     AddCoordinator /
//   PrimaryLoadEstimate             + cooldown; at most        RemoveCoordinator
//     per-shard keyspace share      ONE action / interval      (versioned ApplyRing)
//   LoopGroup lane counters       PlacementAdvisor           RebalanceShardPlacement
//     events + deliveries/slot      (hot-lane detection)       (live lane migration)
//
// Split exactly like the placement stack: OrchestratorPolicy is the pure decision
// function — it consumes one ControlSample per interval and returns at most one
// ControlAction, with every aggregate computed order-invariantly and every tie broken
// deterministically, so the metamorphic suite can probe it directly. Orchestrator is
// the harness glue: it samples the running deployment, applies the decision, and
// reschedules itself through LoopGroup::ScheduleDriverTask, so every actuation runs on
// the driver thread between rounds — the same contract as manual membership changes.
//
// Determinism argument: every input is a virtual-time counter (router snapshots,
// PrimaryLoadEstimate under a fixed seed, per-lane event/delivery counts) — never a
// wall-clock metric like barrier_wait_ns — and ticks fire on the barrier schedule,
// which is itself a pure function of virtual-time state. So the controller's action
// log is bit-identical across LoopGroup widths 0/2/4/8; the orchestrator oracle
// enforces this with EventLogFingerprint().
//
// The batch-window ladder defaults to {0, 1ms, 5ms, 20ms} — the BENCH_batch_window
// operating points, where msgs/op falls 6.31 -> 4.88 -> 3.19 -> 1.53 for a p50 cost of
// a few ms: each widen step buys roughly a third fewer round-trips, so the controller
// climbs under saturation and steps back down one rung at a time when idle.
#ifndef ICG_HARNESS_ORCHESTRATOR_H_
#define ICG_HARNESS_ORCHESTRATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/harness/deployment.h"
#include "src/harness/placement_advisor.h"
#include "src/sim/loop_group.h"

namespace icg {

enum class ControlActionKind {
  kNone = 0,
  kWidenWindow,   // climb one rung of the batch-window ladder
  kShrinkWindow,  // descend one rung
  kScaleOut,      // promote a spare replica into the coordinator ring
  kScaleIn,       // retire the coldest coordinator from the ring
  kRebalance,     // PlacementAdvisor-driven lane migration was applied
};

const char* ControlActionName(ControlActionKind kind);

struct ControlAction {
  ControlActionKind kind = ControlActionKind::kNone;
  // kWidenWindow/kShrinkWindow: the new ladder index. kScaleIn: the shard index whose
  // coordinator should retire. Otherwise 0.
  size_t detail = 0;
};

// One shard's signals within a sample. `primary_share` is that coordinator's share of
// the keyspace per Partitioner::PrimaryLoadEstimate (seeded, so width-identical).
struct ShardSignal {
  size_t shard = 0;
  size_t outstanding = 0;
  double primary_share = 0.0;
};

// Everything the policy sees for one control interval. All fields derive from
// virtual-time state; shard order must not affect the decision (the metamorphic suite
// feeds reversed vectors).
struct ControlSample {
  uint64_t ring_epoch = 0;
  std::vector<ShardSignal> shards;
  // Aggregate sheds since the previous sample, from RouterLoadSnapshot::total_sheds()
  // — monotone across ring changes, so the delta is epoch-safe.
  int64_t shed_delta = 0;
  size_t spare_replicas = 0;  // cluster replicas not currently coordinating
  size_t window_index = 0;    // current rung on the batch-window ladder
  size_t window_ladder_size = 0;
};

struct OrchestratorOptions {
  // Virtual time between control ticks. 250 ms gives the WAN topology (~90 ms worst
  // RTT) a full round trip of settling between consecutive decisions.
  SimDuration control_interval = Millis(250);
  // Batch-window rungs, ascending (see file comment for the bench-derived default).
  std::vector<SimDuration> window_ladder = {0, Millis(1), Millis(5), Millis(20)};
  // Hysteresis bands on mean outstanding-per-shard: widen at or above the high band,
  // shrink at or below the low band. The gap between them is what prevents the window
  // from oscillating when load sits between the rungs.
  double widen_outstanding_per_shard = 16.0;
  double shrink_outstanding_per_shard = 2.0;
  // Consecutive shedding intervals before scaling the ring out: one interval of sheds
  // may be a transient burst; two means the queue limit is genuinely too tight.
  int shed_intervals_to_scale_out = 2;
  // Consecutive cool intervals (no sheds AND outstanding at or under the cool band)
  // before scaling in. Deliberately the slow direction: growing too late sheds work,
  // shrinking too early immediately re-sheds it.
  int cool_intervals_to_scale_in = 6;
  double cool_outstanding_per_shard = 1.0;
  // Decide() calls to sit out after emitting an action, letting its effect reach the
  // counters before the next judgement (mirrors PlacementAdvisorOptions).
  int cooldown_intervals = 2;
  size_t min_coordinators = 1;
  size_t max_coordinators = 64;
  // PrimaryLoadEstimate sampling (harness-side): fixed count + seed keep the estimate
  // a pure function of the ring, identical at every width.
  int load_estimate_samples = 128;
  uint64_t load_estimate_seed = 42;
};

// The pure decision core. Holds only deterministic episode state (streaks, cooldown);
// feeding the same sample sequence always yields the same action sequence.
class OrchestratorPolicy {
 public:
  OrchestratorPolicy() : OrchestratorPolicy(OrchestratorOptions{}) {}
  explicit OrchestratorPolicy(OrchestratorOptions options) : options_(std::move(options)) {}

  // One control interval: returns at most one action. Streaks update every call (even
  // under cooldown, so a saturation episode is never under-counted); the cooldown only
  // gates *emission*. Priority when several conditions hold: scale-out (sheds mean
  // work is being refused — capacity first), then widen (cut msgs/op under
  // saturation), then shrink, then scale-in (the most disruptive, and the slowest to
  // qualify). Monotone by construction: a strictly higher shed_delta can only extend
  // the shed streak and reset the cool streak, so it never triggers scale-in.
  ControlAction Decide(const ControlSample& sample);

  // An action was applied outside Decide() (the placement leg): start the shared
  // cooldown so at most one actuation lands per interval overall.
  void NoteExternalAction();

  const OrchestratorOptions& options() const { return options_; }
  int64_t intervals_observed() const { return intervals_; }
  int64_t actions_emitted() const { return actions_; }

 private:
  ControlAction Emit(ControlActionKind kind, size_t detail);

  OrchestratorOptions options_;
  int64_t intervals_ = 0;
  int64_t actions_ = 0;
  int cooldown_ = 0;
  int shed_streak_ = 0;  // consecutive intervals with shed_delta > 0
  int cool_streak_ = 0;  // consecutive intervals cool enough to justify scale-in
};

// One applied control decision, for logs, tests, and the width-sweep fingerprint.
struct OrchestratorEvent {
  SimTime at = 0;
  ControlActionKind kind = ControlActionKind::kNone;
  size_t detail = 0;
  uint64_t ring_epoch = 0;  // after the action applied
  int64_t shed_delta = 0;
  size_t total_outstanding = 0;
};

// Harness glue: samples the deployment, lets the policy decide, actuates, repeats.
// Construct after placing the stack, then Start(); call Stop() before draining the
// world with RunAll (the tick is self-rescheduling, like the failure detector's probe
// timer). The orchestrator must outlive the group's last round.
class Orchestrator {
 public:
  Orchestrator(LoopGroup* group, SimWorld* world, ShardedCassandraStack* stack,
               OrchestratorOptions options = {});

  // Wires the placement leg: on intervals where no knob action fires, consult the
  // advisor and live-migrate a hot co-tenant (RebalanceShardPlacement). `placement`
  // must outlive the orchestrator. Only meaningful with lane co-tenancy (max_lanes).
  void EnablePlacement(IntraWorldPlacement* placement,
                       PlacementAdvisorOptions advisor_options = {});

  // Baselines the shed counters and schedules the first tick one control interval
  // from now. Driver thread, between rounds.
  void Start();
  // Stops the loop: the already-scheduled tick (if any) becomes a no-op.
  void Stop();
  bool running() const { return running_; }

  size_t window_index() const { return window_index_; }
  SimDuration current_window() const { return options_.window_ladder.at(window_index_); }
  const OrchestratorPolicy& policy() const { return policy_; }
  const std::vector<OrchestratorEvent>& events() const { return events_; }
  int64_t ticks() const { return ticks_; }

  // Compact encoding of the applied-action log (time/kind/detail/epoch per event) —
  // what the width-sweep oracle compares bit-for-bit.
  std::string EventLogFingerprint() const;

 private:
  void Tick();
  ControlSample Sample();
  void Apply(const ControlAction& action, const ControlSample& sample);
  int64_t TotalSheds() const;
  void Record(ControlActionKind kind, size_t detail, const ControlSample& sample);

  LoopGroup* group_;
  SimWorld* world_;
  ShardedCassandraStack* stack_;
  OrchestratorOptions options_;
  OrchestratorPolicy policy_;

  IntraWorldPlacement* placement_ = nullptr;
  std::unique_ptr<PlacementAdvisor> advisor_;

  bool running_ = false;
  uint64_t generation_ = 0;  // Stop() bumps it; a stale tick sees the mismatch and dies
  size_t window_index_ = 0;
  int64_t last_total_sheds_ = 0;
  int64_t ticks_ = 0;
  std::vector<OrchestratorEvent> events_;
};

}  // namespace icg

#endif  // ICG_HARNESS_ORCHESTRATOR_H_
