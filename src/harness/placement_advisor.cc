#include "src/harness/placement_advisor.h"

#include <algorithm>

namespace icg {

std::vector<PlacementMove> PlacementAdvisor::Advise(
    const std::vector<LaneSample>& lanes, const std::vector<EntitySample>& entities) {
  ++intervals_;

  // Difference the cumulative counters against the previous call's baseline, then
  // advance the baseline regardless of what we decide — every interval is judged on
  // its own load, not on history compounding.
  std::vector<LaneSample> lane_delta = lanes;
  for (LaneSample& lane : lane_delta) {
    int64_t& base = lane_baseline_[lane.slot];
    const int64_t cumulative = lane.load;
    lane.load -= base;
    base = cumulative;
  }
  std::vector<EntitySample> entity_delta = entities;
  for (EntitySample& entity : entity_delta) {
    int64_t& base = entity_baseline_[entity.entity];
    const int64_t cumulative = entity.load;
    entity.load -= base;
    base = cumulative;
  }
  if (!baselined_) {
    baselined_ = true;
    return {};
  }
  if (cooldown_ > 0) {
    --cooldown_;
    return {};
  }
  if (lane_delta.size() < 2) {
    return {};
  }
  int64_t total = 0;
  for (const LaneSample& lane : lane_delta) {
    total += lane.load;
  }
  if (total < options_.min_total_load) {
    return {};
  }
  const double mean = static_cast<double>(total) / static_cast<double>(lane_delta.size());

  // Hottest and coldest lanes; ties break toward the lowest slot so the decision is
  // deterministic for any input order.
  const auto hotter = [](const LaneSample& a, const LaneSample& b) {
    return a.load != b.load ? a.load > b.load : a.slot < b.slot;
  };
  const auto colder = [](const LaneSample& a, const LaneSample& b) {
    return a.load != b.load ? a.load < b.load : a.slot < b.slot;
  };
  const LaneSample* hot = &lane_delta[0];
  const LaneSample* cold = &lane_delta[0];
  for (const LaneSample& lane : lane_delta) {
    if (hotter(lane, *hot)) hot = &lane;
    if (colder(lane, *cold)) cold = &lane;
  }
  if (static_cast<double>(hot->load) < options_.hot_ratio * mean ||
      hot->slot == cold->slot) {
    return {};
  }

  // The hot lane's hottest entity (ties toward the lowest ordinal). Moving it must
  // strictly lower the projected maximum of the two lanes involved, which naturally
  // rejects no-win moves like shuffling a lane's only tenant to an equally-loaded lane.
  const EntitySample* candidate = nullptr;
  for (const EntitySample& entity : entity_delta) {
    if (entity.slot != hot->slot) continue;
    if (candidate == nullptr || entity.load > candidate->load ||
        (entity.load == candidate->load && entity.entity < candidate->entity)) {
      candidate = &entity;
    }
  }
  if (candidate == nullptr || candidate->load <= 0) {
    return {};
  }
  const int64_t projected_hot = hot->load - candidate->load;
  const int64_t projected_cold = cold->load + candidate->load;
  if (std::max(projected_hot, projected_cold) >= hot->load) {
    return {};
  }

  ++moves_;
  cooldown_ = options_.cooldown_intervals;
  return {PlacementMove{candidate->entity, hot->slot, cold->slot}};
}

}  // namespace icg
