// Bridges from the YCSB runner to the systems under test: executors that issue one
// workload operation through the Correctables stack and report latencies/divergence.
#ifndef ICG_HARNESS_EXECUTORS_H_
#define ICG_HARNESS_EXECUTORS_H_

#include <string>
#include <vector>

#include "src/apps/ads.h"
#include "src/apps/twissandra.h"
#include "src/correctables/client.h"
#include "src/harness/deployment.h"
#include "src/kvstore/cluster.h"
#include "src/sim/loop_group.h"
#include "src/ycsb/runner.h"

namespace icg {

// How a raw key-value executor maps reads onto the consistency API.
enum class KvMode {
  kWeakOnly,    // baseline C1: invokeWeak (R=1)
  kStrongOnly,  // baseline C2/C3: invokeStrong (R=quorum)
  kIcg,         // CC: invoke() — preliminary + final
};

const char* KvModeName(KvMode mode);

// Executor over plain YCSB records (Figures 6, 7, 8). Reads follow `mode`; updates are
// writes at W=1 in every mode.
OpExecutor MakeKvExecutor(CorrectableClient* client, KvMode mode);

// Executor over the ad-serving system (Figure 11): reads are fetchAdsByUserId (with or
// without speculation); updates rewrite the profile's ad references.
OpExecutor MakeAdsExecutor(AdsSystem* ads, bool use_icg);

// Executor over Twissandra (Figure 11): reads are get_timeline; updates post tweets.
OpExecutor MakeTwissandraExecutor(Twissandra* twissandra, bool use_icg);

// Extracts the numeric index from a YCSB key ("user123" -> 123).
int64_t KeyIndexOf(const std::string& ycsb_key);

// Installs `record_count` records of the workload's value size on every replica.
void PreloadYcsbDataset(KvCluster* cluster, const WorkloadConfig& config);

// --- Parallel execution helpers -------------------------------------------------------

// Pins a SimWorld to a LoopGroup slot: everything scheduled on the world's loop (its
// network, stores, clients, runners) runs on that slot's driving thread each round.
// Returns the affinity index — also the natural ClientStatsGroup slot for the world.
int PinWorld(LoopGroup& group, SimWorld& world);

// Per-loop ClientStats accumulators, one cache line apart so concurrently-driven loops
// never false-share while counting; reads fold the slots field-wise on demand.
class ClientStatsGroup {
 public:
  explicit ClientStatsGroup(size_t n_loops) : slots_(n_loops) {}

  size_t size() const { return slots_.size(); }
  // The accumulator a loop's executors may mutate freely from that loop's thread.
  ClientStats& ForLoop(size_t i) { return slots_.at(i).stats; }
  const ClientStats& ForLoop(size_t i) const { return slots_.at(i).stats; }

  // Adds a client's counters into loop `i`'s accumulator (e.g. a per-world
  // CorrectableClient's stats() at trial end).
  void Absorb(size_t i, const ClientStats& stats);

  // Field-wise sum over every slot: the system-wide view.
  ClientStats Merged() const;

 private:
  struct alignas(64) Slot {
    ClientStats stats;
  };
  std::vector<Slot> slots_;
};

}  // namespace icg

#endif  // ICG_HARNESS_EXECUTORS_H_
