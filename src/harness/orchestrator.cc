#include "src/harness/orchestrator.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace icg {

const char* ControlActionName(ControlActionKind kind) {
  switch (kind) {
    case ControlActionKind::kNone: return "none";
    case ControlActionKind::kWidenWindow: return "widen";
    case ControlActionKind::kShrinkWindow: return "shrink";
    case ControlActionKind::kScaleOut: return "scale-out";
    case ControlActionKind::kScaleIn: return "scale-in";
    case ControlActionKind::kRebalance: return "rebalance";
  }
  return "?";
}

ControlAction OrchestratorPolicy::Emit(ControlActionKind kind, size_t detail) {
  ++actions_;
  cooldown_ = options_.cooldown_intervals;
  return ControlAction{kind, detail};
}

void OrchestratorPolicy::NoteExternalAction() {
  ++actions_;
  cooldown_ = options_.cooldown_intervals;
}

ControlAction OrchestratorPolicy::Decide(const ControlSample& sample) {
  ++intervals_;
  if (sample.shards.empty()) {
    // Degenerate window: nothing to judge, and no episode to extend.
    shed_streak_ = 0;
    cool_streak_ = 0;
    return {};
  }

  // Order-invariant aggregates: sums over the shard vector, never positional reads.
  size_t total_outstanding = 0;
  for (const ShardSignal& shard : sample.shards) {
    total_outstanding += shard.outstanding;
  }
  const double per_shard = static_cast<double>(total_outstanding) /
                           static_cast<double>(sample.shards.size());

  // Streaks advance every interval — cooldown gates emission, not observation, so a
  // saturation episode keeps accumulating evidence while an earlier action settles.
  const bool shedding = sample.shed_delta > 0;
  shed_streak_ = shedding ? shed_streak_ + 1 : 0;
  const bool cool = !shedding && per_shard <= options_.cool_outstanding_per_shard;
  cool_streak_ = cool ? cool_streak_ + 1 : 0;

  if (cooldown_ > 0) {
    --cooldown_;
    return {};
  }

  // 1) Sustained sheds: the ring is refusing work — capacity before batching.
  if (shed_streak_ >= options_.shed_intervals_to_scale_out && sample.spare_replicas > 0 &&
      sample.shards.size() < options_.max_coordinators) {
    shed_streak_ = 0;
    return Emit(ControlActionKind::kScaleOut, 0);
  }

  // 2) Saturation: deep per-shard queues (or sheds with nothing to promote) — climb
  // the window ladder to cut msgs/op.
  const size_t ladder = std::min(options_.window_ladder.size(), sample.window_ladder_size);
  if ((per_shard >= options_.widen_outstanding_per_shard || shedding) &&
      sample.window_index + 1 < ladder) {
    return Emit(ControlActionKind::kWidenWindow, sample.window_index + 1);
  }

  // 3) Idle: shallow queues and a clean interval — step back down for latency.
  if (!shedding && per_shard <= options_.shrink_outstanding_per_shard &&
      sample.window_index > 0) {
    return Emit(ControlActionKind::kShrinkWindow, sample.window_index - 1);
  }

  // 4) Sustained cool: retire the coordinator owning the least keyspace. Strictly
  // unreachable when shed_delta > 0 — shedding reset the cool streak above.
  if (cool_streak_ >= options_.cool_intervals_to_scale_in &&
      sample.shards.size() > options_.min_coordinators) {
    const ShardSignal* victim = nullptr;
    for (const ShardSignal& shard : sample.shards) {
      if (victim == nullptr || shard.primary_share < victim->primary_share ||
          (shard.primary_share == victim->primary_share && shard.shard < victim->shard)) {
        victim = &shard;
      }
    }
    cool_streak_ = 0;
    return Emit(ControlActionKind::kScaleIn, victim->shard);
  }

  return {};
}

Orchestrator::Orchestrator(LoopGroup* group, SimWorld* world, ShardedCassandraStack* stack,
                           OrchestratorOptions options)
    : group_(group), world_(world), stack_(stack), options_(options), policy_(options) {
  assert(group_ != nullptr && world_ != nullptr && stack_ != nullptr);
  assert(!options_.window_ladder.empty());
  // Join the ladder at the stack's current window (rung 0 if it is off-ladder).
  const SimDuration current = stack_->batch_window();
  for (size_t i = 0; i < options_.window_ladder.size(); ++i) {
    if (options_.window_ladder[i] == current) {
      window_index_ = i;
      break;
    }
  }
}

void Orchestrator::EnablePlacement(IntraWorldPlacement* placement,
                                   PlacementAdvisorOptions advisor_options) {
  assert(placement != nullptr);
  placement_ = placement;
  advisor_ = std::make_unique<PlacementAdvisor>(advisor_options);
}

void Orchestrator::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  // Baseline the shed aggregate so the first tick's delta covers exactly one interval.
  last_total_sheds_ = TotalSheds();
  const uint64_t generation = ++generation_;
  group_->ScheduleDriverTask(group_->Now() + options_.control_interval,
                             [this, generation]() {
                               if (running_ && generation == generation_) {
                                 Tick();
                               }
                             });
}

void Orchestrator::Stop() {
  running_ = false;
  ++generation_;  // a pending tick sees the bump and dies quietly
}

int64_t Orchestrator::TotalSheds() const {
  int64_t total = 0;
  for (const auto& endpoint : stack_->endpoints()) {
    total += endpoint->router->LoadSnapshot().total_sheds();
  }
  return total;
}

ControlSample Orchestrator::Sample() {
  ControlSample sample;
  sample.ring_epoch = stack_->ring_epoch();
  sample.window_index = window_index_;
  sample.window_ladder_size = options_.window_ladder.size();

  // Aggregate every endpoint's router: each client queues and sheds independently, and
  // the controller judges the deployment as a whole. InstallRing keeps all endpoints
  // on the stack's epoch, so per-index sums line up.
  const size_t n_shards = stack_->coordinator_ids().size();
  std::vector<size_t> outstanding(n_shards, 0);
  int64_t total_sheds = 0;
  for (const auto& endpoint : stack_->endpoints()) {
    const RouterLoadSnapshot snapshot = endpoint->router->LoadSnapshot();
    for (size_t i = 0; i < snapshot.shards.size() && i < n_shards; ++i) {
      outstanding[i] += snapshot.shards[i].outstanding;
    }
    total_sheds += snapshot.total_sheds();
  }
  sample.shed_delta = total_sheds - last_total_sheds_;
  last_total_sheds_ = total_sheds;

  // Keyspace share per coordinator: seeded estimate, a pure function of the ring.
  const std::map<NodeId, double> shares = stack_->shard_map().PrimaryLoadEstimate(
      options_.load_estimate_samples, options_.load_estimate_seed);
  sample.shards.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    ShardSignal signal;
    signal.shard = i;
    signal.outstanding = outstanding[i];
    const auto it = shares.find(stack_->coordinator_ids()[i]);
    signal.primary_share = it != shares.end() ? it->second : 0.0;
    sample.shards.push_back(signal);
  }
  sample.spare_replicas = stack_->cluster->replicas().size() - n_shards;
  return sample;
}

void Orchestrator::Record(ControlActionKind kind, size_t detail,
                          const ControlSample& sample) {
  OrchestratorEvent event;
  event.at = group_->Now();
  event.kind = kind;
  event.detail = detail;
  event.ring_epoch = stack_->ring_epoch();
  event.shed_delta = sample.shed_delta;
  size_t total_outstanding = 0;
  for (const ShardSignal& shard : sample.shards) {
    total_outstanding += shard.outstanding;
  }
  event.total_outstanding = total_outstanding;
  events_.push_back(event);
}

void Orchestrator::Apply(const ControlAction& action, const ControlSample& sample) {
  switch (action.kind) {
    case ControlActionKind::kNone:
      break;
    case ControlActionKind::kWidenWindow:
    case ControlActionKind::kShrinkWindow:
      window_index_ = action.detail;
      stack_->SetBatchWindow(options_.window_ladder[window_index_]);
      Record(action.kind, action.detail, sample);
      break;
    case ControlActionKind::kScaleOut: {
      // First spare in cluster order: deterministic, and under PlaceShardsAcrossLoops
      // every replica already owns the lane it will coordinate on.
      NodeId promoted = kInvalidNode;
      for (const auto& replica : stack_->cluster->replicas()) {
        const auto& ring = stack_->coordinator_ids();
        if (std::find(ring.begin(), ring.end(), replica->id()) == ring.end()) {
          promoted = replica->id();
          break;
        }
      }
      if (promoted == kInvalidNode) {
        break;  // raced a concurrent membership change; nothing to promote
      }
      stack_->AddCoordinator(promoted);
      Record(action.kind, static_cast<size_t>(promoted), sample);
      break;
    }
    case ControlActionKind::kScaleIn: {
      if (action.detail >= stack_->coordinator_ids().size() ||
          stack_->coordinator_ids().size() <= 1) {
        break;
      }
      const NodeId retired = stack_->coordinator_ids()[action.detail];
      stack_->RemoveCoordinator(retired);
      Record(action.kind, static_cast<size_t>(retired), sample);
      break;
    }
    case ControlActionKind::kRebalance:
      break;  // never produced by the policy; recorded by the placement leg below
  }

  // The placement leg rides intervals the policy left idle, so the one-action-per-
  // interval budget holds across both decision paths.
  if (action.kind == ControlActionKind::kNone && placement_ != nullptr) {
    const std::vector<PlacementMove> moves =
        RebalanceShardPlacement(*group_, *world_, *stack_, *placement_, *advisor_);
    if (!moves.empty()) {
      policy_.NoteExternalAction();
      Record(ControlActionKind::kRebalance, static_cast<size_t>(moves[0].entity), sample);
    }
  }
}

void Orchestrator::Tick() {
  ++ticks_;
  const ControlSample sample = Sample();
  const ControlAction action = policy_.Decide(sample);
  Apply(action, sample);
  const uint64_t generation = generation_;
  group_->ScheduleDriverTask(group_->Now() + options_.control_interval,
                             [this, generation]() {
                               if (running_ && generation == generation_) {
                                 Tick();
                               }
                             });
}

std::string Orchestrator::EventLogFingerprint() const {
  std::string fingerprint;
  for (const OrchestratorEvent& event : events_) {
    fingerprint += std::to_string(event.at);
    fingerprint += ':';
    fingerprint += ControlActionName(event.kind);
    fingerprint += ':';
    fingerprint += std::to_string(event.detail);
    fingerprint += ":e";
    fingerprint += std::to_string(event.ring_epoch);
    fingerprint += ";";
  }
  return fingerprint;
}

}  // namespace icg
