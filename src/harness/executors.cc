#include "src/harness/executors.h"

#include <cctype>
#include <memory>
#include <utility>

namespace icg {

const char* KvModeName(KvMode mode) {
  switch (mode) {
    case KvMode::kWeakOnly:
      return "weak(R=1)";
    case KvMode::kStrongOnly:
      return "strong";
    case KvMode::kIcg:
      return "icg";
  }
  return "?";
}

int64_t KeyIndexOf(const std::string& ycsb_key) {
  size_t pos = 0;
  while (pos < ycsb_key.size() && !isdigit(static_cast<unsigned char>(ycsb_key[pos]))) {
    pos++;
  }
  return pos < ycsb_key.size() ? std::stoll(ycsb_key.substr(pos)) : 0;
}

void PreloadYcsbDataset(KvCluster* cluster, const WorkloadConfig& config) {
  const std::string filler(static_cast<size_t>(config.ValueBytes()), 'x');
  for (int64_t i = 0; i < config.record_count; ++i) {
    cluster->Preload(CoreWorkload::KeyForIndex(i), filler);
  }
}

OpExecutor MakeKvExecutor(CorrectableClient* client, KvMode mode) {
  return [client, mode](const YcsbOp& op, std::function<void(OpOutcome)> done) {
    EventLoop* loop = client->loop();
    const SimTime start = loop->Now();
    auto now = [loop, start]() { return loop->Now() - start; };

    if (!op.is_read) {
      client->InvokeStrong(Operation::Put(op.key, op.value))
          .SetCallbacks(nullptr,
                        [done, now](const View<OpResult>&) {
                          OpOutcome outcome;
                          outcome.final_latency = now();
                          done(outcome);
                        },
                        [done, now](const Status&) {
                          OpOutcome outcome;
                          outcome.error = true;
                          outcome.final_latency = now();
                          done(outcome);
                        });
      return;
    }

    switch (mode) {
      case KvMode::kWeakOnly:
      case KvMode::kStrongOnly: {
        auto read = mode == KvMode::kWeakOnly ? client->InvokeWeak(Operation::Get(op.key))
                                              : client->InvokeStrong(Operation::Get(op.key));
        read.SetCallbacks(nullptr,
                          [done, now](const View<OpResult>&) {
                            OpOutcome outcome;
                            outcome.final_latency = now();
                            done(outcome);
                          },
                          [done, now](const Status&) {
                            OpOutcome outcome;
                            outcome.error = true;
                            outcome.final_latency = now();
                            done(outcome);
                          });
        return;
      }
      case KvMode::kIcg: {
        auto state = std::make_shared<OpOutcome>();
        auto prelim_value = std::make_shared<OpResult>();
        client->Invoke(Operation::Get(op.key))
            .SetCallbacks(
                [state, prelim_value, now](const View<OpResult>& v) {
                  if (!state->preliminary_latency.has_value()) {
                    state->preliminary_latency = now();
                    *prelim_value = v.value;
                  }
                },
                [state, prelim_value, done, now](const View<OpResult>& v) {
                  state->final_latency = now();
                  if (state->preliminary_latency.has_value()) {
                    state->diverged =
                        !v.confirmed_preliminary && !(v.value == *prelim_value);
                  }
                  done(*state);
                },
                [state, done, now](const Status&) {
                  state->error = true;
                  state->final_latency = now();
                  done(*state);
                });
        return;
      }
    }
  };
}

namespace {

// Shared by the two application executors: read via the speculation pattern, write via
// the app's update operation.
OpExecutor MakeRefAppExecutor(EventLoop* loop, bool use_icg,
                              std::function<void(int64_t uid, bool icg,
                                                 std::function<void(RefFetchOutcome)>)> read_fn,
                              std::function<void(int64_t uid, int64_t version,
                                                 std::function<void(bool)>)> write_fn,
                              int64_t entity_count) {
  auto version_counter = std::make_shared<int64_t>(0);
  return [loop, use_icg, read_fn = std::move(read_fn), write_fn = std::move(write_fn),
          entity_count, version_counter](const YcsbOp& op, std::function<void(OpOutcome)> done) {
    const int64_t uid = KeyIndexOf(op.key) % entity_count;
    const SimTime start = loop->Now();
    if (op.is_read) {
      read_fn(uid, use_icg, [done](RefFetchOutcome outcome) {
        OpOutcome out;
        out.error = !outcome.ok;
        out.final_latency = outcome.latency;
        out.preliminary_latency = outcome.preliminary_latency;
        out.diverged = outcome.misspeculated;
        done(out);
      });
    } else {
      (*version_counter)++;
      write_fn(uid, *version_counter, [done, loop, start](bool ok) {
        OpOutcome out;
        out.error = !ok;
        out.final_latency = loop->Now() - start;
        done(out);
      });
    }
  };
}

}  // namespace

OpExecutor MakeAdsExecutor(AdsSystem* ads, bool use_icg) {
  return MakeRefAppExecutor(
      ads->ClientLoop(), use_icg,
      [ads](int64_t uid, bool icg, std::function<void(RefFetchOutcome)> done) {
        ads->FetchAdsByUserId(uid, icg, std::move(done));
      },
      [ads](int64_t uid, int64_t version, std::function<void(bool)> done) {
        ads->UpdateProfile(uid, version, std::move(done));
      },
      ads->config().num_profiles);
}

OpExecutor MakeTwissandraExecutor(Twissandra* twissandra, bool use_icg) {
  return MakeRefAppExecutor(
      twissandra->ClientLoop(), use_icg,
      [twissandra](int64_t uid, bool icg, std::function<void(RefFetchOutcome)> done) {
        twissandra->GetTimeline(uid, icg, std::move(done));
      },
      [twissandra](int64_t uid, int64_t version, std::function<void(bool)> done) {
        twissandra->PostTweet(uid, version, std::move(done));
      },
      twissandra->config().num_users);
}

int PinWorld(LoopGroup& group, SimWorld& world) { return group.Attach(&world.loop()); }

namespace {

void AddInto(ClientStats& into, const ClientStats& from) {
  into.invocations += from.invocations;
  into.weak_invocations += from.weak_invocations;
  into.strong_invocations += from.strong_invocations;
  into.icg_invocations += from.icg_invocations;
  into.views_delivered += from.views_delivered;
  into.confirmations += from.confirmations;
  into.divergences += from.divergences;
  into.stale_views_dropped += from.stale_views_dropped;
  into.errors += from.errors;
  into.timeouts += from.timeouts;
  into.batched_invocations += from.batched_invocations;
  into.coalesced_reads += from.coalesced_reads;
  into.cross_tick_batches += from.cross_tick_batches;
  into.batched_writes += from.batched_writes;
  into.overload_sheds += from.overload_sheds;
}

}  // namespace

void ClientStatsGroup::Absorb(size_t i, const ClientStats& stats) {
  AddInto(slots_.at(i).stats, stats);
}

ClientStats ClientStatsGroup::Merged() const {
  ClientStats merged;
  for (const Slot& slot : slots_) {
    AddInto(merged, slot.stats);
  }
  return merged;
}

}  // namespace icg
