// Stats-driven lane placement: watches per-lane load (LoopGroup per-loop event counts
// and per-slot delivered cross-loop messages) and recommends moving a hot entity — in
// practice a sharded-stack coordinator — to an underloaded lane.
//
// The advisor is deliberately dumb and deterministic: it differences the cumulative
// counters the caller feeds it (all derived from virtual-time execution, so identical
// at every thread width), flags the hottest lane when it exceeds `hot_ratio` times the
// mean, and emits a move only when shifting the lane's hottest entity to the coldest
// lane strictly lowers the projected maximum. A cooldown keeps it from thrashing while
// the previous move's effect is still propagating through the counters. Decisions are
// a pure function of the sample history — the width-sweep oracles run the full
// advise→migrate loop and demand bit-identical results.
#ifndef ICG_HARNESS_PLACEMENT_ADVISOR_H_
#define ICG_HARNESS_PLACEMENT_ADVISOR_H_

#include <cstdint>
#include <map>
#include <vector>

namespace icg {

struct PlacementAdvisorOptions {
  // A lane is "hot" when its interval load exceeds hot_ratio * mean lane load.
  double hot_ratio = 1.5;
  // Ignore intervals whose total load is below this — too quiet to judge.
  int64_t min_total_load = 256;
  // Advise() calls to sit out after emitting a move, letting the counters re-settle
  // under the new placement before judging it.
  int cooldown_intervals = 2;
};

// Cumulative load attributed to one lane (LoopGroup slot). The unit is caller-defined
// (events processed + messages delivered, in the deployment glue) — only ratios matter.
struct LaneSample {
  int slot = 0;
  int64_t load = 0;
};

// Cumulative load attributed to one movable entity currently living on `slot`.
struct EntitySample {
  int entity = 0;  // caller-defined ordinal (replica index in the deployment glue)
  int slot = 0;
  int64_t load = 0;
};

struct PlacementMove {
  int entity = 0;
  int from_slot = 0;
  int to_slot = 0;
};

class PlacementAdvisor {
 public:
  PlacementAdvisor() : PlacementAdvisor(PlacementAdvisorOptions{}) {}
  explicit PlacementAdvisor(PlacementAdvisorOptions options) : options_(options) {}

  // Feed one interval's cumulative samples; returns at most one recommended move.
  // The first call only establishes the baseline. Call between rounds with counters
  // read on the driver thread.
  std::vector<PlacementMove> Advise(const std::vector<LaneSample>& lanes,
                                    const std::vector<EntitySample>& entities);

  int64_t intervals_observed() const { return intervals_; }
  int64_t moves_emitted() const { return moves_; }

 private:
  PlacementAdvisorOptions options_;
  int64_t intervals_ = 0;
  int64_t moves_ = 0;
  int cooldown_ = 0;
  bool baselined_ = false;
  std::map<int, int64_t> lane_baseline_;    // slot -> cumulative load at last Advise
  std::map<int, int64_t> entity_baseline_;  // entity -> cumulative load at last Advise
};

}  // namespace icg

#endif  // ICG_HARNESS_PLACEMENT_ADVISOR_H_
