#include "src/zab/queue_state.h"

#include <algorithm>
#include <utility>

namespace icg {

int64_t QueueState::Enqueue(std::string data) {
  const int64_t seq = next_seq_++;
  entries_.push_back(QueueEntry{seq, std::move(data)});
  return seq;
}

std::optional<QueueEntry> QueueState::Dequeue() {
  if (entries_.empty()) {
    return std::nullopt;
  }
  QueueEntry head = entries_.front();
  entries_.pop_front();
  return head;
}

std::optional<QueueEntry> QueueState::Head() const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  return entries_.front();
}

bool QueueState::Delete(int64_t seq) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [seq](const QueueEntry& e) { return e.seq == seq; });
  if (it == entries_.end()) {
    return false;
  }
  entries_.erase(it);
  return true;
}

}  // namespace icg
