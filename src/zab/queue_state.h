// The replicated queue state machine (ZooKeeper queue recipe, §4.3 / §5.2).
//
// Elements carry monotonically increasing sequence numbers, mirroring ZooKeeper's
// sequential znodes. The same deterministic state machine runs on every Zab server;
// a contacted replica also *simulates* operations on its local copy to produce CZK's
// preliminary responses.
#ifndef ICG_ZAB_QUEUE_STATE_H_
#define ICG_ZAB_QUEUE_STATE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

namespace icg {

struct QueueEntry {
  int64_t seq = -1;
  std::string data;

  friend bool operator==(const QueueEntry&, const QueueEntry&) = default;
};

class QueueState {
 public:
  // Appends an element; returns its assigned sequence number.
  int64_t Enqueue(std::string data);

  // Removes and returns the head (lowest sequence number), if any.
  std::optional<QueueEntry> Dequeue();

  // The head without removal (what a CZK preliminary dequeue reports).
  std::optional<QueueEntry> Head() const;

  // Removes the entry with sequence `seq`. Returns false if absent (a contending client
  // already removed it) — the conflict that drives the ZK recipe's retries.
  bool Delete(int64_t seq);

  size_t Size() const { return entries_.size(); }
  bool Empty() const { return entries_.empty(); }
  int64_t next_seq() const { return next_seq_; }
  const std::deque<QueueEntry>& entries() const { return entries_; }

 private:
  int64_t next_seq_ = 0;
  std::deque<QueueEntry> entries_;
};

}  // namespace icg

#endif  // ICG_ZAB_QUEUE_STATE_H_
