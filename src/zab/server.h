// A ZooKeeper-like coordination server replicating queue state via a Zab-style atomic
// broadcast: the leader proposes, followers acknowledge, and the leader commits once a
// majority (including itself) has acknowledged; commits apply in zxid order everywhere.
//
// Correctable ZooKeeper (CZK, §5.2): when a client requests ICG, the *contacted* server
// first simulates the operation on its local state and returns that preliminary (weak)
// result immediately; the strong result follows after Zab coordination, delivered by the
// same session server.
//
// Reads (queue listings, head reads) are served from local state without coordination,
// exactly like ZooKeeper reads — which is why the baseline client-driven dequeue recipe
// can race and retry.
#ifndef ICG_ZAB_SERVER_H_
#define ICG_ZAB_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/correctables/binding.h"
#include "src/correctables/operation.h"
#include "src/sim/network.h"
#include "src/sim/service_queue.h"
#include "src/zab/queue_state.h"

namespace icg {

struct ZabConfig {
  SimDuration leader_propose_service = Micros(250);
  SimDuration follower_ack_service = Micros(150);
  SimDuration commit_apply_service = Micros(150);
  SimDuration local_read_service = Micros(120);
  SimDuration local_sim_service = Micros(80);  // CZK preliminary simulation
  // Bytes per child name in a getChildren listing: the unit of the ZK recipe's
  // message-size inflation (Figure 10).
  int64_t znode_name_bytes = 16;
};

enum class ZabOpType : uint8_t {
  kEnqueue,  // sequential-znode create
  kDequeue,  // CZK server-side atomic dequeue
  kDelete,   // znode delete by sequence number (ZK recipe)
};

struct ZabOp {
  ZabOpType type = ZabOpType::kEnqueue;
  std::string queue;
  std::string data;  // enqueue payload
  int64_t seq = -1;  // delete target
  NodeId origin = kInvalidNode;       // session server owning the client request
  uint64_t origin_request = 0;        // id of that request at the origin

  int64_t WireBytes() const {
    return kRequestHeaderBytes + static_cast<int64_t>(queue.size()) +
           static_cast<int64_t>(data.size());
  }
};

// Outcome of applying a committed op to the state machine.
struct ZabApplyResult {
  bool ok = false;
  std::string data;
  int64_t seq = -1;
};

// Completion for a client request against a ZabServer; mirrors KvResponseFn.
using ZabResponseFn =
    InlineFunction<void(StatusOr<OpResult>, bool is_final, ResponseKind kind), 96>;

class ZabServer {
 public:
  ZabServer(Network* network, NodeId id, const ZabConfig* config, const std::string& name);

  // Wires the ensemble. `peers` excludes self; `leader` may be this server.
  void SetEnsemble(std::vector<ZabServer*> peers, ZabServer* leader);

  NodeId id() const { return id_; }
  bool is_leader() const { return leader_ == this; }
  ServiceQueue& service_queue() { return service_; }
  MetricRegistry& metrics() { return metrics_; }

  // --- Client entry points (this server is the session server) ------------------------
  // Write op (enqueue/dequeue/delete). With `icg`, a preliminary view from local
  // simulation precedes the final committed result.
  void SubmitWrite(NodeId client_id, ZabOp op, bool icg, ZabResponseFn respond);

  // Local reads: full children listing (response size grows with the queue) and the
  // constant-size head read CZK uses for dequeuing.
  void ReadChildren(NodeId client_id, const std::string& queue,
                    std::function<void(std::vector<int64_t>)> respond);
  void ReadHead(NodeId client_id, const std::string& queue, ZabResponseFn respond);
  void ReadData(NodeId client_id, const std::string& queue, int64_t seq, ZabResponseFn respond);

  // --- Zab protocol handlers (invoked at this node via the network) -------------------
  void HandleForward(ZabOp op);                    // follower -> leader
  void HandlePropose(uint64_t zxid, ZabOp op);     // leader -> follower
  void HandleAck(uint64_t zxid, NodeId follower);  // follower -> leader
  void HandleCommit(uint64_t zxid, ZabOp op);      // leader -> follower

  // --- Direct local access (tests, preloading) ----------------------------------------
  QueueState& LocalQueue(const std::string& queue) { return queues_[queue]; }
  const std::map<std::string, QueueState>& queues() const { return queues_; }
  uint64_t last_applied_zxid() const { return last_applied_zxid_; }

 private:
  struct PendingClientRequest {
    NodeId client_id = kInvalidNode;
    ZabResponseFn respond;
  };
  struct PendingProposal {
    ZabOp op;
    int acks = 0;
    bool quorum_reached = false;
  };

  void LeaderPropose(ZabOp op);
  void LeaderMaybeCommit();
  void ApplyInOrder();
  void ApplyCommitted(uint64_t zxid, const ZabOp& op);
  void RespondToClient(const PendingClientRequest& request, const ZabOp& op,
                       const ZabApplyResult& result);
  ZabApplyResult Apply(const ZabOp& op);
  OpResult SimulateLocally(const ZabOp& op);

  int QuorumSize() const { return (static_cast<int>(peers_.size()) + 1) / 2 + 1; }

  Network* network_;
  EventLoop* loop_;
  NodeId id_;
  const ZabConfig* config_;
  ServiceQueue service_;
  MetricRegistry metrics_;

  std::vector<ZabServer*> peers_;
  ZabServer* leader_ = nullptr;

  std::map<std::string, QueueState> queues_;

  // Session-server state: requests awaiting their committed result.
  std::map<uint64_t, PendingClientRequest> pending_requests_;
  uint64_t next_request_id_ = 1;

  // Speculative cursors for the CZK fast path: the simulation must account for this
  // server's own in-flight operations, or concurrent preliminary dequeues would all
  // promise the same head (and preliminary enqueues the same znode name), overselling
  // wildly. `speculative_dequeue_cursor_` is the smallest element sequence number not
  // yet promised to anyone; `speculative_enqueue_seq_` the next znode name to promise.
  // Applies resync both cursors forward, so they track real state once commits land.
  // This is what keeps the ticket seller's revocation count near zero (§6.3.2).
  std::map<std::string, int64_t> speculative_dequeue_cursor_;
  std::map<std::string, int64_t> speculative_enqueue_seq_;

  // Leader state.
  uint64_t next_zxid_ = 1;
  std::map<uint64_t, PendingProposal> proposals_;
  uint64_t last_committed_zxid_ = 0;

  // Commit application (all servers): commits buffered until contiguous.
  std::map<uint64_t, ZabOp> uncommitted_;
  uint64_t last_applied_zxid_ = 0;
};

}  // namespace icg

#endif  // ICG_ZAB_SERVER_H_
