#include "src/zab/cluster.h"

#include <cassert>
#include <memory>
#include <utility>

namespace icg {

ZabClient::ZabClient(Network* network, NodeId id, ZabServer* session)
    : network_(network), id_(id), session_(session) {
  assert(session_ != nullptr);
}

template <typename Fn>
void ZabClient::SendToSession(int64_t bytes, Fn&& at_server) {
  network_->Send(id_, session_->id(), bytes, std::forward<Fn>(at_server));
}

void ZabClient::Enqueue(const std::string& queue, std::string data, bool icg,
                        ZabResponseFn respond) {
  ZabOp op;
  op.type = ZabOpType::kEnqueue;
  op.queue = queue;
  op.data = std::move(data);
  const int64_t bytes = op.WireBytes();
  ZabServer* session = session_;
  const NodeId self = id_;
  SendToSession(bytes, [session, self, op = std::move(op), icg,
                        respond = std::move(respond)]() mutable {
    session->SubmitWrite(self, std::move(op), icg, std::move(respond));
  });
}

void ZabClient::Dequeue(const std::string& queue, bool icg, ZabResponseFn respond) {
  ZabOp op;
  op.type = ZabOpType::kDequeue;
  op.queue = queue;
  const int64_t bytes = op.WireBytes();
  ZabServer* session = session_;
  const NodeId self = id_;
  SendToSession(bytes, [session, self, op = std::move(op), icg,
                        respond = std::move(respond)]() mutable {
    session->SubmitWrite(self, std::move(op), icg, std::move(respond));
  });
}

void ZabClient::DeleteElement(const std::string& queue, int64_t seq, ZabResponseFn respond) {
  ZabOp op;
  op.type = ZabOpType::kDelete;
  op.queue = queue;
  op.seq = seq;
  const int64_t bytes = op.WireBytes() + 8;
  ZabServer* session = session_;
  const NodeId self = id_;
  SendToSession(bytes, [session, self, op = std::move(op),
                        respond = std::move(respond)]() mutable {
    session->SubmitWrite(self, std::move(op), /*icg=*/false, std::move(respond));
  });
}

void ZabClient::Peek(const std::string& queue, ZabResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(queue.size());
  ZabServer* session = session_;
  const NodeId self = id_;
  SendToSession(bytes, [session, self, queue, respond = std::move(respond)]() mutable {
    session->ReadHead(self, queue, std::move(respond));
  });
}

void ZabClient::GetChildren(const std::string& queue,
                            std::function<void(std::vector<int64_t>)> respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(queue.size());
  ZabServer* session = session_;
  const NodeId self = id_;
  SendToSession(bytes, [session, self, queue, respond = std::move(respond)]() mutable {
    session->ReadChildren(self, queue, std::move(respond));
  });
}

void ZabClient::ReadData(const std::string& queue, int64_t seq, ZabResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(queue.size()) + 8;
  ZabServer* session = session_;
  const NodeId self = id_;
  SendToSession(bytes, [session, self, queue, seq, respond = std::move(respond)]() mutable {
    session->ReadData(self, queue, seq, std::move(respond));
  });
}

void ZabClient::RecipeDequeueZk(const std::string& queue,
                                std::function<void(StatusOr<OpResult>)> done) {
  // The Curator-style distributed-queue recipe: fetch the whole children listing, then
  // walk it in order, attempting getData+delete per child; a delete conflict (another
  // client won the race) moves on to the *next child of the cached listing* — only an
  // exhausted listing triggers a fresh getChildren. State is self-owning shared_ptrs so
  // the async chain survives as many retries as contention requires.
  struct WalkState {
    std::vector<int64_t> children;
    size_t next_index = 0;
  };
  auto state = std::make_shared<WalkState>();
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, queue, done = std::move(done), state, step]() {
    if (state->next_index >= state->children.size()) {
      // Listing exhausted (or first iteration): fetch the full queue listing.
      GetChildren(queue, [this, queue, done, state, step](std::vector<int64_t> children) {
        if (children.empty()) {
          done(OpResult{});  // empty queue: found=false
          return;
        }
        if (!state->children.empty()) {
          recipe_retries_++;  // a re-listing forced by contention
        }
        state->children = std::move(children);
        state->next_index = 0;
        (*step)();
      });
      return;
    }
    const int64_t candidate = state->children[state->next_index++];
    ReadData(queue, candidate,
             [this, queue, candidate, done, state, step](StatusOr<OpResult> data, bool,
                                                         ResponseKind) {
               if (!data.ok() || !data->found) {
                 recipe_retries_++;
                 (*step)();  // candidate vanished; try the next cached child
                 return;
               }
               const std::string element = data->value;
               DeleteElement(queue, candidate,
                             [element, candidate, done, step, this](StatusOr<OpResult> del,
                                                                    bool, ResponseKind) {
                               if (del.ok() && del->found) {
                                 OpResult out;
                                 out.found = true;
                                 out.value = element;
                                 out.seqno = candidate;
                                 done(out);
                               } else {
                                 recipe_retries_++;
                                 (*step)();  // lost the race; next cached child
                               }
                             });
             });
  };
  (*step)();
}

void ZabClient::RecipeDequeueCzk(const std::string& queue,
                                 std::function<void(StatusOr<OpResult>)> done) {
  auto attempt = std::make_shared<std::function<void()>>();
  *attempt = [this, queue, done = std::move(done), attempt]() {
    Peek(queue, [this, queue, done, attempt](StatusOr<OpResult> head, bool, ResponseKind) {
      if (!head.ok() || !head->found) {
        done(OpResult{});
        return;
      }
      const std::string element = head->value;
      const int64_t seq = head->seqno;
      DeleteElement(queue, seq,
                    [element, seq, done, attempt, this](StatusOr<OpResult> del, bool,
                                                        ResponseKind) {
                      if (del.ok() && del->found) {
                        OpResult out;
                        out.found = true;
                        out.value = element;
                        out.seqno = seq;
                        done(out);
                      } else {
                        recipe_retries_++;
                        (*attempt)();
                      }
                    });
    });
  };
  (*attempt)();
}

int64_t ZabClient::LinkBytes() const { return network_->BytesBetween(id_, session_->id()); }

int64_t ZabClient::LinkMessages() const {
  return network_->MessagesBetween(id_, session_->id());
}

ZabCluster::ZabCluster(Network* network, Topology* topology, const ZabConfig* config,
                       const std::vector<Region>& regions, Region leader_region)
    : network_(network), topology_(topology) {
  for (const Region region : regions) {
    const NodeId id = topology->AddNode(region, std::string("zk-") + RegionName(region));
    servers_.push_back(
        std::make_unique<ZabServer>(network, id, config, std::string("zk-") + RegionName(region)));
    if (region == leader_region && leader_ == nullptr) {
      leader_ = servers_.back().get();
    }
  }
  assert(leader_ != nullptr && "leader_region must be one of the ensemble regions");
  for (auto& server : servers_) {
    std::vector<ZabServer*> peers;
    for (auto& other : servers_) {
      if (other.get() != server.get()) {
        peers.push_back(other.get());
      }
    }
    server->SetEnsemble(std::move(peers), leader_);
  }
}

ZabServer* ZabCluster::ServerIn(Region region) {
  for (auto& server : servers_) {
    if (topology_->RegionOf(server->id()) == region) {
      return server.get();
    }
  }
  return nullptr;
}

std::unique_ptr<ZabClient> ZabCluster::MakeClient(Region client_region, Region session_region) {
  ZabServer* session = ServerIn(session_region);
  assert(session != nullptr);
  const NodeId id =
      topology_->AddNode(client_region, std::string("zkcli-") + RegionName(client_region));
  return std::make_unique<ZabClient>(network_, id, session);
}

void ZabCluster::PreloadQueue(const std::string& queue, int64_t count,
                              const std::string& prefix) {
  for (auto& server : servers_) {
    QueueState& state = server->LocalQueue(queue);
    for (int64_t i = 0; i < count; ++i) {
      state.Enqueue(prefix + std::to_string(i));
    }
  }
}

}  // namespace icg
