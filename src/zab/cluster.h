// Ensemble wiring and the client side of the ZooKeeper-like service, including the two
// client-driven dequeue recipes compared in Figure 10:
//
//   * ZK recipe:  getChildren (whole listing) -> getData(head) -> delete(head), retrying
//                 on conflict — the standard Curator distributed-queue pattern whose
//                 message size inflates with queue length;
//   * CZK recipe: constant-size head read -> delete(head), retrying on conflict — the
//                 paper's fix, independent of queue size.
#ifndef ICG_ZAB_CLUSTER_H_
#define ICG_ZAB_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/sim/topology.h"
#include "src/zab/server.h"

namespace icg {

class ZabClient {
 public:
  ZabClient(Network* network, NodeId id, ZabServer* session);

  // Queue write operations; with `icg`, a preliminary (locally simulated) view precedes
  // the committed final view.
  void Enqueue(const std::string& queue, std::string data, bool icg, ZabResponseFn respond);
  void Dequeue(const std::string& queue, bool icg, ZabResponseFn respond);
  void DeleteElement(const std::string& queue, int64_t seq, ZabResponseFn respond);

  // Local reads at the session server.
  void Peek(const std::string& queue, ZabResponseFn respond);
  void GetChildren(const std::string& queue, std::function<void(std::vector<int64_t>)> respond);
  void ReadData(const std::string& queue, int64_t seq, ZabResponseFn respond);

  // Client-driven dequeue recipes (see file comment). `done` receives the dequeued
  // element, or found=false when the queue is empty.
  void RecipeDequeueZk(const std::string& queue, std::function<void(StatusOr<OpResult>)> done);
  void RecipeDequeueCzk(const std::string& queue, std::function<void(StatusOr<OpResult>)> done);

  NodeId id() const { return id_; }
  ZabServer* session() const { return session_; }
  int64_t LinkBytes() const;
  int64_t LinkMessages() const;
  int64_t recipe_retries() const { return recipe_retries_; }

 private:
  template <typename Fn>
  void SendToSession(int64_t bytes, Fn&& at_server);

  Network* network_;
  NodeId id_;
  ZabServer* session_;
  int64_t recipe_retries_ = 0;
};

class ZabCluster {
 public:
  // One server per region; the server in `leader_region` leads (static leadership — the
  // paper pins leader placement per experiment; see Figure 9 configurations).
  ZabCluster(Network* network, Topology* topology, const ZabConfig* config,
             const std::vector<Region>& regions, Region leader_region);

  ZabServer* ServerIn(Region region);
  ZabServer* leader() const { return leader_; }
  const std::vector<std::unique_ptr<ZabServer>>& servers() const { return servers_; }

  std::unique_ptr<ZabClient> MakeClient(Region client_region, Region session_region);

  // Installs `count` elements (named by `prefix` + index) consistently in every server's
  // local copy of `queue`, bypassing the protocol (dataset preloading).
  void PreloadQueue(const std::string& queue, int64_t count, const std::string& prefix);

 private:
  Network* network_;
  Topology* topology_;
  std::vector<std::unique_ptr<ZabServer>> servers_;
  ZabServer* leader_ = nullptr;
};

}  // namespace icg

#endif  // ICG_ZAB_CLUSTER_H_
