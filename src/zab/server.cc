#include "src/zab/server.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"

namespace icg {

ZabServer::ZabServer(Network* network, NodeId id, const ZabConfig* config,
                     const std::string& name)
    : network_(network),
      loop_(network->loop()),
      id_(id),
      config_(config),
      service_(network->loop(), name) {
  assert(config_ != nullptr);
}

void ZabServer::SetEnsemble(std::vector<ZabServer*> peers, ZabServer* leader) {
  peers_ = std::move(peers);
  leader_ = leader;
  assert(leader_ != nullptr);
}

void ZabServer::SubmitWrite(NodeId client_id, ZabOp op, bool icg, ZabResponseFn respond) {
  const uint64_t request_id = next_request_id_++;
  op.origin = id_;
  op.origin_request = request_id;
  pending_requests_[request_id] = PendingClientRequest{client_id, std::move(respond)};
  metrics_.GetCounter("writes_received").Increment();

  if (icg) {
    // CZK fast path: simulate on local state, leak the preliminary before coordination.
    service_.Submit(config_->local_sim_service, [this, op, client_id, request_id]() {
      auto it = pending_requests_.find(request_id);
      if (it == pending_requests_.end()) {
        return;
      }
      const OpResult preliminary = SimulateLocally(op);
      metrics_.GetCounter("preliminaries_sent").Increment();
      auto respond_fn = it->second.respond;
      network_->Send(id_, client_id, preliminary.WireBytes(), [respond_fn, preliminary]() {
        respond_fn(preliminary, /*is_final=*/false, ResponseKind::kValue);
      });
    });
  }

  if (is_leader()) {
    service_.Submit(config_->leader_propose_service, [this, op]() { LeaderPropose(op); });
  } else {
    ZabServer* leader = leader_;
    network_->Send(id_, leader->id(), op.WireBytes(),
                   [leader, op]() { leader->HandleForward(op); });
  }
}

void ZabServer::HandleForward(ZabOp op) {
  assert(is_leader());
  service_.Submit(config_->leader_propose_service, [this, op = std::move(op)]() {
    LeaderPropose(op);
  });
}

void ZabServer::LeaderPropose(ZabOp op) {
  const uint64_t zxid = next_zxid_++;
  proposals_[zxid] = PendingProposal{op, /*acks=*/1, /*quorum_reached=*/false};
  metrics_.GetCounter("proposals").Increment();
  for (ZabServer* peer : peers_) {
    network_->Send(id_, peer->id(), op.WireBytes() + 16,
                   [peer, zxid, op]() { peer->HandlePropose(zxid, op); });
  }
  LeaderMaybeCommit();  // a single-node ensemble reaches quorum immediately
}

void ZabServer::HandlePropose(uint64_t zxid, ZabOp op) {
  service_.Submit(config_->follower_ack_service, [this, zxid, op = std::move(op)]() {
    ZabServer* leader = leader_;
    const NodeId self = id_;
    network_->Send(id_, leader->id(), 32, [leader, zxid, self]() {
      leader->HandleAck(zxid, self);
    });
  });
}

void ZabServer::HandleAck(uint64_t zxid, NodeId follower) {
  (void)follower;
  auto it = proposals_.find(zxid);
  if (it == proposals_.end()) {
    return;
  }
  it->second.acks++;
  LeaderMaybeCommit();
}

void ZabServer::LeaderMaybeCommit() {
  // Zab commits strictly in zxid order: a proposal commits only once every earlier one
  // has, even if its quorum formed first.
  for (;;) {
    auto it = proposals_.find(last_committed_zxid_ + 1);
    if (it == proposals_.end() || it->second.acks < QuorumSize()) {
      return;
    }
    const uint64_t zxid = it->first;
    const ZabOp op = it->second.op;
    proposals_.erase(it);
    last_committed_zxid_ = zxid;
    metrics_.GetCounter("commits").Increment();
    for (ZabServer* peer : peers_) {
      network_->Send(id_, peer->id(), op.WireBytes() + 16,
                     [peer, zxid, op]() { peer->HandleCommit(zxid, op); });
    }
    uncommitted_[zxid] = op;
    ApplyInOrder();
  }
}

void ZabServer::HandleCommit(uint64_t zxid, ZabOp op) {
  uncommitted_[zxid] = std::move(op);
  ApplyInOrder();
}

void ZabServer::ApplyInOrder() {
  // Commits can arrive reordered by WAN jitter; apply only the contiguous prefix. The
  // FIFO service queue then executes the applies in submission (= zxid) order.
  for (;;) {
    auto it = uncommitted_.find(last_applied_zxid_ + 1);
    if (it == uncommitted_.end()) {
      return;
    }
    const uint64_t zxid = it->first;
    const ZabOp op = it->second;
    uncommitted_.erase(it);
    last_applied_zxid_ = zxid;
    service_.Submit(config_->commit_apply_service,
                    [this, zxid, op]() { ApplyCommitted(zxid, op); });
  }
}

void ZabServer::ApplyCommitted(uint64_t zxid, const ZabOp& op) {
  (void)zxid;
  const ZabApplyResult result = Apply(op);
  metrics_.GetCounter("applies").Increment();
  if (op.origin != id_) {
    return;
  }
  auto it = pending_requests_.find(op.origin_request);
  if (it == pending_requests_.end()) {
    return;
  }
  RespondToClient(it->second, op, result);
  pending_requests_.erase(it);
}

void ZabServer::RespondToClient(const PendingClientRequest& request, const ZabOp& op,
                                const ZabApplyResult& result) {
  OpResult out;
  int64_t bytes = kResponseHeaderBytes;
  switch (op.type) {
    case ZabOpType::kEnqueue:
      // The response carries the assigned znode name (sequence number), not the payload.
      out.found = true;
      out.seqno = result.seq;
      bytes += 8;
      break;
    case ZabOpType::kDequeue:
      out.found = result.ok;
      out.value = result.data;
      out.seqno = result.seq;
      bytes += static_cast<int64_t>(result.data.size());
      break;
    case ZabOpType::kDelete:
      out.found = result.ok;  // false = conflict: someone else removed it first
      break;
  }
  auto respond_fn = request.respond;
  network_->Send(id_, request.client_id, bytes, [respond_fn, out]() {
    respond_fn(out, /*is_final=*/true, ResponseKind::kValue);
  });
}

ZabApplyResult ZabServer::Apply(const ZabOp& op) {
  QueueState& queue = queues_[op.queue];
  ZabApplyResult result;
  switch (op.type) {
    case ZabOpType::kEnqueue:
      result.seq = queue.Enqueue(op.data);
      result.ok = true;
      break;
    case ZabOpType::kDequeue: {
      auto entry = queue.Dequeue();
      result.ok = entry.has_value();
      if (entry.has_value()) {
        result.data = entry->data;
        result.seq = entry->seq;
      }
      break;
    }
    case ZabOpType::kDelete:
      result.ok = queue.Delete(op.seq);
      result.seq = op.seq;
      break;
  }
  // Resync the speculative cursors with the applied state: never promise an element that
  // is already consumed, never predict an already-assigned znode name.
  if (result.ok && op.type == ZabOpType::kDequeue) {
    auto& cursor = speculative_dequeue_cursor_[op.queue];
    cursor = std::max(cursor, result.seq + 1);
  }
  auto& next_name = speculative_enqueue_seq_[op.queue];
  next_name = std::max(next_name, queue.next_seq());
  return result;
}

OpResult ZabServer::SimulateLocally(const ZabOp& op) {
  QueueState& queue = queues_[op.queue];
  OpResult out;
  switch (op.type) {
    case ZabOpType::kEnqueue: {
      // Predicted znode name: the next name not yet promised (skips names promised to
      // this server's in-flight enqueues).
      auto& next_name = speculative_enqueue_seq_[op.queue];
      next_name = std::max(next_name, queue.next_seq());
      out.found = true;
      out.seqno = next_name++;
      break;
    }
    case ZabOpType::kDequeue: {
      // Promise the first element not yet promised to an earlier in-flight dequeue at
      // this server; advance the cursor so concurrent dequeues get successive elements.
      auto& cursor = speculative_dequeue_cursor_[op.queue];
      const auto& entries = queue.entries();
      auto it = std::lower_bound(entries.begin(), entries.end(), cursor,
                                 [](const QueueEntry& e, int64_t seq) { return e.seq < seq; });
      out.found = it != entries.end();
      if (out.found) {
        out.value = it->data;
        out.seqno = it->seq;
        cursor = it->seq + 1;
      }
      break;
    }
    case ZabOpType::kDelete: {
      const auto& entries = queue.entries();
      out.found = std::any_of(entries.begin(), entries.end(),
                              [&op](const QueueEntry& e) { return e.seq == op.seq; });
      out.seqno = op.seq;
      break;
    }
  }
  return out;
}

void ZabServer::ReadChildren(NodeId client_id, const std::string& queue,
                             std::function<void(std::vector<int64_t>)> respond) {
  service_.Submit(config_->local_read_service,
                  [this, client_id, queue, respond = std::move(respond)]() {
                    std::vector<int64_t> children;
                    const QueueState& state = queues_[queue];
                    children.reserve(state.Size());
                    for (const QueueEntry& entry : state.entries()) {
                      children.push_back(entry.seq);
                    }
                    // The whole listing crosses the wire: this is the message-size
                    // inflation that makes the baseline ZK dequeue cost grow with queue
                    // length (Figure 10).
                    const int64_t bytes =
                        kResponseHeaderBytes +
                        config_->znode_name_bytes * static_cast<int64_t>(children.size());
                    network_->Send(id_, client_id, bytes,
                                   [respond, children]() { respond(children); });
                  });
}

void ZabServer::ReadHead(NodeId client_id, const std::string& queue, ZabResponseFn respond) {
  service_.Submit(config_->local_read_service,
                  [this, client_id, queue, respond = std::move(respond)]() {
                    OpResult out;
                    const auto head = queues_[queue].Head();
                    if (head.has_value()) {
                      out.found = true;
                      out.value = head->data;
                      out.seqno = head->seq;
                    }
                    network_->Send(id_, client_id, out.WireBytes(), [respond, out]() {
                      respond(out, /*is_final=*/true, ResponseKind::kValue);
                    });
                  });
}

void ZabServer::ReadData(NodeId client_id, const std::string& queue, int64_t seq,
                         ZabResponseFn respond) {
  service_.Submit(config_->local_read_service,
                  [this, client_id, queue, seq, respond = std::move(respond)]() {
                    OpResult out;
                    for (const QueueEntry& entry : queues_[queue].entries()) {
                      if (entry.seq == seq) {
                        out.found = true;
                        out.value = entry.data;
                        out.seqno = entry.seq;
                        break;
                      }
                    }
                    network_->Send(id_, client_id, out.WireBytes(), [respond, out]() {
                      respond(out, /*is_final=*/true, ResponseKind::kValue);
                    });
                  });
}

}  // namespace icg
