#include "src/ycsb/generators.h"

#include <cassert>
#include <cmath>

#include "src/common/digest.h"

namespace icg {

double ZipfianGenerator::ComputeZeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(int64_t items, double zipfian_constant)
    : ZipfianGenerator(items, zipfian_constant, ComputeZeta(items, zipfian_constant)) {}

ZipfianGenerator::ZipfianGenerator(int64_t items, double zipfian_constant, double zetan)
    : items_(items), theta_(zipfian_constant), zetan_(zetan) {
  assert(items_ >= 1);
  zeta2theta_ = ComputeZeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

int64_t ZipfianGenerator::Next(Rng& rng) {
  // Gray et al.'s constant-time inversion, as implemented in YCSB.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto rank = static_cast<int64_t>(
      static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, items_ - 1);
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(int64_t items)
    : items_(items),
      zipfian_(kItemCount, ZipfianGenerator::kZipfianConstant, kZetan) {
  assert(items_ >= 1);
}

int64_t ScrambledZipfianGenerator::Next(Rng& rng) {
  const int64_t rank = zipfian_.Next(rng);
  const uint64_t hashed = Fnv1a(std::string_view(
      reinterpret_cast<const char*>(&rank), sizeof(rank)));
  return static_cast<int64_t>(hashed % static_cast<uint64_t>(items_));
}

SkewedLatestGenerator::SkewedLatestGenerator(int64_t initial_items)
    : last_(initial_items - 1), zipfian_(initial_items) {
  assert(initial_items >= 1);
}

int64_t SkewedLatestGenerator::Next(Rng& rng) {
  // Most recent item = rank 0; older items get zipfian-decaying probability.
  const int64_t offset = zipfian_.Next(rng);
  const int64_t key = last_ - offset;
  return key < 0 ? 0 : key;
}

}  // namespace icg
