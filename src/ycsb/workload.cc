#include "src/ycsb/workload.h"

#include <cassert>
#include <utility>

namespace icg {

const char* RequestDistributionName(RequestDistribution d) {
  switch (d) {
    case RequestDistribution::kUniform:
      return "Uniform";
    case RequestDistribution::kZipfian:
      return "Zipfian";
    case RequestDistribution::kLatest:
      return "Latest";
  }
  return "?";
}

WorkloadConfig WorkloadConfig::YcsbA(RequestDistribution d, int64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 0.5;
  c.update_proportion = 0.5;
  c.request_distribution = d;
  return c;
}

WorkloadConfig WorkloadConfig::YcsbB(RequestDistribution d, int64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 0.95;
  c.update_proportion = 0.05;
  c.request_distribution = d;
  return c;
}

WorkloadConfig WorkloadConfig::YcsbC(RequestDistribution d, int64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 1.0;
  c.update_proportion = 0.0;
  c.request_distribution = d;
  return c;
}

CoreWorkload::CoreWorkload(const WorkloadConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  assert(config_.record_count >= 1);
  switch (config_.request_distribution) {
    case RequestDistribution::kUniform:
      key_chooser_ = std::make_unique<UniformGenerator>(0, config_.record_count - 1);
      break;
    case RequestDistribution::kZipfian:
      key_chooser_ = std::make_unique<ScrambledZipfianGenerator>(config_.record_count);
      break;
    case RequestDistribution::kLatest: {
      auto latest = std::make_unique<SkewedLatestGenerator>(config_.record_count);
      latest_ = latest.get();
      key_chooser_ = std::move(latest);
      break;
    }
  }
}

std::string CoreWorkload::KeyForIndex(int64_t index) { return "user" + std::to_string(index); }

std::string CoreWorkload::BuildValue(int64_t key_index) {
  std::string value;
  value.reserve(static_cast<size_t>(config_.ValueBytes()));
  // Deterministic but version-distinguishing content: embed key and a counter, pad to
  // the configured size.
  value += "v" + std::to_string(update_counter_) + ":k" + std::to_string(key_index) + ":";
  while (static_cast<int64_t>(value.size()) < config_.ValueBytes()) {
    value += static_cast<char>('a' + (value.size() % 26));
  }
  value.resize(static_cast<size_t>(config_.ValueBytes()));
  return value;
}

int64_t CoreWorkload::NextKeyIndex() {
  const int64_t index = key_chooser_->Next(rng_);
  assert(index >= 0 && index < config_.record_count);
  return index;
}

YcsbOp CoreWorkload::NextOp() {
  YcsbOp op;
  const double dice = rng_.NextDouble();
  op.is_read = dice < config_.read_proportion;
  const int64_t index = NextKeyIndex();
  op.key = KeyForIndex(index);
  if (!op.is_read) {
    update_counter_++;
    op.value = BuildValue(index);
  }
  return op;
}

}  // namespace icg
