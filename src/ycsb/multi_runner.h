// Multi-client load harness: several closed-loop LoadRunners — one per client endpoint,
// each with its own workload stream and executor — driven over one shared SimWorld and
// collected into a single merged RunnerResult. This is the paper's "3 clients, one per
// region" methodology generalized to any client count, and the measurement side of the
// sharded deployments (every client routes per-key across the same coordinator set).
#ifndef ICG_YCSB_MULTI_RUNNER_H_
#define ICG_YCSB_MULTI_RUNNER_H_

#include <memory>
#include <vector>

#include "src/ycsb/runner.h"
#include "src/ycsb/workload.h"

namespace icg {

class MultiRunner {
 public:
  // All clients share the trial window (`config.duration` etc.) and the loop's virtual
  // time; per-client thread counts come from `config.threads`.
  MultiRunner(EventLoop* loop, RunnerConfig config) : loop_(loop), config_(config) {}

  // Registers one closed-loop client. The workload generator is owned here (each client
  // needs its own generator state so streams are independent); the executor captures
  // whatever stack endpoint it drives.
  void AddClient(const WorkloadConfig& workload, uint64_t seed, OpExecutor executor);

  // Begins every client, drives the loop past the common trial end (plus drain time for
  // in-flight completions), and returns the merged system-wide result.
  RunnerResult Run();

  // Phased variant for callers interleaving other activity on the loop.
  void Begin();
  RunnerResult Collect() const;

  size_t num_clients() const { return runners_.size(); }
  // Per-client view of the same trial (e.g. to report one region's client alone).
  RunnerResult CollectClient(size_t index) const { return runners_.at(index)->Collect(); }

 private:
  EventLoop* loop_;
  RunnerConfig config_;
  std::vector<std::unique_ptr<CoreWorkload>> workloads_;
  std::vector<std::unique_ptr<LoadRunner>> runners_;
};

}  // namespace icg

#endif  // ICG_YCSB_MULTI_RUNNER_H_
