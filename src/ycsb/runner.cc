#include "src/ycsb/runner.h"

#include <cassert>
#include <utility>

namespace icg {

LoadRunner::LoadRunner(EventLoop* loop, CoreWorkload* workload, OpExecutor executor,
                       RunnerConfig config)
    : loop_(loop), workload_(workload), executor_(std::move(executor)), config_(config) {
  assert(loop_ != nullptr && workload_ != nullptr && executor_ != nullptr);
  assert(config_.warmup + config_.cooldown < config_.duration);
}

bool LoadRunner::InMeasuredWindow(SimTime t) const {
  return t >= start_ + config_.warmup && t <= end_ - config_.cooldown;
}

void LoadRunner::IssueNext() {
  if (loop_->Now() >= end_) {
    return;  // trial over; session retires
  }
  const YcsbOp op = workload_->NextOp();
  const SimTime issued_at = loop_->Now();
  executor_(op, [this, issued_at](OpOutcome outcome) {
    // Attribute the sample to the window containing the issue time, like YCSB.
    if (InMeasuredWindow(issued_at)) {
      measured_ops_++;
      if (outcome.error) {
        errors_++;
      } else {
        final_view_.Record(outcome.final_latency);
        if (outcome.preliminary_latency.has_value()) {
          ops_with_preliminary_++;
          preliminary_.Record(*outcome.preliminary_latency);
          if (outcome.diverged) {
            divergences_++;
          }
        }
      }
    }
    IssueNext();
  });
}

void LoadRunner::StartSession() { IssueNext(); }

void LoadRunner::Begin() {
  start_ = loop_->Now();
  end_ = start_ + config_.duration;
  for (int i = 0; i < config_.threads; ++i) {
    StartSession();
  }
}

RunnerResult LoadRunner::Run() {
  Begin();
  // Let the trial and all in-flight completions drain.
  loop_->RunUntil(end_ + Seconds(5));
  return Collect();
}

RunnerResult LoadRunner::Collect() const {
  RunnerResult result;
  result.preliminary = preliminary_.Summarize();
  result.final_view = final_view_.Summarize();
  result.preliminary_samples = preliminary_;
  result.final_samples = final_view_;
  result.measured_ops = measured_ops_;
  result.ops_with_preliminary = ops_with_preliminary_;
  result.divergences = divergences_;
  result.errors = errors_;
  const SimDuration window = config_.duration - config_.warmup - config_.cooldown;
  result.throughput_ops = window > 0 ? static_cast<double>(measured_ops_) / ToSeconds(window) : 0;
  return result;
}

RunnerResult MergeRunnerResults(const std::vector<RunnerResult>& results) {
  RunnerResult merged;
  for (const RunnerResult& r : results) {
    merged.preliminary_samples.Merge(r.preliminary_samples);
    merged.final_samples.Merge(r.final_samples);
    merged.measured_ops += r.measured_ops;
    merged.ops_with_preliminary += r.ops_with_preliminary;
    merged.divergences += r.divergences;
    merged.errors += r.errors;
    merged.throughput_ops += r.throughput_ops;
  }
  merged.preliminary = merged.preliminary_samples.Summarize();
  merged.final_view = merged.final_samples.Summarize();
  return merged;
}

}  // namespace icg
