#include "src/ycsb/multi_runner.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace icg {

void MultiRunner::AddClient(const WorkloadConfig& workload, uint64_t seed,
                            OpExecutor executor) {
  workloads_.push_back(std::make_unique<CoreWorkload>(workload, seed));
  runners_.push_back(std::make_unique<LoadRunner>(loop_, workloads_.back().get(),
                                                  std::move(executor), config_));
}

void MultiRunner::Begin() {
  assert(!runners_.empty());
  for (auto& runner : runners_) {
    runner->Begin();
  }
}

RunnerResult MultiRunner::Collect() const {
  std::vector<RunnerResult> results;
  results.reserve(runners_.size());
  for (const auto& runner : runners_) {
    results.push_back(runner->Collect());
  }
  return MergeRunnerResults(results);
}

RunnerResult MultiRunner::Run() {
  Begin();
  SimTime latest_end = 0;
  for (const auto& runner : runners_) {
    latest_end = std::max(latest_end, runner->end_time());
  }
  loop_->RunUntil(latest_end + Seconds(5));
  return Collect();
}

}  // namespace icg
