// Key-choosing generators ported from YCSB (Cooper et al., SoCC'10), which the paper uses
// for workloads A, B, and C with Zipfian and Latest request distributions (§6).
#ifndef ICG_YCSB_GENERATORS_H_
#define ICG_YCSB_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "src/common/random.h"

namespace icg {

class IntegerGenerator {
 public:
  virtual ~IntegerGenerator() = default;
  virtual int64_t Next(Rng& rng) = 0;
};

class UniformGenerator : public IntegerGenerator {
 public:
  UniformGenerator(int64_t lo, int64_t hi) : lo_(lo), hi_(hi) {}
  int64_t Next(Rng& rng) override { return rng.NextInt(lo_, hi_); }

 private:
  int64_t lo_;
  int64_t hi_;
};

// Zipfian over [0, items) with the YCSB/Gray rejection-inversion style algorithm
// ("Quickly generating billion-record synthetic databases", Gray et al., SIGMOD'94).
// Rank 0 is the most popular item.
class ZipfianGenerator : public IntegerGenerator {
 public:
  static constexpr double kZipfianConstant = 0.99;

  explicit ZipfianGenerator(int64_t items, double zipfian_constant = kZipfianConstant);
  // Constructor with a precomputed zeta(n) — used by ScrambledZipfianGenerator, which
  // draws from a huge nominal item space with a published zetan constant.
  ZipfianGenerator(int64_t items, double zipfian_constant, double zetan);

  int64_t Next(Rng& rng) override;

  static double ComputeZeta(int64_t n, double theta);

 private:
  int64_t items_;
  double theta_;
  double zetan_;
  double zeta2theta_;
  double alpha_;
  double eta_;
};

// YCSB's "zipfian" request distribution: a Zipfian draw over a huge nominal item space,
// scattered over the actual keyspace by hashing. Spreads the popular ranks across the
// keyspace, making the *effective* skew milder than the raw Zipfian — which is why the
// paper's Figure 7 shows lower divergence for Zipfian than for Latest.
class ScrambledZipfianGenerator : public IntegerGenerator {
 public:
  explicit ScrambledZipfianGenerator(int64_t items);
  int64_t Next(Rng& rng) override;

 private:
  // Constants published in YCSB's ScrambledZipfianGenerator.
  static constexpr int64_t kItemCount = 10000000000LL;
  static constexpr double kZetan = 26.46902820178302;

  int64_t items_;
  ZipfianGenerator zipfian_;
};

// YCSB's "latest" request distribution: Zipfian over recency — rank 0 is the most
// recently inserted/updated item. Concentrated at the head of the keyspace history, so
// readers chase writers, maximizing the chance of observing replication lag.
class SkewedLatestGenerator : public IntegerGenerator {
 public:
  explicit SkewedLatestGenerator(int64_t initial_items);

  int64_t Next(Rng& rng) override;
  // Advances the insertion horizon (call when the workload inserts a new record).
  void AdvanceLast() { last_++; }
  int64_t last() const { return last_; }

 private:
  int64_t last_;
  ZipfianGenerator zipfian_;
};

}  // namespace icg

#endif  // ICG_YCSB_GENERATORS_H_
