// Closed-loop load runner: N simulated client threads issue operations back-to-back, as
// the YCSB client does. Follows the paper's methodology (§6.1): fixed-duration trials
// with the first and last intervals elided from measurement.
#ifndef ICG_YCSB_RUNNER_H_
#define ICG_YCSB_RUNNER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/sim/event_loop.h"
#include "src/ycsb/workload.h"

namespace icg {

// What one operation produced, reported by the executor when the op fully completes.
struct OpOutcome {
  // Set when the operation delivered a preliminary (weak) view.
  std::optional<SimDuration> preliminary_latency;
  SimDuration final_latency = 0;
  bool diverged = false;  // preliminary value differed from the final value
  bool error = false;
};

// Executes one workload operation against the system under test.
using OpExecutor = std::function<void(const YcsbOp& op, std::function<void(OpOutcome)> done)>;

struct RunnerConfig {
  int threads = 30;
  SimDuration duration = Seconds(60);
  SimDuration warmup = Seconds(15);   // elided from the front
  SimDuration cooldown = Seconds(15);  // elided from the back
};

struct RunnerResult {
  LatencySummary preliminary;
  LatencySummary final_view;
  // The raw samples behind the summaries, carried so several runners' results can be
  // merged histogram-aware (exact percentiles over the union of samples, rather than
  // meaningless averages of per-runner percentiles).
  LatencyRecorder preliminary_samples;
  LatencyRecorder final_samples;
  int64_t measured_ops = 0;
  int64_t ops_with_preliminary = 0;
  int64_t divergences = 0;
  int64_t errors = 0;
  double throughput_ops = 0.0;  // measured ops per second of measured window

  double DivergencePercent() const {
    return ops_with_preliminary == 0
               ? 0.0
               : 100.0 * static_cast<double>(divergences) /
                     static_cast<double>(ops_with_preliminary);
  }
};

// Aggregates per-client results from concurrent runners over one trial window into one
// system-wide result: counters and throughput add up, latency distributions are merged
// at the sample level and re-summarized (p50/p99 of the union).
RunnerResult MergeRunnerResults(const std::vector<RunnerResult>& results);

class LoadRunner {
 public:
  LoadRunner(EventLoop* loop, CoreWorkload* workload, OpExecutor executor, RunnerConfig config);

  // Runs the trial to completion in virtual time and returns the measured-window stats.
  // Convenience for a single runner; for several concurrent runners sharing a loop, call
  // Begin() on each, drive the loop past the trial end, then Collect().
  RunnerResult Run();

  // Starts the client sessions; the trial window begins at the loop's current time.
  void Begin();
  // Summarizes the measured window. Call after the loop ran past Begin()+duration.
  RunnerResult Collect() const;

  SimTime end_time() const { return end_; }

 private:
  void StartSession();
  void IssueNext();
  bool InMeasuredWindow(SimTime t) const;

  EventLoop* loop_;
  CoreWorkload* workload_;
  OpExecutor executor_;
  RunnerConfig config_;

  SimTime start_ = 0;
  SimTime end_ = 0;
  LatencyRecorder preliminary_;
  LatencyRecorder final_view_;
  int64_t measured_ops_ = 0;
  int64_t ops_with_preliminary_ = 0;
  int64_t divergences_ = 0;
  int64_t errors_ = 0;
};

}  // namespace icg

#endif  // ICG_YCSB_RUNNER_H_
