// YCSB CoreWorkload: operation mix + key/value generation for workloads A, B, and C.
#ifndef ICG_YCSB_WORKLOAD_H_
#define ICG_YCSB_WORKLOAD_H_

#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/ycsb/generators.h"

namespace icg {

enum class RequestDistribution { kUniform, kZipfian, kLatest };

const char* RequestDistributionName(RequestDistribution d);

struct WorkloadConfig {
  int64_t record_count = 1000;
  double read_proportion = 0.5;
  double update_proportion = 0.5;
  RequestDistribution request_distribution = RequestDistribution::kZipfian;
  // YCSB default record: 10 fields x 100 B. The paper's microbenchmarks use 100 B
  // objects, so field_count stays configurable.
  int field_length = 100;
  int field_count = 1;

  int64_t ValueBytes() const { return static_cast<int64_t>(field_length) * field_count; }

  // Workload A: update heavy, 50:50 read/write.
  static WorkloadConfig YcsbA(RequestDistribution d, int64_t records);
  // Workload B: read mostly, 95:5.
  static WorkloadConfig YcsbB(RequestDistribution d, int64_t records);
  // Workload C: read only.
  static WorkloadConfig YcsbC(RequestDistribution d, int64_t records);
};

struct YcsbOp {
  bool is_read = true;
  std::string key;
  std::string value;  // payload for updates; empty for reads
};

class CoreWorkload {
 public:
  CoreWorkload(const WorkloadConfig& config, uint64_t seed);

  YcsbOp NextOp();

  // Deterministic key naming, shared with dataset preloading.
  static std::string KeyForIndex(int64_t index);
  // Deterministic value payload of the configured size.
  std::string BuildValue(int64_t key_index);

  const WorkloadConfig& config() const { return config_; }

 private:
  int64_t NextKeyIndex();

  WorkloadConfig config_;
  Rng rng_;
  std::unique_ptr<IntegerGenerator> key_chooser_;
  SkewedLatestGenerator* latest_ = nullptr;  // non-null iff distribution == kLatest
  int64_t update_counter_ = 0;
};

}  // namespace icg

#endif  // ICG_YCSB_WORKLOAD_H_
