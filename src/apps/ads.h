// Ad serving system (§4.2, Listing 4; evaluated in §6.3.1 / Figure 11).
//
// Profiles reference 1-40 personalized ads; fetchAdsByUserId reads the reference list
// with ICG and speculatively prefetches the ads from the preliminary list.
#ifndef ICG_APPS_ADS_H_
#define ICG_APPS_ADS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/apps/ref_fetch.h"
#include "src/correctables/client.h"
#include "src/kvstore/cluster.h"

namespace icg {

struct AdsConfig {
  // Paper dataset: "100k user-profiles and 230k ads, where each profile references
  // between 1 and 40 random ads".
  int64_t num_profiles = 100000;
  int64_t num_ads = 230000;
  int min_refs = 1;
  int max_refs = 40;
  int64_t ad_bytes = 120;
  uint64_t seed = 42;
};

class AdsSystem {
 public:
  AdsSystem(CorrectableClient* client, AdsConfig config);

  static std::string ProfileKey(int64_t uid) { return "profile:" + std::to_string(uid); }
  static std::string AdKey(int64_t ad) { return "ad:" + std::to_string(ad); }

  // Deterministic dataset: the ads referenced by `uid` at content-version `version`
  // (version 0 is the preloaded state; updates bump it).
  std::vector<int64_t> RefsFor(int64_t uid, int64_t version) const;
  std::string ProfileValue(int64_t uid, int64_t version) const;
  std::string AdValue(int64_t ad) const;

  // Installs the full dataset on every replica.
  void Preload(KvCluster* cluster) const;

  // Listing 4: invoke(getPersonalizedAdsRefs(uid)).speculate(getAds).setCallbacks(...).
  void FetchAdsByUserId(int64_t uid, bool use_icg, std::function<void(RefFetchOutcome)> done);

  // An interest update: rewrites the profile's reference list (the workload's write op).
  void UpdateProfile(int64_t uid, int64_t version, std::function<void(bool ok)> done);

  const AdsConfig& config() const { return config_; }
  EventLoop* ClientLoop() const { return client_->loop(); }

 private:
  CorrectableClient* client_;
  AdsConfig config_;
  RefFetcher fetcher_;
};

}  // namespace icg

#endif  // ICG_APPS_ADS_H_
