// Twissandra-like microblogging service (§6.3.1 / Figure 11): get_timeline fetches the
// timeline (tweet IDs) with ICG and speculatively prefetches the tweets.
#ifndef ICG_APPS_TWISSANDRA_H_
#define ICG_APPS_TWISSANDRA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/apps/ref_fetch.h"
#include "src/correctables/client.h"
#include "src/kvstore/cluster.h"

namespace icg {

struct TwissandraConfig {
  // Paper dataset: "a corpus of 65k tweets spread over 22k user timelines".
  int64_t num_users = 22000;
  int64_t num_tweets = 65000;
  int max_timeline = 10;  // tweets per timeline
  int64_t tweet_bytes = 140;
  uint64_t seed = 7;
};

class Twissandra {
 public:
  Twissandra(CorrectableClient* client, TwissandraConfig config);

  static std::string TimelineKey(int64_t user) { return "timeline:" + std::to_string(user); }
  static std::string TweetKey(int64_t tweet) { return "tweet:" + std::to_string(tweet); }

  std::vector<int64_t> TimelineFor(int64_t user, int64_t version) const;
  std::string TimelineValue(int64_t user, int64_t version) const;
  std::string TweetValue(int64_t tweet) const;

  void Preload(KvCluster* cluster) const;

  // get_timeline: "(1) fetch the timeline (tweet IDs), and then (2) fetch each tweet by
  // its ID", step 2 speculating on the preliminary timeline when `use_icg` is set.
  void GetTimeline(int64_t user, bool use_icg, std::function<void(RefFetchOutcome)> done);

  // Posting rewrites the author's timeline (the workload's write op).
  void PostTweet(int64_t user, int64_t version, std::function<void(bool ok)> done);

  const TwissandraConfig& config() const { return config_; }
  EventLoop* ClientLoop() const { return client_->loop(); }

 private:
  CorrectableClient* client_;
  TwissandraConfig config_;
  RefFetcher fetcher_;
};

}  // namespace icg

#endif  // ICG_APPS_TWISSANDRA_H_
