#include "src/apps/news_reader.h"

#include <memory>
#include <utility>

namespace icg {

NewsReader::NewsReader(CorrectableClient* client) : client_(client) {}

std::vector<std::string> NewsReader::ParseItems(const std::string& value) {
  std::vector<std::string> items;
  size_t pos = 0;
  while (pos < value.size()) {
    size_t nl = value.find('\n', pos);
    if (nl == std::string::npos) {
      nl = value.size();
    }
    if (nl > pos) {
      items.push_back(value.substr(pos, nl - pos));
    }
    pos = nl + 1;
  }
  return items;
}

std::string NewsReader::JoinItems(const std::vector<std::string>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += '\n';
    }
    out += items[i];
  }
  return out;
}

void NewsReader::GetLatestNews(const std::string& feed,
                               std::function<void(const NewsRefresh&)> refresh,
                               std::function<void(std::vector<NewsRefresh>)> done) {
  EventLoop* loop = client_->loop();
  const SimTime start = loop != nullptr ? loop->Now() : 0;
  auto now = [loop, start]() { return loop != nullptr ? loop->Now() - start : 0; };
  auto history = std::make_shared<std::vector<NewsRefresh>>();

  auto record = [refresh, history, now](const View<OpResult>& v, bool is_final) {
    NewsRefresh r;
    r.items = v.value.found ? ParseItems(v.value.value) : std::vector<std::string>{};
    r.level = v.level;
    r.is_final = is_final;
    r.at = now();
    history->push_back(r);
    refresh(r);
  };

  client_->Invoke(Operation::Get(FeedKey(feed)))
      .SetCallbacks([record](const View<OpResult>& v) { record(v, false); },
                    [record, done, history](const View<OpResult>& v) {
                      record(v, true);
                      done(*history);
                    },
                    [done, history](const Status&) { done(*history); });
}

void NewsReader::PublishNews(const std::string& feed, const std::vector<std::string>& items,
                             std::function<void(bool)> done) {
  client_->InvokeStrong(Operation::Put(FeedKey(feed), JoinItems(items)))
      .SetCallbacks(nullptr, [done](const View<OpResult>&) { done(true); },
                    [done](const Status&) { done(false); });
}

}  // namespace icg
