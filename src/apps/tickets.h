// Ticket selling system (§4.3, Listing 5; evaluated in §6.3.2 / Figure 12).
//
// The ticket stock is a replicated queue. A purchase dequeues a ticket with invoke():
// if the preliminary view shows plenty of stock (position far from the end), the sale
// confirms immediately on weak consistency and the dequeue completes in the background;
// near the end of the stock the retailer waits for the atomic final view to avoid
// overselling.
#ifndef ICG_APPS_TICKETS_H_
#define ICG_APPS_TICKETS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/correctables/client.h"

namespace icg {

struct TicketConfig {
  std::string event = "concert";
  int64_t stock = 500;      // tickets initially enqueued (seq 0 .. stock-1)
  int64_t threshold = 20;   // switch to final views for the last `threshold` tickets
};

struct PurchaseOutcome {
  bool purchased = false;
  bool sold_out = false;
  bool via_preliminary = false;  // fast path: confirmed on the weak view
  int64_t ticket_seq = -1;
  SimDuration latency = 0;
};

class TicketSeller {
 public:
  // `client` must wrap a queue-capable binding (ZooKeeperBinding).
  TicketSeller(CorrectableClient* client, TicketConfig config);

  // Listing 5. `done` fires at decision time: immediately on the preliminary view when
  // stock is plentiful, otherwise when the final (atomic) view arrives.
  void PurchaseTicket(std::function<void(PurchaseOutcome)> done);

  // Tickets whose fast-path confirmation was later contradicted by the final view
  // ("revoked" tickets, §6.3.2 — the paper saw on average two, at most six).
  int64_t revocations() const { return revocations_; }
  int64_t preliminary_purchases() const { return preliminary_purchases_; }
  int64_t final_purchases() const { return final_purchases_; }

  const TicketConfig& config() const { return config_; }

 private:
  int64_t RemainingAfter(int64_t ticket_seq) const { return config_.stock - 1 - ticket_seq; }

  CorrectableClient* client_;
  TicketConfig config_;
  int64_t revocations_ = 0;
  int64_t preliminary_purchases_ = 0;
  int64_t final_purchases_ = 0;
};

}  // namespace icg

#endif  // ICG_APPS_TICKETS_H_
