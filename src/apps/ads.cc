#include "src/apps/ads.h"

#include <utility>

#include "src/common/digest.h"

namespace icg {
namespace {

// Deterministic per-entity randomness without a stateful RNG: hash of (seed, uid, slot).
uint64_t Mix(uint64_t seed, int64_t a, int64_t b) {
  uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(a) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<uint64_t>(b) + 0x94d049bb133111ebULL + (h << 6) + (h >> 2);
  h ^= h >> 31;
  return h;
}

}  // namespace

AdsSystem::AdsSystem(CorrectableClient* client, AdsConfig config)
    : client_(client), config_(config), fetcher_(client, "ad:") {}

std::vector<int64_t> AdsSystem::RefsFor(int64_t uid, int64_t version) const {
  const uint64_t h = Mix(config_.seed, uid, version);
  const int span = config_.max_refs - config_.min_refs + 1;
  const int count = config_.min_refs + static_cast<int>(h % static_cast<uint64_t>(span));
  std::vector<int64_t> refs;
  refs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    refs.push_back(static_cast<int64_t>(Mix(config_.seed, uid * 64 + i, version) %
                                        static_cast<uint64_t>(config_.num_ads)));
  }
  return refs;
}

std::string AdsSystem::ProfileValue(int64_t uid, int64_t version) const {
  return RefFetcher::JoinRefs(RefsFor(uid, version));
}

std::string AdsSystem::AdValue(int64_t ad) const {
  std::string value = "ad-" + std::to_string(ad) + ":";
  while (static_cast<int64_t>(value.size()) < config_.ad_bytes) {
    value += static_cast<char>('A' + (value.size() % 26));
  }
  value.resize(static_cast<size_t>(config_.ad_bytes));
  return value;
}

void AdsSystem::Preload(KvCluster* cluster) const {
  for (int64_t uid = 0; uid < config_.num_profiles; ++uid) {
    cluster->Preload(ProfileKey(uid), ProfileValue(uid, /*version=*/0));
  }
  for (int64_t ad = 0; ad < config_.num_ads; ++ad) {
    cluster->Preload(AdKey(ad), AdValue(ad));
  }
}

void AdsSystem::FetchAdsByUserId(int64_t uid, bool use_icg,
                                 std::function<void(RefFetchOutcome)> done) {
  fetcher_.Fetch(ProfileKey(uid), use_icg, std::move(done));
}

void AdsSystem::UpdateProfile(int64_t uid, int64_t version, std::function<void(bool)> done) {
  client_->InvokeStrong(Operation::Put(ProfileKey(uid), ProfileValue(uid, version)))
      .SetCallbacks(nullptr, [done](const View<OpResult>&) { done(true); },
                    [done](const Status&) { done(false); });
}

}  // namespace icg
