#include "src/apps/tickets.h"

#include <memory>
#include <utility>

namespace icg {

TicketSeller::TicketSeller(CorrectableClient* client, TicketConfig config)
    : client_(client), config_(std::move(config)) {}

void TicketSeller::PurchaseTicket(std::function<void(PurchaseOutcome)> done) {
  EventLoop* loop = client_->loop();
  const SimTime start = loop != nullptr ? loop->Now() : 0;
  auto now = [loop, start]() { return loop != nullptr ? loop->Now() - start : 0; };

  struct State {
    bool decided = false;
    PurchaseOutcome outcome;
  };
  auto state = std::make_shared<State>();

  client_->Invoke(Operation::Dequeue(config_.event))
      .SetCallbacks(
          // onUpdate — Listing 5: "if weakResult.ticketNr > THRESHOLD: done = true".
          [this, state, done, now](const View<OpResult>& weak) {
            if (state->decided) {
              return;
            }
            if (weak.value.found && RemainingAfter(weak.value.seqno) > config_.threshold) {
              state->decided = true;
              state->outcome.purchased = true;
              state->outcome.via_preliminary = true;
              state->outcome.ticket_seq = weak.value.seqno;
              state->outcome.latency = now();
              preliminary_purchases_++;
              done(state->outcome);
            }
          },
          // onFinal — either the authoritative decision, or a revocation check for a
          // sale already confirmed on the preliminary.
          [this, state, done, now](const View<OpResult>& strong) {
            if (state->decided) {
              if (!strong.value.found) {
                // The fast path promised a ticket the atomic dequeue could not deliver.
                revocations_++;
              }
              return;
            }
            state->decided = true;
            state->outcome.purchased = strong.value.found;
            state->outcome.sold_out = !strong.value.found;
            state->outcome.ticket_seq = strong.value.seqno;
            state->outcome.latency = now();
            if (strong.value.found) {
              final_purchases_++;
            }
            done(state->outcome);
          },
          [state, done, now](const Status&) {
            if (state->decided) {
              return;
            }
            state->decided = true;
            state->outcome.purchased = false;
            state->outcome.latency = now();
            done(state->outcome);
          });
}

}  // namespace icg
