#include "src/apps/twissandra.h"

#include <utility>

namespace icg {
namespace {

uint64_t Mix(uint64_t seed, int64_t a, int64_t b) {
  uint64_t h = seed ^ 0xd1b54a32d192ed03ULL;
  h ^= static_cast<uint64_t>(a) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<uint64_t>(b) + 0x94d049bb133111ebULL + (h << 6) + (h >> 2);
  h ^= h >> 31;
  return h;
}

}  // namespace

Twissandra::Twissandra(CorrectableClient* client, TwissandraConfig config)
    : client_(client), config_(config), fetcher_(client, "tweet:") {}

std::vector<int64_t> Twissandra::TimelineFor(int64_t user, int64_t version) const {
  const uint64_t h = Mix(config_.seed, user, version);
  const int count = 1 + static_cast<int>(h % static_cast<uint64_t>(config_.max_timeline));
  std::vector<int64_t> tweets;
  tweets.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    tweets.push_back(static_cast<int64_t>(Mix(config_.seed, user * 32 + i, version) %
                                          static_cast<uint64_t>(config_.num_tweets)));
  }
  return tweets;
}

std::string Twissandra::TimelineValue(int64_t user, int64_t version) const {
  return RefFetcher::JoinRefs(TimelineFor(user, version));
}

std::string Twissandra::TweetValue(int64_t tweet) const {
  std::string value = "tweet-" + std::to_string(tweet) + ": ";
  while (static_cast<int64_t>(value.size()) < config_.tweet_bytes) {
    value += static_cast<char>('a' + (value.size() % 26));
  }
  value.resize(static_cast<size_t>(config_.tweet_bytes));
  return value;
}

void Twissandra::Preload(KvCluster* cluster) const {
  for (int64_t user = 0; user < config_.num_users; ++user) {
    cluster->Preload(TimelineKey(user), TimelineValue(user, /*version=*/0));
  }
  for (int64_t tweet = 0; tweet < config_.num_tweets; ++tweet) {
    cluster->Preload(TweetKey(tweet), TweetValue(tweet));
  }
}

void Twissandra::GetTimeline(int64_t user, bool use_icg,
                             std::function<void(RefFetchOutcome)> done) {
  fetcher_.Fetch(TimelineKey(user), use_icg, std::move(done));
}

void Twissandra::PostTweet(int64_t user, int64_t version, std::function<void(bool)> done) {
  client_->InvokeStrong(Operation::Put(TimelineKey(user), TimelineValue(user, version)))
      .SetCallbacks(nullptr, [done](const View<OpResult>&) { done(true); },
                    [done](const Status&) { done(false); });
}

}  // namespace icg
