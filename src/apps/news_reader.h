// Smartphone news reader (§4.4, Listing 6): progressive display over a cached
// primary-backup binding. One logical access resolves three times — local cache, closest
// backup, distant primary — and the display refreshes on every update.
#ifndef ICG_APPS_NEWS_READER_H_
#define ICG_APPS_NEWS_READER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/correctables/client.h"

namespace icg {

struct NewsRefresh {
  std::vector<std::string> items;
  ConsistencyLevel level = ConsistencyLevel::kCache;
  bool is_final = false;
  SimDuration at = 0;  // latency from the request start
};

class NewsReader {
 public:
  // `client` must wrap a multi-level binding (CachedPbBinding).
  explicit NewsReader(CorrectableClient* client);

  static std::string FeedKey(const std::string& feed) { return "news:" + feed; }
  // Feed values are newline-separated headlines.
  static std::vector<std::string> ParseItems(const std::string& value);
  static std::string JoinItems(const std::vector<std::string>& items);

  // Listing 6: invoke(getLatestNews()).setCallbacks(onUpdate = refreshDisplay). Every
  // view (including the final) triggers `refresh`; `done` receives the full refresh
  // history when the final view lands.
  void GetLatestNews(const std::string& feed,
                     std::function<void(const NewsRefresh&)> refresh,
                     std::function<void(std::vector<NewsRefresh>)> done);

  // Publishes a headline list (write-through to cache + store).
  void PublishNews(const std::string& feed, const std::vector<std::string>& items,
                   std::function<void(bool ok)> done);

 private:
  CorrectableClient* client_;
};

}  // namespace icg

#endif  // ICG_APPS_NEWS_READER_H_
