// The reference-chasing speculation pattern shared by the ad-serving system and the
// Twissandra timeline (§4.2):
//
//   "the application needs to chase a pointer (reference) to the latest data ... We avoid
//    stale data by reading the references with invoke, and we mask the latency of the
//    final value by speculatively fetching objects based on the preliminary reference."
//
// Step 1 reads a reference list with ICG; step 2 prefetches the referenced objects
// speculatively from the preliminary list (strong reads, as in the paper's getAds). If
// the final reference list confirms the preliminary, the prefetch latency is fully
// hidden; otherwise the fetch re-executes on the corrected list.
#ifndef ICG_APPS_REF_FETCH_H_
#define ICG_APPS_REF_FETCH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/correctables/client.h"

namespace icg {

struct RefFetchOutcome {
  bool ok = false;
  size_t objects = 0;          // referenced objects delivered
  SimDuration latency = 0;     // total application-level latency
  std::optional<SimDuration> preliminary_latency;  // reference list preliminary view
  bool speculated = false;     // a preliminary view triggered a speculative prefetch
  bool misspeculated = false;  // the final reference list contradicted the preliminary
};

class RefFetcher {
 public:
  // Objects are stored under `object_key_prefix` + id; the reference value is a
  // comma-separated id list.
  RefFetcher(CorrectableClient* client, std::string object_key_prefix);

  // Two-step fetch. With `use_icg`, step 1 uses invoke() and step 2 runs speculatively on
  // the preliminary reference list; otherwise both steps are strong-only (the baseline of
  // Figure 11).
  void Fetch(const std::string& ref_key, bool use_icg, std::function<void(RefFetchOutcome)> done);

  static std::vector<int64_t> ParseRefs(const std::string& csv);
  static std::string JoinRefs(const std::vector<int64_t>& refs);

 private:
  // Strong-reads every referenced object in one batched request (multiget).
  Correctable<OpResult> FetchObjects(const OpResult& refs);

  CorrectableClient* client_;
  std::string object_key_prefix_;
};

}  // namespace icg

#endif  // ICG_APPS_REF_FETCH_H_
