#include "src/apps/ref_fetch.h"

#include <memory>
#include <utility>

namespace icg {

RefFetcher::RefFetcher(CorrectableClient* client, std::string object_key_prefix)
    : client_(client), object_key_prefix_(std::move(object_key_prefix)) {}

std::vector<int64_t> RefFetcher::ParseRefs(const std::string& csv) {
  std::vector<int64_t> refs;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    if (comma > pos) {
      refs.push_back(std::stoll(csv.substr(pos, comma - pos)));
    }
    pos = comma + 1;
  }
  return refs;
}

std::string RefFetcher::JoinRefs(const std::vector<int64_t>& refs) {
  std::string out;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(refs[i]);
  }
  return out;
}

Correctable<OpResult> RefFetcher::FetchObjects(const OpResult& refs) {
  if (!refs.found || refs.value.empty()) {
    return Correctable<OpResult>::FromValue(OpResult{});
  }
  const std::vector<int64_t> ids = ParseRefs(refs.value);
  std::vector<std::string> keys;
  keys.reserve(ids.size());
  for (const int64_t id : ids) {
    keys.push_back(object_key_prefix_ + std::to_string(id));
  }
  // One batched strong read, exactly like the paper's getAds: "The second storage access
  // is hidden inside getAds; this is a read with R = 2, incurring no extra cost" — only
  // step 1 uses ICG.
  return client_->InvokeStrong(Operation::MultiGet(std::move(keys)));
}

void RefFetcher::Fetch(const std::string& ref_key, bool use_icg,
                       std::function<void(RefFetchOutcome)> done) {
  EventLoop* loop = client_->loop();
  const SimTime start = loop != nullptr ? loop->Now() : 0;
  auto outcome = std::make_shared<RefFetchOutcome>();
  auto now = [loop, start]() { return loop != nullptr ? loop->Now() - start : 0; };

  auto finish_ok = [outcome, done, now](const View<OpResult>& v) {
    outcome->ok = true;
    outcome->objects = static_cast<size_t>(std::max<int64_t>(v.value.seqno, 0));
    outcome->latency = now();
    done(*outcome);
  };
  auto finish_err = [outcome, done, now](const Status&) {
    outcome->ok = false;
    outcome->latency = now();
    done(*outcome);
  };

  if (!use_icg) {
    // Baseline: two sequential strong reads (fetch references, then fetch objects).
    client_->InvokeStrong(Operation::Get(ref_key))
        .SetCallbacks(nullptr,
                      [this, outcome, finish_ok, finish_err](const View<OpResult>& refs) {
                        FetchObjects(refs.value)
                            .SetCallbacks(nullptr, finish_ok, finish_err);
                      },
                      finish_err);
    return;
  }

  auto refs = client_->Invoke(Operation::Get(ref_key));
  refs.OnUpdate([outcome, now](const View<OpResult>&) {
    if (!outcome->preliminary_latency.has_value()) {
      outcome->preliminary_latency = now();
      outcome->speculated = true;
    }
  });
  refs.Speculate([this](const OpResult& r) { return FetchObjects(r); },
                 [outcome](const OpResult&) { outcome->misspeculated = true; })
      .SetCallbacks(nullptr, finish_ok, finish_err);
}

}  // namespace icg
