// The Reddit-style motivating example (§4.1, Listings 1-2): ad-hoc cache-bypassing
// replaced by invokeWeak / invokeStrong over a coherent binding.
//
//   def user_messages(user, strong=False):
//     key = messages_key(user._id)
//     if strong: return invokeStrong(get(key))
//     else:      return invokeWeak(get(key))
#ifndef ICG_APPS_REDDIT_H_
#define ICG_APPS_REDDIT_H_

#include <string>

#include "src/correctables/client.h"

namespace icg {

inline std::string MessagesKey(int64_t user_id) { return "messages:" + std::to_string(user_id); }

// Listing 2, transcribed. Cache coherence and bypassing live entirely in the binding.
inline Correctable<OpResult> UserMessages(CorrectableClient& client, int64_t user_id,
                                          bool strong = false) {
  const Operation op = Operation::Get(MessagesKey(user_id));
  return strong ? client.InvokeStrong(op) : client.InvokeWeak(op);
}

}  // namespace icg

#endif  // ICG_APPS_REDDIT_H_
