// Nakamoto-style blockchain simulator for the paper's §4.5 blockchain use case
// ("Correctables can track transaction confirmations as they accumulate ... a use-case we
// also implemented").
//
// Blocks arrive as a Poisson process. Each new block includes all mempool transactions.
// With a configurable probability the newest tip is orphaned by a competing block,
// returning its transactions to the mempool — so confirmation counts can regress before
// the transaction becomes effectively irreversible at `confirm_depth` confirmations.
#ifndef ICG_STORES_CHAIN_SIM_H_
#define ICG_STORES_CHAIN_SIM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/event_loop.h"

namespace icg {

struct ChainConfig {
  SimDuration mean_block_interval = Seconds(600);  // Bitcoin-like default
  double orphan_probability = 0.05;                // chance a new tip gets orphaned
  int confirm_depth = 6;                           // "irrevocable" threshold
};

class ChainSim {
 public:
  ChainSim(EventLoop* loop, const ChainConfig& config, uint64_t seed);

  // Begins block production (idempotent).
  void Start();

  // Tracks a transaction. `on_progress(confirmations, irreversible)` fires whenever the
  // transaction's confirmation count changes (including regressions to 0 on reorgs) and
  // a final time with irreversible=true once `confirm_depth` confirmations accumulate,
  // after which tracking stops.
  void SubmitTransaction(const std::string& txid,
                         std::function<void(int confirmations, bool irreversible)> on_progress);

  int64_t height() const { return height_; }
  int64_t blocks_mined() const { return blocks_mined_; }
  int64_t orphans() const { return orphans_; }

 private:
  struct TrackedTx {
    int64_t included_height = -1;  // -1 = in mempool
    std::function<void(int, bool)> on_progress;
    int last_reported = -1;
  };

  void ScheduleNextBlock();
  void MineBlock();
  void NotifyAll();
  int ConfirmationsOf(const TrackedTx& tx) const;

  EventLoop* loop_;
  ChainConfig config_;
  Rng rng_;
  bool started_ = false;
  int64_t height_ = 0;
  int64_t blocks_mined_ = 0;
  int64_t orphans_ = 0;
  std::map<std::string, TrackedTx> txs_;
};

}  // namespace icg

#endif  // ICG_STORES_CHAIN_SIM_H_
