#include "src/stores/pb_store.h"

#include <cassert>
#include <utility>

namespace icg {

PbNode::PbNode(Network* network, NodeId id, const PbConfig* config, const std::string& name)
    : network_(network), id_(id), config_(config), service_(network->loop(), name) {}

void PbNode::HandleRead(NodeId client_id, const std::string& key, PbResponseFn respond) {
  service_.Submit(config_->read_service, [this, client_id, key, respond = std::move(respond)]() {
    OpResult result;
    if (auto it = storage_.find(key); it != storage_.end()) {
      result.found = true;
      result.value = it->second.value;
      result.version = it->second.version;
    }
    network_->Send(id_, client_id, result.WireBytes(), [respond, result]() { respond(result); });
  });
}

void PbNode::HandleWrite(NodeId client_id, const std::string& key, std::string value,
                         PbResponseFn respond) {
  service_.Submit(config_->write_service, [this, client_id, key, value = std::move(value),
                                           respond = std::move(respond)]() mutable {
    write_seq_ = std::max(static_cast<uint64_t>(network_->loop()->Now()), write_seq_ + 1);
    const Version version{static_cast<SimTime>(write_seq_), id_};
    storage_[key] = Entry{value, version};

    OpResult ack;
    ack.found = true;
    ack.version = version;
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() { respond(ack); });

    for (PbNode* backup : backups_) {
      const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                            static_cast<int64_t>(value.size());
      network_->Send(id_, backup->id(), bytes, [backup, key, value, version]() {
        backup->ApplyReplicated(key, value, version);
      });
    }
  });
}

void PbNode::ApplyReplicated(const std::string& key, std::string value, Version version) {
  service_.Submit(config_->apply_service, [this, key, value = std::move(value), version]() {
    auto it = storage_.find(key);
    if (it == storage_.end() || it->second.version < version) {
      storage_[key] = Entry{value, version};
    }
  });
}

std::optional<std::string> PbNode::LocalGet(const std::string& key) const {
  auto it = storage_.find(key);
  if (it == storage_.end()) {
    return std::nullopt;
  }
  return it->second.value;
}

void PbNode::LocalPut(const std::string& key, std::string value, Version version) {
  storage_[key] = Entry{std::move(value), version};
}

PbClient::PbClient(Network* network, NodeId id, PbNode* primary, PbNode* backup)
    : network_(network), id_(id), primary_(primary), backup_(backup) {
  assert(primary_ != nullptr && backup_ != nullptr);
}

void PbClient::ReadFrom(PbNode* node, const std::string& key, PbResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size());
  const NodeId self = id_;
  network_->Send(id_, node->id(), bytes, [node, self, key, respond = std::move(respond)]() {
    node->HandleRead(self, key, respond);
  });
}

void PbClient::ReadWeak(const std::string& key, PbResponseFn respond) {
  ReadFrom(backup_, key, std::move(respond));
}

void PbClient::ReadStrong(const std::string& key, PbResponseFn respond) {
  ReadFrom(primary_, key, std::move(respond));
}

void PbClient::Write(const std::string& key, std::string value, PbResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                        static_cast<int64_t>(value.size());
  PbNode* primary = primary_;
  const NodeId self = id_;
  network_->Send(id_, primary_->id(), bytes,
                 [primary, self, key, value = std::move(value),
                  respond = std::move(respond)]() mutable {
                   primary->HandleWrite(self, key, std::move(value), respond);
                 });
}

PbCluster::PbCluster(Network* network, Topology* topology, const PbConfig* config,
                     const std::vector<Region>& regions)
    : network_(network), topology_(topology) {
  assert(regions.size() >= 2 && "need a primary and at least one backup");
  for (size_t i = 0; i < regions.size(); ++i) {
    const std::string name =
        std::string(i == 0 ? "pb-primary-" : "pb-backup-") + RegionName(regions[i]);
    const NodeId id = topology->AddNode(regions[i], name);
    nodes_.push_back(std::make_unique<PbNode>(network, id, config, name));
  }
  std::vector<PbNode*> backups;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    backups.push_back(nodes_[i].get());
  }
  nodes_.front()->SetBackups(std::move(backups));
}

PbNode* PbCluster::NodeIn(Region region) {
  for (auto& node : nodes_) {
    if (topology_->RegionOf(node->id()) == region) {
      return node.get();
    }
  }
  return nullptr;
}

std::unique_ptr<PbClient> PbCluster::MakeClient(Region client_region, Region backup_region) {
  PbNode* backup = NodeIn(backup_region);
  assert(backup != nullptr && backup != primary() && "backup_region must host a backup");
  const NodeId id =
      topology_->AddNode(client_region, std::string("pbcli-") + RegionName(client_region));
  return std::make_unique<PbClient>(network_, id, primary(), backup);
}

void PbCluster::Preload(const std::string& key, const std::string& value) {
  for (auto& node : nodes_) {
    node->LocalPut(key, value, Version{1, primary()->id()});
  }
}

}  // namespace icg
