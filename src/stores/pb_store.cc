#include "src/stores/pb_store.h"

#include <cassert>
#include <utility>

namespace icg {

PbNode::PbNode(Network* network, NodeId id, const PbConfig* config, const std::string& name)
    : network_(network), id_(id), config_(config), service_(network->loop(), name) {}

void PbNode::HandleRead(NodeId client_id, const std::string& key, PbResponseFn respond) {
  service_.Submit(config_->read_service, [this, client_id, key, respond = std::move(respond)]() {
    OpResult result;
    if (auto it = storage_.find(key); it != storage_.end()) {
      result.found = true;
      result.value = it->second.value;
      result.version = it->second.version;
    }
    network_->Send(id_, client_id, result.WireBytes(), [respond, result]() { respond(result); });
  });
}

void PbNode::HandleMultiRead(NodeId client_id, std::vector<std::string> keys,
                             PbResponseFn respond) {
  const SimDuration service =
      config_->read_service + (keys.empty() ? 0
                                            : static_cast<SimDuration>(keys.size() - 1) *
                                                  config_->multi_per_key_service);
  service_.Submit(service, [this, client_id, keys = std::move(keys),
                            respond = std::move(respond)]() {
    const OpResult result =
        JoinMultiLookup(keys, [this](const std::string& key) -> std::optional<OpResult> {
          auto it = storage_.find(key);
          if (it == storage_.end()) {
            return std::nullopt;
          }
          OpResult hit;
          hit.found = true;
          hit.value = it->second.value;
          hit.version = it->second.version;
          return hit;
        });
    network_->Send(id_, client_id, result.WireBytes(), [respond, result]() { respond(result); });
  });
}

void PbNode::HandleWrite(NodeId client_id, const std::string& key, std::string value,
                         PbResponseFn respond) {
  service_.Submit(config_->write_service, [this, client_id, key, value = std::move(value),
                                           respond = std::move(respond)]() mutable {
    write_seq_ = std::max(static_cast<uint64_t>(network_->loop()->Now()), write_seq_ + 1);
    const Version version{static_cast<SimTime>(write_seq_), id_};
    storage_[key] = Entry{value, version};

    OpResult ack;
    ack.found = true;
    ack.version = version;
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() { respond(ack); });

    for (PbNode* backup : backups_) {
      const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                            static_cast<int64_t>(value.size());
      network_->Send(id_, backup->id(), bytes, [backup, key, value, version]() {
        backup->ApplyReplicated(key, value, version);
      });
    }
  });
}

void PbNode::HandleMultiWrite(NodeId client_id, std::vector<std::string> keys,
                              std::vector<std::string> values, PbResponseFn respond) {
  if (keys.empty() || keys.size() != values.size()) {
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond = std::move(respond)]() {
      respond(Status::InvalidArgument("multiwrite needs matching non-empty key/value lists"));
    });
    return;
  }
  const SimDuration service =
      config_->write_service +
      static_cast<SimDuration>(keys.size() - 1) * config_->multi_per_key_service;
  service_.Submit(service, [this, client_id, keys = std::move(keys),
                            values = std::move(values), respond = std::move(respond)]() mutable {
    OpResult ack;
    ack.found = true;
    ack.seqno = static_cast<int64_t>(keys.size());
    ack.key_found.assign(keys.size(), true);
    for (size_t i = 0; i < keys.size(); ++i) {
      write_seq_ = std::max(static_cast<uint64_t>(network_->loop()->Now()), write_seq_ + 1);
      const Version version{static_cast<SimTime>(write_seq_), id_};
      ack.version = version;
      ack.key_versions.push_back(version);
      storage_[keys[i]] = Entry{values[i], version};
      for (PbNode* backup : backups_) {
        const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(keys[i].size()) +
                              static_cast<int64_t>(values[i].size());
        network_->Send(id_, backup->id(), bytes,
                       [backup, key = keys[i], value = values[i], version]() {
                         backup->ApplyReplicated(key, value, version);
                       });
      }
    }
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() { respond(ack); });
  });
}

void PbNode::ApplyReplicated(const std::string& key, std::string value, Version version) {
  service_.Submit(config_->apply_service, [this, key, value = std::move(value), version]() {
    auto it = storage_.find(key);
    if (it == storage_.end() || it->second.version < version) {
      storage_[key] = Entry{value, version};
    }
  });
}

std::optional<std::string> PbNode::LocalGet(const std::string& key) const {
  auto it = storage_.find(key);
  if (it == storage_.end()) {
    return std::nullopt;
  }
  return it->second.value;
}

void PbNode::LocalPut(const std::string& key, std::string value, Version version) {
  storage_[key] = Entry{std::move(value), version};
}

PbClient::PbClient(Network* network, NodeId id, PbNode* primary, PbNode* backup)
    : network_(network), id_(id), primary_(primary), backup_(backup) {
  assert(primary_ != nullptr && backup_ != nullptr);
}

void PbClient::ReadFrom(PbNode* node, const std::string& key, PbResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size());
  const NodeId self = id_;
  network_->Send(id_, node->id(), bytes, [node, self, key, respond = std::move(respond)]() {
    node->HandleRead(self, key, respond);
  });
}

void PbClient::MultiReadFrom(PbNode* node, std::vector<std::string> keys,
                             PbResponseFn respond) {
  int64_t bytes = kRequestHeaderBytes;
  for (const auto& key : keys) {
    bytes += static_cast<int64_t>(key.size()) + 2;
  }
  const NodeId self = id_;
  network_->Send(id_, node->id(), bytes,
                 [node, self, keys = std::move(keys), respond = std::move(respond)]() mutable {
                   node->HandleMultiRead(self, std::move(keys), respond);
                 });
}

void PbClient::ReadWeak(const std::string& key, PbResponseFn respond) {
  ReadFrom(backup_, key, std::move(respond));
}

void PbClient::ReadStrong(const std::string& key, PbResponseFn respond) {
  ReadFrom(primary_, key, std::move(respond));
}

void PbClient::MultiReadWeak(std::vector<std::string> keys, PbResponseFn respond) {
  MultiReadFrom(backup_, std::move(keys), std::move(respond));
}

void PbClient::MultiReadStrong(std::vector<std::string> keys, PbResponseFn respond) {
  MultiReadFrom(primary_, std::move(keys), std::move(respond));
}

void PbClient::MultiWrite(std::vector<std::string> keys, std::vector<std::string> values,
                          PbResponseFn respond) {
  int64_t bytes = kRequestHeaderBytes;
  for (const auto& key : keys) {
    bytes += static_cast<int64_t>(key.size()) + 2;
  }
  for (const auto& value : values) {
    bytes += static_cast<int64_t>(value.size()) + 2;
  }
  PbNode* primary = primary_;
  const NodeId self = id_;
  network_->Send(id_, primary_->id(), bytes,
                 [primary, self, keys = std::move(keys), values = std::move(values),
                  respond = std::move(respond)]() mutable {
                   primary->HandleMultiWrite(self, std::move(keys), std::move(values), respond);
                 });
}

void PbClient::Write(const std::string& key, std::string value, PbResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                        static_cast<int64_t>(value.size());
  PbNode* primary = primary_;
  const NodeId self = id_;
  network_->Send(id_, primary_->id(), bytes,
                 [primary, self, key, value = std::move(value),
                  respond = std::move(respond)]() mutable {
                   primary->HandleWrite(self, key, std::move(value), respond);
                 });
}

PbCluster::PbCluster(Network* network, Topology* topology, const PbConfig* config,
                     const std::vector<Region>& regions)
    : network_(network), topology_(topology) {
  assert(regions.size() >= 2 && "need a primary and at least one backup");
  for (size_t i = 0; i < regions.size(); ++i) {
    const std::string name =
        std::string(i == 0 ? "pb-primary-" : "pb-backup-") + RegionName(regions[i]);
    const NodeId id = topology->AddNode(regions[i], name);
    nodes_.push_back(std::make_unique<PbNode>(network, id, config, name));
  }
  std::vector<PbNode*> backups;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    backups.push_back(nodes_[i].get());
  }
  nodes_.front()->SetBackups(std::move(backups));
}

PbNode* PbCluster::NodeIn(Region region) {
  for (auto& node : nodes_) {
    if (topology_->RegionOf(node->id()) == region) {
      return node.get();
    }
  }
  return nullptr;
}

std::unique_ptr<PbClient> PbCluster::MakeClient(Region client_region, Region backup_region) {
  PbNode* backup = NodeIn(backup_region);
  assert(backup != nullptr && backup != primary() && "backup_region must host a backup");
  const NodeId id =
      topology_->AddNode(client_region, std::string("pbcli-") + RegionName(client_region));
  return std::make_unique<PbClient>(network_, id, primary(), backup);
}

void PbCluster::Preload(const std::string& key, const std::string& value) {
  for (auto& node : nodes_) {
    node->LocalPut(key, value, Version{1, primary()->id()});
  }
}

}  // namespace icg
