#include "src/stores/causal_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace icg {

CausalReplica::CausalReplica(Network* network, NodeId id, const CausalConfig* config,
                             const std::string& name)
    : network_(network), id_(id), config_(config), service_(network->loop(), name) {}

void CausalReplica::SetOriginIndex(int index, int num_replicas) {
  origin_index_ = index;
  applied_clock_.assign(static_cast<size_t>(num_replicas), 0);
}

void CausalReplica::HandleRead(NodeId client_id, const std::string& key,
                               CausalResponseFn respond) {
  service_.Submit(config_->read_service, [this, client_id, key, respond = std::move(respond)]() {
    OpResult result;
    if (auto it = storage_.find(key); it != storage_.end()) {
      result.found = true;
      result.value = it->second.value;
      result.version = it->second.version;
    }
    network_->Send(id_, client_id, result.WireBytes(), [respond, result]() { respond(result); });
  });
}

void CausalReplica::HandleMultiRead(NodeId client_id, std::vector<std::string> keys,
                                    CausalResponseFn respond) {
  const SimDuration service =
      config_->read_service + (keys.empty() ? 0
                                            : static_cast<SimDuration>(keys.size() - 1) *
                                                  config_->multi_per_key_service);
  service_.Submit(service, [this, client_id, keys = std::move(keys),
                            respond = std::move(respond)]() {
    const OpResult result =
        JoinMultiLookup(keys, [this](const std::string& key) -> std::optional<OpResult> {
          auto it = storage_.find(key);
          if (it == storage_.end()) {
            return std::nullopt;
          }
          OpResult hit;
          hit.found = true;
          hit.value = it->second.value;
          hit.version = it->second.version;
          return hit;
        });
    network_->Send(id_, client_id, result.WireBytes(), [respond, result]() { respond(result); });
  });
}

// Applies one locally originated write and replicates it with the dependency snapshot:
// everything applied here happens-before this write, so remote replicas must reach this
// clock before applying it.
Version CausalReplica::ApplyLocalWrite(const std::string& key, const std::string& value) {
  lamport_++;
  const Version version{lamport_, id_};
  const int64_t origin_seq = next_origin_seq_++;
  storage_[key] = Entry{value, version};
  applied_clock_[static_cast<size_t>(origin_index_)] = origin_seq;

  const std::vector<int64_t> deps = applied_clock_;
  for (CausalReplica* peer : peers_) {
    const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                          static_cast<int64_t>(value.size()) +
                          static_cast<int64_t>(deps.size()) * 8;
    const int origin = origin_index_;
    network_->Send(id_, peer->id(), bytes,
                   [peer, origin, origin_seq, deps, key, value, version]() {
                     peer->HandleReplicated(origin, origin_seq, deps, key, value, version);
                   });
  }
  return version;
}

void CausalReplica::HandleWrite(NodeId client_id, const std::string& key, std::string value,
                                CausalResponseFn respond) {
  service_.Submit(config_->write_service, [this, client_id, key, value = std::move(value),
                                           respond = std::move(respond)]() mutable {
    OpResult ack;
    ack.found = true;
    ack.version = ApplyLocalWrite(key, value);
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() { respond(ack); });
  });
}

void CausalReplica::HandleMultiWrite(NodeId client_id, std::vector<std::string> keys,
                                     std::vector<std::string> values, CausalResponseFn respond) {
  if (keys.empty() || keys.size() != values.size()) {
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond = std::move(respond)]() {
      respond(Status::InvalidArgument("multiwrite needs matching non-empty key/value lists"));
    });
    return;
  }
  const SimDuration service =
      config_->write_service +
      static_cast<SimDuration>(keys.size() - 1) * config_->multi_per_key_service;
  service_.Submit(service, [this, client_id, keys = std::move(keys),
                            values = std::move(values), respond = std::move(respond)]() mutable {
    // Entries apply in vector order: each write's dependency snapshot includes its batch
    // predecessors, so remote replicas preserve the batch's internal program order too.
    OpResult ack;
    ack.found = true;
    ack.key_found.assign(keys.size(), true);
    for (size_t i = 0; i < keys.size(); ++i) {
      ack.version = ApplyLocalWrite(keys[i], values[i]);
      ack.key_versions.push_back(ack.version);
    }
    ack.seqno = static_cast<int64_t>(keys.size());
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() { respond(ack); });
  });
}

void CausalReplica::HandleReplicated(int origin, int64_t origin_seq, std::vector<int64_t> deps,
                                     const std::string& key, std::string value, Version version) {
  service_.Submit(config_->apply_service,
                  [this, origin, origin_seq, deps = std::move(deps), key,
                   value = std::move(value), version]() mutable {
                    pending_.push_back(PendingWrite{origin, origin_seq, std::move(deps), key,
                                                    std::move(value), version});
                    TryApplyPending();
                  });
}

bool CausalReplica::DepsSatisfied(const PendingWrite& write) const {
  // The write itself accounts for one slot of its origin's clock: dependency on its own
  // origin is "everything the origin applied before it", i.e. origin_seq - 1.
  for (size_t i = 0; i < applied_clock_.size(); ++i) {
    const int64_t needed = (static_cast<int>(i) == write.origin)
                               ? write.origin_seq - 1
                               : write.deps[i];
    if (applied_clock_[i] < needed) {
      return false;
    }
  }
  // Per-origin FIFO: apply origin's writes in sequence order.
  return applied_clock_[static_cast<size_t>(write.origin)] == write.origin_seq - 1;
}

void CausalReplica::ApplyWrite(const PendingWrite& write) {
  auto it = storage_.find(write.key);
  if (it == storage_.end() || it->second.version < write.version) {
    storage_[write.key] = Entry{write.value, write.version};
  }
  lamport_ = std::max(lamport_, write.version.timestamp);
  applied_clock_[static_cast<size_t>(write.origin)] = write.origin_seq;
}

void CausalReplica::TryApplyPending() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (DepsSatisfied(*it)) {
        ApplyWrite(*it);
        pending_.erase(it);
        progressed = true;
        break;  // iterators invalidated; rescan
      }
    }
  }
}

std::optional<std::string> CausalReplica::LocalGet(const std::string& key) const {
  auto it = storage_.find(key);
  if (it == storage_.end()) {
    return std::nullopt;
  }
  return it->second.value;
}

void CausalReplica::LocalPut(const std::string& key, std::string value, Version version) {
  storage_[key] = Entry{std::move(value), version};
}

std::optional<OpResult> ClientCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_++;
    return std::nullopt;
  }
  hits_++;
  return it->second;
}

void ClientCache::Put(const std::string& key, const OpResult& result) {
  if (entries_.find(key) == entries_.end()) {
    lru_.push_back(key);
  }
  entries_[key] = result;
  EvictIfNeeded();
}

void ClientCache::Refresh(const std::string& key, const OpResult& result) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.found && it->second.version > result.version) {
    return;  // cached entry is fresher; a reordered weaker view must not regress it
  }
  Put(key, result);
}

void ClientCache::Invalidate(const std::string& key) { entries_.erase(key); }

void ClientCache::Clear() {
  entries_.clear();
  lru_.clear();
}

void ClientCache::EvictIfNeeded() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.front());
    lru_.pop_front();
  }
}

CausalClient::CausalClient(Network* network, NodeId id, CausalReplica* replica)
    : network_(network), id_(id), replica_(replica) {
  assert(replica_ != nullptr);
}

void CausalClient::Read(const std::string& key, CausalResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size());
  CausalReplica* replica = replica_;
  const NodeId self = id_;
  network_->Send(id_, replica_->id(), bytes, [replica, self, key, respond = std::move(respond)]() {
    replica->HandleRead(self, key, respond);
  });
}

void CausalClient::MultiRead(std::vector<std::string> keys, CausalResponseFn respond) {
  int64_t bytes = kRequestHeaderBytes;
  for (const auto& key : keys) {
    bytes += static_cast<int64_t>(key.size()) + 2;
  }
  CausalReplica* replica = replica_;
  const NodeId self = id_;
  network_->Send(id_, replica_->id(), bytes,
                 [replica, self, keys = std::move(keys), respond = std::move(respond)]() mutable {
                   replica->HandleMultiRead(self, std::move(keys), respond);
                 });
}

void CausalClient::MultiWrite(std::vector<std::string> keys, std::vector<std::string> values,
                              CausalResponseFn respond) {
  int64_t bytes = kRequestHeaderBytes;
  for (const auto& key : keys) {
    bytes += static_cast<int64_t>(key.size()) + 2;
  }
  for (const auto& value : values) {
    bytes += static_cast<int64_t>(value.size()) + 2;
  }
  CausalReplica* replica = replica_;
  const NodeId self = id_;
  network_->Send(id_, replica_->id(), bytes,
                 [replica, self, keys = std::move(keys), values = std::move(values),
                  respond = std::move(respond)]() mutable {
                   replica->HandleMultiWrite(self, std::move(keys), std::move(values), respond);
                 });
}

void CausalClient::Write(const std::string& key, std::string value, CausalResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                        static_cast<int64_t>(value.size());
  CausalReplica* replica = replica_;
  const NodeId self = id_;
  network_->Send(id_, replica_->id(), bytes,
                 [replica, self, key, value = std::move(value),
                  respond = std::move(respond)]() mutable {
                   replica->HandleWrite(self, key, std::move(value), respond);
                 });
}

CausalCluster::CausalCluster(Network* network, Topology* topology, const CausalConfig* config,
                             const std::vector<Region>& regions)
    : network_(network), topology_(topology) {
  for (const Region region : regions) {
    const std::string name = std::string("causal-") + RegionName(region);
    const NodeId id = topology->AddNode(region, name);
    replicas_.push_back(std::make_unique<CausalReplica>(network, id, config, name));
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    std::vector<CausalReplica*> peers;
    for (auto& other : replicas_) {
      if (other.get() != replicas_[i].get()) {
        peers.push_back(other.get());
      }
    }
    replicas_[i]->SetPeers(std::move(peers));
    replicas_[i]->SetOriginIndex(static_cast<int>(i), static_cast<int>(regions.size()));
  }
}

CausalReplica* CausalCluster::ReplicaIn(Region region) {
  for (auto& replica : replicas_) {
    if (topology_->RegionOf(replica->id()) == region) {
      return replica.get();
    }
  }
  return nullptr;
}

std::unique_ptr<CausalClient> CausalCluster::MakeClient(Region client_region,
                                                        Region replica_region) {
  CausalReplica* replica = ReplicaIn(replica_region);
  assert(replica != nullptr);
  const NodeId id =
      topology_->AddNode(client_region, std::string("causalcli-") + RegionName(client_region));
  return std::make_unique<CausalClient>(network_, id, replica);
}

void CausalCluster::Preload(const std::string& key, const std::string& value) {
  for (auto& replica : replicas_) {
    replica->LocalPut(key, value, Version{1, replicas_.front()->id()});
  }
}

}  // namespace icg
