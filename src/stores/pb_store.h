// Primary-backup replicated key-value store: the storage scheme of the paper's Listing 7
// binding example and the news-reader scenario (§4.4).
//
// Writes go to the primary, which applies them and propagates asynchronously to backups.
// Weak reads hit the client's nearest backup (fresh on expectation, possibly stale);
// strong reads hit the primary.
#ifndef ICG_STORES_PB_STORE_H_
#define ICG_STORES_PB_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/correctables/operation.h"
#include "src/sim/network.h"
#include "src/sim/service_queue.h"
#include "src/sim/topology.h"

namespace icg {

struct PbConfig {
  SimDuration read_service = Micros(200);
  SimDuration write_service = Micros(300);
  SimDuration apply_service = Micros(150);
  // Incremental cost per additional key in a batched (multi-key) read or write.
  SimDuration multi_per_key_service = Micros(50);
};

// 96 inline bytes: the pipeline's EmitAt adapters (a captured emitter plus a level)
// must reach the store without a heap-allocated callback per request.
using PbResponseFn = InlineFunction<void(StatusOr<OpResult>), 96>;

class PbNode {
 public:
  PbNode(Network* network, NodeId id, const PbConfig* config, const std::string& name);

  // On the primary: the backup set. On backups: empty.
  void SetBackups(std::vector<PbNode*> backups) { backups_ = std::move(backups); }

  void HandleRead(NodeId client_id, const std::string& key, PbResponseFn respond);
  // Batched read: one request, one response joining per-key payloads in request order
  // (kMultiValueSeparator wire format; `found` = every key found, `seqno` = keys found).
  void HandleMultiRead(NodeId client_id, std::vector<std::string> keys, PbResponseFn respond);
  // Primary only: apply, ack, propagate.
  void HandleWrite(NodeId client_id, const std::string& key, std::string value,
                   PbResponseFn respond);
  // Primary only: apply several writes in vector order (program order per key), one ack,
  // propagate each to the backups.
  void HandleMultiWrite(NodeId client_id, std::vector<std::string> keys,
                        std::vector<std::string> values, PbResponseFn respond);
  // Backup side of asynchronous propagation.
  void ApplyReplicated(const std::string& key, std::string value, Version version);

  NodeId id() const { return id_; }
  ServiceQueue& service_queue() { return service_; }

  std::optional<std::string> LocalGet(const std::string& key) const;
  void LocalPut(const std::string& key, std::string value, Version version);

 private:
  struct Entry {
    std::string value;
    Version version;
  };

  Network* network_;
  NodeId id_;
  const PbConfig* config_;
  ServiceQueue service_;
  std::vector<PbNode*> backups_;
  std::map<std::string, Entry> storage_;
  uint64_t write_seq_ = 0;
};

class PbClient {
 public:
  PbClient(Network* network, NodeId id, PbNode* primary, PbNode* backup);

  void ReadWeak(const std::string& key, PbResponseFn respond);    // nearest backup
  void ReadStrong(const std::string& key, PbResponseFn respond);  // primary
  void Write(const std::string& key, std::string value, PbResponseFn respond);

  // Batched variants: one round-trip covering several keys (cross-tick batching).
  void MultiReadWeak(std::vector<std::string> keys, PbResponseFn respond);
  void MultiReadStrong(std::vector<std::string> keys, PbResponseFn respond);
  void MultiWrite(std::vector<std::string> keys, std::vector<std::string> values,
                  PbResponseFn respond);

  NodeId id() const { return id_; }

 private:
  void ReadFrom(PbNode* node, const std::string& key, PbResponseFn respond);
  void MultiReadFrom(PbNode* node, std::vector<std::string> keys, PbResponseFn respond);

  Network* network_;
  NodeId id_;
  PbNode* primary_;
  PbNode* backup_;
};

class PbCluster {
 public:
  // First region hosts the primary; the rest host backups.
  PbCluster(Network* network, Topology* topology, const PbConfig* config,
            const std::vector<Region>& regions);

  PbNode* primary() const { return nodes_.front().get(); }
  PbNode* NodeIn(Region region);

  // Client bound to the backup in `backup_region` for weak reads.
  std::unique_ptr<PbClient> MakeClient(Region client_region, Region backup_region);

  void Preload(const std::string& key, const std::string& value);

 private:
  Network* network_;
  Topology* topology_;
  std::vector<std::unique_ptr<PbNode>> nodes_;
};

}  // namespace icg

#endif  // ICG_STORES_PB_STORE_H_
