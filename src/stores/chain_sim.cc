#include "src/stores/chain_sim.h"

#include <cmath>
#include <utility>
#include <vector>

namespace icg {

ChainSim::ChainSim(EventLoop* loop, const ChainConfig& config, uint64_t seed)
    : loop_(loop), config_(config), rng_(seed) {}

void ChainSim::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  ScheduleNextBlock();
}

void ChainSim::ScheduleNextBlock() {
  const auto interval = static_cast<SimDuration>(
      std::llround(rng_.NextExponential(static_cast<double>(config_.mean_block_interval))));
  loop_->Schedule(std::max<SimDuration>(1, interval), [this]() {
    MineBlock();
    ScheduleNextBlock();
  });
}

void ChainSim::MineBlock() {
  blocks_mined_++;
  if (height_ > 0 && rng_.NextBool(config_.orphan_probability)) {
    // The previous tip loses the fork race. The competing block was mined concurrently,
    // so it does NOT contain the orphaned tip's transactions: they fall back into the
    // mempool and wait for the next block — their confirmation counts visibly regress.
    orphans_++;
    for (auto& [txid, tx] : txs_) {
      if (tx.included_height == height_) {
        tx.included_height = -1;
      }
    }
  } else {
    height_++;
    // A regular new tip includes all mempool transactions.
    for (auto& [txid, tx] : txs_) {
      if (tx.included_height < 0) {
        tx.included_height = height_;
      }
    }
  }
  NotifyAll();
}

int ChainSim::ConfirmationsOf(const TrackedTx& tx) const {
  if (tx.included_height < 0 || tx.included_height > height_) {
    return 0;
  }
  return static_cast<int>(height_ - tx.included_height + 1);
}

void ChainSim::NotifyAll() {
  std::vector<std::string> finished;
  for (auto& [txid, tx] : txs_) {
    const int confirmations = ConfirmationsOf(tx);
    if (confirmations == tx.last_reported) {
      continue;
    }
    tx.last_reported = confirmations;
    const bool irreversible = confirmations >= config_.confirm_depth;
    tx.on_progress(confirmations, irreversible);
    if (irreversible) {
      finished.push_back(txid);
    }
  }
  for (const auto& txid : finished) {
    txs_.erase(txid);
  }
}

void ChainSim::SubmitTransaction(const std::string& txid,
                                 std::function<void(int, bool)> on_progress) {
  TrackedTx tx;
  tx.on_progress = std::move(on_progress);
  tx.last_reported = 0;
  txs_[txid] = std::move(tx);
}

}  // namespace icg
