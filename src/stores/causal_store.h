// A causally consistent geo-replicated store plus a write-through client cache: the
// substrate of the paper's third binding (§5.2, "Causal Consistency and Caching").
//
// Causality mechanism: each replica accepts writes locally, stamps them with a Lamport
// clock and a per-origin sequence number, and replicates asynchronously. Remote writes
// apply in per-origin FIFO order and only once all their declared dependencies (the
// origin's clock snapshot) are satisfied locally — the classic dependency-check scheme
// (COPS/GentleRain style, simplified to full-replica dependency clocks).
#ifndef ICG_STORES_CAUSAL_STORE_H_
#define ICG_STORES_CAUSAL_STORE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/status.h"
#include "src/correctables/operation.h"
#include "src/sim/network.h"
#include "src/sim/service_queue.h"
#include "src/sim/topology.h"

namespace icg {

struct CausalConfig {
  SimDuration read_service = Micros(200);
  SimDuration write_service = Micros(250);
  SimDuration apply_service = Micros(150);
  // Incremental cost per additional key in a batched (multi-key) read or write.
  SimDuration multi_per_key_service = Micros(50);
};

// 96 inline bytes: fits the pipeline's EmitAt adapters (emitter + level) inline.
using CausalResponseFn = InlineFunction<void(StatusOr<OpResult>), 96>;

class CausalReplica {
 public:
  CausalReplica(Network* network, NodeId id, const CausalConfig* config, const std::string& name);

  void SetPeers(std::vector<CausalReplica*> peers) { peers_ = std::move(peers); }
  // Dense index of this replica among all replicas (origin id in vector clocks).
  void SetOriginIndex(int index, int num_replicas);

  void HandleRead(NodeId client_id, const std::string& key, CausalResponseFn respond);
  // Batched read: one request, one response joining per-key payloads in request order.
  void HandleMultiRead(NodeId client_id, std::vector<std::string> keys,
                       CausalResponseFn respond);
  void HandleWrite(NodeId client_id, const std::string& key, std::string value,
                   CausalResponseFn respond);
  // Batched write: applies the entries in vector order (each its own Lamport stamp and
  // origin sequence number, so causal replication is per-write exactly as for singles),
  // then acknowledges once for the whole batch.
  void HandleMultiWrite(NodeId client_id, std::vector<std::string> keys,
                        std::vector<std::string> values, CausalResponseFn respond);

  // Replication message: a write from `origin` with its per-origin sequence number and
  // the origin's dependency clock at emission time.
  void HandleReplicated(int origin, int64_t origin_seq, std::vector<int64_t> deps,
                        const std::string& key, std::string value, Version version);

  NodeId id() const { return id_; }
  ServiceQueue& service_queue() { return service_; }
  std::optional<std::string> LocalGet(const std::string& key) const;
  void LocalPut(const std::string& key, std::string value, Version version);
  const std::vector<int64_t>& applied_clock() const { return applied_clock_; }

 private:
  struct Entry {
    std::string value;
    Version version;
  };
  struct PendingWrite {
    int origin = 0;
    int64_t origin_seq = 0;
    std::vector<int64_t> deps;
    std::string key;
    std::string value;
    Version version;
  };

  void TryApplyPending();
  bool DepsSatisfied(const PendingWrite& write) const;
  void ApplyWrite(const PendingWrite& write);
  Version ApplyLocalWrite(const std::string& key, const std::string& value);

  Network* network_;
  NodeId id_;
  const CausalConfig* config_;
  ServiceQueue service_;
  std::vector<CausalReplica*> peers_;

  int origin_index_ = 0;
  int64_t lamport_ = 0;
  int64_t next_origin_seq_ = 1;
  std::vector<int64_t> applied_clock_;  // per-origin seq applied locally
  std::map<std::string, Entry> storage_;
  std::deque<PendingWrite> pending_;
};

// Client-side cache with write-through coherence, as the binding requires: reads can be
// served instantly from the cache (kCache level); writes update the cache when the store
// acknowledges them, so the cache never holds a value the store has not accepted.
class ClientCache {
 public:
  explicit ClientCache(size_t capacity = 1024) : capacity_(capacity) {}

  std::optional<OpResult> Get(const std::string& key);
  void Put(const std::string& key, const OpResult& result);
  // Version-aware write-through: installs `result` unless the cached entry is already
  // strictly fresher, so a reordered weak view can never regress a stronger one.
  void Refresh(const std::string& key, const OpResult& result);
  void Invalidate(const std::string& key);
  void Clear();

  size_t size() const { return entries_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  void EvictIfNeeded();

  size_t capacity_;
  std::map<std::string, OpResult> entries_;
  std::deque<std::string> lru_;  // insertion order; simple FIFO eviction
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

class CausalClient {
 public:
  CausalClient(Network* network, NodeId id, CausalReplica* replica);

  void Read(const std::string& key, CausalResponseFn respond);
  void Write(const std::string& key, std::string value, CausalResponseFn respond);

  // Batched variants: one round-trip covering several keys (cross-tick batching).
  void MultiRead(std::vector<std::string> keys, CausalResponseFn respond);
  void MultiWrite(std::vector<std::string> keys, std::vector<std::string> values,
                  CausalResponseFn respond);

  NodeId id() const { return id_; }

 private:
  Network* network_;
  NodeId id_;
  CausalReplica* replica_;
};

class CausalCluster {
 public:
  CausalCluster(Network* network, Topology* topology, const CausalConfig* config,
                const std::vector<Region>& regions);

  CausalReplica* ReplicaIn(Region region);
  std::unique_ptr<CausalClient> MakeClient(Region client_region, Region replica_region);
  void Preload(const std::string& key, const std::string& value);

 private:
  Network* network_;
  Topology* topology_;
  std::vector<std::unique_ptr<CausalReplica>> replicas_;
};

}  // namespace icg

#endif  // ICG_STORES_CAUSAL_STORE_H_
