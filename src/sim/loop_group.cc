#include "src/sim/loop_group.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <limits>
#include <optional>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace icg {
namespace {

// Which attached loop the current thread is driving, so Post can stamp the sender
// deterministically without any shared counter. -1 outside DriveLoop.
thread_local int tls_driving_loop = -1;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

bool PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace

LoopGroup::LoopGroup(Options options) : options_(options) {}

LoopGroup::~LoopGroup() {
  if (!workers_.empty()) {
    stopping_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      worker_cv_.notify_all();
    }
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

int LoopGroup::Attach(EventLoop* loop) {
  assert(loop != nullptr);
  assert(loop->Now() == now_ && "attached loops must share the group clock");
  assert(workers_.empty() && "attach loops before the first threaded round");
  const int index = static_cast<int>(slots_.size());
  slots_.emplace_back();
  slots_.back().loop = loop;
  // Every sender (loops + the external poster) gets a run per target.
  for (Slot& slot : slots_) {
    slot.outbox.resize(slots_.size());
  }
  external_outbox_.resize(slots_.size());
  units_dirty_ = true;
  return index;
}

void LoopGroup::Post(int target, SimTime when, EventLoop::Task task) {
  assert(target >= 0 && target < size());
  Message message;
  message.when = when;
  message.sender = tls_driving_loop;
  message.task = std::move(task);
  if (message.sender >= 0) {
    // Hot path: one thread drives a loop per round, so the sender's outbox run and
    // sequence counter are single-writer — no lock, and (runs keep capacity across
    // drains) no steady-state allocation either.
    Slot& sender = slots_[static_cast<size_t>(message.sender)];
    message.seq = ++sender.post_seq;
    sender.outbox[static_cast<size_t>(target)].push_back(std::move(message));
    return;
  }
  // External (non-loop) poster: rare, and the only sender that needs a lock.
  std::lock_guard<std::mutex> lock(external_mu_);
  message.seq = ++external_seq_;
  external_outbox_[static_cast<size_t>(target)].push_back(std::move(message));
}

void LoopGroup::ScheduleDriverTask(SimTime when, EventLoop::Task task) {
  assert(task != nullptr);
  DriverTask pending;
  pending.when = std::max(when, now_);
  pending.seq = ++driver_task_seq_;
  pending.task = std::move(task);
  driver_tasks_.push_back(std::move(pending));
}

void LoopGroup::RunDueDriverTasks() {
  // Selection sort over the (small) pending set: due tasks run in (when, seq) order,
  // and a task scheduling another already-due task sees it picked up by this drain.
  while (true) {
    size_t best = driver_tasks_.size();
    for (size_t i = 0; i < driver_tasks_.size(); ++i) {
      if (driver_tasks_[i].when > now_) {
        continue;
      }
      if (best == driver_tasks_.size() ||
          driver_tasks_[i].when < driver_tasks_[best].when ||
          (driver_tasks_[i].when == driver_tasks_[best].when &&
           driver_tasks_[i].seq < driver_tasks_[best].seq)) {
        best = i;
      }
    }
    if (best == driver_tasks_.size()) {
      return;
    }
    EventLoop::Task task = std::move(driver_tasks_[best].task);
    driver_tasks_.erase(driver_tasks_.begin() + static_cast<long>(best));
    task();
  }
}

int LoopGroup::IndexOf(const EventLoop* loop) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].loop == loop) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t LoopGroup::pending_messages() const {
  size_t total = 0;
  for (const Slot& slot : slots_) {
    for (const auto& run : slot.outbox) {
      total += run.size();
    }
  }
  std::lock_guard<std::mutex> lock(external_mu_);
  for (const auto& run : external_outbox_) {
    total += run.size();
  }
  return total;
}

bool LoopGroup::EarliestQueuedDelivery(SimTime from, SimTime* out) const {
  SimTime best = std::numeric_limits<SimTime>::max();
  bool found = false;
  for (const Slot& slot : slots_) {
    for (const auto& run : slot.outbox) {
      for (const Message& message : run) {
        best = std::min(best, message.when);
        found = true;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(external_mu_);
    for (const auto& run : external_outbox_) {
      for (const Message& message : run) {
        best = std::min(best, message.when);
        found = true;
      }
    }
  }
  if (!found) {
    return false;
  }
  *out = std::max(best, from);  // deliveries never land in the past
  return true;
}

void LoopGroup::DrainChannel() {
  // Runs on the driver thread between rounds: no loop is executing, so scheduling onto
  // targets is race-free. Each sender's run is clamped to the barrier FIRST and then
  // sorted by (delivery time, seq) — clamping after sorting could invert a sender's
  // submission order among messages that collapse onto the barrier time — and the
  // per-sender runs are k-way merged by (delivery time, sender, seq). That is exactly
  // the old full-sort order, so the target's same-timestamp FIFO order — and thereby
  // determinism — is independent of which thread interleaving filled the runs.
  int64_t drained = 0;
  int64_t late = 0;
  const size_t n = slots_.size();
  for (size_t target = 0; target < n; ++target) {
    drain_runs_.clear();
    for (size_t s = 0; s < n; ++s) {
      auto& run = slots_[s].outbox[target];
      if (!run.empty()) {
        drain_runs_.push_back(RunRef{&run, static_cast<int>(s), 0});
      }
    }
    if (!external_outbox_[target].empty()) {
      drain_runs_.push_back(RunRef{&external_outbox_[target], -1, 0});
    }
    if (drain_runs_.empty()) {
      continue;
    }
    size_t remaining = 0;
    for (RunRef& ref : drain_runs_) {
      for (Message& message : *ref.run) {
        if (message.when < now_) {
          message.when = now_;
          ++late;
        }
      }
      std::sort(ref.run->begin(), ref.run->end(),
                [](const Message& a, const Message& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.seq < b.seq;
                });
      remaining += ref.run->size();
    }
    EventLoop* loop = slots_[target].loop;
    slots_[target].delivered_messages += static_cast<int64_t>(remaining);
    drained += static_cast<int64_t>(remaining);
    while (remaining > 0) {
      size_t best = drain_runs_.size();
      for (size_t i = 0; i < drain_runs_.size(); ++i) {
        RunRef& ref = drain_runs_[i];
        if (ref.pos >= ref.run->size()) {
          continue;
        }
        if (best == drain_runs_.size()) {
          best = i;
          continue;
        }
        const Message& a = (*ref.run)[ref.pos];
        const RunRef& best_ref = drain_runs_[best];
        const Message& b = (*best_ref.run)[best_ref.pos];
        if (a.when < b.when || (a.when == b.when && ref.sender < best_ref.sender)) {
          best = i;
        }
      }
      RunRef& ref = drain_runs_[best];
      Message& message = (*ref.run)[ref.pos++];
      loop->ScheduleAt(message.when, std::move(message.task));
      --remaining;
    }
    for (RunRef& ref : drain_runs_) {
      ref.run->clear();  // capacity survives: steady-state sends stay allocation-free
    }
  }
  if (drained > 0) {
    metrics_.GetCounter("channel_messages").Increment(drained);
    RaiseTo("channel_depth_highwater", drained);
  }
  if (late > 0) {
    metrics_.GetCounter("late_deliveries").Increment(late);
  }
}

void LoopGroup::RaiseTo(const char* name, int64_t candidate) {
  Counter& counter = metrics_.GetCounter(name);
  if (candidate > counter.value()) {
    counter.Increment(candidate - counter.value());
  }
}

void LoopGroup::RecordRoundStats() {
  // Driver-thread only, after the barrier (the completion handshake orders the
  // workers' slot writes before these reads). Exposes where a round's time went: the
  // hottest loop's event count is the serial floor of the round, channel depth shows
  // cross-loop pressure, and barrier_wait_ns (recorded in RunRound) shows what the
  // driver paid.
  int64_t hottest = 0;
  int64_t total = 0;
  for (const Slot& slot : slots_) {
    hottest = std::max(hottest, slot.round_events);
    total += slot.round_events;
  }
  RaiseTo("loop_events_highwater", hottest);
  RaiseTo("round_events_highwater", total);
}

void LoopGroup::DriveLoop(int index, SimTime barrier) {
  Slot& slot = slots_[static_cast<size_t>(index)];
  const int64_t before = slot.loop->events_processed();
  tls_driving_loop = index;
  slot.loop->RunUntil(barrier);
  tls_driving_loop = -1;
  slot.round_events = slot.loop->events_processed() - before;
}

void LoopGroup::DriveUnit(int unit_index, SimTime barrier) {
  // Ascending slot order — the sequential driver's order, so a fused unit behaves
  // bit-for-bit like the sequential schedule regardless of which thread claimed it.
  for (int slot : units_[static_cast<size_t>(unit_index)]) {
    DriveLoop(slot, barrier);
  }
}

void LoopGroup::FuseLanes(const std::vector<int>& lanes, SimTime until) {
  assert(until > now_ && "a fusion window must extend past the current barrier");
  Fusion fusion;
  fusion.lanes = lanes;
  std::sort(fusion.lanes.begin(), fusion.lanes.end());
  fusion.lanes.erase(std::unique(fusion.lanes.begin(), fusion.lanes.end()),
                     fusion.lanes.end());
  if (fusion.lanes.size() < 2) {
    return;
  }
  assert(fusion.lanes.front() >= 0 && fusion.lanes.back() < size());
  fusion.until = until;
  fusions_.push_back(std::move(fusion));
  units_dirty_ = true;
}

void LoopGroup::ExpireFusions() {
  if (fusions_.empty()) {
    return;
  }
  auto expired = std::remove_if(fusions_.begin(), fusions_.end(),
                                [&](const Fusion& f) { return f.until <= now_; });
  if (expired != fusions_.end()) {
    fusions_.erase(expired, fusions_.end());
    units_dirty_ = true;
  }
}

void LoopGroup::RebuildUnits() {
  const int n = size();
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    parent[static_cast<size_t>(i)] = i;
  }
  auto find = [&parent](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const Fusion& fusion : fusions_) {
    const int anchor = fusion.lanes.front();
    for (size_t i = 1; i < fusion.lanes.size(); ++i) {
      const int a = find(anchor);
      const int b = find(fusion.lanes[i]);
      if (a != b) {
        // Union by smaller root so the representative is deterministic.
        parent[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
      }
    }
  }
  units_.clear();
  std::vector<int> unit_of(static_cast<size_t>(n), -1);
  for (int s = 0; s < n; ++s) {
    const int root = find(s);
    if (unit_of[static_cast<size_t>(root)] < 0) {
      unit_of[static_cast<size_t>(root)] = static_cast<int>(units_.size());
      units_.emplace_back();
    }
    units_[static_cast<size_t>(unit_of[static_cast<size_t>(root)])].push_back(s);
  }
  units_dirty_ = false;
}

void LoopGroup::StartWorkers() {
  worker_count_ = std::min(options_.threads, size());
  // Spinning on single-core hardware burns the core the other side needs: park
  // immediately there.
  spin_budget_ = HardwareThreads() > 1 ? options_.spin_iterations : 0;
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w]() { WorkerMain(w); });
  }
}

void LoopGroup::WorkerMain(int worker_index) {
  if (options_.pin_workers &&
      PinCurrentThreadToCore(worker_index % HardwareThreads())) {
    workers_pinned_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t seen = 0;
  while (true) {
    // Spin-then-park for the next round: bounded spinning keeps the publish->work
    // handoff in user space when rounds are short; the park keeps idle workers off
    // the cores when they are not.
    uint64_t gen;
    int spins = spin_budget_;
    while ((gen = round_gen_.load(std::memory_order_acquire)) == seen) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      if (spins-- > 0) {
        CpuRelax();
        continue;
      }
      std::unique_lock<std::mutex> lock(park_mu_);
      ++parked_workers_;
      worker_cv_.wait(lock, [&]() {
        return round_gen_.load(std::memory_order_acquire) != seen ||
               stopping_.load(std::memory_order_acquire);
      });
      --parked_workers_;
    }
    seen = gen;
    const SimTime barrier = round_barrier_;
    // Work stealing: claim the next undriven unit off the shared index until the
    // round is exhausted. Each unit is still touched by exactly one thread per round
    // (a claim is exclusive), so loops need no locking and per-loop event order — and
    // therefore determinism — is untouched; stealing only decides *which thread*
    // drives a unit. Unlike a static stripe, a worker that drew a hot loop no longer
    // pins the rest of its stripe behind it: idle workers steal those units instead.
    int unit;
    while ((unit = claim_.fetch_add(1, std::memory_order_relaxed)) <
           static_cast<int>(round_units_.size())) {
      DriveUnit(round_units_[static_cast<size_t>(unit)], barrier);
    }
    // acq_rel: the RMW chain on workers_active_ forms one release sequence, so the
    // driver's final acquire observes every worker's round writes, not just the last
    // decrementer's.
    if (workers_active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(park_mu_);
      if (driver_parked_) {
        driver_cv_.notify_one();
      }
    }
  }
}

void LoopGroup::RunRound(SimTime barrier) {
  assert(barrier >= now_);
  ExpireFusions();
  if (units_dirty_) {
    RebuildUnits();
  }
  // Deliver everything queued before the round, so externally posted work (and last
  // round's messages) is on its target before that target runs — and before the
  // activity scan below, so a delivered message counts as due work.
  DrainChannel();
  // Partition units into active (an event due by the barrier) and idle. Idle loops
  // are advanced inline by the driver: RunUntil with nothing due runs no user code,
  // just moves the clock, so it is safe off the worker pool and costs ~nothing. The
  // active set depends only on virtual-time state, so it is width-independent.
  round_units_.clear();
  for (size_t u = 0; u < units_.size(); ++u) {
    bool active = false;
    for (int s : units_[u]) {
      const auto next = slots_[static_cast<size_t>(s)].loop->NextEventTime();
      if (next.has_value() && *next <= barrier) {
        active = true;
        break;
      }
    }
    if (active) {
      round_units_.push_back(static_cast<int>(u));
    } else {
      for (int s : units_[u]) {
        Slot& slot = slots_[static_cast<size_t>(s)];
        slot.loop->RunUntil(barrier);
        slot.round_events = 0;
      }
    }
  }
  const bool use_pool = threaded() && size() > 1;
  if (use_pool && workers_.empty()) {
    StartWorkers();
  }
  if (round_units_.empty()) {
    metrics_.GetCounter("rounds_idle").Increment();
  } else if (!use_pool || round_units_.size() == 1) {
    // One active unit can't be parallelized: drive it here instead of paying a
    // publish + wakeup + barrier wait to hand it to a worker.
    for (int unit : round_units_) {
      DriveUnit(unit, barrier);
    }
    if (use_pool) {
      metrics_.GetCounter("rounds_inline").Increment();
    }
  } else {
    // Publish the round: round state first, then the generation bump (release) that
    // spinning workers acquire; parked workers additionally need the notify.
    round_barrier_ = barrier;
    claim_.store(0, std::memory_order_relaxed);
    workers_active_.store(worker_count_, std::memory_order_relaxed);
    round_gen_.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      if (parked_workers_ > 0) {
        worker_cv_.notify_all();
      }
    }
    // The driver is a claimant too: it joins the steal loop instead of idling.
    int unit;
    while ((unit = claim_.fetch_add(1, std::memory_order_relaxed)) <
           static_cast<int>(round_units_.size())) {
      DriveUnit(round_units_[static_cast<size_t>(unit)], barrier);
    }
    const auto wait_start = std::chrono::steady_clock::now();
    int spins = spin_budget_;
    while (workers_active_.load(std::memory_order_acquire) != 0) {
      if (spins-- > 0) {
        CpuRelax();
        continue;
      }
      std::unique_lock<std::mutex> lock(park_mu_);
      driver_parked_ = true;
      driver_cv_.wait(lock, [&]() {
        return workers_active_.load(std::memory_order_acquire) == 0;
      });
      driver_parked_ = false;
    }
    metrics_.GetCounter("barrier_wait_ns")
        .Increment(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - wait_start)
                       .count());
    metrics_.GetCounter("rounds_threaded").Increment();
  }
  RecordRoundStats();
  if (options_.adaptive_quantum && barrier - now_ > options_.quantum) {
    metrics_.GetCounter("rounds_widened").Increment();
  }
  now_ = barrier;
  ++rounds_;
  schedule_hash_ ^= static_cast<uint64_t>(barrier);
  schedule_hash_ *= 1099511628211ULL;
  if (options_.record_barrier_schedule) {
    barrier_history_.push_back(barrier);
  }
  // Between rounds, after the clock advance: no loop is executing, so a due driver
  // task sees the same quiesced state the sequential driver would — the contract that
  // lets control loops mutate placement and membership safely.
  RunDueDriverTasks();
}

SimTime LoopGroup::NextBarrier(SimTime from, SimTime limit) {
  if (!options_.adaptive_quantum) {
    return std::min<SimTime>(limit, from + options_.quantum);
  }
  // Activity-following width: run to the earliest pending event or queued delivery,
  // never closer than one base quantum (the barrier-rate floor bounds overhead AND the
  // late-delivery clamp: anything posted mid-round is late by at most `quantum`) and
  // never farther than the cap. Purely a function of virtual-time state — identical at
  // every thread width.
  const SimTime floor = from + options_.quantum;
  const SimTime cap = from + max_quantum();
  SimTime horizon = cap;
  bool any = false;
  for (Slot& slot : slots_) {
    const auto next = slot.loop->NextEventTime();
    if (next.has_value()) {
      horizon = std::min(horizon, std::max(*next, from));
      any = true;
    }
  }
  SimTime queued;
  if (EarliestQueuedDelivery(from, &queued)) {
    horizon = std::min(horizon, queued);
    any = true;
  }
  // Pending driver tasks are activity too: clamping the horizon to the earliest one
  // makes a control tick fire at its exact virtual time instead of waiting out a
  // quiescent stretch collapsed into one wide round.
  for (const DriverTask& pending : driver_tasks_) {
    horizon = std::min(horizon, std::max(pending.when, from));
    any = true;
  }
  SimTime barrier = any ? std::max(horizon, floor) : cap;
  barrier = std::min(barrier, cap);
  return std::min(barrier, limit);
}

void LoopGroup::RunUntil(SimTime until) {
  while (now_ < until) {
    RunRound(NextBarrier(now_, until));
  }
}

void LoopGroup::RunAll() {
  while (true) {
    // Earliest pending activity anywhere: loop events, or queued messages (delivered at
    // max(when, now) — never in the past).
    std::optional<SimTime> earliest;
    for (Slot& slot : slots_) {
      const auto next = slot.loop->NextEventTime();
      if (next.has_value() && (!earliest.has_value() || *next < *earliest)) {
        earliest = *next;
      }
    }
    SimTime queued;
    if (EarliestQueuedDelivery(now_, &queued) &&
        (!earliest.has_value() || queued < *earliest)) {
      earliest = queued;
    }
    if (!earliest.has_value()) {
      return;
    }
    const SimTime from = std::max(*earliest, now_);
    RunRound(NextBarrier(from, std::numeric_limits<SimTime>::max()));
  }
}

int LoopGroup::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace icg
