#include "src/sim/loop_group.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <utility>

namespace icg {
namespace {

// Which attached loop the current thread is driving, so Post can stamp the sender
// deterministically without any shared counter. -1 outside DriveLoop.
thread_local int tls_driving_loop = -1;

}  // namespace

LoopGroup::LoopGroup(Options options) : options_(options) {}

LoopGroup::~LoopGroup() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(round_mu_);
      stopping_ = true;
    }
    round_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

int LoopGroup::Attach(EventLoop* loop) {
  assert(loop != nullptr);
  assert(loop->Now() == now_ && "attached loops must share the group clock");
  assert(workers_.empty() && "attach loops before the first threaded round");
  const int index = static_cast<int>(slots_.size());
  Slot slot;
  slot.loop = loop;
  slots_.push_back(slot);
  stripes_.push_back(std::make_unique<Stripe>());
  return index;
}

void LoopGroup::Post(int target, SimTime when, EventLoop::Task task) {
  assert(target >= 0 && target < size());
  Message message;
  message.when = when;
  message.sender = tls_driving_loop;
  message.task = std::move(task);
  if (message.sender >= 0) {
    // One thread drives a loop per round, so its counter needs no synchronization.
    message.seq = ++slots_[static_cast<size_t>(message.sender)].post_seq;
  } else {
    std::lock_guard<std::mutex> lock(external_mu_);
    message.seq = ++external_seq_;
  }
  Stripe& stripe = *stripes_[static_cast<size_t>(target)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.queue.push_back(std::move(message));
}

size_t LoopGroup::pending_messages() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->queue.size();
  }
  return total;
}

void LoopGroup::DrainChannel() {
  // Runs on the driver thread between rounds: no loop is executing, so scheduling onto
  // targets is race-free. Sorting by (delivery time, sender, per-sender seq) fixes the
  // schedule order — and thereby the target's same-timestamp FIFO order — regardless of
  // which thread interleaving filled the stripe.
  for (size_t target = 0; target < stripes_.size(); ++target) {
    std::vector<Message> batch;
    {
      std::lock_guard<std::mutex> lock(stripes_[target]->mu);
      batch.swap(stripes_[target]->queue);
    }
    if (batch.empty()) {
      continue;
    }
    for (Message& message : batch) {
      message.when = std::max(message.when, now_);
    }
    std::sort(batch.begin(), batch.end(), [](const Message& a, const Message& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.sender != b.sender) return a.sender < b.sender;
      return a.seq < b.seq;
    });
    EventLoop* loop = slots_[target].loop;
    for (Message& message : batch) {
      loop->ScheduleAt(message.when, std::move(message.task));
    }
  }
}

void LoopGroup::DriveLoop(int index, SimTime barrier) {
  tls_driving_loop = index;
  slots_[static_cast<size_t>(index)].loop->RunUntil(barrier);
  tls_driving_loop = -1;
}

void LoopGroup::StartWorkers() {
  worker_count_ = std::min(options_.threads, size());
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w]() { WorkerMain(w); });
  }
}

void LoopGroup::WorkerMain(int worker_index) {
  const int stride = worker_count_;
  uint64_t seen = 0;
  while (true) {
    SimTime barrier;
    {
      std::unique_lock<std::mutex> lock(round_mu_);
      round_cv_.wait(lock, [&]() { return stopping_ || round_gen_ != seen; });
      if (stopping_) {
        return;
      }
      seen = round_gen_;
      barrier = round_barrier_;
    }
    // Static round-robin ownership: worker w drives loops w, w+K, w+2K, ... — each loop
    // is touched by exactly one thread per round.
    for (int i = worker_index; i < size(); i += stride) {
      DriveLoop(i, barrier);
    }
    {
      std::lock_guard<std::mutex> lock(round_mu_);
      if (--workers_active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void LoopGroup::RunRound(SimTime barrier) {
  assert(barrier >= now_);
  // Deliver everything queued before the round, so externally posted work (and last
  // round's messages) is on its target before that target runs.
  DrainChannel();
  if (threaded() && size() > 1) {
    if (workers_.empty()) {
      StartWorkers();
    }
    {
      std::lock_guard<std::mutex> lock(round_mu_);
      round_barrier_ = barrier;
      workers_active_ = static_cast<int>(workers_.size());
      ++round_gen_;
    }
    round_cv_.notify_all();
    std::unique_lock<std::mutex> lock(round_mu_);
    done_cv_.wait(lock, [&]() { return workers_active_ == 0; });
  } else {
    for (int i = 0; i < size(); ++i) {
      DriveLoop(i, barrier);
    }
  }
  now_ = barrier;
  ++rounds_;
}

void LoopGroup::RunUntil(SimTime until) {
  while (now_ < until) {
    RunRound(std::min<SimTime>(until, now_ + options_.quantum));
  }
}

void LoopGroup::RunAll() {
  while (true) {
    // Earliest pending activity anywhere: loop events, or queued messages (delivered at
    // max(when, now) — never in the past).
    std::optional<SimTime> earliest;
    for (const Slot& slot : slots_) {
      const auto next = slot.loop->NextEventTime();
      if (next.has_value() && (!earliest.has_value() || *next < *earliest)) {
        earliest = *next;
      }
    }
    for (const auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      for (const Message& message : stripe->queue) {
        const SimTime at = std::max(message.when, now_);
        if (!earliest.has_value() || at < *earliest) {
          earliest = at;
        }
      }
    }
    if (!earliest.has_value()) {
      return;
    }
    RunRound(std::max(*earliest, now_) + options_.quantum);
  }
}

int LoopGroup::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace icg
