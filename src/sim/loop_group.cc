#include "src/sim/loop_group.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

namespace icg {
namespace {

// Which attached loop the current thread is driving, so Post can stamp the sender
// deterministically without any shared counter. -1 outside DriveLoop.
thread_local int tls_driving_loop = -1;

}  // namespace

LoopGroup::LoopGroup(Options options) : options_(options) {}

LoopGroup::~LoopGroup() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(round_mu_);
      stopping_ = true;
    }
    round_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

int LoopGroup::Attach(EventLoop* loop) {
  assert(loop != nullptr);
  assert(loop->Now() == now_ && "attached loops must share the group clock");
  assert(workers_.empty() && "attach loops before the first threaded round");
  const int index = static_cast<int>(slots_.size());
  Slot slot;
  slot.loop = loop;
  slots_.push_back(slot);
  stripes_.push_back(std::make_unique<Stripe>());
  return index;
}

void LoopGroup::Post(int target, SimTime when, EventLoop::Task task) {
  assert(target >= 0 && target < size());
  Message message;
  message.when = when;
  message.sender = tls_driving_loop;
  message.task = std::move(task);
  if (!threaded()) {
    // Sequential fast path: in threads <= 1 mode every Post runs on the lone driver
    // thread (no workers are ever constructed — see the assert), so the striped mutex
    // and the external-seq mutex would be pure uncontended overhead. Skip both.
    assert(workers_.empty() && "sequential mode must never have started workers");
    message.seq = message.sender >= 0
                      ? ++slots_[static_cast<size_t>(message.sender)].post_seq
                      : ++external_seq_;
    stripes_[static_cast<size_t>(target)]->queue.push_back(std::move(message));
    return;
  }
  if (message.sender >= 0) {
    // One thread drives a loop per round, so its counter needs no synchronization.
    message.seq = ++slots_[static_cast<size_t>(message.sender)].post_seq;
  } else {
    std::lock_guard<std::mutex> lock(external_mu_);
    message.seq = ++external_seq_;
  }
  Stripe& stripe = *stripes_[static_cast<size_t>(target)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.queue.push_back(std::move(message));
}

int LoopGroup::IndexOf(const EventLoop* loop) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].loop == loop) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t LoopGroup::pending_messages() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->queue.size();
  }
  return total;
}

void LoopGroup::DrainChannel() {
  // Runs on the driver thread between rounds: no loop is executing, so scheduling onto
  // targets is race-free. Sorting by (delivery time, sender, per-sender seq) fixes the
  // schedule order — and thereby the target's same-timestamp FIFO order — regardless of
  // which thread interleaving filled the stripe.
  int64_t drained = 0;
  for (size_t target = 0; target < stripes_.size(); ++target) {
    std::vector<Message> batch;
    if (threaded()) {
      std::lock_guard<std::mutex> lock(stripes_[target]->mu);
      batch.swap(stripes_[target]->queue);
    } else {
      batch.swap(stripes_[target]->queue);
    }
    if (batch.empty()) {
      continue;
    }
    drained += static_cast<int64_t>(batch.size());
    for (Message& message : batch) {
      message.when = std::max(message.when, now_);
    }
    std::sort(batch.begin(), batch.end(), [](const Message& a, const Message& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.sender != b.sender) return a.sender < b.sender;
      return a.seq < b.seq;
    });
    EventLoop* loop = slots_[target].loop;
    for (Message& message : batch) {
      loop->ScheduleAt(message.when, std::move(message.task));
    }
  }
  if (drained > 0) {
    metrics_.GetCounter("channel_messages").Increment(drained);
    RaiseTo("channel_depth_highwater", drained);
  }
}

void LoopGroup::RaiseTo(const char* name, int64_t candidate) {
  Counter& counter = metrics_.GetCounter(name);
  if (candidate > counter.value()) {
    counter.Increment(candidate - counter.value());
  }
}

void LoopGroup::RecordRoundStats() {
  // Driver-thread only, after the barrier (the round mutex orders the workers' slot
  // writes before these reads). Exposes where a round's time went: the hottest loop's
  // event count is the serial floor of the round, channel depth shows cross-loop
  // pressure, and barrier_wait_ns (recorded in RunRound) shows what the driver paid.
  int64_t hottest = 0;
  int64_t total = 0;
  for (const Slot& slot : slots_) {
    hottest = std::max(hottest, slot.round_events);
    total += slot.round_events;
  }
  RaiseTo("loop_events_highwater", hottest);
  RaiseTo("round_events_highwater", total);
}

void LoopGroup::DriveLoop(int index, SimTime barrier) {
  Slot& slot = slots_[static_cast<size_t>(index)];
  const int64_t before = slot.loop->events_processed();
  tls_driving_loop = index;
  slot.loop->RunUntil(barrier);
  tls_driving_loop = -1;
  slot.round_events = slot.loop->events_processed() - before;
}

void LoopGroup::StartWorkers() {
  worker_count_ = std::min(options_.threads, size());
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w]() { WorkerMain(w); });
  }
}

void LoopGroup::WorkerMain(int worker_index) {
  (void)worker_index;
  uint64_t seen = 0;
  while (true) {
    SimTime barrier;
    {
      std::unique_lock<std::mutex> lock(round_mu_);
      round_cv_.wait(lock, [&]() { return stopping_ || round_gen_ != seen; });
      if (stopping_) {
        return;
      }
      seen = round_gen_;
      barrier = round_barrier_;
    }
    // Work stealing: claim the next undriven loop off the shared index until the round
    // is exhausted. Each loop is still touched by exactly one thread per round (a claim
    // is exclusive), so loops need no locking and per-loop event order — and therefore
    // determinism — is untouched; stealing only decides *which thread* drives a loop.
    // Unlike a static stripe, a worker that drew a hot loop no longer pins the rest of
    // its stripe behind it: idle workers steal those loops instead.
    int index;
    while ((index = claim_.fetch_add(1, std::memory_order_relaxed)) < size()) {
      DriveLoop(index, barrier);
    }
    {
      std::lock_guard<std::mutex> lock(round_mu_);
      if (--workers_active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void LoopGroup::RunRound(SimTime barrier) {
  assert(barrier >= now_);
  // Deliver everything queued before the round, so externally posted work (and last
  // round's messages) is on its target before that target runs.
  DrainChannel();
  if (threaded() && size() > 1) {
    if (workers_.empty()) {
      StartWorkers();
    }
    {
      std::lock_guard<std::mutex> lock(round_mu_);
      round_barrier_ = barrier;
      workers_active_ = static_cast<int>(workers_.size());
      claim_.store(0, std::memory_order_relaxed);
      ++round_gen_;
    }
    round_cv_.notify_all();
    const auto wait_start = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(round_mu_);
      done_cv_.wait(lock, [&]() { return workers_active_ == 0; });
    }
    metrics_.GetCounter("barrier_wait_ns")
        .Increment(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - wait_start)
                       .count());
    metrics_.GetCounter("rounds_threaded").Increment();
  } else {
    for (int i = 0; i < size(); ++i) {
      DriveLoop(i, barrier);
    }
  }
  RecordRoundStats();
  now_ = barrier;
  ++rounds_;
}

void LoopGroup::RunUntil(SimTime until) {
  while (now_ < until) {
    RunRound(std::min<SimTime>(until, now_ + options_.quantum));
  }
}

void LoopGroup::RunAll() {
  while (true) {
    // Earliest pending activity anywhere: loop events, or queued messages (delivered at
    // max(when, now) — never in the past).
    std::optional<SimTime> earliest;
    for (const Slot& slot : slots_) {
      const auto next = slot.loop->NextEventTime();
      if (next.has_value() && (!earliest.has_value() || *next < *earliest)) {
        earliest = *next;
      }
    }
    for (const auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      for (const Message& message : stripe->queue) {
        const SimTime at = std::max(message.when, now_);
        if (!earliest.has_value() || at < *earliest) {
          earliest = at;
        }
      }
    }
    if (!earliest.has_value()) {
      return;
    }
    RunRound(std::max(*earliest, now_) + options_.quantum);
  }
}

int LoopGroup::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace icg
