#include "src/sim/event_loop.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace icg {

EventLoop::~EventLoop() = default;

TimerId EventLoop::Schedule(SimDuration delay, Task task) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(task));
}

TimerId EventLoop::ScheduleAt(SimTime when, Task task) {
  assert(when >= now_);
  assert(task != nullptr);
  if (stored_nodes_ == 0) {
    // Empty structure: re-anchor the wheel at the present so this event lands in a low
    // level even after a long event-free RunUntil advanced now_ far past wheel_pos_.
    wheel_pos_ = now_;
  }
  const uint32_t index = AllocNode(when, std::move(task));
  Place(index);
  return (static_cast<TimerId>(nodes_[index].generation) << 32) | index;
}

void EventLoop::Cancel(TimerId id) {
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= nodes_.size()) {
    return;
  }
  TimerNode& node = nodes_[index];
  if (node.generation != generation || node.state != NodeState::kArmed) {
    return;  // already fired, already cancelled, or a stale/unknown handle
  }
  node.state = NodeState::kCancelled;
  node.task = nullptr;  // release captures eagerly; the shell is reaped lazily
  --live_events_;
}

bool EventLoop::RunOne() {
  if (!PrepareNext()) {
    return false;
  }
  ExecuteTop();
  return true;
}

void EventLoop::Run() {
  while (RunOne()) {
  }
}

void EventLoop::RunUntil(SimTime until) {
  assert(until >= now_);
  while (PrepareNext()) {
    if (nodes_[due_.front()].when > until) {
      break;
    }
    ExecuteTop();
  }
  now_ = until;
}

std::optional<SimTime> EventLoop::NextEventTime() {
  if (!PrepareNext()) {
    return std::nullopt;
  }
  return nodes_[due_.front()].when;
}

uint32_t EventLoop::AllocNode(SimTime when, Task task) {
  uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = nodes_[index].next_free;
  } else {
    index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[index].generation = 1;  // ids are (generation << 32) | index, never zero
  }
  TimerNode& node = nodes_[index];
  node.when = when;
  node.seq = next_seq_++;
  node.state = NodeState::kArmed;
  node.next_free = kNil;
  node.task = std::move(task);
  ++stored_nodes_;
  ++live_events_;
  return index;
}

void EventLoop::FreeNode(uint32_t index) {
  TimerNode& node = nodes_[index];
  node.task = nullptr;
  node.state = NodeState::kFree;
  ++node.generation;  // invalidates any TimerId still referring to this slot
  if (node.generation == 0) {
    node.generation = 1;
  }
  node.next_free = free_head_;
  free_head_ = index;
  --stored_nodes_;
}

void EventLoop::Place(uint32_t index) {
  const SimTime when = nodes_[index].when;
  if (when < wheel_pos_) {
    // The wheel has swept past this instant (a same-time nested schedule, or a cascade
    // landing behind an already-drained slot). The due heap restores (when, seq) order.
    PushDue(index);
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    const int shift = LevelShift(level);
    // A node fits at this level iff its slot quotient is under one lap (64 ticks) ahead
    // of the wheel's. That keeps cyclic slot indices unambiguous: a plain delta bound
    // would let a node one full lap out share the wheel's CURRENT slot index, making
    // LevelMinBase reconstruct a too-early base and the cascade re-place the node into
    // the very bucket being drained (losing it).
    if ((when >> shift) - (wheel_pos_ >> shift) < static_cast<SimTime>(kSlots)) {
      const uint32_t slot = static_cast<uint32_t>(when >> shift) & (kSlots - 1);
      slots_[level][slot].push_back(index);
      occupancy_[level] |= uint64_t{1} << slot;
      return;
    }
  }
  if (overflow_.empty() || when < overflow_min_) {
    overflow_min_ = when;
  }
  overflow_.push_back(index);
}

void EventLoop::PushDue(uint32_t index) {
  due_.push_back(index);
  std::push_heap(due_.begin(), due_.end(), [this](uint32_t a, uint32_t b) {
    const TimerNode& na = nodes_[a];
    const TimerNode& nb = nodes_[b];
    return na.when != nb.when ? na.when > nb.when : na.seq > nb.seq;
  });
}

uint32_t EventLoop::PopDue() {
  std::pop_heap(due_.begin(), due_.end(), [this](uint32_t a, uint32_t b) {
    const TimerNode& na = nodes_[a];
    const TimerNode& nb = nodes_[b];
    return na.when != nb.when ? na.when > nb.when : na.seq > nb.seq;
  });
  const uint32_t index = due_.back();
  due_.pop_back();
  return index;
}

std::optional<SimTime> EventLoop::LevelMinBase(int level) const {
  const uint64_t occ = occupancy_[level];
  if (occ == 0) {
    return std::nullopt;
  }
  // Every node in level l lies in [wheel_pos_, wheel_pos_ + LevelSpan(l)), so scanning
  // slots cyclically from wheel_pos_'s index visits them in base-time order.
  const int shift = LevelShift(level);
  const uint32_t pos = static_cast<uint32_t>(wheel_pos_ >> shift) & (kSlots - 1);
  const int distance = std::countr_zero(std::rotr(occ, static_cast<int>(pos)));
  return ((wheel_pos_ >> shift) + distance) << shift;
}

std::optional<SimTime> EventLoop::WheelMinBase() const {
  std::optional<SimTime> best;
  if (!overflow_.empty()) {
    best = overflow_min_;
  }
  for (int level = 0; level < kLevels; ++level) {
    if (const auto base = LevelMinBase(level); base && (!best || *base < *best)) {
      best = *base;
    }
  }
  return best;
}

void EventLoop::RefillOnce() {
  // Pick the earliest-based source. Ties go to overflow, then the HIGHER level: cascades
  // must land before an equal-based level-0 slot drains and bumps wheel_pos_ past them,
  // which keeps the invariant that no wheel node is ever behind wheel_pos_.
  int best_level = -1;  // -1 selects the overflow list
  std::optional<SimTime> best;
  if (!overflow_.empty()) {
    best = overflow_min_;
  }
  for (int level = kLevels - 1; level >= 0; --level) {
    if (const auto base = LevelMinBase(level); base && (!best || *base < *best)) {
      best = *base;
      best_level = level;
    }
  }
  if (!best) {
    return;
  }

  if (best_level == -1) {
    assert(overflow_min_ >= wheel_pos_);
    wheel_pos_ = overflow_min_;
    std::vector<uint32_t> rehome;
    rehome.swap(overflow_);
    for (const uint32_t index : rehome) {
      if (nodes_[index].state == NodeState::kCancelled) {
        FreeNode(index);
      } else {
        Place(index);  // at least the minimum lands in the wheel: guaranteed progress
      }
    }
    return;
  }

  const int shift = LevelShift(best_level);
  const uint32_t slot = static_cast<uint32_t>(*best >> shift) & (kSlots - 1);
  std::vector<uint32_t>& bucket = slots_[best_level][slot];
  occupancy_[best_level] &= ~(uint64_t{1} << slot);
  if (best_level == 0) {
    // A level-0 slot is one exact microsecond: everything in it is due at *best.
    for (const uint32_t index : bucket) {
      if (nodes_[index].state == NodeState::kCancelled) {
        FreeNode(index);
      } else {
        PushDue(index);
      }
    }
    bucket.clear();
    wheel_pos_ = *best + 1;  // this instant is fully drained
  } else {
    if (*best > wheel_pos_) {
      wheel_pos_ = *best;
    }
    // Cascade: occupants span one level-l slot width, i.e. < LevelSpan(l-1) from the new
    // wheel_pos_, so each re-Place lands at a strictly lower level (or the due heap).
    for (const uint32_t index : bucket) {
      if (nodes_[index].state == NodeState::kCancelled) {
        FreeNode(index);
      } else {
        Place(index);
      }
    }
    bucket.clear();
  }
}

bool EventLoop::PrepareNext() {
  for (;;) {
    while (!due_.empty() && nodes_[due_.front()].state == NodeState::kCancelled) {
      FreeNode(PopDue());
    }
    const std::optional<SimTime> wheel_min = WheelMinBase();
    if (!wheel_min) {
      return !due_.empty();
    }
    if (!due_.empty() && nodes_[due_.front()].when < *wheel_min) {
      // Strict: an equal-based wheel slot may still hold an equal-time, earlier-seq node.
      return true;
    }
    RefillOnce();
  }
}

void EventLoop::ExecuteTop() {
  const uint32_t index = PopDue();
  assert(nodes_[index].state == NodeState::kArmed);
  const SimTime when = nodes_[index].when;
  Task task = std::move(nodes_[index].task);
  --live_events_;
  // Free before running: the id is invalidated, so cancelling a fired timer is a no-op,
  // and nested schedules may reuse the slot under a fresh generation.
  FreeNode(index);
  assert(when >= now_);
  now_ = when;
  ++events_processed_;
  task();
}

}  // namespace icg
