#include "src/sim/event_loop.h"

#include <cassert>
#include <utility>

namespace icg {

TimerId EventLoop::Schedule(SimDuration delay, Task task) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(task));
}

TimerId EventLoop::ScheduleAt(SimTime when, Task task) {
  assert(when >= now_);
  assert(task != nullptr);
  const TimerId id = next_id_++;
  queue_.push(Event{when, id, std::move(task)});
  pending_ids_.insert(id);
  return id;
}

void EventLoop::Cancel(TimerId id) {
  if (pending_ids_.erase(id) > 0) {
    cancelled_.insert(id);
  }
}

bool EventLoop::RunOne() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.when >= now_);
    now_ = ev.when;
    events_processed_++;
    pending_ids_.erase(ev.id);
    ev.task();
    return true;
  }
  return false;
}

void EventLoop::Run() {
  while (RunOne()) {
  }
}

void EventLoop::RunUntil(SimTime until) {
  assert(until >= now_);
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.when > until) {
      break;
    }
    RunOne();
  }
  now_ = until;
}

}  // namespace icg
