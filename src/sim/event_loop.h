// Deterministic virtual-time event loop: the heart of the simulation substrate.
//
// All simulated activity (network delivery, CPU service completion, client think time,
// timeouts) is a closure scheduled at a virtual timestamp. Events at equal timestamps run
// in scheduling order, so a run is a pure function of its seeds.
//
// Internals are built for the hot path the benchmarks hammer:
//   * a hierarchical timer wheel (6 levels x 64 slots, 1 us base granularity, overflow
//     list beyond ~19 h of virtual time) replaces the former binary-heap queue: O(1)
//     schedule, O(1) cancel via generation-checked handles (no tombstone set to leak),
//     pop cost amortized over slot drains;
//   * timer nodes live in a free-list pool and embed a small-buffer-optimized task type
//     (InlineFunction), so steady-state scheduling performs zero heap allocations for
//     the common closure sizes;
//   * execution order is EXACTLY the historical contract: global (timestamp, schedule
//     order) — FIFO among same-time events — preserved bit-for-bit, which every seeded
//     test and the consistency oracles depend on.
#ifndef ICG_SIM_EVENT_LOOP_H_
#define ICG_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/types.h"

namespace icg {

// Opaque timer handle: encodes (generation, pool slot). Always nonzero, so callers can
// keep using 0 as their "no timer armed" sentinel.
using TimerId = uint64_t;

class EventLoop {
 public:
  // Network-delivery closures capture a nested task plus accounting state; 48 inline
  // bytes covers the fleet of common captures without spilling.
  using Task = InlineFunction<void(), 48>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  SimTime Now() const { return now_; }

  // Schedules `task` to run `delay` from now (>= 0). Returns an id usable with Cancel.
  TimerId Schedule(SimDuration delay, Task task);

  // Schedules `task` at absolute virtual time `when` (>= Now()).
  TimerId ScheduleAt(SimTime when, Task task);

  // Cancels a pending timer. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(TimerId id);

  // Runs the single earliest pending event. Returns false if none are pending.
  bool RunOne();

  // Runs until no events remain.
  void Run();

  // Runs all events with timestamp <= `until`, then advances Now() to `until`.
  void RunUntil(SimTime until);

  // Convenience: RunUntil(Now() + d).
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // Timestamp of the earliest pending event, if any (used by LoopGroup pacing).
  std::optional<SimTime> NextEventTime();

  int64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return live_events_; }

 private:
  // Wheel geometry: level l slots are 64^l us wide; level l spans 64^(l+1) us.
  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 6;
  static constexpr uint32_t kSlots = 1u << kSlotBits;       // 64
  static constexpr uint32_t kNil = 0xffffffffu;

  enum class NodeState : uint8_t {
    kFree,       // on the free list
    kArmed,      // queued in a wheel slot, the overflow list, or the due heap
    kCancelled,  // still stored somewhere, reaped when its container drains
  };

  struct TimerNode {
    SimTime when = 0;
    uint64_t seq = 0;        // global schedule order: the FIFO tie-break among equals
    uint32_t generation = 0; // bumped on free; validates TimerIds against slot reuse
    NodeState state = NodeState::kFree;
    uint32_t next_free = kNil;
    Task task;
  };

  static constexpr int LevelShift(int level) { return kSlotBits * level; }
  // Span of one level-l slot, in us.
  static constexpr SimDuration SlotWidth(int level) { return SimDuration(1) << LevelShift(level); }
  // Total span of level l (64 slots).
  static constexpr SimDuration LevelSpan(int level) {
    return SimDuration(1) << LevelShift(level + 1);
  }

  uint32_t AllocNode(SimTime when, Task task);
  void FreeNode(uint32_t index);
  // Places an armed node into the wheel/overflow/due structure appropriate for its
  // timestamp relative to wheel_pos_.
  void Place(uint32_t index);
  void PushDue(uint32_t index);
  uint32_t PopDue();
  // Earliest possible timestamp of any node still in the wheel or overflow (a lower
  // bound: the first occupied slot's base time), or nullopt if both are empty.
  std::optional<SimTime> WheelMinBase() const;
  std::optional<SimTime> LevelMinBase(int level) const;
  // Advances the wheel to its earliest occupied slot: cascades higher-level slots down
  // and drains level-0 slots into the due heap. One step; callers loop.
  void RefillOnce();
  // Ensures the due heap's top is the globally earliest live event. Returns false when
  // nothing is pending anywhere.
  bool PrepareNext();
  void ExecuteTop();

  SimTime now_ = 0;
  int64_t events_processed_ = 0;
  size_t live_events_ = 0;    // armed (cancel excluded): what pending_events() reports
  size_t stored_nodes_ = 0;   // armed + cancelled-but-unreaped: structure emptiness check
  uint64_t next_seq_ = 1;

  std::vector<TimerNode> nodes_;
  uint32_t free_head_ = kNil;

  // The due heap: nodes whose slot has been drained (plus direct schedules at times the
  // wheel has already passed), ordered by (when, seq). Small: one slot's worth of events
  // plus same-instant schedules.
  std::vector<uint32_t> due_;

  // wheel_pos_ is the wheel's reference point: every node stored in the wheel has
  // when >= wheel_pos_, and every slot "behind" it is empty. It trails/leads now_ only
  // transiently inside PrepareNext.
  SimTime wheel_pos_ = 0;
  std::vector<uint32_t> slots_[kLevels][kSlots];
  uint64_t occupancy_[kLevels] = {};
  std::vector<uint32_t> overflow_;  // nodes beyond the top level's span
  SimTime overflow_min_ = 0;        // valid while overflow_ is non-empty
};

}  // namespace icg

#endif  // ICG_SIM_EVENT_LOOP_H_
