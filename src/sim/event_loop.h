// Deterministic virtual-time event loop: the heart of the simulation substrate.
//
// All simulated activity (network delivery, CPU service completion, client think time,
// timeouts) is a closure scheduled at a virtual timestamp. Events at equal timestamps run
// in scheduling order, so a run is a pure function of its seeds.
#ifndef ICG_SIM_EVENT_LOOP_H_
#define ICG_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace icg {

using TimerId = uint64_t;

class EventLoop {
 public:
  using Task = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `task` to run `delay` from now (>= 0). Returns an id usable with Cancel.
  TimerId Schedule(SimDuration delay, Task task);

  // Schedules `task` at absolute virtual time `when` (>= Now()).
  TimerId ScheduleAt(SimTime when, Task task);

  // Cancels a pending timer. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(TimerId id);

  // Runs the single earliest pending event. Returns false if none are pending.
  bool RunOne();

  // Runs until no events remain.
  void Run();

  // Runs all events with timestamp <= `until`, then advances Now() to `until`.
  void RunUntil(SimTime until);

  // Convenience: RunUntil(Now() + d).
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  int64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return pending_ids_.size(); }

 private:
  struct Event {
    SimTime when = 0;
    TimerId id = 0;
    Task task;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  SimTime now_ = 0;
  TimerId next_id_ = 1;
  int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Ids scheduled but not yet fired or cancelled. Cancel only tombstones ids found here,
  // so cancelling an already-fired (or unknown) id cannot grow `cancelled_` forever.
  std::unordered_set<TimerId> pending_ids_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace icg

#endif  // ICG_SIM_EVENT_LOOP_H_
