#include "src/sim/network.h"

#include <cassert>
#include <cmath>

namespace icg {

Network::Network(EventLoop* loop, const Topology* topology, uint64_t seed, double jitter_sigma)
    : loop_(loop), topology_(topology), rng_(seed), jitter_sigma_(jitter_sigma) {
  assert(loop != nullptr && topology != nullptr);
}

SimDuration Network::SampleDelay(NodeId from, NodeId to) {
  if (from == to) {
    return kLocalDelay;
  }
  const SimDuration base = topology_->RttBetween(from, to) / 2;
  if (jitter_sigma_ <= 0.0) {
    return base;
  }
  const double jittered = rng_.NextLognormal(static_cast<double>(base), jitter_sigma_);
  return std::max<SimDuration>(kLocalDelay, static_cast<SimDuration>(std::llround(jittered)));
}

void Network::Send(NodeId from, NodeId to, int64_t bytes, EventLoop::Task on_delivery) {
  assert(bytes >= 0);
  auto& stats = sent_[{from, to}];
  stats.bytes += bytes;
  stats.messages += 1;
  total_bytes_ += bytes;

  if (crashed_.contains(from) || crashed_.contains(to) ||
      partitioned_.contains(OrderedPair(from, to)) ||
      (loss_probability_ > 0.0 && rng_.NextBool(loss_probability_))) {
    dropped_messages_ += 1;
    return;
  }
  // FIFO link: never deliver before an earlier message on the same directed link.
  SimTime deliver_at = loop_->Now() + SampleDelay(from, to);
  SimTime& last = last_delivery_[{from, to}];
  deliver_at = std::max(deliver_at, last);
  last = deliver_at;
  loop_->ScheduleAt(deliver_at, std::move(on_delivery));
}

const LinkStats& Network::Sent(NodeId from, NodeId to) const {
  static const LinkStats kEmpty;
  auto it = sent_.find({from, to});
  return it == sent_.end() ? kEmpty : it->second;
}

int64_t Network::BytesBetween(NodeId a, NodeId b) const {
  return Sent(a, b).bytes + Sent(b, a).bytes;
}

int64_t Network::MessagesBetween(NodeId a, NodeId b) const {
  return Sent(a, b).messages + Sent(b, a).messages;
}

void Network::ResetStats() {
  sent_.clear();
  total_bytes_ = 0;
  dropped_messages_ = 0;
}

}  // namespace icg
