#include "src/sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/sim/loop_group.h"

namespace icg {

Network::Network(EventLoop* loop, const Topology* topology, uint64_t seed, double jitter_sigma)
    : loop_(loop), topology_(topology), seed_(seed), jitter_sigma_(jitter_sigma) {
  assert(loop != nullptr && topology != nullptr);
  shards_.push_back(std::make_unique<Shard>(seed));
}

Network::Shard& Network::EnsureShard(int slot) {
  while (static_cast<size_t>(slot) >= shards_.size()) {
    // Derived seeds decorrelate jitter across loops; each shard's stream is still a
    // pure function of (seed, slot), independent of placement call order.
    const uint64_t derived =
        seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(shards_.size() + 1));
    shards_.push_back(std::make_unique<Shard>(derived));
  }
  return *shards_[static_cast<size_t>(slot)];
}

void Network::BindGroup(LoopGroup* group) {
  assert(group != nullptr);
  assert(group_ == nullptr && "a network binds to one group once");
  const int home = group->IndexOf(loop_);
  assert(home >= 0 && "attach the network's home loop to the group before binding");
  assert(shards_.size() == 1 && shards_[0]->sent.empty() && shards_[0]->total_bytes == 0 &&
         "bind the group before any traffic flows");
  group_ = group;
  home_slot_ = home;
  if (home_slot_ != 0) {
    // Re-home the original shard so slot indexing stays direct. Setup-time only.
    EnsureShard(home_slot_);
    std::swap(shards_[0], shards_[static_cast<size_t>(home_slot_)]);
  }
}

void Network::PlaceNode(NodeId node, int slot) {
  assert(group_ != nullptr && "BindGroup before PlaceNode");
  assert(slot >= 0 && slot < group_->size());
  placement_[node] = slot;
  EnsureShard(slot);
}

void Network::MigrateNode(NodeId node, int slot) {
  assert(group_ != nullptr && "BindGroup before MigrateNode");
  assert(slot >= 0 && slot < group_->size());
  const int old_slot = SlotOf(node);
  if (old_slot == slot) {
    return;
  }
  Shard& to = EnsureShard(slot);
  Shard& from = *shards_[static_cast<size_t>(old_slot)];
  // Carry the node's *outgoing* link state with it. The FIFO clamps must merge by max:
  // forgetting a link's last delivery time would let a post-move message overtake one
  // still in flight from before the move.
  const auto low = std::make_pair(node, std::numeric_limits<NodeId>::min());
  for (auto it = from.last_delivery.lower_bound(low);
       it != from.last_delivery.end() && it->first.first == node;
       it = from.last_delivery.erase(it)) {
    SimTime& clamp = to.last_delivery[it->first];
    clamp = std::max(clamp, it->second);
  }
  for (auto it = from.sent.lower_bound(low);
       it != from.sent.end() && it->first.first == node; it = from.sent.erase(it)) {
    LinkStats& stats = to.sent[it->first];
    stats.bytes += it->second.bytes;
    stats.messages += it->second.messages;
  }
  placement_[node] = slot;
}

int Network::SlotOf(NodeId node) const {
  if (group_ == nullptr) {
    return 0;
  }
  const auto it = placement_.find(node);
  return it == placement_.end() ? home_slot_ : it->second;
}

EventLoop* Network::LoopFor(NodeId node) const {
  return group_ == nullptr ? loop_ : &group_->loop(SlotOf(node));
}

Network::Shard& Network::ShardFor(NodeId from) {
  return *shards_[static_cast<size_t>(SlotOf(from))];
}

const Network::Shard* Network::ShardForOrNull(NodeId from) const {
  const size_t slot = static_cast<size_t>(SlotOf(from));
  return slot < shards_.size() ? shards_[slot].get() : nullptr;
}

SimDuration Network::SampleDelay(NodeId from, NodeId to) {
  if (from == to) {
    return kLocalDelay;
  }
  const SimDuration base = topology_->RttBetween(from, to) / 2;
  if (jitter_sigma_ <= 0.0) {
    return base;
  }
  const double jittered =
      ShardFor(from).rng.NextLognormal(static_cast<double>(base), jitter_sigma_);
  return std::max<SimDuration>(kLocalDelay, static_cast<SimDuration>(std::llround(jittered)));
}

void Network::Send(NodeId from, NodeId to, int64_t bytes, EventLoop::Task on_delivery) {
  assert(bytes >= 0);
  Shard& shard = ShardFor(from);
  auto& stats = shard.sent[{from, to}];
  stats.bytes += bytes;
  stats.messages += 1;
  shard.total_bytes += bytes;

  if (crashed_.contains(from) || crashed_.contains(to) ||
      partitioned_.contains(OrderedPair(from, to)) ||
      (loss_probability_ > 0.0 && shard.rng.NextBool(loss_probability_))) {
    shard.dropped_messages += 1;
    return;
  }
  // The send happens "now" on the sender's loop — mid-round, different loops sit at
  // different instants within the same quantum, and the sender's clock is the
  // deterministic one for this call.
  EventLoop* from_loop = group_ == nullptr ? loop_ : &group_->loop(SlotOf(from));
  // FIFO link: never deliver before an earlier message on the same directed link.
  SimTime deliver_at = from_loop->Now() + SampleDelay(from, to);
  SimTime& last = shard.last_delivery[{from, to}];
  deliver_at = std::max(deliver_at, last);
  last = deliver_at;

  if (group_ == nullptr) {
    loop_->ScheduleAt(deliver_at, std::move(on_delivery));
    return;
  }
  const int to_slot = SlotOf(to);
  if (to_slot == SlotOf(from)) {
    // Same-loop fast path: the caller is (or may safely act as) this loop's driver.
    group_->loop(to_slot).ScheduleAt(deliver_at, std::move(on_delivery));
  } else {
    // Cross-loop: route through the group channel; delivered at the next barrier at
    // max(deliver_at, barrier) — the quantum bounds the extra latency.
    group_->Post(to_slot, deliver_at, std::move(on_delivery));
  }
}

const LinkStats& Network::Sent(NodeId from, NodeId to) const {
  static const LinkStats kEmpty;
  const Shard* shard = ShardForOrNull(from);
  if (shard == nullptr) {
    return kEmpty;
  }
  auto it = shard->sent.find({from, to});
  return it == shard->sent.end() ? kEmpty : it->second;
}

int64_t Network::BytesBetween(NodeId a, NodeId b) const {
  return Sent(a, b).bytes + Sent(b, a).bytes;
}

int64_t Network::MessagesBetween(NodeId a, NodeId b) const {
  return Sent(a, b).messages + Sent(b, a).messages;
}

int64_t Network::total_bytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->total_bytes;
  }
  return total;
}

int64_t Network::dropped_messages() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped_messages;
  }
  return total;
}

void Network::ResetStats() {
  for (const auto& shard : shards_) {
    shard->sent.clear();
    shard->total_bytes = 0;
    shard->dropped_messages = 0;
  }
}

}  // namespace icg
