// LoopGroup: N EventLoops advanced in lockstep virtual-time quanta, optionally on N
// real threads — the parallel execution substrate behind the multi-world benchmarks.
//
// Affinity model: everything scheduled on one EventLoop (a SimWorld's network, stores,
// clients, runners) stays on that loop, and each loop is driven by exactly one thread
// within any round, so simulated components need no locking. The only object shared
// between loops is the cross-loop channel below.
//
// Synchronization model: virtual time advances in quanta. Within a round every loop
// independently runs its own events up to the round's barrier time; at the barrier the
// driver drains the cross-loop channel and schedules delivered messages onto their
// target loops. A message posted during round R becomes visible on its target at round
// R+1, at virtual time max(when, barrier_R) — in threaded AND sequential mode alike, so
// the quantum (not thread interleaving) bounds cross-loop latency.
//
// Adaptive quanta (opt-in): with `adaptive_quantum` set, each round's width follows the
// earliest pending activity — the minimum over every loop's next event time and every
// queued cross-loop message's delivery time — clamped to [quantum, max_quantum]. Dense
// traffic degenerates to fixed-quantum rounds (late-delivery clamp stays bounded by the
// base quantum); quiescent stretches collapse into a handful of wide rounds instead of
// paying a barrier every `quantum`. The schedule is a pure function of virtual-time
// state (event times + posted-message history), never of thread interleaving, so it is
// identical at every thread width — the width-sweep oracles enforce this, and
// `barrier_schedule_hash()` fingerprints the exact barrier sequence.
//
// Determinism: bit-for-bit. Each loop's event sequence is a pure function of its own
// schedule (loops never touch each other mid-round), and drained messages are merged in
// (delivery time, sender, per-sender sequence) order before scheduling, which pins the
// target's FIFO tie-break order. Running with `threads = 0` (sequential), 2, or N
// produces identical per-loop histories — the seeded tests and consistency oracles rely
// on this to validate the threaded modes against the deterministic one.
//
// Scheduling model: within a round, claim units (normally single loops; temporarily
// fused groups of loops during a migration window — see FuseLanes) are claimable on a
// shared index — workers steal the next unclaimed unit instead of owning a static
// stripe, so one hot loop never serializes the whole round behind a fixed owner.
// Stealing only changes *which thread* drives a unit, never a loop's own event order,
// so determinism is untouched. Units with no events due this round are advanced inline
// by the driver (advancing an eventless loop runs no user code); rounds with at most
// one active unit skip the worker pool entirely, so quiescent rounds cost no wakeup,
// no barrier wait, and no allocation. Per-round imbalance is visible through
// metrics(): events/loop high-water, barrier wait time, and channel depth.
#ifndef ICG_SIM_LOOP_GROUP_H_
#define ICG_SIM_LOOP_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/sim/event_loop.h"

namespace icg {

class LoopGroup {
 public:
  struct Options {
    // 0 or 1: the deterministic sequential driver (no threads are ever created).
    // K > 1: loops are driven by min(K, loops) persistent worker threads per round.
    int threads = 0;
    // Width of one synchronization round in virtual microseconds. Smaller quanta mean
    // lower cross-loop latency but more barriers per simulated second. With
    // `adaptive_quantum` this is the *floor*: the late-delivery clamp at a barrier is
    // never worse than one base quantum.
    SimDuration quantum = 1000;
    // Let round width follow pending activity (see file comment). Off by default so
    // fixed-quantum round counts — which existing tests and benches compare across
    // execution modes — are unchanged unless a caller opts in.
    bool adaptive_quantum = false;
    // Hard cap on one adaptive round's width, bounding real-time lane skew and the
    // channel-drain interval. 0 means 64 * quantum.
    SimDuration max_quantum = 0;
    // Pin each worker thread to a distinct core (Linux only; graceful no-op
    // elsewhere). workers_pinned() reports how many pins actually took.
    bool pin_workers = false;
    // Barrier spin budget (iterations) before a waiting thread parks on a futex-style
    // condvar. Spinning is skipped entirely on single-core hardware, where burning the
    // only core while the other side needs it is pure loss.
    int spin_iterations = 4000;
    // Keep the full per-round barrier-time history in memory (barrier_history()).
    // barrier_schedule_hash() is always maintained; the history is for tests.
    bool record_barrier_schedule = false;
  };

  LoopGroup() : LoopGroup(Options()) {}
  explicit LoopGroup(Options options);
  LoopGroup(const LoopGroup&) = delete;
  LoopGroup& operator=(const LoopGroup&) = delete;
  ~LoopGroup();

  // Registers a loop (not owned) and returns its index — the shard/world affinity slot.
  // The loop must currently sit at the group's virtual time (all loops advance
  // together), and attaching after worker threads have started is not supported.
  int Attach(EventLoop* loop);

  int size() const { return static_cast<int>(slots_.size()); }
  EventLoop& loop(int i) { return *slots_[static_cast<size_t>(i)].loop; }

  // Slot index of an attached loop, or -1 if it is not attached to this group.
  int IndexOf(const EventLoop* loop) const;

  // Cross-loop message: run `task` on loop `target` at virtual time >= `when`.
  // Callable from any loop's driving thread mid-round (each sender owns a private
  // outbox run per target — no locking on the hot path) and from the driver between
  // rounds. Delivery happens at the next barrier, at max(when, barrier time).
  void Post(int target, SimTime when, EventLoop::Task task);

  // Messages accepted but not yet scheduled onto their targets. Driver-thread only.
  size_t pending_messages() const;

  // Driver-side virtual-time task: runs on the DRIVER thread at the first barrier at
  // or after max(when, Now()) — i.e. between rounds, never while any loop executes —
  // so it may safely call the between-rounds APIs (FuseLanes, Post, live membership
  // changes on hosted stacks) and re-invoke ScheduleDriverTask to repeat, which is how
  // a periodic control loop rides the substrate. Due tasks run in (when, submission)
  // order. Under adaptive quanta a pending task clamps the round horizon like any
  // other activity, so it fires at its exact virtual time; the fire schedule is a pure
  // function of virtual-time state and therefore bit-identical at every thread width.
  //
  // RunAll deliberately does NOT treat pending driver tasks as activity (a
  // self-rescheduling controller would otherwise keep the group alive forever): stop
  // the rescheduling source before draining, as with failure detection. Driver-thread
  // only, between rounds.
  void ScheduleDriverTask(SimTime when, EventLoop::Task task);

  // Driver tasks accepted but not yet run (observability for tests).
  size_t pending_driver_tasks() const { return driver_tasks_.size(); }

  // Advances every loop to `until` through repeated quantum rounds.
  void RunUntil(SimTime until);

  // Runs rounds until no loop has pending events and the channel is empty.
  void RunAll();

  // Fuses the given slots into one claim unit until virtual time `until`: within each
  // round the fused loops are driven by a single thread in ascending slot order —
  // exactly the sequential driver's order, so fusion is invisible to determinism.
  // Used as the safety window for live shard migration: while a node's old and new
  // lanes are fused, work one lane schedules onto the other mid-round stays
  // single-threaded. Driver-thread only, between rounds; `until` must be > Now().
  // Overlapping fusions merge transitively; the fusion dissolves at the first barrier
  // at or past `until`.
  void FuseLanes(const std::vector<int>& lanes, SimTime until);

  // Fusion windows currently in force (observability for tests).
  int active_fusions() const { return static_cast<int>(fusions_.size()); }

  // The group's uniform virtual time (every attached loop's Now() between rounds).
  SimTime Now() const { return now_; }

  // Barrier rounds executed so far (observability for tests and pacing diagnostics).
  int64_t rounds() const { return rounds_; }

  bool threaded() const { return options_.threads > 1; }

  // Worker threads actually constructed. Stays 0 forever in sequential mode — the
  // regression tests assert this, since the sequential driver must never spawn or block.
  int workers_started() const { return worker_count_; }

  // Workers whose core pin actually took (0 unless Options::pin_workers on Linux).
  int workers_pinned() const { return workers_pinned_.load(std::memory_order_relaxed); }

  // FNV-1a over the sequence of barrier times so far: a fingerprint of the quantum
  // schedule. Bit-identical across thread widths — the width-sweep tests compare it.
  uint64_t barrier_schedule_hash() const { return schedule_hash_; }

  // Per-round barrier times; empty unless Options::record_barrier_schedule.
  const std::vector<SimTime>& barrier_history() const { return barrier_history_; }

  // Per-round imbalance and channel observability, updated by the driver at each
  // barrier (driver-thread reads only):
  //   "rounds_threaded"          rounds executed through the worker pool
  //   "rounds_inline"            threaded-mode rounds with <= 1 active unit, driven by
  //                              the driver without waking the pool
  //   "rounds_idle"              rounds where no loop had an event due (clock advance
  //                              only — the quiescent case adaptive quanta compress)
  //   "rounds_widened"           adaptive rounds wider than the base quantum
  //   "loop_events_highwater"    most events one loop processed within a single round
  //   "round_events_highwater"   most events all loops processed within a single round
  //   "barrier_wait_ns"          total real time the driver spent blocked at barriers
  //   "channel_messages"         cross-loop messages delivered across all barriers
  //   "channel_depth_highwater"  most messages drained at a single barrier
  //   "late_deliveries"          drained messages whose delivery time had already
  //                              passed and was clamped to the barrier (the latency
  //                              cost of quantum width)
  const MetricRegistry& metrics() const { return metrics_; }

  // Cross-loop messages delivered *to* slot `target` so far (driver-thread only).
  // Feed for placement decisions alongside per-loop events_processed().
  int64_t slot_delivered_messages(int target) const {
    return slots_[static_cast<size_t>(target)].delivered_messages;
  }

  // Zeroes every metrics() counter (driver-thread only, between rounds). Benches call
  // this after warmup so per-phase numbers aren't cumulative. rounds()/clock state and
  // the barrier-schedule fingerprint are untouched.
  void ResetMetrics() { metrics_.Reset(); }

  // Real cores available, for core-count-aware benchmark gates.
  static int HardwareThreads();

 private:
  struct Message {
    SimTime when = 0;
    int sender = -1;  // attached loop index, or -1 for an external (driver) post
    uint64_t seq = 0;  // per-sender submission order: the deterministic tie-break
    EventLoop::Task task;
  };

  // Cache-line padded: adjacent slots are hammered by different worker threads.
  struct alignas(64) Slot {
    EventLoop* loop = nullptr;
    uint64_t post_seq = 0;  // messages sent *by* this loop (driving thread only)
    int64_t round_events = 0;  // events this loop ran last round (its driver writes,
                               // the group driver reads after the barrier)
    int64_t delivered_messages = 0;  // cross-loop messages delivered TO this loop
                                     // (driver writes at drains)
    // Outbox runs: outbox[target] holds the messages this loop posted to `target`
    // since the last drain. Written only by the one thread driving this loop within a
    // round, read by the driver at the barrier — no lock anywhere on the send path.
    // Runs keep their capacity across drains, so steady-state sends allocate nothing.
    std::vector<std::vector<Message>> outbox;
  };

  struct Fusion {
    std::vector<int> lanes;  // sorted, >= 2 entries
    SimTime until = 0;
  };

  struct DriverTask {
    SimTime when = 0;
    uint64_t seq = 0;  // submission order: the deterministic same-time tie-break
    EventLoop::Task task;
  };

  // Runs every loop to `barrier` (sequentially or via the worker pool), then delivers
  // all queued cross-loop messages and advances the group clock.
  void RunRound(SimTime barrier);
  // Next round's barrier starting from `from`, capped at `limit`: from + quantum, or
  // the activity-following adaptive width (see file comment).
  SimTime NextBarrier(SimTime from, SimTime limit);
  void DriveLoop(int index, SimTime barrier);
  // Drives a claim unit's loops in ascending slot order (the sequential order).
  void DriveUnit(int unit_index, SimTime barrier);
  void DrainChannel();
  // Earliest pending cross-loop delivery, as seen from `from` (deliveries never land
  // in the past); returns false if the channel is empty. Driver-thread only.
  bool EarliestQueuedDelivery(SimTime from, SimTime* out) const;
  // Runs every driver task whose time has arrived, in (when, seq) order. Called by the
  // driver after a round's clock advance; a task may schedule further tasks, which run
  // in this same drain if already due.
  void RunDueDriverTasks();
  // Drops expired fusions and rebuilds units_ if the fusion set changed.
  void ExpireFusions();
  void RebuildUnits();
  void StartWorkers();
  void WorkerMain(int worker_index);
  void RecordRoundStats();
  // Counter-as-high-water: bumps `name` up to `candidate` if it is a new maximum.
  void RaiseTo(const char* name, int64_t candidate);
  SimDuration max_quantum() const {
    return options_.max_quantum > 0 ? options_.max_quantum : options_.quantum * 64;
  }

  Options options_;
  SimTime now_ = 0;
  int64_t rounds_ = 0;
  std::vector<Slot> slots_;
  MetricRegistry metrics_;  // driver-thread only (updated between rounds)

  // External (non-loop) posters: one run per target, guarded — external posts are rare
  // (test setup, bench injection) and never on a loop's hot path.
  mutable std::mutex external_mu_;
  uint64_t external_seq_ = 0;
  std::vector<std::vector<Message>> external_outbox_;

  // Claim units. units_ is the stable partition (singletons unless fused);
  // round_units_ holds the indices of units with work due this round, in unit order.
  // Both are written by the driver before a round is published and read-only during it.
  std::vector<std::vector<int>> units_;
  bool units_dirty_ = true;
  std::vector<Fusion> fusions_;
  std::vector<int> round_units_;

  // Pending driver tasks (driver-thread only; unsorted, drained by RunDueDriverTasks).
  std::vector<DriverTask> driver_tasks_;
  uint64_t driver_task_seq_ = 0;

  // Drain scratch, reused across barriers (capacity persists; no steady-state allocs).
  struct RunRef {
    std::vector<Message>* run;
    int sender;
    size_t pos;
  };
  std::vector<RunRef> drain_runs_;

  // Quantum schedule fingerprint (FNV-1a over barrier times) + optional history.
  uint64_t schedule_hash_ = 1469598103934665603ULL;
  std::vector<SimTime> barrier_history_;

  // Worker pool (created lazily on the first threaded round).
  int worker_count_ = 0;  // set before any worker starts; constant afterwards
  int spin_budget_ = 0;   // per-wait spin iterations before parking
  std::vector<std::thread> workers_;
  std::atomic<int> workers_pinned_{0};

  // Spin-then-park barrier. The driver publishes a round by bumping round_gen_
  // (release) after writing round_barrier_/round_units_/claim_/workers_active_;
  // workers spin on round_gen_ (acquire) and park on worker_cv_ when the budget runs
  // out. Completion runs through workers_active_: each worker fetch_subs (acq_rel) so
  // the RMW release sequence hands every worker's round writes to the driver's final
  // acquire load; the last worker wakes the driver only if it actually parked.
  std::atomic<uint64_t> round_gen_{0};
  std::atomic<int> workers_active_{0};
  std::atomic<bool> stopping_{false};
  SimTime round_barrier_ = 0;  // published by the round_gen_ release/acquire pair
  std::mutex park_mu_;
  std::condition_variable worker_cv_;  // driver -> parked workers: new round / stop
  std::condition_variable driver_cv_;  // last worker -> parked driver: round done
  int parked_workers_ = 0;     // under park_mu_
  bool driver_parked_ = false;  // under park_mu_

  // The work-stealing index: threads fetch_add to claim the next undriven unit of the
  // round. Reset by the driver before it publishes a round; the driver joins the claim
  // loop itself instead of idling at the barrier.
  std::atomic<int> claim_{0};
};

}  // namespace icg

#endif  // ICG_SIM_LOOP_GROUP_H_
