// LoopGroup: N EventLoops advanced in lockstep virtual-time quanta, optionally on N
// real threads — the parallel execution substrate behind the multi-world benchmarks.
//
// Affinity model: everything scheduled on one EventLoop (a SimWorld's network, stores,
// clients, runners) stays on that loop, and each loop is driven by exactly one thread
// within any round, so simulated components need no locking. The only object shared
// between loops is the cross-loop channel below.
//
// Synchronization model: virtual time advances in quanta. Within a round every loop
// independently runs its own events up to the round's barrier time; at the barrier the
// driver drains the cross-loop channel and schedules delivered messages onto their
// target loops. A message posted during round R becomes visible on its target at round
// R+1, at virtual time max(when, barrier_R) — in threaded AND sequential mode alike, so
// the quantum (not thread interleaving) bounds cross-loop latency.
//
// Determinism: bit-for-bit. Each loop's event sequence is a pure function of its own
// schedule (loops never touch each other mid-round), and drained messages are sorted by
// (delivery time, sender, per-sender sequence) before scheduling, which pins the
// target's FIFO tie-break order. Running with `threads = 0` (sequential), 2, or N
// produces identical per-loop histories — the seeded tests and consistency oracles rely
// on this to validate the threaded modes against the deterministic one.
//
// Scheduling model: within a round, loops are claimable units on a shared index —
// workers steal the next unclaimed loop instead of owning a static stripe, so one hot
// loop never serializes the whole round behind a fixed owner. Stealing only changes
// *which thread* drives a loop, never the loop's own event order, so determinism is
// untouched. Per-round imbalance is visible through metrics(): events/loop high-water,
// barrier wait time, and channel depth.
#ifndef ICG_SIM_LOOP_GROUP_H_
#define ICG_SIM_LOOP_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/sim/event_loop.h"

namespace icg {

class LoopGroup {
 public:
  struct Options {
    // 0 or 1: the deterministic sequential driver (no threads are ever created).
    // K > 1: loops are driven by min(K, loops) persistent worker threads per round.
    int threads = 0;
    // Width of one synchronization round in virtual microseconds. Smaller quanta mean
    // lower cross-loop latency but more barriers per simulated second.
    SimDuration quantum = 1000;
  };

  LoopGroup() : LoopGroup(Options()) {}
  explicit LoopGroup(Options options);
  LoopGroup(const LoopGroup&) = delete;
  LoopGroup& operator=(const LoopGroup&) = delete;
  ~LoopGroup();

  // Registers a loop (not owned) and returns its index — the shard/world affinity slot.
  // The loop must currently sit at the group's virtual time (all loops advance
  // together), and attaching after worker threads have started is not supported.
  int Attach(EventLoop* loop);

  int size() const { return static_cast<int>(slots_.size()); }
  EventLoop& loop(int i) { return *slots_[static_cast<size_t>(i)].loop; }

  // Slot index of an attached loop, or -1 if it is not attached to this group.
  int IndexOf(const EventLoop* loop) const;

  // Cross-loop message: run `task` on loop `target` at virtual time >= `when`.
  // Callable from any loop's driving thread mid-round (each target has its own striped
  // mutex + queue; MPSC per target) and from the driver between rounds. Delivery
  // happens at the next barrier, at max(when, barrier time).
  void Post(int target, SimTime when, EventLoop::Task task);

  // Messages accepted but not yet scheduled onto their targets. Driver-thread only.
  size_t pending_messages() const;

  // Advances every loop to `until` through repeated quantum rounds.
  void RunUntil(SimTime until);

  // Runs rounds until no loop has pending events and the channel is empty.
  void RunAll();

  // The group's uniform virtual time (every attached loop's Now() between rounds).
  SimTime Now() const { return now_; }

  // Barrier rounds executed so far (observability for tests and pacing diagnostics).
  int64_t rounds() const { return rounds_; }

  bool threaded() const { return options_.threads > 1; }

  // Worker threads actually constructed. Stays 0 forever in sequential mode — the
  // regression tests assert this, since the sequential driver must never spawn or block.
  int workers_started() const { return worker_count_; }

  // Per-round imbalance and channel observability, updated by the driver at each
  // barrier (driver-thread reads only):
  //   "rounds_threaded"          rounds executed through the worker pool
  //   "loop_events_highwater"    most events one loop processed within a single round
  //   "round_events_highwater"   most events all loops processed within a single round
  //   "barrier_wait_ns"          total real time the driver spent blocked at barriers
  //   "channel_messages"         cross-loop messages delivered across all barriers
  //   "channel_depth_highwater"  most messages drained at a single barrier
  const MetricRegistry& metrics() const { return metrics_; }

  // Real cores available, for core-count-aware benchmark gates.
  static int HardwareThreads();

 private:
  struct Message {
    SimTime when = 0;
    int sender = -1;  // attached loop index, or -1 for an external (driver) post
    uint64_t seq = 0;  // per-sender submission order: the deterministic tie-break
    EventLoop::Task task;
  };

  // Cache-line padded: adjacent slots are hammered by different worker threads.
  struct alignas(64) Slot {
    EventLoop* loop = nullptr;
    uint64_t post_seq = 0;  // messages sent *by* this loop (driving thread only)
    int64_t round_events = 0;  // events this loop ran last round (its driver writes,
                               // the group driver reads after the barrier)
  };

  // One stripe per target loop, so posts to different targets never contend.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<Message> queue;
  };

  // Runs every loop to `barrier` (sequentially or via the worker pool), then delivers
  // all queued cross-loop messages and advances the group clock.
  void RunRound(SimTime barrier);
  void DriveLoop(int index, SimTime barrier);
  void DrainChannel();
  void StartWorkers();
  void WorkerMain(int worker_index);
  void RecordRoundStats();
  // Counter-as-high-water: bumps `name` up to `candidate` if it is a new maximum.
  void RaiseTo(const char* name, int64_t candidate);

  Options options_;
  SimTime now_ = 0;
  int64_t rounds_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Stripe>> stripes_;  // parallel to slots_
  MetricRegistry metrics_;  // driver-thread only (updated between rounds)

  std::mutex external_mu_;  // guards external (non-loop) posters' sequence counter
  uint64_t external_seq_ = 0;

  // Worker pool (created lazily on the first threaded round).
  int worker_count_ = 0;  // set before any worker starts; constant afterwards
  std::vector<std::thread> workers_;
  std::mutex round_mu_;
  std::condition_variable round_cv_;   // driver -> workers: a round is ready
  std::condition_variable done_cv_;    // workers -> driver: all loops reached the barrier
  uint64_t round_gen_ = 0;
  SimTime round_barrier_ = 0;
  int workers_active_ = 0;
  bool stopping_ = false;

  // The work-stealing index: workers fetch_add to claim the next undriven loop of the
  // round. Reset by the driver before it publishes a round.
  std::atomic<int> claim_{0};
};

}  // namespace icg

#endif  // ICG_SIM_LOOP_GROUP_H_
