// Single-server FIFO work queue modeling a node's CPU.
//
// Every request a replica handles consumes a service time on its queue; under load the
// queue builds up and latency rises, producing the saturation knees in the paper's
// latency-versus-throughput plots (Figures 6 and 11). The preliminary-flushing step of
// Correctable Cassandra costs extra service time per read, which is exactly what causes
// CC's ~6% throughput drop relative to baseline Cassandra.
#ifndef ICG_SIM_SERVICE_QUEUE_H_
#define ICG_SIM_SERVICE_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "src/common/types.h"
#include "src/sim/event_loop.h"

namespace icg {

class ServiceQueue {
 public:
  ServiceQueue(EventLoop* loop, std::string name) : loop_(loop), name_(std::move(name)) {}

  // Enqueues work consuming `service_time` of server time; runs `done` at completion.
  // Non-preemptive FIFO: completion = max(now, previous completion) + service_time.
  void Submit(SimDuration service_time, EventLoop::Task done);

  // Moves this server onto another loop — used when its node is placed on a LoopGroup
  // lane after construction, or when a crashed replica rejoins. Legal whenever the
  // queue is quiescent: nothing in flight (either never used, drained, or cancelled via
  // CancelPending).
  void RebindLoop(EventLoop* loop) {
    assert(loop != nullptr);
    assert(InFlight() == 0 && "rebind requires a quiescent queue");
    loop_ = loop;
  }

  // Live-migration variant of RebindLoop: moves the server onto another loop *with
  // work possibly in flight*. Completions already scheduled keep running on the old
  // loop (their closures only touch this object); new submissions land on the new
  // loop. Safe only while the old and new lanes are fused into one claim unit (see
  // LoopGroup::FuseLanes) or between rounds — otherwise two threads could run this
  // server's completions concurrently. Submit computes start times from the *target*
  // loop's clock, so a completion is never scheduled into the new loop's past.
  void MigrateLoop(EventLoop* loop) {
    assert(loop != nullptr);
    loop_ = loop;
  }

  // Abandons every in-flight job (kill -9 of the server): their completion callbacks
  // never run and never count, and the server is immediately idle for new work. The
  // completion events already scheduled on the loop stay there but no-op — cancelling
  // by generation instead of TimerId keeps Submit free of bookkeeping.
  void CancelPending() {
    generation_ += 1;
    submitted_ = completed_;
    busy_until_ = 0;
    cancelled_ += 1;
  }

  // Time at which the server frees up if no further work arrives.
  SimTime busy_until() const { return busy_until_; }

  // Jobs submitted but not yet completed, were the clock to advance with no new arrivals.
  int64_t InFlight() const { return submitted_ - completed_; }

  int64_t submitted() const { return submitted_; }
  int64_t completed() const { return completed_; }
  int64_t cancellations() const { return cancelled_; }
  SimDuration total_busy_time() const { return total_busy_time_; }

  // Fraction of `window` the server spent busy (assuming stats reset at window start).
  double Utilization(SimDuration window) const {
    return window <= 0 ? 0.0
                       : static_cast<double>(total_busy_time_) / static_cast<double>(window);
  }

  void ResetStats() {
    submitted_ = completed_ = 0;
    total_busy_time_ = 0;
  }

  const std::string& name() const { return name_; }

 private:
  EventLoop* loop_;
  std::string name_;
  SimTime busy_until_ = 0;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  int64_t cancelled_ = 0;
  uint64_t generation_ = 0;  // bumped by CancelPending; stale completions no-op
  SimDuration total_busy_time_ = 0;
};

}  // namespace icg

#endif  // ICG_SIM_SERVICE_QUEUE_H_
