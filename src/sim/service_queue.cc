#include "src/sim/service_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace icg {

void ServiceQueue::Submit(SimDuration service_time, EventLoop::Task done) {
  assert(service_time >= 0);
  const SimTime start = std::max(loop_->Now(), busy_until_);
  const SimTime finish = start + service_time;
  busy_until_ = finish;
  submitted_ += 1;
  total_busy_time_ += service_time;
  loop_->ScheduleAt(finish, [this, generation = generation_, done = std::move(done)]() {
    if (generation != generation_) {
      return;  // the server was killed (CancelPending) while this job was in flight
    }
    completed_ += 1;
    done();
  });
}

}  // namespace icg
