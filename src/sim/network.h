// Message-passing network with WAN latencies, jitter, byte accounting, and failure
// injection (crashes, partitions, probabilistic loss).
//
// A message is a closure executed at the destination after the simulated propagation
// delay. Byte sizes are declared by the sender so benchmarks can report bandwidth per
// operation exactly as the paper does (client<->replica kB/op).
#ifndef ICG_SIM_NETWORK_H_
#define ICG_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/event_loop.h"
#include "src/sim/topology.h"

namespace icg {

// Traffic accounting for one direction of one node pair.
struct LinkStats {
  int64_t bytes = 0;
  int64_t messages = 0;
};

class Network {
 public:
  // `jitter_sigma` is the log-space deviation of the lognormal latency multiplier; 0
  // disables jitter entirely (useful for exact-latency unit tests).
  Network(EventLoop* loop, const Topology* topology, uint64_t seed, double jitter_sigma = 0.08);

  // Sends `bytes` from `from` to `to`; runs `on_delivery` at the destination after the
  // propagation delay. Messages to self incur kLocalDelay. Dropped silently if either
  // endpoint is crashed, the pair is partitioned, or the loss dice say so.
  //
  // Links are FIFO, like the TCP connections real systems run on: jitter can stretch
  // delays but a message never overtakes an earlier message on the same directed link.
  // Zab (and the CZK speculative-promise ordering) depend on this, exactly as real
  // ZooKeeper depends on TCP ordering.
  void Send(NodeId from, NodeId to, int64_t bytes, EventLoop::Task on_delivery);

  // Computes the one-way delay that a message sent now would experience (inclusive of
  // jitter). Exposed for tests and for latency-prediction logic.
  SimDuration SampleDelay(NodeId from, NodeId to);

  // --- Failure injection -------------------------------------------------------------
  void Crash(NodeId node) { crashed_.insert(node); }
  void Restart(NodeId node) { crashed_.erase(node); }
  bool IsCrashed(NodeId node) const { return crashed_.contains(node); }

  // Cuts both directions between a and b.
  void Partition(NodeId a, NodeId b) { partitioned_.insert(OrderedPair(a, b)); }
  void Heal(NodeId a, NodeId b) { partitioned_.erase(OrderedPair(a, b)); }

  // Probability in [0,1] that any given message is lost.
  void SetLossProbability(double p) { loss_probability_ = p; }

  // --- Accounting ---------------------------------------------------------------------
  const LinkStats& Sent(NodeId from, NodeId to) const;
  // Total bytes exchanged between the pair, both directions.
  int64_t BytesBetween(NodeId a, NodeId b) const;
  int64_t MessagesBetween(NodeId a, NodeId b) const;
  int64_t total_bytes() const { return total_bytes_; }
  int64_t dropped_messages() const { return dropped_messages_; }
  void ResetStats();

  EventLoop* loop() const { return loop_; }
  const Topology* topology() const { return topology_; }

 private:
  static std::pair<NodeId, NodeId> OrderedPair(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  EventLoop* loop_;
  const Topology* topology_;
  Rng rng_;
  double jitter_sigma_;
  double loss_probability_ = 0.0;

  std::set<NodeId> crashed_;
  std::set<std::pair<NodeId, NodeId>> partitioned_;

  std::map<std::pair<NodeId, NodeId>, LinkStats> sent_;  // keyed by (from, to)
  std::map<std::pair<NodeId, NodeId>, SimTime> last_delivery_;  // FIFO enforcement
  int64_t total_bytes_ = 0;
  int64_t dropped_messages_ = 0;

  static constexpr SimDuration kLocalDelay = Micros(50);
};

}  // namespace icg

#endif  // ICG_SIM_NETWORK_H_
