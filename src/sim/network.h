// Message-passing network with WAN latencies, jitter, byte accounting, and failure
// injection (crashes, partitions, probabilistic loss).
//
// A message is a closure executed at the destination after the simulated propagation
// delay. Byte sizes are declared by the sender so benchmarks can report bandwidth per
// operation exactly as the paper does (client<->replica kB/op).
//
// Cross-loop mode: endpoints may live on different EventLoops of one LoopGroup
// (BindGroup + PlaceNode). Same-loop sends keep the zero-overhead in-loop schedule;
// cross-loop sends route through LoopGroup::Post and are delivered at the next round
// barrier, so cross-loop latency is bounded by the group's quantum (smaller quantum =
// tighter latency, more barriers). Everything stays deterministic at any thread width:
// all per-link mutable state (jitter RNG, FIFO clamp, byte accounting) is sharded by the
// *sender's* loop, and a node's sends only ever happen on the thread driving its loop,
// so the draw/clamp order is a pure function of that loop's own event order.
#ifndef ICG_SIM_NETWORK_H_
#define ICG_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/event_loop.h"
#include "src/sim/topology.h"

namespace icg {

class LoopGroup;

// Traffic accounting for one direction of one node pair.
struct LinkStats {
  int64_t bytes = 0;
  int64_t messages = 0;
};

class Network {
 public:
  // `jitter_sigma` is the log-space deviation of the lognormal latency multiplier; 0
  // disables jitter entirely (useful for exact-latency unit tests).
  Network(EventLoop* loop, const Topology* topology, uint64_t seed, double jitter_sigma = 0.08);

  // Sends `bytes` from `from` to `to`; runs `on_delivery` at the destination after the
  // propagation delay. Messages to self incur kLocalDelay. Dropped silently if either
  // endpoint is crashed, the pair is partitioned, or the loss dice say so.
  //
  // Links are FIFO, like the TCP connections real systems run on: jitter can stretch
  // delays but a message never overtakes an earlier message on the same directed link.
  // Zab (and the CZK speculative-promise ordering) depend on this, exactly as real
  // ZooKeeper depends on TCP ordering. FIFO holds across loops too: barrier clamping is
  // monotone, so a later message on a link is never delivered before an earlier one.
  void Send(NodeId from, NodeId to, int64_t bytes, EventLoop::Task on_delivery);

  // Computes the one-way delay that a message sent now would experience (inclusive of
  // jitter). Exposed for tests and for latency-prediction logic. In cross-loop mode the
  // draw comes from `from`'s loop shard, so call it from that loop's thread (or between
  // rounds).
  SimDuration SampleDelay(NodeId from, NodeId to);

  // --- Cross-loop placement ------------------------------------------------------------
  // Splits this network across the loops of `group`. The construction loop becomes the
  // "home" loop (it must already be attached to the group) and every node starts there;
  // PlaceNode pins individual nodes to other attached loops. Call during setup, before
  // any traffic, and never unbind. Delivery closures run on the *destination* node's
  // loop, so simulated components keep their single-thread-per-round affinity — the
  // harness rebinds each placed component's timers/service queue via its RebindLoop.
  void BindGroup(LoopGroup* group);
  void PlaceNode(NodeId node, int slot);
  // Live re-placement for stats-driven rebalancing: moves `node` to `slot` *after*
  // traffic has flowed. The node's outgoing FIFO clamps move with it (merged by max,
  // so a link never un-learns its last delivery time and FIFO order survives the
  // move), as do its per-link send counters. Driver-thread only, between rounds; the
  // caller pairs this with the component's MigrateLoop and a fused-lane window.
  // Jitter RNG draws come from the new shard's stream afterwards — placement changes
  // the (deterministic) schedule, exactly like any topology decision would.
  void MigrateNode(NodeId node, int slot);
  // The LoopGroup slot `node` lives on (the home slot unless placed). 0 when unbound.
  int SlotOf(NodeId node) const;
  // The loop driving `node`: group->loop(SlotOf(node)) when bound, else the home loop.
  EventLoop* LoopFor(NodeId node) const;
  bool cross_loop() const { return group_ != nullptr; }

  // --- Failure injection ---------------------------------------------------------------
  // Mutate only between rounds (driver thread); Send reads these concurrently mid-round.
  void Crash(NodeId node) { crashed_.insert(node); }
  void Restart(NodeId node) { crashed_.erase(node); }
  bool IsCrashed(NodeId node) const { return crashed_.contains(node); }

  // Cuts both directions between a and b.
  void Partition(NodeId a, NodeId b) { partitioned_.insert(OrderedPair(a, b)); }
  void Heal(NodeId a, NodeId b) { partitioned_.erase(OrderedPair(a, b)); }

  // Probability in [0,1] that any given message is lost.
  void SetLossProbability(double p) { loss_probability_ = p; }

  // --- Accounting ---------------------------------------------------------------------
  // Query between rounds (driver thread): counters are sharded by sender loop.
  const LinkStats& Sent(NodeId from, NodeId to) const;
  // Total bytes exchanged between the pair, both directions.
  int64_t BytesBetween(NodeId a, NodeId b) const;
  int64_t MessagesBetween(NodeId a, NodeId b) const;
  int64_t total_bytes() const;
  int64_t dropped_messages() const;
  void ResetStats();

  EventLoop* loop() const { return loop_; }
  const Topology* topology() const { return topology_; }

 private:
  // All mutable per-send state, sharded by the sender's loop slot so concurrently
  // driven loops never contend — and, more importantly, so every draw and FIFO clamp
  // happens in the sender loop's deterministic event order. Padded: adjacent shards are
  // hammered by different worker threads.
  struct alignas(64) Shard {
    explicit Shard(uint64_t seed) : rng(seed) {}
    Rng rng;
    std::map<std::pair<NodeId, NodeId>, LinkStats> sent;          // keyed by (from, to)
    std::map<std::pair<NodeId, NodeId>, SimTime> last_delivery;   // FIFO enforcement
    int64_t total_bytes = 0;
    int64_t dropped_messages = 0;
  };

  static std::pair<NodeId, NodeId> OrderedPair(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  Shard& ShardFor(NodeId from);
  const Shard* ShardForOrNull(NodeId from) const;
  Shard& EnsureShard(int slot);

  EventLoop* loop_;
  const Topology* topology_;
  uint64_t seed_;
  double jitter_sigma_;
  double loss_probability_ = 0.0;

  LoopGroup* group_ = nullptr;
  int home_slot_ = 0;
  std::map<NodeId, int> placement_;  // setup-time writes; concurrent reads mid-round

  std::set<NodeId> crashed_;
  std::set<std::pair<NodeId, NodeId>> partitioned_;

  // Indexed by LoopGroup slot when bound; exactly {shards_[0]} when unbound, which
  // preserves the historical single-RNG draw order bit-for-bit.
  std::vector<std::unique_ptr<Shard>> shards_;

  static constexpr SimDuration kLocalDelay = Micros(50);
};

}  // namespace icg

#endif  // ICG_SIM_NETWORK_H_
