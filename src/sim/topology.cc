#include "src/sim/topology.h"

#include <cassert>
#include <utility>

namespace icg {

const char* RegionName(Region r) {
  switch (r) {
    case Region::kIreland:
      return "IRL";
    case Region::kFrankfurt:
      return "FRK";
    case Region::kVirginia:
      return "VRG";
    case Region::kCalifornia:
      return "NCA";
    case Region::kOregon:
      return "ORE";
  }
  return "???";
}

RttMatrix RttMatrix::Ec2Default() {
  RttMatrix m;
  const auto set = [&m](Region a, Region b, int64_t ms) { m.SetRtt(a, b, Millis(ms)); };
  // Intra-region RTT: the paper reports 2 ms for an IRL client reaching an IRL replica.
  for (int r = 0; r < kNumRegions; ++r) {
    set(static_cast<Region>(r), static_cast<Region>(r), 2);
  }
  // Pairs stated in the paper.
  set(Region::kIreland, Region::kFrankfurt, 20);
  set(Region::kIreland, Region::kVirginia, 83);
  // Pairs calibrated from typical EC2 inter-region latencies.
  set(Region::kFrankfurt, Region::kVirginia, 90);
  set(Region::kIreland, Region::kCalifornia, 140);
  set(Region::kIreland, Region::kOregon, 130);
  set(Region::kFrankfurt, Region::kCalifornia, 150);
  set(Region::kFrankfurt, Region::kOregon, 155);
  set(Region::kVirginia, Region::kCalifornia, 62);
  set(Region::kVirginia, Region::kOregon, 75);
  set(Region::kCalifornia, Region::kOregon, 22);
  return m;
}

SimDuration RttMatrix::Rtt(Region a, Region b) const {
  return rtt_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

void RttMatrix::SetRtt(Region a, Region b, SimDuration rtt) {
  assert(rtt >= 0);
  rtt_[static_cast<size_t>(a)][static_cast<size_t>(b)] = rtt;
  rtt_[static_cast<size_t>(b)][static_cast<size_t>(a)] = rtt;
}

NodeId Topology::AddNode(Region region, std::string name) {
  regions_.push_back(region);
  names_.push_back(std::move(name));
  return static_cast<NodeId>(regions_.size() - 1);
}

std::vector<NodeId> Topology::NodesIn(Region region) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i] == region) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

}  // namespace icg
