// Geographic topology of the simulated deployment.
//
// The paper evaluates on Amazon EC2 with replicas in Frankfurt (FRK), Ireland (IRL), and
// N. Virginia (VRG); the Twissandra case study uses Virginia, N. California, and Oregon.
// Region-to-region RTTs below are calibrated from the paper's text (IRL<->FRK 20 ms,
// IRL<->VRG 83 ms, intra-region 2 ms) and from typical inter-region EC2 measurements for
// pairs the paper does not state.
#ifndef ICG_SIM_TOPOLOGY_H_
#define ICG_SIM_TOPOLOGY_H_

#include <array>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace icg {

enum class Region : int {
  kIreland = 0,     // IRL (eu-west-1)
  kFrankfurt = 1,   // FRK (eu-central-1)
  kVirginia = 2,    // VRG (us-east-1)
  kCalifornia = 3,  // NCA (us-west-1)
  kOregon = 4,      // ORE (us-west-2)
};
inline constexpr int kNumRegions = 5;

const char* RegionName(Region r);

// Round-trip times between regions, including the intra-region RTT on the diagonal.
class RttMatrix {
 public:
  // The default matrix used by all paper-reproduction experiments.
  static RttMatrix Ec2Default();

  SimDuration Rtt(Region a, Region b) const;
  void SetRtt(Region a, Region b, SimDuration rtt);  // symmetric

  SimDuration OneWay(Region a, Region b) const { return Rtt(a, b) / 2; }

 private:
  std::array<std::array<SimDuration, kNumRegions>, kNumRegions> rtt_{};
};

// Maps dense NodeIds to regions and human-readable roles.
class Topology {
 public:
  explicit Topology(RttMatrix rtts = RttMatrix::Ec2Default()) : rtts_(rtts) {}

  NodeId AddNode(Region region, std::string name);

  int NumNodes() const { return static_cast<int>(regions_.size()); }
  Region RegionOf(NodeId node) const { return regions_.at(static_cast<size_t>(node)); }
  const std::string& NameOf(NodeId node) const { return names_.at(static_cast<size_t>(node)); }

  const RttMatrix& rtts() const { return rtts_; }
  SimDuration RttBetween(NodeId a, NodeId b) const {
    return rtts_.Rtt(RegionOf(a), RegionOf(b));
  }

  // All nodes in a region, in insertion order.
  std::vector<NodeId> NodesIn(Region region) const;

 private:
  RttMatrix rtts_;
  std::vector<Region> regions_;
  std::vector<std::string> names_;
};

}  // namespace icg

#endif  // ICG_SIM_TOPOLOGY_H_
