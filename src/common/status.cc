#include "src/common/status.h"

namespace icg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

}  // namespace icg
