// Content digests for the confirmation optimization (§5.2 of the paper): a final view
// whose digest matches the preliminary is replaced by a small confirmation message.
#ifndef ICG_COMMON_DIGEST_H_
#define ICG_COMMON_DIGEST_H_

#include <cstdint>
#include <string_view>

namespace icg {

using Digest = uint64_t;

// FNV-1a 64-bit. Not cryptographic; collision resistance adequate for a simulation where
// digests only compare a preliminary view with its own final view.
constexpr Digest Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Digest of a value plus its version; two views are "the same" only if both the bytes
// and the version agree, mirroring Cassandra's digest reads.
constexpr Digest ValueDigest(std::string_view value, int64_t version_timestamp) {
  uint64_t hash = Fnv1a(value);
  hash ^= static_cast<uint64_t>(version_timestamp) + 0x9e3779b97f4a7c15ULL + (hash << 6) +
          (hash >> 2);
  return hash;
}

}  // namespace icg

#endif  // ICG_COMMON_DIGEST_H_
