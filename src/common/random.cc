#include "src/common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace icg {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro256** must not be seeded with all zeros; SplitMix64 never yields four zero
  // outputs in a row, so this is safe for any seed value.
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection sampling over the top bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0); NextDouble is in [0,1).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLognormal(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(sigma * NextGaussian());
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace icg
