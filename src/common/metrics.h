// Lightweight counters and byte meters used to reproduce the paper's bandwidth and
// throughput measurements (Figures 6, 8, 9, 10).
#ifndef ICG_COMMON_METRICS_H_
#define ICG_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/types.h"

namespace icg {

// Monotonic event counter.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// Tracks bytes moved over a logical link, split by direction, so benchmarks can report
// client<->replica traffic per operation as the paper does (kB/op).
class BandwidthMeter {
 public:
  void RecordSent(int64_t bytes) {
    sent_bytes_ += bytes;
    sent_messages_ += 1;
  }
  void RecordReceived(int64_t bytes) {
    received_bytes_ += bytes;
    received_messages_ += 1;
  }

  int64_t sent_bytes() const { return sent_bytes_; }
  int64_t received_bytes() const { return received_bytes_; }
  int64_t total_bytes() const { return sent_bytes_ + received_bytes_; }
  int64_t sent_messages() const { return sent_messages_; }
  int64_t received_messages() const { return received_messages_; }

  double BytesPerOp(int64_t ops) const {
    return ops == 0 ? 0.0 : static_cast<double>(total_bytes()) / static_cast<double>(ops);
  }
  double KilobytesPerOp(int64_t ops) const { return BytesPerOp(ops) / 1000.0; }

  void Reset() {
    sent_bytes_ = received_bytes_ = 0;
    sent_messages_ = received_messages_ = 0;
  }

 private:
  int64_t sent_bytes_ = 0;
  int64_t received_bytes_ = 0;
  int64_t sent_messages_ = 0;
  int64_t received_messages_ = 0;
};

// Simple throughput accounting over a measurement window of virtual time.
class ThroughputMeter {
 public:
  void RecordOp() { ops_ += 1; }
  int64_t ops() const { return ops_; }
  void Reset() { ops_ = 0; }

  double OpsPerSecond(SimDuration window) const {
    return window <= 0 ? 0.0 : static_cast<double>(ops_) / ToSeconds(window);
  }

 private:
  int64_t ops_ = 0;
};

// Named counters for ad-hoc instrumentation (confirmations sent, read repairs, retries).
// Not thread-safe by design: the whole simulation is single-threaded.
class MetricRegistry {
 public:
  Counter& GetCounter(const std::string& name) { return counters_[name]; }

  int64_t Value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }

  void Reset() {
    for (auto& [name, counter] : counters_) {
      counter.Reset();
    }
  }

 private:
  std::map<std::string, Counter> counters_;
};

}  // namespace icg

#endif  // ICG_COMMON_METRICS_H_
