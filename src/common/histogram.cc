#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace icg {

std::string LatencySummary::ToString() const {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << "n=" << count << " mean=" << mean_ms() << "ms p50=" << p50_ms()
     << "ms p95=" << p95_ms() << "ms p99=" << p99_ms() << "ms";
  return os.str();
}

void LatencyRecorder::Record(SimDuration latency) {
  samples_.push_back(latency);
  sorted_ = false;
}

void LatencyRecorder::Clear() {
  samples_.clear();
  sorted_ = true;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

SimDuration LatencyRecorder::Percentile(double pct) const {
  if (samples_.empty()) {
    return 0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = pct / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<size_t>(std::llround(rank));
  return samples_[std::min(idx, samples_.size() - 1)];
}

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary s;
  if (samples_.empty()) {
    return s;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  s.count = static_cast<int64_t>(samples_.size());
  s.min_us = samples_.front();
  s.max_us = samples_.back();
  const double total = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  s.mean_us = total / static_cast<double>(samples_.size());
  s.p50_us = Percentile(50);
  s.p95_us = Percentile(95);
  s.p99_us = Percentile(99);
  return s;
}

LogHistogram::LogHistogram() : buckets_(kBucketsPerOctave * kOctaves, 0) {}

int LogHistogram::BucketFor(int64_t value) {
  if (value < 1) {
    return 0;
  }
  const auto v = static_cast<uint64_t>(value);
  const int octave = 63 - std::countl_zero(v);
  // Position within the octave, in [0, kBucketsPerOctave).
  const uint64_t base = uint64_t{1} << octave;
  const int sub =
      static_cast<int>((v - base) * kBucketsPerOctave / (base == 0 ? 1 : base));
  const int bucket = octave * kBucketsPerOctave + std::min(sub, kBucketsPerOctave - 1);
  return std::min(bucket, kBucketsPerOctave * kOctaves - 1);
}

int64_t LogHistogram::BucketUpperBound(int bucket) {
  const int octave = bucket / kBucketsPerOctave;
  const int sub = bucket % kBucketsPerOctave;
  const uint64_t base = uint64_t{1} << octave;
  return static_cast<int64_t>(base + base * static_cast<uint64_t>(sub + 1) / kBucketsPerOctave);
}

void LogHistogram::Record(int64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  count_++;
  sum_ += static_cast<double>(value);
}

void LogHistogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t LogHistogram::Percentile(double pct) const {
  if (count_ == 0) {
    return 0;
  }
  const auto target = static_cast<int64_t>(std::ceil(pct / 100.0 * static_cast<double>(count_)));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return BucketUpperBound(static_cast<int>(i));
    }
  }
  return BucketUpperBound(static_cast<int>(buckets_.size()) - 1);
}

}  // namespace icg
