#include "src/common/logging.h"

#include <iostream>

namespace icg {
namespace {

LogLevel g_level = LogLevel::kOff;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogLine(LogLevel level, const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace icg
