#include "src/common/types.h"

#include <sstream>

namespace icg {

std::string ToString(const Version& v) {
  std::ostringstream os;
  os << "v" << v.timestamp << "@" << v.writer;
  return os.str();
}

}  // namespace icg
