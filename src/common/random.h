// Deterministic pseudo-random number generation for the simulator and workloads.
//
// All randomness in the repository flows through Rng instances seeded explicitly, so
// every experiment is reproducible bit-for-bit. The core generator is xoshiro256**,
// seeded through SplitMix64 (the recommended seeding procedure).
#ifndef ICG_COMMON_RANDOM_H_
#define ICG_COMMON_RANDOM_H_

#include <array>
#include <cstdint>

namespace icg {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling (no modulo bias).
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Standard normal via Box-Muller (cached second value, hence stateful).
  double NextGaussian();

  // Lognormal such that the median is `median` and sigma is the log-space deviation.
  // Used for WAN latency jitter: heavy right tail, never negative.
  double NextLognormal(double median, double sigma);

  // Forks an independent stream; deterministic function of this generator's state.
  Rng Fork();

 private:
  std::array<uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace icg

#endif  // ICG_COMMON_RANDOM_H_
