// SmallVec<T, N>: a vector with N elements of inline storage, for pipeline hot-path
// containers whose common sizes are tiny and statically known — level selections (1-4
// entries), plan steps (1-3), batch waiter lists, view-history buffers. Falls back to
// the heap transparently past N, so capacity guesses are a performance knob, never a
// correctness constraint.
//
// Deliberately minimal: exactly the std::vector surface this codebase uses (iteration,
// indexing, push/emplace, reserve/clear, move/copy). Grow-only capacity, strong
// exception safety not guaranteed (the simulation is noexcept-movable value types).
#ifndef ICG_COMMON_SMALL_VEC_H_
#define ICG_COMMON_SMALL_VEC_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace icg {

template <typename T, std::size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) {
      push_back(v);
    }
  }

  template <typename InputIt>
    requires(!std::is_integral_v<InputIt>)
  SmallVec(InputIt first, InputIt last) {
    for (; first != last; ++first) {
      push_back(*first);
    }
  }

  SmallVec(const SmallVec& other) {
    reserve(other.size_);
    for (size_type i = 0; i < other.size_; ++i) {
      ::new (data_ + i) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  SmallVec(SmallVec&& other) noexcept {
    StealOrMoveFrom(std::move(other));
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (size_type i = 0; i < other.size_; ++i) {
        ::new (data_ + i) T(other.data_[i]);
      }
      size_ = other.size_;
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      if (!IsInline()) {
        ::operator delete(data_);
      }
      data_ = InlinePtr();
      capacity_ = N;
      size_ = 0;
      StealOrMoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVec() {
    DestroyAll();
    if (!IsInline()) {
      ::operator delete(data_);
    }
  }

  size_type size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_type capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_type i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_type i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void reserve(size_type n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... A>
  T& emplace_back(A&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    T* slot = ::new (data_ + size_) T(std::forward<A>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    for (size_type i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "SmallVec does not support over-aligned element types");

  T* InlinePtr() { return reinterpret_cast<T*>(inline_); }
  bool IsInline() const { return data_ == reinterpret_cast<const T*>(inline_); }

  void DestroyAll() {
    for (size_type i = 0; i < size_; ++i) {
      data_[i].~T();
    }
  }

  void StealOrMoveFrom(SmallVec&& other) noexcept {
    if (other.IsInline()) {
      for (size_type i = 0; i < other.size_; ++i) {
        ::new (data_ + i) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlinePtr();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  void Grow(size_type want) {
    const size_type new_cap = want < 2 * capacity_ ? 2 * capacity_ : want;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (size_type i = 0; i < size_; ++i) {
      ::new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!IsInline()) {
      ::operator delete(data_);
    }
    data_ = fresh;
    capacity_ = new_cap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = reinterpret_cast<T*>(inline_);
  size_type size_ = 0;
  size_type capacity_ = N;
};

}  // namespace icg

#endif  // ICG_COMMON_SMALL_VEC_H_
