// InlineFunction<Sig, Capacity>: a small-buffer-optimized std::function replacement for
// the simulation and pipeline hot paths.
//
// std::function's inline buffer on mainstream standard libraries tops out around 16
// bytes, so the closures this codebase schedules by the million — network deliveries
// capturing a task plus accounting state, pipeline sinks capturing a shared_ptr and a
// level vector — spill to the heap on every construction. InlineFunction raises the
// inline capacity (chosen per use site) and keeps a transparent deep-copying heap
// fallback for oversized callables, so correctness never depends on the capacity guess.
//
// Semantics match std::function where it matters here: copyable (deep copy of the
// callable), movable (source becomes empty), null-comparable, const-invocable. Unlike
// std::function, move-only callables (unique_ptr captures and the like) are accepted on
// both sides of the SBO boundary: they move fine, and only an actual *copy* of the
// wrapper is an error (it aborts), so hot paths that hand closures around by move never
// pay for copyability they don't use.
#ifndef ICG_COMMON_INLINE_FUNCTION_H_
#define ICG_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace icg {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(const InlineFunction& other) : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->copy(storage_, other.storage_);
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(const InlineFunction& other) {
    if (this != &other) {
      InlineFunction tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction& operator=(F&& f) {
    *this = InlineFunction(std::forward<F>(f));
    return *this;
  }

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) { return f.ops_ == nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(const_cast<unsigned char*>(storage_), std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    void (*copy)(unsigned char*, const unsigned char*);
    // Move-constructs dst from src and destroys src (trivial pointer steal for the heap
    // representation), so moved-from functions hold no state.
    void (*relocate)(unsigned char*, unsigned char*);
    void (*destroy)(unsigned char*);
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* Stored(unsigned char* s) {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static const D* Stored(const unsigned char* s) {
    return std::launder(reinterpret_cast<const D*>(s));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](unsigned char* s, Args&&... args) -> R {
        return static_cast<R>((*Stored<D>(s))(std::forward<Args>(args)...));
      },
      /*copy=*/[](unsigned char* dst, const unsigned char* src) {
        if constexpr (std::is_copy_constructible_v<D>) {
          ::new (static_cast<void*>(dst)) D(*Stored<D>(src));
        } else {
          (void)dst;
          (void)src;
          std::abort();  // copying a wrapper that holds a move-only callable
        }
      },
      /*relocate=*/[](unsigned char* dst, unsigned char* src) {
        ::new (static_cast<void*>(dst)) D(std::move(*Stored<D>(src)));
        Stored<D>(src)->~D();
      },
      /*destroy=*/[](unsigned char* s) { Stored<D>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](unsigned char* s, Args&&... args) -> R {
        return static_cast<R>((**Stored<D*>(s))(std::forward<Args>(args)...));
      },
      /*copy=*/[](unsigned char* dst, const unsigned char* src) {
        if constexpr (std::is_copy_constructible_v<D>) {
          ::new (static_cast<void*>(dst)) D*(new D(**Stored<D*>(src)));
        } else {
          (void)dst;
          (void)src;
          std::abort();  // copying a wrapper that holds a move-only callable
        }
      },
      /*relocate=*/[](unsigned char* dst, unsigned char* src) {
        ::new (static_cast<void*>(dst)) D*(*Stored<D*>(src));
        // Pointer stolen; nothing to destroy in src.
      },
      /*destroy=*/[](unsigned char* s) { delete *Stored<D*>(s); },
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace icg

#endif  // ICG_COMMON_INLINE_FUNCTION_H_
