// Latency statistics for benchmarks: exact-percentile sample sets and streaming
// log-bucketed histograms.
#ifndef ICG_COMMON_HISTOGRAM_H_
#define ICG_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace icg {

// Summary statistics of a latency distribution, in microseconds (same unit as SimTime).
struct LatencySummary {
  int64_t count = 0;
  double mean_us = 0.0;
  int64_t min_us = 0;
  int64_t max_us = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;

  double mean_ms() const { return mean_us / 1000.0; }
  double p50_ms() const { return static_cast<double>(p50_us) / 1000.0; }
  double p95_ms() const { return static_cast<double>(p95_us) / 1000.0; }
  double p99_ms() const { return static_cast<double>(p99_us) / 1000.0; }

  std::string ToString() const;
};

// Records every sample; exact percentiles. Fine for simulation-scale sample counts
// (millions), which is what the benchmark harnesses produce.
class LatencyRecorder {
 public:
  void Record(SimDuration latency);
  void Clear();

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }

  // Computes summary statistics. Sorts lazily; callable repeatedly.
  LatencySummary Summarize() const;

  // Exact percentile in [0, 100].
  SimDuration Percentile(double pct) const;

  // Merges another recorder's samples into this one.
  void Merge(const LatencyRecorder& other);

 private:
  mutable std::vector<SimDuration> samples_;
  mutable bool sorted_ = true;
};

// Streaming histogram with logarithmic buckets (~4% relative error), constant memory.
// Used where sample counts would make exact recording wasteful.
class LogHistogram {
 public:
  LogHistogram();

  void Record(int64_t value);
  void Clear();

  int64_t count() const { return count_; }
  double Mean() const;
  // Approximate percentile in [0, 100]; returns the upper bound of the target bucket.
  int64_t Percentile(double pct) const;

 private:
  static constexpr int kBucketsPerOctave = 16;
  static constexpr int kOctaves = 40;  // covers [1, 2^40) microseconds (~12 days)

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace icg

#endif  // ICG_COMMON_HISTOGRAM_H_
