// Thread-local free-list pooling for the pipeline's short-lived shared objects.
//
// Every invocation allocates a handful of small shared structures (per-waiter delivery
// state, batch cohorts, plan runs, Correctable shared state) whose lifetimes end within
// a few virtual-time ticks. PooledMakeShared gives them allocate_shared semantics —
// object and control block in one allocation — with that one allocation recycled through
// a thread-local free list, so steady-state invocation traffic touches the global
// allocator zero times.
//
// PoolAllocator is also a standard allocator, usable for node containers on the hot path
// (e.g. the pipeline's open-batches map), where it recycles node blocks the same way.
//
// Blocks are segregated by exact size at compile time (one list per instantiated block
// type), capped per thread, and released to ::operator delete on thread exit. Freeing on
// a different thread than the allocating one is safe: blocks are interchangeable and
// simply join the freeing thread's list.
#ifndef ICG_COMMON_POOLED_H_
#define ICG_COMMON_POOLED_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace icg {

template <typename U>
class PoolAllocator {
 public:
  using value_type = U;

  static_assert(alignof(U) <= alignof(std::max_align_t),
                "PoolAllocator does not support over-aligned types");

  PoolAllocator() = default;
  template <typename V>
  PoolAllocator(const PoolAllocator<V>&) {}  // NOLINT(google-explicit-constructor)

  U* allocate(std::size_t n) {
    if (n == 1) {
      auto& free_blocks = FreeList().blocks;
      if (!free_blocks.empty()) {
        void* block = free_blocks.back();
        free_blocks.pop_back();
        return static_cast<U*>(block);
      }
    }
    return static_cast<U*>(::operator new(n * sizeof(U)));
  }

  void deallocate(U* p, std::size_t n) {
    if (n == 1) {
      auto& free_blocks = FreeList().blocks;
      if (free_blocks.size() < kMaxFreePerThread) {
        free_blocks.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

  template <typename V>
  bool operator==(const PoolAllocator<V>&) const {
    return true;
  }

 private:
  // Bounds idle memory per (thread, block type); overflow falls through to the heap.
  static constexpr std::size_t kMaxFreePerThread = 1024;

  struct FreeListHolder {
    std::vector<void*> blocks;
    ~FreeListHolder() {
      for (void* block : blocks) {
        ::operator delete(block);
      }
    }
  };

  static FreeListHolder& FreeList() {
    thread_local FreeListHolder holder;
    return holder;
  }
};

// Drop-in make_shared replacement drawing from the thread-local pool.
template <typename T, typename... Args>
std::shared_ptr<T> PooledMakeShared(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(), std::forward<Args>(args)...);
}

}  // namespace icg

#endif  // ICG_COMMON_POOLED_H_
