// Minimal leveled logging. Off by default so tests and benchmarks stay quiet; enable
// per-binary with icg::SetLogLevel for debugging protocol traces.
#ifndef ICG_COMMON_LOGGING_H_
#define ICG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace icg {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarning = 3, kError = 4, kOff = 5 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes a formatted line to stderr if `level` is at or above the global level.
void LogLine(LogLevel level, const std::string& message);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace icg

#define ICG_LOG(level)                                        \
  if (icg::GetLogLevel() > icg::LogLevel::level) {            \
  } else                                                      \
    icg::log_internal::LogMessage(icg::LogLevel::level).stream()

#define ICG_TRACE ICG_LOG(kTrace)
#define ICG_DEBUG ICG_LOG(kDebug)
#define ICG_INFO ICG_LOG(kInfo)
#define ICG_WARN ICG_LOG(kWarning)
#define ICG_ERROR ICG_LOG(kError)

#endif  // ICG_COMMON_LOGGING_H_
