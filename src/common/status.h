// Minimal Status / StatusOr error-handling vocabulary.
//
// Errors must cross asynchronous boundaries (binding -> library -> Correctable callback),
// so we use value-carried status rather than exceptions, following the error-code style
// common in storage systems.
#ifndef ICG_COMMON_STATUS_H_
#define ICG_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace icg {

enum class StatusCode {
  kOk = 0,
  kTimeout,          // operation did not complete within its deadline
  kUnavailable,      // not enough live replicas / no quorum / leader unreachable
  kOverloaded,       // admission control shed the request (backpressure); retry later
  kNotFound,         // key or queue element does not exist
  kConflict,         // CAS-style conflict (e.g., concurrent dequeue won)
  kInvalidArgument,  // malformed request (empty key, bad consistency level, ...)
  kAborted,          // speculation aborted or operation cancelled
  kInternal,         // invariant violation inside the storage stack
};

// Human-readable name of a status code ("OK", "TIMEOUT", ...).
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error result. OK statuses carry no message.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Timeout(std::string m = "timeout") {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Unavailable(std::string m) { return Status(StatusCode::kUnavailable, std::move(m)); }
  static Status Overloaded(std::string m) { return Status(StatusCode::kOverloaded, std::move(m)); }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status Conflict(std::string m) { return Status(StatusCode::kConflict, std::move(m)); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Aborted(std::string m) { return Status(StatusCode::kAborted, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Whether a failed operation is worth re-submitting unchanged: transient conditions
// (deadline, missing quorum, admission-control shed) pass; semantic failures do not.
inline bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kTimeout || s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kOverloaded;
}

// Holds either a value or a non-OK Status. Accessing the value of an error result is a
// programming bug and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}          // NOLINT: implicit by design
  StatusOr(Status status) : rep_(std::move(status)) {    // NOLINT: implicit by design
    assert(!std::get<Status>(rep_).ok() && "OK status must carry a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(rep_) : fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace icg

#endif  // ICG_COMMON_STATUS_H_
