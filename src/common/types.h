// Basic shared vocabulary types used across the Correctables libraries.
#ifndef ICG_COMMON_TYPES_H_
#define ICG_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace icg {

// Identifies a simulated process (storage replica, client, ...). Dense, assigned by the
// topology builder starting at zero.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

// Simulated time. All simulation time is expressed in integral microseconds of virtual
// time; the event loop is the single authority on "now".
using SimTime = int64_t;      // absolute, microseconds since simulation start
using SimDuration = int64_t;  // relative, microseconds

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * 1000;

// Readable literals for durations in tests and benchmarks.
constexpr SimDuration Micros(int64_t n) { return n; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

// Logical version for last-writer-wins values in the quorum store. Combines a
// coordinator-assigned timestamp with a tie-breaking node id.
struct Version {
  SimTime timestamp = 0;
  NodeId writer = kInvalidNode;

  friend bool operator==(const Version&, const Version&) = default;
  friend auto operator<=>(const Version& a, const Version& b) {
    if (auto c = a.timestamp <=> b.timestamp; c != 0) {
      return c;
    }
    return a.writer <=> b.writer;
  }
};

// Returns a short printable form such as "v1234@2".
std::string ToString(const Version& v);

}  // namespace icg

#endif  // ICG_COMMON_TYPES_H_
