// A quorum-store replica (Cassandra-like), including the coordinator role.
//
// Any replica can coordinate client operations, exactly as in Cassandra:
//
//   Read:  the coordinator performs a local read and, in parallel, requests data from
//          peer replicas; it answers the client once `read_quorum` responses (including
//          its own) are merged under last-writer-wins. Stale peers are read-repaired
//          asynchronously.
//   Write: acknowledged after the local apply (W = 1, the paper's configuration), then
//          replicated to peers asynchronously.
//
// Correctable Cassandra (CC) behaviour (§5.2 of the paper) is triggered per request:
// when a read requests ICG, the coordinator *flushes a preliminary response* to the
// client right after its local read — paying `flush_service` extra coordinator time,
// which is the source of CC's throughput drop — and later sends the final response. With
// `confirmations` enabled (the *CC2 variant), a final matching the preliminary digest is
// replaced by a small confirmation message.
#ifndef ICG_KVSTORE_REPLICA_H_
#define ICG_KVSTORE_REPLICA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/correctables/binding.h"
#include "src/correctables/operation.h"
#include "src/kvstore/snapshot.h"
#include "src/kvstore/versioned_value.h"
#include "src/kvstore/wal.h"
#include "src/sim/network.h"
#include "src/sim/service_queue.h"

namespace icg {

struct KvConfig {
  int replication_factor = 3;

  // Coordinator-side service times (single-server queue per replica).
  SimDuration read_service = Micros(900);       // local read on the coordinator
  SimDuration peer_read_service = Micros(400);  // serving an internal quorum read
  SimDuration write_service = Micros(500);      // coordinator write apply + fan-out
  SimDuration replicate_service = Micros(300);  // applying a replicated write
  SimDuration flush_service = Micros(60);       // CC preliminary flushing (extra)
  // Incremental cost per additional key in a batched (multiget) read.
  SimDuration multiread_per_key_service = Micros(60);
  // Incremental cost per additional write in a batched (multiput) submission.
  SimDuration multiwrite_per_key_service = Micros(80);

  // Coordinator waits this long for quorum responses before failing the read.
  SimDuration read_timeout = Millis(2000);

  bool read_repair = true;

  // --- Durability (per-replica WAL + snapshots) ---------------------------------------
  // The defaults keep the pre-durability event timeline bit-for-bit: appends are pure
  // in-memory bookkeeping (no events, no service time) and snapshots never trigger.
  // Crash/recovery tests and the failover bench opt into nonzero knobs.
  bool durability = true;             // maintain the WAL + snapshot device
  SimDuration wal_fsync_service = 0;  // fsync charged between WAL append and write ack
  bool wal_torn_tail = false;         // crash may leave a torn partial record (faults)
  int64_t snapshot_every = 0;         // snapshot every N appended records (0 = never)
  SimDuration snapshot_base_service = Micros(400);     // fixed cost of taking a snapshot
  SimDuration snapshot_per_entry_service = Micros(2);  // plus per stored entry
  SimDuration ping_service = Micros(20);               // heartbeat probe handling
  SimDuration bootstrap_per_key_service = Micros(5);   // anti-entropy dump, per entry
  // Writes acked while this replica was down may still be in flight to the bootstrap
  // peer when it serves the first dump (their fan-out raced the dump). A second round
  // after this delay — past the worst one-way replication latency — closes the race.
  SimDuration bootstrap_settle_delay = Millis(300);
};

// How a client read wants its responses delivered.
struct ReadOptions {
  int read_quorum = 1;
  bool want_preliminary = false;  // ICG: flush a weak view before coordinating
  bool want_final = true;         // false = weak-only read (R=1 local)
  bool confirmations = false;     // replace matching finals by confirmation messages
};

// Client-side completion for one view of a read/write. `kind` distinguishes full values
// from confirmations; the bool marks the final view.
// 96 inline bytes: fits the pipeline's per-level emission adapters inline.
using KvResponseFn =
    InlineFunction<void(StatusOr<OpResult>, bool is_final, ResponseKind kind), 96>;

class KvReplica {
 public:
  KvReplica(Network* network, NodeId id, const KvConfig* config, const std::string& name);

  // Wires up the peer set (all other replicas, excluding self). Must be called once
  // before use.
  void SetPeers(std::vector<KvReplica*> peers);

  NodeId id() const { return id_; }
  ServiceQueue& service_queue() { return service_; }
  MetricRegistry& metrics() { return metrics_; }

  // Re-resolves this replica's loop through Network::LoopFor after the node has been
  // placed on a LoopGroup lane (intra-world sharding): its timers and service queue move
  // to the placed loop so all of its activity runs on that lane's driving thread.
  // Legal whenever the replica is quiescent — before any traffic, after a drain, or on
  // a crashed replica (Crash() cancels everything in flight).
  void RebindLoop();

  // True when the replica can move lanes *live* (MigrateLoop below): nothing may hold
  // an armed timer, because TimerIds are loop-local generation-checked handles —
  // cancelling an old-loop id against the new loop could cancel an innocent timer.
  // Reads and multi-reads arm timeout timers; bootstrap re-arms itself; writes and
  // queued service work hold none, so service work in flight is fine (the caller
  // covers it with a fused-lane window).
  bool CanMigrateLoop() const {
    return !crashed_ && pending_reads_.empty() && pending_multi_reads_.empty() &&
           bootstrap_timer_ == 0;
  }

  // Live-placement variant of RebindLoop for stats-driven rebalancing: re-resolves the
  // loop through Network::LoopFor (the network placement must already point at the new
  // lane) while service work may still be in flight. The caller must fuse the old and
  // new lanes for a drain window (LoopGroup::FuseLanes) so in-flight completions and
  // new-lane work never run concurrently.
  void MigrateLoop();

  // --- Crash & recovery ----------------------------------------------------------------
  // kill -9: wipes all volatile state (storage, pending reads, queued service work) and
  // truncates the WAL's unsynced tail, exactly as a process death would. The WAL and
  // snapshot devices survive. Callers normally pair this with Network::Crash(id) so new
  // messages stop reaching the node; messages already in flight still deliver and are
  // dropped by the entry-point guards here.
  void Crash();
  // Rebuilds state from the newest snapshot plus WAL replay strictly after it (LWW
  // apply, so replay is idempotent — zero duplication), restores the write clock, and
  // kicks off an asynchronous anti-entropy bootstrap from the nearest live peer to pick
  // up writes coordinated elsewhere while this replica was down. Pair with
  // Network::Restart(id) *before* calling so the bootstrap request can leave the node.
  void Recover();
  bool crashed() const { return crashed_; }
  uint64_t incarnation() const { return incarnation_; }

  struct RecoveryStats {
    uint64_t snapshot_entries = 0;       // entries loaded from the snapshot image
    uint64_t wal_records_replayed = 0;   // records applied past the snapshot
    bool torn_tail = false;              // replay ended at a torn record
    uint64_t bootstrap_keys_merged = 0;  // entries LWW-merged from the bootstrap peer
    bool bootstrap_complete = false;
  };
  const RecoveryStats& last_recovery() const { return last_recovery_; }

  // Durability observability (null iff KvConfig::durability is false).
  Wal* wal() { return wal_.get(); }
  SnapshotManager* snapshots() { return snapshot_.get(); }

  // --- Coordinator entry points (invoked at this node; client_id is the requester) ----
  void CoordinateRead(NodeId client_id, const std::string& key, const ReadOptions& options,
                      KvResponseFn respond);
  // Batched read of several keys in one request (Cassandra multiget): same quorum/ICG
  // semantics as CoordinateRead, applied to the whole batch. The result value joins the
  // per-key payloads with kMultiValueSeparator.
  void CoordinateMultiRead(NodeId client_id, std::vector<std::string> keys,
                           const ReadOptions& options, KvResponseFn respond);
  // `timestamp` != 0 is a client-assigned LWW stamp: the version becomes
  // {timestamp, client_id}, so a single writer's stamps order its writes regardless of
  // which coordinator applies them (live rebalancing moves keys between coordinators
  // mid-stream; apply-time stamping would let a backlogged old coordinator invert the
  // order). 0 keeps the legacy coordinator-assigned stamp.
  void CoordinateWrite(NodeId client_id, const std::string& key, std::string value,
                       KvResponseFn respond, SimTime timestamp = 0);
  // Batched write submission (cross-tick write batching): the entries apply locally in
  // vector order — writes to the same key keep their program order — each under its own
  // strictly increasing LWW version, then replicate asynchronously like single writes.
  // One acknowledgement covers the whole batch (W = 1 semantics; `seqno` = batch size,
  // `version` = the last version assigned). `timestamps` (when non-empty) carries the
  // per-entry client stamps, parallel to `keys`.
  void CoordinateMultiWrite(NodeId client_id, std::vector<std::string> keys,
                            std::vector<std::string> values, KvResponseFn respond,
                            std::vector<SimTime> timestamps = {});

  // --- Peer-internal handlers (invoked at this node by other replicas) ----------------
  void HandlePeerRead(NodeId requester, const std::string& key, uint64_t request_id,
                      std::function<void(uint64_t, std::optional<VersionedValue>)> reply);
  void HandlePeerMultiRead(
      NodeId requester, const std::vector<std::string>& keys, uint64_t request_id,
      std::function<void(uint64_t, std::vector<std::optional<VersionedValue>>)> reply);
  void HandleReplicate(const std::string& key, VersionedValue incoming);
  // Failure-detector probe: answers with `probe_id` after a small service charge. A
  // crashed replica never answers — missed probes are the detector's death signal.
  void HandlePing(NodeId requester, uint64_t probe_id, std::function<void(uint64_t)> reply);
  // Anti-entropy dump for a recovering peer: serves this replica's whole LWW store
  // (service time proportional to its size, bytes accounted on the wire).
  void HandleBootstrap(NodeId requester,
                       std::function<void(std::vector<std::pair<std::string, VersionedValue>>)>
                           deliver);

  // --- Direct local access (tests, dataset preloading) --------------------------------
  std::optional<VersionedValue> LocalGet(const std::string& key) const;
  void LocalPut(const std::string& key, std::string value, Version version);
  size_t LocalSize() const { return storage_.size(); }

 private:
  struct PendingRead {
    NodeId client_id = kInvalidNode;
    std::string key;
    ReadOptions options;
    KvResponseFn respond;
    std::optional<VersionedValue> local;   // coordinator's own read, once served
    std::vector<std::optional<VersionedValue>> peer_results;
    std::vector<NodeId> peers_asked;
    int responses = 0;  // local + peer responses received
    bool preliminary_sent = false;
    std::optional<Digest> preliminary_digest;
    bool done = false;
    TimerId timeout_timer = 0;
  };

  struct PendingMultiRead {
    NodeId client_id = kInvalidNode;
    std::vector<std::string> keys;
    ReadOptions options;
    KvResponseFn respond;
    bool local_done = false;
    std::vector<std::optional<VersionedValue>> local;
    std::vector<NodeId> peers_asked;
    std::vector<std::vector<std::optional<VersionedValue>>> peer_results;
    std::vector<bool> peer_answered;
    int responses = 0;
    bool preliminary_sent = false;
    std::optional<Digest> preliminary_digest;
    bool done = false;
    TimerId timeout_timer = 0;
  };

  void MaybeFinishRead(uint64_t request_id);
  void FinishRead(PendingRead& read);
  void SendReadResponse(const PendingRead& read, const std::optional<VersionedValue>& value,
                        bool is_final, ResponseKind kind);
  // LWW merge of all responses gathered so far.
  std::optional<VersionedValue> MergedResult(const PendingRead& read) const;
  void IssueReadRepair(const PendingRead& read, const VersionedValue& freshest);

  void MaybeFinishMultiRead(uint64_t request_id);
  void FinishMultiRead(PendingMultiRead& read);
  std::vector<std::optional<VersionedValue>> MergedMultiResult(
      const PendingMultiRead& read) const;
  void SendMultiReadResponse(const PendingMultiRead& read,
                             const std::vector<std::optional<VersionedValue>>& values,
                             bool is_final, ResponseKind kind);

  static OpResult ToOpResult(const std::optional<VersionedValue>& value);
  static OpResult ToMultiOpResult(const std::vector<std::optional<VersionedValue>>& values);
  static Digest CombinedDigest(const std::vector<std::optional<VersionedValue>>& values);

  // LWW apply to local storage; returns true if the store changed. Appends the applied
  // record to the WAL when `log` says so (lazily — durability waits for the next Sync).
  bool ApplyLww(const std::string& key, const VersionedValue& incoming, bool log);
  // Snapshot cadence: once `snapshot_every` records accumulated past the last snapshot,
  // schedules a background snapshot on the service queue (cost scales with store size).
  void MaybeScheduleSnapshot();
  // One attempt of the post-recovery anti-entropy bootstrap; retries on the next peer
  // if the current one never answers (it may be dead too).
  void StartBootstrap(size_t attempt);

  Network* network_;
  EventLoop* loop_;
  NodeId id_;
  const KvConfig* config_;
  ServiceQueue service_;
  MetricRegistry metrics_;

  std::vector<KvReplica*> peers_;  // other replicas, nearest first
  std::map<std::string, VersionedValue> storage_;
  std::map<uint64_t, PendingRead> pending_reads_;
  std::map<uint64_t, PendingMultiRead> pending_multi_reads_;
  uint64_t next_request_id_ = 1;
  uint64_t write_seq_ = 0;  // disambiguates same-microsecond writes from this coordinator

  // --- Durability & crash state --------------------------------------------------------
  std::unique_ptr<Wal> wal_;               // survives Crash(), like the disk it models
  std::unique_ptr<SnapshotManager> snapshot_;
  bool crashed_ = false;
  uint64_t incarnation_ = 0;  // bumped per crash; stale async callbacks check and no-op
  bool snapshot_in_flight_ = false;
  int64_t records_at_last_snapshot_ = 0;
  // Highest WAL LSN whose record is cluster-visible: its replication fan-out was sent,
  // or the value arrived FROM the cluster (replication, repair, bootstrap, preload).
  // Snapshots only cover up to here, so the replayed tail after a crash is exactly the
  // set of records that might exist on this disk alone — the recovery push re-replicates
  // just that tail instead of the whole store.
  uint64_t replicated_lsn_ = 0;
  bool bootstrap_pending_ = false;
  int bootstrap_round_ = 0;  // 0 = first dump, 1 = post-settle-delay verification round
  TimerId bootstrap_timer_ = 0;
  RecoveryStats last_recovery_;
};

}  // namespace icg

#endif  // ICG_KVSTORE_REPLICA_H_
