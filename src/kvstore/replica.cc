#include "src/kvstore/replica.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace icg {

KvReplica::KvReplica(Network* network, NodeId id, const KvConfig* config, const std::string& name)
    : network_(network),
      loop_(network->loop()),
      id_(id),
      config_(config),
      service_(network->loop(), name) {
  assert(config_ != nullptr);
  if (config_->durability) {
    wal_ = std::make_unique<Wal>(name + ".wal");
    wal_->SetFaults(WalFaults{config_->wal_fsync_service, config_->wal_torn_tail});
    snapshot_ = std::make_unique<SnapshotManager>(name + ".snap");
  }
}

void KvReplica::RebindLoop() {
  assert(pending_reads_.empty() && pending_multi_reads_.empty() &&
         service_.InFlight() == 0 && "rebind requires a quiescent replica");
  loop_ = network_->LoopFor(id_);
  service_.RebindLoop(loop_);
}

void KvReplica::MigrateLoop() {
  assert(CanMigrateLoop() && "live migration needs a timer-free replica");
  loop_ = network_->LoopFor(id_);
  service_.MigrateLoop(loop_);
}

void KvReplica::SetPeers(std::vector<KvReplica*> peers) {
  peers_ = std::move(peers);
  // Keep peers ordered nearest-first from this node, so quorum requests go to the
  // closest replicas — the behaviour that produces the paper's CC2 20 ms gap (coordinator
  // + nearest replica) versus CC3's 140 ms gap (farthest replica).
  std::sort(peers_.begin(), peers_.end(), [this](const KvReplica* a, const KvReplica* b) {
    return network_->topology()->RttBetween(id_, a->id()) <
           network_->topology()->RttBetween(id_, b->id());
  });
}

OpResult KvReplica::ToOpResult(const std::optional<VersionedValue>& value) {
  OpResult result;
  if (value.has_value()) {
    result.found = true;
    result.value = value->value;
    result.version = value->version;
  }
  return result;
}

void KvReplica::CoordinateRead(NodeId client_id, const std::string& key,
                               const ReadOptions& options, KvResponseFn respond) {
  assert(options.read_quorum >= 1);
  if (crashed_) {
    return;  // in-flight request outlived the process; the client's timeout handles it
  }
  const uint64_t request_id = next_request_id_++;
  PendingRead& read = pending_reads_[request_id];
  read.client_id = client_id;
  read.key = key;
  read.options = options;
  read.respond = std::move(respond);

  metrics_.GetCounter("reads_coordinated").Increment();
  if (options.want_preliminary) {
    metrics_.GetCounter("icg_reads").Increment();
  }

  // Fan out to peer replicas in parallel with the local read (only when a quorum > 1 is
  // required). Responses beyond the quorum feed read repair.
  const int needed = options.read_quorum;
  if (needed > 1) {
    const size_t peer_count = std::min(peers_.size(), static_cast<size_t>(needed - 1) + 1);
    for (size_t i = 0; i < peer_count && i < peers_.size(); ++i) {
      KvReplica* peer = peers_[i];
      read.peers_asked.push_back(peer->id());
      read.peer_results.emplace_back(std::nullopt);
      const size_t slot = read.peer_results.size() - 1;
      const int64_t req_bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size());
      network_->Send(id_, peer->id(), req_bytes, [this, peer, key, request_id, slot]() {
        peer->HandlePeerRead(
            id_, key, request_id,
            [this, slot](uint64_t rid, std::optional<VersionedValue> value) {
              auto it = pending_reads_.find(rid);
              if (it == pending_reads_.end()) {
                return;  // request already finished (late reply)
              }
              PendingRead& r = it->second;
              if (!r.peer_results[slot].has_value() && value.has_value()) {
                r.peer_results[slot] = std::move(value);
              }
              r.responses++;
              MaybeFinishRead(rid);
            });
      });
    }
  }

  // Local read on the coordinator's service queue.
  service_.Submit(config_->read_service, [this, request_id]() {
    auto it = pending_reads_.find(request_id);
    if (it == pending_reads_.end()) {
      return;
    }
    PendingRead& r = it->second;
    r.local = LocalGet(r.key);
    r.responses++;
    if (r.options.want_preliminary) {
      // Preliminary flushing (§6.2.1): serializing and sending the early response costs
      // extra coordinator time, the cause of CC's throughput drop versus baseline.
      service_.Submit(config_->flush_service, [this, request_id]() {
        auto it2 = pending_reads_.find(request_id);
        if (it2 == pending_reads_.end()) {
          return;
        }
        PendingRead& r2 = it2->second;
        if (r2.done || r2.preliminary_sent) {
          return;
        }
        r2.preliminary_sent = true;
        const auto result = r2.local;
        r2.preliminary_digest =
            result.has_value() ? result->ContentDigest() : ValueDigest("", 0);
        metrics_.GetCounter("preliminaries_sent").Increment();
        SendReadResponse(r2, result, /*is_final=*/false, ResponseKind::kValue);
        MaybeFinishRead(request_id);
      });
    }
    MaybeFinishRead(request_id);
  });

  // Quorum timeout: fail the request if peers never answer (crash/partition).
  PendingRead& armed = pending_reads_[request_id];
  armed.timeout_timer = loop_->Schedule(config_->read_timeout, [this, request_id]() {
    auto it = pending_reads_.find(request_id);
    if (it == pending_reads_.end()) {
      return;
    }
    PendingRead& r = it->second;
    if (r.done) {
      return;
    }
    r.done = true;
    metrics_.GetCounter("read_timeouts").Increment();
    const int64_t bytes = kResponseHeaderBytes;
    auto respond_fn = r.respond;
    network_->Send(id_, r.client_id, bytes, [respond_fn]() {
      respond_fn(Status::Timeout("read quorum not reached"), /*is_final=*/true,
                 ResponseKind::kValue);
    });
    pending_reads_.erase(it);
  });
}

void KvReplica::MaybeFinishRead(uint64_t request_id) {
  auto it = pending_reads_.find(request_id);
  if (it == pending_reads_.end()) {
    return;
  }
  PendingRead& read = it->second;
  if (read.done) {
    return;
  }
  if (read.responses < read.options.read_quorum) {
    return;
  }
  // An ICG read must deliver its preliminary before the final view.
  if (read.options.want_preliminary && !read.preliminary_sent) {
    return;
  }
  FinishRead(read);
  loop_->Cancel(read.timeout_timer);
  pending_reads_.erase(request_id);
}

void KvReplica::FinishRead(PendingRead& read) {
  read.done = true;
  const std::optional<VersionedValue> merged = MergedResult(read);

  if (config_->read_repair && merged.has_value()) {
    IssueReadRepair(read, *merged);
  }

  ResponseKind kind = ResponseKind::kValue;
  if (read.options.want_preliminary && read.options.confirmations &&
      read.preliminary_digest.has_value()) {
    const Digest final_digest =
        merged.has_value() ? merged->ContentDigest() : ValueDigest("", 0);
    if (final_digest == *read.preliminary_digest) {
      kind = ResponseKind::kConfirmation;
      metrics_.GetCounter("confirmations_sent").Increment();
    }
  }
  if (read.options.want_preliminary && kind == ResponseKind::kValue &&
      read.preliminary_digest.has_value()) {
    const Digest final_digest =
        merged.has_value() ? merged->ContentDigest() : ValueDigest("", 0);
    if (final_digest != *read.preliminary_digest) {
      metrics_.GetCounter("divergent_finals").Increment();
    } else {
      metrics_.GetCounter("matching_finals").Increment();
    }
  }
  SendReadResponse(read, kind == ResponseKind::kConfirmation ? std::nullopt : merged,
                   /*is_final=*/true, kind);
}

void KvReplica::SendReadResponse(const PendingRead& read,
                                 const std::optional<VersionedValue>& value, bool is_final,
                                 ResponseKind kind) {
  int64_t bytes = 0;
  OpResult result;
  if (kind == ResponseKind::kConfirmation) {
    bytes = kConfirmationBytes;
    // The client library substitutes the preliminary value; the wire carries no payload.
  } else {
    result = ToOpResult(value);
    bytes = result.WireBytes();
  }
  auto respond_fn = read.respond;
  network_->Send(id_, read.client_id, bytes, [respond_fn, result, is_final, kind]() {
    respond_fn(result, is_final, kind);
  });
}

std::optional<VersionedValue> KvReplica::MergedResult(const PendingRead& read) const {
  std::optional<VersionedValue> best = read.local;
  for (const auto& peer_value : read.peer_results) {
    if (peer_value.has_value() && (!best.has_value() || best->OlderThan(peer_value->version))) {
      best = peer_value;
    }
  }
  return best;
}

void KvReplica::IssueReadRepair(const PendingRead& read, const VersionedValue& freshest) {
  // Repair the coordinator's own copy synchronously (cheap local apply) and stale peers
  // asynchronously over the network.
  if (!read.local.has_value() || read.local->OlderThan(freshest.version)) {
    if (ApplyLww(read.key, freshest, /*log=*/true)) {
      metrics_.GetCounter("read_repairs").Increment();
    }
  }
  for (size_t i = 0; i < read.peer_results.size(); ++i) {
    const auto& peer_value = read.peer_results[i];
    const bool stale =
        peer_value.has_value() ? peer_value->OlderThan(freshest.version) : false;
    if (!stale) {
      continue;
    }
    KvReplica* peer = nullptr;
    for (KvReplica* candidate : peers_) {
      if (candidate->id() == read.peers_asked[i]) {
        peer = candidate;
        break;
      }
    }
    if (peer == nullptr) {
      continue;
    }
    const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(read.key.size()) +
                          static_cast<int64_t>(freshest.value.size());
    metrics_.GetCounter("read_repairs").Increment();
    network_->Send(id_, peer->id(), bytes, [peer, key = read.key, freshest]() {
      peer->HandleReplicate(key, freshest);
    });
  }
}

OpResult KvReplica::ToMultiOpResult(const std::vector<std::optional<VersionedValue>>& values) {
  OpResult result;
  result.found = !values.empty();
  result.key_found.reserve(values.size());
  result.key_versions.reserve(values.size());
  int64_t found_count = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      result.value += kMultiValueSeparator;
    }
    if (values[i].has_value()) {
      result.value += values[i]->value;
      found_count++;
      result.key_found.push_back(true);
      result.key_versions.push_back(values[i]->version);
      if (result.version < values[i]->version) {
        result.version = values[i]->version;
      }
    } else {
      result.found = false;
      result.key_found.push_back(false);
      result.key_versions.push_back(Version{});
    }
  }
  result.seqno = found_count;
  return result;
}

Digest KvReplica::CombinedDigest(const std::vector<std::optional<VersionedValue>>& values) {
  Digest digest = 0xcbf29ce484222325ULL;
  for (const auto& value : values) {
    const Digest d = value.has_value() ? value->ContentDigest() : ValueDigest("", 0);
    digest ^= d + 0x9e3779b97f4a7c15ULL + (digest << 6) + (digest >> 2);
  }
  return digest;
}

void KvReplica::CoordinateMultiRead(NodeId client_id, std::vector<std::string> keys,
                                    const ReadOptions& options, KvResponseFn respond) {
  assert(options.read_quorum >= 1);
  assert(!keys.empty());
  if (crashed_) {
    return;
  }
  const uint64_t request_id = next_request_id_++;
  PendingMultiRead& read = pending_multi_reads_[request_id];
  read.client_id = client_id;
  read.keys = std::move(keys);
  read.options = options;
  read.respond = std::move(respond);
  read.local.assign(read.keys.size(), std::nullopt);

  metrics_.GetCounter("multireads_coordinated").Increment();
  const auto batch_extra =
      config_->multiread_per_key_service * static_cast<SimDuration>(read.keys.size() - 1);

  if (options.read_quorum > 1) {
    const size_t peer_count =
        std::min(peers_.size(), static_cast<size_t>(options.read_quorum));
    for (size_t i = 0; i < peer_count; ++i) {
      KvReplica* peer = peers_[i];
      read.peers_asked.push_back(peer->id());
      read.peer_results.emplace_back();
      read.peer_answered.push_back(false);
      const size_t slot = read.peer_results.size() - 1;
      int64_t req_bytes = kRequestHeaderBytes;
      for (const auto& key : read.keys) {
        req_bytes += static_cast<int64_t>(key.size()) + 2;
      }
      network_->Send(id_, peer->id(), req_bytes,
                     [this, peer, request_keys = read.keys, request_id, slot]() {
                       peer->HandlePeerMultiRead(
                           id_, request_keys, request_id,
                           [this, slot](uint64_t rid,
                                        std::vector<std::optional<VersionedValue>> values) {
                             auto it = pending_multi_reads_.find(rid);
                             if (it == pending_multi_reads_.end()) {
                               return;
                             }
                             PendingMultiRead& r = it->second;
                             if (!r.peer_answered[slot]) {
                               r.peer_answered[slot] = true;
                               r.peer_results[slot] = std::move(values);
                               r.responses++;
                               MaybeFinishMultiRead(rid);
                             }
                           });
                     });
    }
  }

  service_.Submit(config_->read_service + batch_extra, [this, request_id]() {
    auto it = pending_multi_reads_.find(request_id);
    if (it == pending_multi_reads_.end()) {
      return;
    }
    PendingMultiRead& r = it->second;
    for (size_t i = 0; i < r.keys.size(); ++i) {
      r.local[i] = LocalGet(r.keys[i]);
    }
    r.local_done = true;
    r.responses++;
    if (r.options.want_preliminary) {
      service_.Submit(config_->flush_service, [this, request_id]() {
        auto it2 = pending_multi_reads_.find(request_id);
        if (it2 == pending_multi_reads_.end()) {
          return;
        }
        PendingMultiRead& r2 = it2->second;
        if (r2.done || r2.preliminary_sent) {
          return;
        }
        r2.preliminary_sent = true;
        r2.preliminary_digest = CombinedDigest(r2.local);
        metrics_.GetCounter("preliminaries_sent").Increment();
        SendMultiReadResponse(r2, r2.local, /*is_final=*/false, ResponseKind::kValue);
        MaybeFinishMultiRead(request_id);
      });
    }
    MaybeFinishMultiRead(request_id);
  });

  PendingMultiRead& armed = pending_multi_reads_[request_id];
  armed.timeout_timer = loop_->Schedule(config_->read_timeout, [this, request_id]() {
    auto it = pending_multi_reads_.find(request_id);
    if (it == pending_multi_reads_.end()) {
      return;
    }
    PendingMultiRead& r = it->second;
    if (r.done) {
      return;
    }
    r.done = true;
    metrics_.GetCounter("read_timeouts").Increment();
    auto respond_fn = r.respond;
    network_->Send(id_, r.client_id, kResponseHeaderBytes, [respond_fn]() {
      respond_fn(Status::Timeout("multiread quorum not reached"), /*is_final=*/true,
                 ResponseKind::kValue);
    });
    pending_multi_reads_.erase(it);
  });
}

void KvReplica::MaybeFinishMultiRead(uint64_t request_id) {
  auto it = pending_multi_reads_.find(request_id);
  if (it == pending_multi_reads_.end()) {
    return;
  }
  PendingMultiRead& read = it->second;
  if (read.done || read.responses < read.options.read_quorum || !read.local_done) {
    return;
  }
  if (read.options.want_preliminary && !read.preliminary_sent) {
    return;
  }
  FinishMultiRead(read);
  loop_->Cancel(read.timeout_timer);
  pending_multi_reads_.erase(request_id);
}

std::vector<std::optional<VersionedValue>> KvReplica::MergedMultiResult(
    const PendingMultiRead& read) const {
  std::vector<std::optional<VersionedValue>> merged = read.local;
  for (size_t p = 0; p < read.peer_results.size(); ++p) {
    if (!read.peer_answered[p]) {
      continue;
    }
    for (size_t i = 0; i < merged.size() && i < read.peer_results[p].size(); ++i) {
      const auto& candidate = read.peer_results[p][i];
      if (candidate.has_value() &&
          (!merged[i].has_value() || merged[i]->OlderThan(candidate->version))) {
        merged[i] = candidate;
      }
    }
  }
  return merged;
}

void KvReplica::FinishMultiRead(PendingMultiRead& read) {
  read.done = true;
  const auto merged = MergedMultiResult(read);

  // Per-key read repair: bring stale copies (local and peers) up to the merged state.
  if (config_->read_repair) {
    for (size_t i = 0; i < merged.size(); ++i) {
      if (!merged[i].has_value()) {
        continue;
      }
      if (ApplyLww(read.keys[i], *merged[i], /*log=*/true)) {
        metrics_.GetCounter("read_repairs").Increment();
      }
    }
  }

  ResponseKind kind = ResponseKind::kValue;
  if (read.options.want_preliminary && read.preliminary_digest.has_value()) {
    const Digest final_digest = CombinedDigest(merged);
    const bool matches = final_digest == *read.preliminary_digest;
    if (read.options.confirmations && matches) {
      kind = ResponseKind::kConfirmation;
      metrics_.GetCounter("confirmations_sent").Increment();
    }
    metrics_.GetCounter(matches ? "matching_finals" : "divergent_finals").Increment();
  }
  SendMultiReadResponse(read, merged, /*is_final=*/true, kind);
}

void KvReplica::SendMultiReadResponse(const PendingMultiRead& read,
                                      const std::vector<std::optional<VersionedValue>>& values,
                                      bool is_final, ResponseKind kind) {
  int64_t bytes = 0;
  OpResult result;
  if (kind == ResponseKind::kConfirmation) {
    bytes = kConfirmationBytes;
  } else {
    result = ToMultiOpResult(values);
    bytes = result.WireBytes() + 8 * static_cast<int64_t>(values.size());
  }
  auto respond_fn = read.respond;
  network_->Send(id_, read.client_id, bytes, [respond_fn, result, is_final, kind]() {
    respond_fn(result, is_final, kind);
  });
}

void KvReplica::HandlePeerMultiRead(
    NodeId requester, const std::vector<std::string>& keys, uint64_t request_id,
    std::function<void(uint64_t, std::vector<std::optional<VersionedValue>>)> reply) {
  if (crashed_) {
    return;
  }
  const auto batch_extra =
      config_->multiread_per_key_service * static_cast<SimDuration>(keys.size() - 1);
  service_.Submit(config_->peer_read_service + batch_extra,
                  [this, requester, keys, request_id, reply = std::move(reply)]() {
                    std::vector<std::optional<VersionedValue>> values;
                    values.reserve(keys.size());
                    int64_t bytes = kResponseHeaderBytes;
                    for (const auto& key : keys) {
                      values.push_back(LocalGet(key));
                      if (values.back().has_value()) {
                        bytes += static_cast<int64_t>(values.back()->value.size()) + 8;
                      }
                    }
                    network_->Send(id_, requester, bytes, [reply, request_id, values]() {
                      reply(request_id, values);
                    });
                  });
}

void KvReplica::CoordinateWrite(NodeId client_id, const std::string& key, std::string value,
                                KvResponseFn respond, SimTime timestamp) {
  if (crashed_) {
    return;
  }
  metrics_.GetCounter("writes_coordinated").Increment();
  service_.Submit(config_->write_service, [this, client_id, key, value = std::move(value),
                                           timestamp, respond = std::move(respond)]() mutable {
    // Coordinator-assigned LWW timestamp; write_seq_ keeps it strictly monotonic even for
    // same-microsecond writes, and the writer id breaks cross-coordinator ties. A client
    // stamp overrides both fields: the stamp orders the writer's stream and the client id
    // breaks ties, making the version independent of which coordinator applied it.
    write_seq_ = std::max({static_cast<uint64_t>(loop_->Now()), write_seq_ + 1,
                           static_cast<uint64_t>(timestamp)});
    const Version version = timestamp != 0
                                ? Version{timestamp, client_id}
                                : Version{static_cast<SimTime>(write_seq_), id_};
    VersionedValue vv{std::move(value), version};

    auto existing = storage_.find(key);
    if (existing == storage_.end() || existing->second.OlderThan(version)) {
      storage_[key] = vv;
    }

    // WAL-before-ack: a coordinated write is logged and fsynced before the client hears
    // about it — an acked write survives any kill -9 from here on. The fsync latency
    // (when configured) is charged as extra service time between append and ack; a crash
    // inside that window leaves a durable but *unacked* record — legal either way, since
    // the client saw no ack, and Recover()'s anti-entropy push re-replicates it so the
    // cluster still converges on one outcome. LWW apply may have rejected an older
    // version above, but the record is logged unconditionally: the ack promises
    // durability of the submission, and replay re-applies under the same LWW rule
    // (idempotent, zero duplication).
    SimDuration fsync = 0;
    uint64_t lsn = 0;
    if (wal_ != nullptr) {
      lsn = wal_->Append(key, vv.value, version);
      fsync = wal_->Sync();
      MaybeScheduleSnapshot();
    }

    auto finish = [this, client_id, key, vv = std::move(vv), version, lsn,
                   respond = std::move(respond)]() {
      // W = 1: acknowledge after the local apply (+ fsync when configured).
      OpResult ack;
      ack.found = true;
      ack.version = version;
      network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() {
        respond(ack, /*is_final=*/true, ResponseKind::kValue);
      });

      // Asynchronous replication to the other replicas. The fan-out makes the record
      // cluster-visible: snapshots may cover it from here on.
      replicated_lsn_ = std::max(replicated_lsn_, lsn);
      for (KvReplica* peer : peers_) {
        const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                              static_cast<int64_t>(vv.value.size());
        network_->Send(id_, peer->id(), bytes,
                       [peer, key, vv]() { peer->HandleReplicate(key, vv); });
      }
    };
    if (fsync > 0) {
      service_.Submit(fsync, std::move(finish));
    } else {
      finish();
    }
  });
}

void KvReplica::CoordinateMultiWrite(NodeId client_id, std::vector<std::string> keys,
                                     std::vector<std::string> values, KvResponseFn respond,
                                     std::vector<SimTime> timestamps) {
  if (crashed_) {
    return;
  }
  metrics_.GetCounter("multi_writes_coordinated").Increment();
  if (keys.empty() || keys.size() != values.size() ||
      (!timestamps.empty() && timestamps.size() != keys.size())) {
    network_->Send(id_, client_id, kResponseHeaderBytes, [respond = std::move(respond)]() {
      respond(Status::InvalidArgument("multiwrite needs matching non-empty key/value lists"),
              /*is_final=*/true, ResponseKind::kValue);
    });
    return;
  }
  const SimDuration service =
      config_->write_service +
      static_cast<SimDuration>(keys.size() - 1) * config_->multiwrite_per_key_service;
  service_.Submit(service, [this, client_id, keys = std::move(keys),
                            values = std::move(values), timestamps = std::move(timestamps),
                            respond = std::move(respond)]() mutable {
    OpResult ack;
    ack.found = true;
    ack.seqno = static_cast<int64_t>(keys.size());
    ack.key_found.assign(keys.size(), true);
    std::vector<VersionedValue> applied(keys.size());
    uint64_t cohort_lsn = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      const SimTime stamp = i < timestamps.size() ? timestamps[i] : 0;
      write_seq_ = std::max({static_cast<uint64_t>(loop_->Now()), write_seq_ + 1,
                             static_cast<uint64_t>(stamp)});
      const Version version = stamp != 0 ? Version{stamp, client_id}
                                         : Version{static_cast<SimTime>(write_seq_), id_};
      ack.version = version;
      ack.key_versions.push_back(version);
      VersionedValue vv{std::move(values[i]), version};

      auto existing = storage_.find(keys[i]);
      if (existing == storage_.end() || existing->second.OlderThan(version)) {
        storage_[keys[i]] = vv;
      }
      if (wal_ != nullptr) {
        cohort_lsn = wal_->Append(keys[i], vv.value, version);
      }
      applied[i] = std::move(vv);
    }
    // Group commit: the whole cohort shares one fsync, then one ack covers it — either
    // every entry of an acked batch is durable or the crash predates the ack and the
    // client-side cohort fails as a unit (no torn batch slice).
    SimDuration fsync = 0;
    if (wal_ != nullptr) {
      fsync = wal_->Sync();
      MaybeScheduleSnapshot();
    }

    auto finish = [this, client_id, keys = std::move(keys), applied = std::move(applied),
                   ack = std::move(ack), cohort_lsn, respond = std::move(respond)]() {
      // The cohort's fan-out makes every record of the batch cluster-visible.
      replicated_lsn_ = std::max(replicated_lsn_, cohort_lsn);
      for (size_t i = 0; i < keys.size(); ++i) {
        for (KvReplica* peer : peers_) {
          const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(keys[i].size()) +
                                static_cast<int64_t>(applied[i].value.size());
          network_->Send(id_, peer->id(), bytes, [peer, key = keys[i], vv = applied[i]]() {
            peer->HandleReplicate(key, vv);
          });
        }
      }
      network_->Send(id_, client_id, kResponseHeaderBytes, [respond, ack]() {
        respond(ack, /*is_final=*/true, ResponseKind::kValue);
      });
    };
    if (fsync > 0) {
      service_.Submit(fsync, std::move(finish));
    } else {
      finish();
    }
  });
}

void KvReplica::HandlePeerRead(NodeId requester, const std::string& key, uint64_t request_id,
                               std::function<void(uint64_t, std::optional<VersionedValue>)> reply) {
  if (crashed_) {
    return;
  }
  service_.Submit(config_->peer_read_service, [this, requester, key, request_id,
                                               reply = std::move(reply)]() {
    const auto value = LocalGet(key);
    const int64_t bytes =
        kResponseHeaderBytes +
        (value.has_value() ? static_cast<int64_t>(value->value.size()) : 0);
    network_->Send(id_, requester, bytes,
                   [reply, request_id, value]() { reply(request_id, value); });
  });
}

void KvReplica::HandleReplicate(const std::string& key, VersionedValue incoming) {
  if (crashed_) {
    return;
  }
  service_.Submit(config_->replicate_service, [this, key, incoming = std::move(incoming)]() {
    if (ApplyLww(key, incoming, /*log=*/true)) {
      metrics_.GetCounter("replications_applied").Increment();
    }
  });
}

void KvReplica::HandlePing(NodeId requester, uint64_t probe_id,
                           std::function<void(uint64_t)> reply) {
  if (crashed_) {
    return;  // a dead process answers nothing — missed probes are the death signal
  }
  service_.Submit(config_->ping_service,
                  [this, requester, probe_id, reply = std::move(reply)]() {
                    network_->Send(id_, requester, kResponseHeaderBytes,
                                   [reply, probe_id]() { reply(probe_id); });
                  });
}

void KvReplica::HandleBootstrap(
    NodeId requester,
    std::function<void(std::vector<std::pair<std::string, VersionedValue>>)> deliver) {
  if (crashed_) {
    return;
  }
  const SimDuration service =
      config_->peer_read_service +
      config_->bootstrap_per_key_service * static_cast<SimDuration>(storage_.size());
  service_.Submit(service, [this, requester, deliver = std::move(deliver)]() {
    std::vector<std::pair<std::string, VersionedValue>> dump(storage_.begin(),
                                                             storage_.end());
    int64_t bytes = kResponseHeaderBytes;
    for (const auto& [key, vv] : dump) {
      bytes += static_cast<int64_t>(key.size()) + static_cast<int64_t>(vv.value.size()) + 16;
    }
    metrics_.GetCounter("bootstraps_served").Increment();
    network_->Send(id_, requester, bytes,
                   [deliver, dump = std::move(dump)]() { deliver(dump); });
  });
}

bool KvReplica::ApplyLww(const std::string& key, const VersionedValue& incoming, bool log) {
  auto existing = storage_.find(key);
  if (existing != storage_.end() && !existing->second.OlderThan(incoming.version)) {
    return false;
  }
  storage_[key] = incoming;
  if (log && wal_ != nullptr) {
    // Lazy append: replicated/repaired state is logged but not fsynced — the unsynced
    // tail is recoverable from the peers that sent it, and it is what a torn-tail crash
    // tears. Only coordinated (acked) writes pay for a sync.
    const uint64_t lsn = wal_->Append(key, incoming.value, incoming.version);
    // The value came from a cluster-visible source, so a snapshot may cover it at once.
    replicated_lsn_ = std::max(replicated_lsn_, lsn);
    MaybeScheduleSnapshot();
  }
  return true;
}

void KvReplica::MaybeScheduleSnapshot() {
  if (wal_ == nullptr || config_->snapshot_every <= 0 || snapshot_in_flight_) {
    return;
  }
  if (wal_->appended_records() - records_at_last_snapshot_ < config_->snapshot_every) {
    return;
  }
  snapshot_in_flight_ = true;
  const SimDuration service =
      config_->snapshot_base_service +
      config_->snapshot_per_entry_service * static_cast<SimDuration>(storage_.size());
  // Background snapshot on the service queue: it competes with request work for the
  // replica's CPU, the cost of bounding replay time. Crash() cancels it via the queue's
  // generation, so no incarnation check is needed here.
  service_.Submit(service, [this]() {
    snapshot_in_flight_ = false;
    // Cover only cluster-visible records: a coordinated write between its append and
    // its replication fan-out must stay in the replayed tail, or a crash after the
    // snapshot would resurrect it on this replica alone with no record to re-push.
    snapshot_->Take(storage_, replicated_lsn_);
    records_at_last_snapshot_ = wal_->appended_records();
    wal_->TruncateThrough(snapshot_->covered_lsn());
    metrics_.GetCounter("snapshots_taken").Increment();
  });
}

void KvReplica::Crash() {
  assert(!crashed_);
  crashed_ = true;
  incarnation_ += 1;
  // Cancel armed timers before dropping the pending maps (tombstone hygiene).
  for (auto& [request_id, read] : pending_reads_) {
    loop_->Cancel(read.timeout_timer);
  }
  for (auto& [request_id, read] : pending_multi_reads_) {
    loop_->Cancel(read.timeout_timer);
  }
  if (bootstrap_timer_ != 0) {
    loop_->Cancel(bootstrap_timer_);
    bootstrap_timer_ = 0;
  }
  pending_reads_.clear();
  pending_multi_reads_.clear();
  storage_.clear();
  write_seq_ = 0;
  snapshot_in_flight_ = false;
  bootstrap_pending_ = false;
  service_.CancelPending();  // queued work dies with the process
  if (wal_ != nullptr) {
    wal_->Crash();  // the device survives; the unsynced tail does not
  }
  metrics_.GetCounter("crashes").Increment();
}

void KvReplica::Recover() {
  assert(crashed_);
  crashed_ = false;
  last_recovery_ = RecoveryStats{};
  uint64_t snapshot_lsn = 0;
  std::set<std::string> replayed_keys;
  if (wal_ != nullptr) {
    if (snapshot_->Load(&storage_, &snapshot_lsn)) {
      last_recovery_.snapshot_entries = storage_.size();
    }
    const Wal::ReplayResult replay =
        wal_->Replay(snapshot_lsn, [this, &replayed_keys](const Wal::Record& record) {
          ApplyLww(record.key, VersionedValue{record.value, record.version}, /*log=*/false);
          replayed_keys.insert(record.key);
        });
    last_recovery_.wal_records_replayed = replay.records;
    last_recovery_.torn_tail = replay.torn_tail;
    records_at_last_snapshot_ = wal_->appended_records();
    // Restore the write clock past every stamp this replica may have issued or seen, so
    // post-recovery coordinator stamps never regress below pre-crash acks.
    for (const auto& [key, vv] : storage_) {
      write_seq_ = std::max(write_seq_, static_cast<uint64_t>(vv.version.timestamp));
    }
  }
  metrics_.GetCounter("recoveries").Increment();
  // Anti-entropy push: a record can be durable (fsynced) yet unreplicated — the crash
  // landed between the fsync and the replication fan-out. Snapshots never cover such
  // records (they only reach replicated_lsn_), so the candidates are exactly the
  // replayed tail. Push those keys' post-replay values to every peer; LWW-merge makes
  // entries peers already hold no-ops, while values only this replica's disk knew
  // finally propagate. Charged like serving a bootstrap dump of the same size.
  if (!peers_.empty() && !replayed_keys.empty()) {
    const uint64_t inc = incarnation_;
    const uint64_t replayed_through = wal_ != nullptr ? wal_->next_lsn() - 1 : 0;
    const SimDuration scan =
        config_->bootstrap_per_key_service * static_cast<SimDuration>(replayed_keys.size());
    service_.Submit(scan, [this, inc, replayed_through,
                           keys = std::move(replayed_keys)]() {
      if (inc != incarnation_ || crashed_) {
        return;
      }
      metrics_.GetCounter("recovery_pushes").Increment();
      for (KvReplica* peer : peers_) {
        for (const std::string& key : keys) {
          const auto it = storage_.find(key);
          if (it == storage_.end()) continue;
          const VersionedValue& vv = it->second;
          const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                                static_cast<int64_t>(vv.value.size());
          network_->Send(id_, peer->id(), bytes, [peer, key = key, vv = vv]() {
            peer->HandleReplicate(key, vv);
          });
        }
      }
      // Everything replayed is now fanned out: snapshots may cover the whole tail.
      replicated_lsn_ = std::max(replicated_lsn_, replayed_through);
    });
  }
  // Anti-entropy bootstrap: writes coordinated elsewhere while this replica was down
  // never reached it (their replication messages were dropped at send). Runs on this
  // replica's own loop so all recovery traffic originates from its lane.
  if (!peers_.empty()) {
    bootstrap_pending_ = true;
    bootstrap_round_ = 0;
    const uint64_t inc = incarnation_;
    loop_->Schedule(Micros(1), [this, inc]() {
      if (inc == incarnation_ && bootstrap_pending_) {
        StartBootstrap(0);
      }
    });
  } else {
    last_recovery_.bootstrap_complete = true;
  }
}

void KvReplica::StartBootstrap(size_t attempt) {
  if (crashed_ || peers_.empty()) {
    return;
  }
  KvReplica* peer = peers_[attempt % peers_.size()];
  const uint64_t inc = incarnation_;
  metrics_.GetCounter("bootstrap_requests").Increment();
  network_->Send(id_, peer->id(), kRequestHeaderBytes, [this, peer, inc]() {
    peer->HandleBootstrap(
        id_, [this, inc](std::vector<std::pair<std::string, VersionedValue>> dump) {
          if (inc != incarnation_ || crashed_ || !bootstrap_pending_) {
            return;  // crashed again (or already bootstrapped) since asking
          }
          bootstrap_pending_ = false;
          if (bootstrap_timer_ != 0) {
            loop_->Cancel(bootstrap_timer_);
            bootstrap_timer_ = 0;
          }
          // Merging the dump is real work: charge it like a replication batch.
          const SimDuration service =
              config_->replicate_service +
              config_->bootstrap_per_key_service * static_cast<SimDuration>(dump.size());
          service_.Submit(service, [this, inc, dump = std::move(dump)]() {
            uint64_t merged = 0;
            for (const auto& [key, vv] : dump) {
              if (ApplyLww(key, vv, /*log=*/true)) {
                merged += 1;
              }
            }
            last_recovery_.bootstrap_keys_merged += merged;
            if (bootstrap_round_ == 0) {
              // The first dump races the replication horizon: a write acked during the
              // outage may still be in flight to the dump-serving peer. One more round
              // after the fan-out has settled catches whatever the first one missed.
              bootstrap_round_ = 1;
              bootstrap_pending_ = true;
              bootstrap_timer_ =
                  loop_->Schedule(config_->bootstrap_settle_delay, [this, inc]() {
                    bootstrap_timer_ = 0;
                    if (inc == incarnation_ && bootstrap_pending_) {
                      StartBootstrap(0);
                    }
                  });
            } else {
              last_recovery_.bootstrap_complete = true;
              metrics_.GetCounter("bootstraps_completed").Increment();
            }
          });
        });
  });
  // The chosen peer may be dead too (it never answers): retry against the next one.
  bootstrap_timer_ = loop_->Schedule(config_->read_timeout, [this, inc, attempt]() {
    if (inc != incarnation_ || !bootstrap_pending_) {
      return;
    }
    metrics_.GetCounter("bootstrap_retries").Increment();
    StartBootstrap(attempt + 1);
  });
}

std::optional<VersionedValue> KvReplica::LocalGet(const std::string& key) const {
  auto it = storage_.find(key);
  if (it == storage_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void KvReplica::LocalPut(const std::string& key, std::string value, Version version) {
  storage_[key] = VersionedValue{std::move(value), version};
  if (wal_ != nullptr) {
    // Preloads are part of the durable dataset: log + sync so a crashed replica's
    // recovered state includes them without leaning on the bootstrap. They are applied
    // at every replica by construction, so they are cluster-visible immediately.
    replicated_lsn_ = std::max(replicated_lsn_, wal_->Append(key, storage_[key].value, version));
    wal_->Sync();
  }
}

}  // namespace icg
