// Wiring for a quorum-store deployment: one replica per region, clients anywhere.
#ifndef ICG_KVSTORE_CLUSTER_H_
#define ICG_KVSTORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kvstore/partitioner.h"
#include "src/kvstore/replica.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"

namespace icg {

// A client endpoint bound to one coordinator replica, as in the paper's experiments
// (e.g., the IRL client contacting the FRK replica). Byte accounting on the
// client<->coordinator link is what Figure 8 reports.
class KvClient {
 public:
  KvClient(Network* network, NodeId id, KvReplica* coordinator);

  void Read(const std::string& key, const ReadOptions& options, KvResponseFn respond);
  void MultiRead(std::vector<std::string> keys, const ReadOptions& options,
                 KvResponseFn respond);
  // `timestamp` is the client-assigned LWW stamp (0 = let the coordinator stamp at
  // apply time); client stamps keep one writer's program order intact across coordinator
  // handoffs during live rebalancing.
  void Write(const std::string& key, std::string value, KvResponseFn respond,
             SimTime timestamp = 0);
  // One request carrying several writes; the coordinator applies them in order and
  // acknowledges once (cross-tick write batching). `timestamps` (when non-empty) is
  // parallel to `keys`.
  void MultiWrite(std::vector<std::string> keys, std::vector<std::string> values,
                  KvResponseFn respond, std::vector<SimTime> timestamps = {});

  NodeId id() const { return id_; }
  NodeId coordinator_id() const { return coordinator_->id(); }

  // Client<->coordinator traffic in both directions (application bytes).
  int64_t LinkBytes() const;
  int64_t LinkMessages() const;

 private:
  Network* network_;
  NodeId id_;
  KvReplica* coordinator_;
};

class KvCluster {
 public:
  // Adds one replica node per entry of `replica_regions` to the topology and wires the
  // peer mesh. `config` must outlive the cluster.
  KvCluster(Network* network, Topology* topology, const KvConfig* config,
            const std::vector<Region>& replica_regions);

  KvReplica* ReplicaIn(Region region);
  const std::vector<std::unique_ptr<KvReplica>>& replicas() const { return replicas_; }
  const Partitioner& partitioner() const { return *partitioner_; }

  // Creates a client located in `client_region`, coordinated by the replica in
  // `coordinator_region`.
  std::unique_ptr<KvClient> MakeClient(Region client_region, Region coordinator_region);

  // Installs `key -> value` consistently on every replica (dataset preloading).
  void Preload(const std::string& key, const std::string& value);

 private:
  Network* network_;
  Topology* topology_;
  std::vector<std::unique_ptr<KvReplica>> replicas_;
  std::unique_ptr<Partitioner> partitioner_;
};

}  // namespace icg

#endif  // ICG_KVSTORE_CLUSTER_H_
