#include "src/kvstore/wal.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/digest.h"

namespace icg {
namespace {

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

uint32_t GetU32(const std::string& in, size_t at) {
  uint32_t v;
  std::memcpy(&v, in.data() + at, 4);
  return v;
}

uint64_t GetU64(const std::string& in, size_t at) {
  uint64_t v;
  std::memcpy(&v, in.data() + at, 8);
  return v;
}

constexpr size_t kLenBytes = 4;
constexpr size_t kChecksumBytes = 8;
// lsn + timestamp + writer + key_len + value_len
constexpr size_t kPayloadHeaderBytes = 8 + 8 + 4 + 4 + 4;

}  // namespace

uint64_t Wal::Append(const std::string& key, const std::string& value,
                     const Version& version) {
  const uint64_t lsn = next_lsn_++;
  const size_t payload_len = kPayloadHeaderBytes + key.size() + value.size();
  const size_t payload_start = device_.size() + kLenBytes;
  device_.reserve(device_.size() + kLenBytes + payload_len + kChecksumBytes);
  PutU32(device_, static_cast<uint32_t>(payload_len));
  PutU64(device_, lsn);
  PutU64(device_, static_cast<uint64_t>(version.timestamp));
  PutU32(device_, static_cast<uint32_t>(version.writer));
  PutU32(device_, static_cast<uint32_t>(key.size()));
  PutU32(device_, static_cast<uint32_t>(value.size()));
  device_.append(key);
  device_.append(value);
  const Digest checksum =
      Fnv1a(std::string_view(device_.data() + payload_start, payload_len));
  PutU64(device_, checksum);
  appended_records_ += 1;
  return lsn;
}

SimDuration Wal::Sync() {
  if (unsynced_bytes() == 0) {
    return 0;  // nothing to flush: a no-op fsync neither costs nor counts
  }
  synced_bytes_ = device_bytes();
  syncs_ += 1;
  return faults_.fsync_latency;
}

void Wal::Crash() {
  if (faults_.torn_tail && unsynced_bytes() > 0) {
    // The first unsynced record tears: a partial prefix made it to the medium. The cut
    // point is a pure function of the record's bytes (no RNG) so crash trials stay
    // bit-identical across LoopGroup widths. Cut inside the payload whenever the record
    // is long enough for the length header to have landed, so replay sees a plausible
    // header whose payload (or checksum) is missing or corrupt.
    const size_t tail = static_cast<size_t>(unsynced_bytes());
    const size_t keep =
        tail <= kLenBytes
            ? tail / 2
            : kLenBytes + (tail - kLenBytes) / 2 + (device_.back() & 0x3);
    device_.resize(static_cast<size_t>(synced_bytes_) + std::min(keep, tail));
  } else {
    device_.resize(static_cast<size_t>(synced_bytes_));
  }
  synced_bytes_ = device_bytes();
}

Wal::ReplayResult Wal::Replay(uint64_t from_lsn,
                              const std::function<void(const Record&)>& apply) const {
  ReplayResult result;
  size_t at = 0;
  while (at < device_.size()) {
    if (device_.size() - at < kLenBytes) {
      result.torn_tail = true;
      break;
    }
    const size_t payload_len = GetU32(device_, at);
    if (payload_len < kPayloadHeaderBytes ||
        device_.size() - at - kLenBytes < payload_len + kChecksumBytes) {
      result.torn_tail = true;
      break;
    }
    const size_t payload_start = at + kLenBytes;
    const Digest stored = GetU64(device_, payload_start + payload_len);
    const Digest computed =
        Fnv1a(std::string_view(device_.data() + payload_start, payload_len));
    if (stored != computed) {
      result.torn_tail = true;
      break;
    }
    Record record;
    record.lsn = GetU64(device_, payload_start);
    record.version.timestamp = static_cast<SimTime>(GetU64(device_, payload_start + 8));
    record.version.writer = static_cast<NodeId>(GetU32(device_, payload_start + 16));
    const size_t key_len = GetU32(device_, payload_start + 20);
    const size_t value_len = GetU32(device_, payload_start + 24);
    if (kPayloadHeaderBytes + key_len + value_len != payload_len) {
      result.torn_tail = true;
      break;
    }
    record.key = device_.substr(payload_start + kPayloadHeaderBytes, key_len);
    record.value = device_.substr(payload_start + kPayloadHeaderBytes + key_len, value_len);
    at = payload_start + payload_len + kChecksumBytes;
    result.bytes_scanned = static_cast<int64_t>(at);
    if (record.lsn <= from_lsn) {
      continue;  // covered by the snapshot being recovered alongside this log
    }
    result.records += 1;
    result.last_lsn = record.lsn;
    apply(record);
  }
  return result;
}

void Wal::TruncateThrough(uint64_t through_lsn) {
  if (through_lsn <= truncated_through_) {
    return;
  }
  // Walk whole valid records from the front and drop every one covered by the snapshot.
  // Truncation only ever touches the synced region: a snapshot cannot cover records
  // that were never made durable.
  size_t at = 0;
  while (at + kLenBytes <= static_cast<size_t>(synced_bytes_)) {
    const size_t payload_len = GetU32(device_, at);
    const size_t record_end = at + kLenBytes + payload_len + kChecksumBytes;
    if (record_end > static_cast<size_t>(synced_bytes_)) {
      break;
    }
    const uint64_t lsn = GetU64(device_, at + kLenBytes);
    if (lsn > through_lsn) {
      break;
    }
    at = record_end;
  }
  device_.erase(0, at);
  synced_bytes_ -= static_cast<int64_t>(at);
  truncated_through_ = through_lsn;
}

}  // namespace icg
