// Last-writer-wins versioned values stored by quorum replicas.
#ifndef ICG_KVSTORE_VERSIONED_VALUE_H_
#define ICG_KVSTORE_VERSIONED_VALUE_H_

#include <string>

#include "src/common/digest.h"
#include "src/common/types.h"

namespace icg {

struct VersionedValue {
  std::string value;
  Version version;

  // True if `other` should replace this value under last-writer-wins.
  bool OlderThan(const Version& other) const { return version < other; }

  Digest ContentDigest() const { return ValueDigest(value, version.timestamp); }

  friend bool operator==(const VersionedValue&, const VersionedValue&) = default;
};

}  // namespace icg

#endif  // ICG_KVSTORE_VERSIONED_VALUE_H_
