#include "src/kvstore/snapshot.h"

#include <cstring>

#include "src/common/digest.h"

namespace icg {
namespace {

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

uint32_t GetU32(const std::string& in, size_t at) {
  uint32_t v;
  std::memcpy(&v, in.data() + at, 4);
  return v;
}

uint64_t GetU64(const std::string& in, size_t at) {
  uint64_t v;
  std::memcpy(&v, in.data() + at, 8);
  return v;
}

}  // namespace

void SnapshotManager::Take(const std::map<std::string, VersionedValue>& storage,
                           uint64_t through_lsn) {
  std::string image;
  PutU64(image, through_lsn);
  PutU64(image, storage.size());
  for (const auto& [key, vv] : storage) {
    PutU64(image, static_cast<uint64_t>(vv.version.timestamp));
    PutU32(image, static_cast<uint32_t>(vv.version.writer));
    PutU32(image, static_cast<uint32_t>(key.size()));
    PutU32(image, static_cast<uint32_t>(vv.value.size()));
    image.append(key);
    image.append(vv.value);
  }
  const Digest checksum = Fnv1a(image);
  PutU64(image, checksum);
  image_ = std::move(image);  // atomic replace: temp-write + rename in a real system
  covered_lsn_ = through_lsn;
  snapshots_taken_ += 1;
}

bool SnapshotManager::Load(std::map<std::string, VersionedValue>* out,
                           uint64_t* through_lsn) const {
  out->clear();
  *through_lsn = 0;
  if (image_.size() < 24) {
    return false;
  }
  const size_t body = image_.size() - 8;
  const Digest stored = GetU64(image_, body);
  if (stored != Fnv1a(std::string_view(image_.data(), body))) {
    return false;
  }
  const uint64_t covered = GetU64(image_, 0);
  const uint64_t entries = GetU64(image_, 8);
  size_t at = 16;
  for (uint64_t i = 0; i < entries; ++i) {
    if (body - at < 20) {
      out->clear();
      return false;
    }
    VersionedValue vv;
    vv.version.timestamp = static_cast<SimTime>(GetU64(image_, at));
    vv.version.writer = static_cast<NodeId>(GetU32(image_, at + 8));
    const size_t key_len = GetU32(image_, at + 12);
    const size_t value_len = GetU32(image_, at + 16);
    at += 20;
    if (body - at < key_len + value_len) {
      out->clear();
      return false;
    }
    std::string key = image_.substr(at, key_len);
    vv.value = image_.substr(at + key_len, value_len);
    at += key_len + value_len;
    out->emplace(std::move(key), std::move(vv));
  }
  *through_lsn = covered;
  return true;
}

}  // namespace icg
