#include "src/kvstore/partitioner.h"

#include <algorithm>
#include <cassert>

#include "src/common/digest.h"
#include "src/common/random.h"

namespace icg {
namespace {

// FNV-1a alone has weak avalanche in the high bits for very short inputs (vnode labels,
// short keys), which skews ring ownership badly. A SplitMix64-style finalizer restores
// uniformity across the full 64-bit token space.
uint64_t MixToken(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

Partitioner::Partitioner(std::vector<NodeId> nodes, int replication_factor, int vnodes_per_node,
                         uint64_t epoch)
    : nodes_(std::move(nodes)),
      replication_factor_(replication_factor),
      vnodes_per_node_(vnodes_per_node),
      epoch_(epoch) {
  assert(!nodes_.empty());
  assert(replication_factor_ >= 1);
  assert(vnodes_per_node_ >= 1);
  for (const NodeId node : nodes_) {
    for (int v = 0; v < vnodes_per_node_; ++v) {
      const std::string vnode_key = std::to_string(node) + "#" + std::to_string(v);
      ring_[MixToken(Fnv1a(vnode_key))] = node;
    }
  }
}

Partitioner Partitioner::WithNodes(std::vector<NodeId> nodes) const {
  return Partitioner(std::move(nodes), replication_factor_, vnodes_per_node_, epoch_ + 1);
}

uint64_t Partitioner::TokenOf(const std::string& key) { return MixToken(Fnv1a(key)); }

NodeId Partitioner::OwnerOfToken(uint64_t token) const {
  auto it = ring_.lower_bound(token);
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

std::vector<NodeId> Partitioner::ReplicasFor(const std::string& key) const {
  const size_t want = std::min(static_cast<size_t>(replication_factor_), nodes_.size());
  std::vector<NodeId> replicas;
  replicas.reserve(want);
  auto it = ring_.lower_bound(TokenOf(key));
  // Walk the ring clockwise, collecting distinct nodes, wrapping at the end.
  for (size_t steps = 0; steps < 2 * ring_.size() && replicas.size() < want; ++steps) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (std::find(replicas.begin(), replicas.end(), it->second) == replicas.end()) {
      replicas.push_back(it->second);
    }
    ++it;
  }
  return replicas;
}

NodeId Partitioner::PrimaryFor(const std::string& key) const { return ReplicasFor(key).front(); }

bool Partitioner::RingDiff::MovedToken(uint64_t token) const {
  for (const TokenRange& range : moved) {
    if (range.Contains(token)) {
      return true;
    }
  }
  return false;
}

double Partitioner::RingDiff::MovedFraction() const {
  long double covered = 0;
  for (const TokenRange& range : moved) {
    if (range.begin == range.end) {
      covered += 18446744073709551616.0L;  // 2^64: the whole token space
    } else {
      // Unsigned wrap makes end - begin the range width even across zero.
      covered += static_cast<long double>(range.end - range.begin);
    }
  }
  return static_cast<double>(covered / 18446744073709551616.0L);
}

Partitioner::RingDiff Partitioner::Diff(const Partitioner& from, const Partitioner& to) {
  RingDiff diff;
  diff.from_epoch = from.epoch_;
  diff.to_epoch = to.epoch_;
  for (const NodeId node : to.nodes_) {
    if (std::find(from.nodes_.begin(), from.nodes_.end(), node) == from.nodes_.end()) {
      diff.added_nodes.push_back(node);
    }
  }
  for (const NodeId node : from.nodes_) {
    if (std::find(to.nodes_.begin(), to.nodes_.end(), node) == to.nodes_.end()) {
      diff.removed_nodes.push_back(node);
    }
  }

  // Primary ownership is constant between consecutive ring boundaries (either ring's):
  // for any token t in (prev, cur], lower_bound lands on `cur`'s successor vnode in
  // each ring. Walking the merged boundary set therefore enumerates every maximal
  // constant-ownership segment; segments whose owners disagree form the moved set.
  std::vector<uint64_t> boundaries;
  boundaries.reserve(from.ring_.size() + to.ring_.size());
  for (const auto& [token, node] : from.ring_) {
    boundaries.push_back(token);
  }
  for (const auto& [token, node] : to.ring_) {
    boundaries.push_back(token);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()), boundaries.end());
  if (boundaries.empty()) {
    return diff;
  }

  // The first segment is the wrap-around one: (last boundary, first boundary] through
  // zero. begin == end (a single boundary overall) degenerates to the full ring, which
  // TokenRange::Contains treats as such.
  uint64_t prev = boundaries.back();
  for (const uint64_t cur : boundaries) {
    const NodeId owner_before = from.OwnerOfToken(cur);
    const NodeId owner_after = to.OwnerOfToken(cur);
    if (owner_before != owner_after) {
      if (!diff.moved.empty() && diff.moved.back().end == prev &&
          diff.moved.back().from == owner_before && diff.moved.back().to == owner_after) {
        diff.moved.back().end = cur;  // extend the adjacent range instead of splitting
      } else {
        diff.moved.push_back(TokenRange{prev, cur, owner_before, owner_after});
      }
    }
    prev = cur;
  }
  return diff;
}

std::map<NodeId, double> Partitioner::PrimaryLoadEstimate(int sample_keys, uint64_t seed) const {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  std::map<NodeId, int64_t> counts;
  for (int i = 0; i < sample_keys; ++i) {
    counts[PrimaryFor("sample-" + std::to_string(rng.NextU64()))]++;
  }
  std::map<NodeId, double> out;
  for (const auto& [node, count] : counts) {
    out[node] = static_cast<double>(count) / sample_keys;
  }
  return out;
}

}  // namespace icg
