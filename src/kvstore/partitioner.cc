#include "src/kvstore/partitioner.h"

#include <algorithm>
#include <cassert>

#include "src/common/digest.h"

namespace icg {
namespace {

// FNV-1a alone has weak avalanche in the high bits for very short inputs (vnode labels,
// short keys), which skews ring ownership badly. A SplitMix64-style finalizer restores
// uniformity across the full 64-bit token space.
uint64_t MixToken(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

Partitioner::Partitioner(std::vector<NodeId> nodes, int replication_factor, int vnodes_per_node)
    : nodes_(std::move(nodes)), replication_factor_(replication_factor) {
  assert(!nodes_.empty());
  assert(replication_factor_ >= 1);
  assert(vnodes_per_node >= 1);
  for (const NodeId node : nodes_) {
    for (int v = 0; v < vnodes_per_node; ++v) {
      const std::string vnode_key = std::to_string(node) + "#" + std::to_string(v);
      ring_[MixToken(Fnv1a(vnode_key))] = node;
    }
  }
}

uint64_t Partitioner::HashToken(const std::string& key) { return MixToken(Fnv1a(key)); }

std::vector<NodeId> Partitioner::ReplicasFor(const std::string& key) const {
  const size_t want = std::min(static_cast<size_t>(replication_factor_), nodes_.size());
  std::vector<NodeId> replicas;
  replicas.reserve(want);
  auto it = ring_.lower_bound(HashToken(key));
  // Walk the ring clockwise, collecting distinct nodes, wrapping at the end.
  for (size_t steps = 0; steps < 2 * ring_.size() && replicas.size() < want; ++steps) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (std::find(replicas.begin(), replicas.end(), it->second) == replicas.end()) {
      replicas.push_back(it->second);
    }
    ++it;
  }
  return replicas;
}

NodeId Partitioner::PrimaryFor(const std::string& key) const { return ReplicasFor(key).front(); }

std::map<NodeId, double> Partitioner::PrimaryLoadEstimate(int sample_keys) const {
  std::map<NodeId, int64_t> counts;
  for (int i = 0; i < sample_keys; ++i) {
    counts[PrimaryFor("sample-key-" + std::to_string(i))]++;
  }
  std::map<NodeId, double> out;
  for (const auto& [node, count] : counts) {
    out[node] = static_cast<double>(count) / sample_keys;
  }
  return out;
}

}  // namespace icg
