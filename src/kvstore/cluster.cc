#include "src/kvstore/cluster.h"

#include <cassert>
#include <utility>

namespace icg {

KvClient::KvClient(Network* network, NodeId id, KvReplica* coordinator)
    : network_(network), id_(id), coordinator_(coordinator) {
  assert(coordinator_ != nullptr);
}

void KvClient::Read(const std::string& key, const ReadOptions& options, KvResponseFn respond) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size());
  KvReplica* coordinator = coordinator_;
  const NodeId self = id_;
  network_->Send(id_, coordinator_->id(), bytes,
                 [coordinator, self, key, options, respond = std::move(respond)]() {
                   coordinator->CoordinateRead(self, key, options, respond);
                 });
}

void KvClient::MultiRead(std::vector<std::string> keys, const ReadOptions& options,
                         KvResponseFn respond) {
  int64_t bytes = kRequestHeaderBytes;
  for (const auto& key : keys) {
    bytes += static_cast<int64_t>(key.size()) + 2;
  }
  KvReplica* coordinator = coordinator_;
  const NodeId self = id_;
  network_->Send(id_, coordinator_->id(), bytes,
                 [coordinator, self, keys = std::move(keys), options,
                  respond = std::move(respond)]() mutable {
                   coordinator->CoordinateMultiRead(self, std::move(keys), options, respond);
                 });
}

void KvClient::Write(const std::string& key, std::string value, KvResponseFn respond,
                     SimTime timestamp) {
  const int64_t bytes = kRequestHeaderBytes + static_cast<int64_t>(key.size()) +
                        static_cast<int64_t>(value.size()) + (timestamp != 0 ? 8 : 0);
  KvReplica* coordinator = coordinator_;
  const NodeId self = id_;
  network_->Send(id_, coordinator_->id(), bytes,
                 [coordinator, self, key, value = std::move(value), timestamp,
                  respond = std::move(respond)]() mutable {
                   coordinator->CoordinateWrite(self, key, std::move(value), respond,
                                                timestamp);
                 });
}

void KvClient::MultiWrite(std::vector<std::string> keys, std::vector<std::string> values,
                          KvResponseFn respond, std::vector<SimTime> timestamps) {
  int64_t bytes = kRequestHeaderBytes;
  for (const auto& key : keys) {
    bytes += static_cast<int64_t>(key.size()) + 2;
  }
  for (const auto& value : values) {
    bytes += static_cast<int64_t>(value.size()) + 2;
  }
  bytes += static_cast<int64_t>(timestamps.size()) * 8;  // per-entry client stamps
  KvReplica* coordinator = coordinator_;
  const NodeId self = id_;
  network_->Send(id_, coordinator_->id(), bytes,
                 [coordinator, self, keys = std::move(keys), values = std::move(values),
                  timestamps = std::move(timestamps), respond = std::move(respond)]() mutable {
                   coordinator->CoordinateMultiWrite(self, std::move(keys), std::move(values),
                                                     respond, std::move(timestamps));
                 });
}

int64_t KvClient::LinkBytes() const { return network_->BytesBetween(id_, coordinator_->id()); }

int64_t KvClient::LinkMessages() const {
  return network_->MessagesBetween(id_, coordinator_->id());
}

KvCluster::KvCluster(Network* network, Topology* topology, const KvConfig* config,
                     const std::vector<Region>& replica_regions)
    : network_(network), topology_(topology) {
  std::vector<NodeId> ids;
  for (const Region region : replica_regions) {
    const NodeId id = topology->AddNode(region, std::string("kv-") + RegionName(region));
    replicas_.push_back(std::make_unique<KvReplica>(network, id, config,
                                                    std::string("kv-") + RegionName(region)));
    ids.push_back(id);
  }
  partitioner_ = std::make_unique<Partitioner>(ids, config->replication_factor);
  for (auto& replica : replicas_) {
    std::vector<KvReplica*> peers;
    for (auto& other : replicas_) {
      if (other.get() != replica.get()) {
        peers.push_back(other.get());
      }
    }
    replica->SetPeers(std::move(peers));
  }
}

KvReplica* KvCluster::ReplicaIn(Region region) {
  for (auto& replica : replicas_) {
    if (topology_->RegionOf(replica->id()) == region) {
      return replica.get();
    }
  }
  return nullptr;
}

std::unique_ptr<KvClient> KvCluster::MakeClient(Region client_region, Region coordinator_region) {
  KvReplica* coordinator = ReplicaIn(coordinator_region);
  assert(coordinator != nullptr);
  const NodeId id =
      topology_->AddNode(client_region, std::string("client-") + RegionName(client_region));
  return std::make_unique<KvClient>(network_, id, coordinator);
}

void KvCluster::Preload(const std::string& key, const std::string& value) {
  // Version {1, primary} predates any runtime write (runtime timestamps are virtual
  // times >= startup), so preloaded data loses LWW ties to every real write.
  const Version version{1, partitioner_->PrimaryFor(key)};
  for (auto& replica : replicas_) {
    replica->LocalPut(key, value, version);
  }
}

}  // namespace icg
