// Per-replica write-ahead log over a simulated storage device.
//
// The "device" is a byte buffer that survives KvReplica::Crash() — the moral equivalent
// of the disk outliving the process in a kill -9. Appends land in the device buffer
// immediately but only become *durable* once Sync() advances the synced watermark
// (fsync). A crash discards the unsynced tail; with torn-tail faults enabled, a
// deterministic prefix of the first unsynced record survives as a torn record, exactly
// like a real log whose last sector made it to the platter and whose next one did not.
//
// Record wire format (all integers little-endian, fixed width):
//
//   [u32 payload_len][u64 lsn][i64 version.timestamp][i32 version.writer]
//   [u32 key_len][u32 value_len][key bytes][value bytes][u64 fnv1a(payload)]
//
// `payload_len` counts everything between itself and the trailing checksum. Replay
// validates both the length header (against the remaining device bytes) and the
// checksum; the first violation ends replay cleanly — by construction only unsynced
// (hence unacknowledged) records can be torn, so stopping there never loses an
// acknowledged write. Records apply under LWW, so replaying a record that is also
// covered by a snapshot (or re-replaying the whole log) is idempotent: zero
// duplication by version comparison, not by replay bookkeeping.
//
// Determinism: the device is plain memory, Sync's latency is a fixed configured
// duration charged on the caller's service queue, and the torn-tail cut point is a pure
// function of the torn record's bytes — no entropy, so crash trials fingerprint
// identically at every LoopGroup width.
#ifndef ICG_KVSTORE_WAL_H_
#define ICG_KVSTORE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/types.h"

namespace icg {

// Fault injection for the simulated device (the ICG_WAL_FAULTS sweep in CI).
struct WalFaults {
  // Extra service time a Sync() costs (slow fsync). 0 keeps appends free, which is what
  // keeps the default configuration bit-identical to the pre-durability timeline.
  SimDuration fsync_latency = 0;
  // On crash, keep a deterministic partial prefix of the first unsynced record instead
  // of dropping the tail at the sync watermark (torn write).
  bool torn_tail = false;
};

class Wal {
 public:
  struct Record {
    uint64_t lsn = 0;
    std::string key;
    std::string value;
    Version version;
  };

  struct ReplayResult {
    uint64_t records = 0;        // records handed to the apply callback
    uint64_t last_lsn = 0;       // highest LSN applied (0 if none)
    bool torn_tail = false;      // replay ended at a torn/corrupt record
    int64_t bytes_scanned = 0;
  };

  explicit Wal(std::string name) : name_(std::move(name)) {}

  void SetFaults(WalFaults faults) { faults_ = faults; }
  const WalFaults& faults() const { return faults_; }

  // Appends one record to the device buffer. NOT durable until the next Sync().
  // Returns the record's LSN (strictly increasing from 1).
  uint64_t Append(const std::string& key, const std::string& value, const Version& version);

  // Makes every appended byte durable and returns the fsync latency the caller must
  // charge (on its service queue) before acknowledging anything covered by this sync.
  SimDuration Sync();

  // Crash simulation: the unsynced tail is lost. With torn_tail faults, a partial
  // prefix of the first unsynced record survives (and fails validation on replay).
  void Crash();

  // Replays every valid record in append order, handing each to `apply` (LWW makes the
  // callback idempotent). Starts after `from_lsn` (records with lsn <= from_lsn are
  // skipped — they are covered by a snapshot). Stops cleanly at the first length or
  // checksum violation.
  ReplayResult Replay(uint64_t from_lsn,
                      const std::function<void(const Record&)>& apply) const;

  // Drops the device prefix covering records with lsn <= through_lsn (snapshot
  // truncation). Synced bytes shrink accordingly; unsynced bytes are untouched.
  void TruncateThrough(uint64_t through_lsn);

  // --- Observability -------------------------------------------------------------------
  uint64_t next_lsn() const { return next_lsn_; }
  int64_t appended_records() const { return appended_records_; }
  int64_t syncs() const { return syncs_; }
  int64_t device_bytes() const { return static_cast<int64_t>(device_.size()); }
  int64_t synced_bytes() const { return synced_bytes_; }
  int64_t unsynced_bytes() const { return device_bytes() - synced_bytes_; }
  uint64_t truncated_through() const { return truncated_through_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  WalFaults faults_;
  std::string device_;         // the simulated persistent medium
  int64_t synced_bytes_ = 0;   // durable watermark into device_
  uint64_t next_lsn_ = 1;
  uint64_t truncated_through_ = 0;  // highest LSN removed by snapshot truncation
  int64_t appended_records_ = 0;
  int64_t syncs_ = 0;
};

}  // namespace icg

#endif  // ICG_KVSTORE_WAL_H_
