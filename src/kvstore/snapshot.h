// Snapshot manager for a replica's LWW store, paired with the WAL.
//
// A snapshot is a checksummed serialization of the whole versioned key-value map plus
// the LSN of the last WAL record it covers. Like the WAL device, the snapshot "file"
// is a byte buffer that survives KvReplica::Crash(). Writing is modeled as atomic
// (write-temp-then-rename in a real system): a snapshot either exists completely and
// validates, or the previous one still does — there is no torn-snapshot state.
//
// Recovery order is the classical one: load the newest valid snapshot, then replay the
// WAL strictly after its covered LSN. After a snapshot is taken the WAL prefix it
// covers is truncated, which bounds both replay time and device growth. Cadence is
// driven by the replica (KvConfig::snapshot_every appended records; 0 disables
// snapshots entirely, keeping the default timeline untouched).
#ifndef ICG_KVSTORE_SNAPSHOT_H_
#define ICG_KVSTORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/types.h"
#include "src/kvstore/versioned_value.h"

namespace icg {

class SnapshotManager {
 public:
  explicit SnapshotManager(std::string name) : name_(std::move(name)) {}

  // Serializes `storage` and records that WAL records with lsn <= through_lsn are
  // covered. Atomic: replaces any previous snapshot.
  void Take(const std::map<std::string, VersionedValue>& storage, uint64_t through_lsn);

  // Loads the snapshot into `out` (replacing its contents) and reports the covered
  // LSN. Returns false — leaving `out` empty and `through_lsn` 0 — when no snapshot
  // exists or the checksum fails.
  bool Load(std::map<std::string, VersionedValue>* out, uint64_t* through_lsn) const;

  bool HasSnapshot() const { return !image_.empty(); }

  // --- Observability -------------------------------------------------------------------
  int64_t snapshots_taken() const { return snapshots_taken_; }
  int64_t image_bytes() const { return static_cast<int64_t>(image_.size()); }
  uint64_t covered_lsn() const { return covered_lsn_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::string image_;          // the simulated snapshot file (atomic replace on Take)
  uint64_t covered_lsn_ = 0;
  int64_t snapshots_taken_ = 0;
};

}  // namespace icg

#endif  // ICG_KVSTORE_SNAPSHOT_H_
