// Consistent-hash ring partitioner (Dynamo/Cassandra style).
//
// Replica placement: a key's token is its hash; the key is owned by the first
// `replication_factor` distinct nodes encountered walking the ring clockwise from the
// token. With virtual nodes for balance.
//
// Rings are *versioned*: every Partitioner carries an epoch, and membership changes are
// expressed as a successor ring (WithNodes, epoch + 1) plus a Diff of the token ranges
// whose primary owner moved. The diff is what live rebalancing consumes — a router can
// tell exactly which keys a membership change re-routes without rehashing the keyspace.
#ifndef ICG_KVSTORE_PARTITIONER_H_
#define ICG_KVSTORE_PARTITIONER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace icg {

class Partitioner {
 public:
  Partitioner(std::vector<NodeId> nodes, int replication_factor, int vnodes_per_node = 16,
              uint64_t epoch = 0);

  // The ordered replica set for a key (primary first), size = min(RF, #nodes).
  std::vector<NodeId> ReplicasFor(const std::string& key) const;

  // The primary (first) replica for a key.
  NodeId PrimaryFor(const std::string& key) const;

  int replication_factor() const { return replication_factor_; }
  int vnodes_per_node() const { return vnodes_per_node_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  // Ring version. Successor rings (WithNodes) carry strictly larger epochs; consumers
  // use this to reject stale ring installations.
  uint64_t epoch() const { return epoch_; }

  // Derives the successor ring: same replication factor and vnode count over the new
  // node set, epoch bumped by one. This is the one sanctioned way to express a live
  // membership change, so epochs strictly increase along any chain of changes.
  Partitioner WithNodes(std::vector<NodeId> nodes) const;

  // The ring position of a key (public so diff consumers can classify keys).
  static uint64_t TokenOf(const std::string& key);

  // A contiguous range of ring tokens whose primary owner changed: tokens t with
  // begin < t <= end (wrapping through zero when end <= begin; begin == end means the
  // whole ring).
  struct TokenRange {
    uint64_t begin = 0;  // exclusive
    uint64_t end = 0;    // inclusive
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;

    bool Contains(uint64_t token) const {
      if (begin == end) {
        return true;  // degenerate full-ring range
      }
      if (begin < end) {
        return token > begin && token <= end;
      }
      return token > begin || token <= end;  // wraps through zero
    }
  };

  // The primary-ownership delta between two rings. `moved` is disjoint and covers
  // exactly the tokens whose primary differs between the rings, so for every key:
  // MovedKey(key) <=> from.PrimaryFor(key) != to.PrimaryFor(key).
  struct RingDiff {
    uint64_t from_epoch = 0;
    uint64_t to_epoch = 0;
    std::vector<NodeId> added_nodes;
    std::vector<NodeId> removed_nodes;
    std::vector<TokenRange> moved;

    bool MovedToken(uint64_t token) const;
    bool MovedKey(const std::string& key) const { return MovedToken(TokenOf(key)); }
    // Fraction of the token space whose primary moved; ~1/N for a single join on a
    // balanced N+1-node ring (the consistent-hashing contract).
    double MovedFraction() const;
  };

  // Computes the primary-ownership diff `from` -> `to`. The rings need not be related,
  // but the intended use is `to = from.WithNodes(...)` so to.epoch() > from.epoch().
  static RingDiff Diff(const Partitioner& from, const Partitioner& to);

  // Fraction of a synthetic keyspace owned (as primary) by each node; used by balance
  // tests and rebalance planning. The sample keys are derived from `seed`, so distinct
  // seeds probe independent key universes while any fixed seed is fully deterministic.
  std::map<NodeId, double> PrimaryLoadEstimate(int sample_keys, uint64_t seed = 0) const;

 private:
  // Primary owner of a raw ring token (first vnode at or clockwise-after the token).
  NodeId OwnerOfToken(uint64_t token) const;

  std::vector<NodeId> nodes_;
  int replication_factor_;
  int vnodes_per_node_;
  uint64_t epoch_;
  std::map<uint64_t, NodeId> ring_;  // token -> node
};

}  // namespace icg

#endif  // ICG_KVSTORE_PARTITIONER_H_
