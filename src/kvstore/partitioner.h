// Consistent-hash ring partitioner (Dynamo/Cassandra style).
//
// Replica placement: a key's token is its hash; the key is owned by the first
// `replication_factor` distinct nodes encountered walking the ring clockwise from the
// token. With virtual nodes for balance.
#ifndef ICG_KVSTORE_PARTITIONER_H_
#define ICG_KVSTORE_PARTITIONER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace icg {

class Partitioner {
 public:
  Partitioner(std::vector<NodeId> nodes, int replication_factor, int vnodes_per_node = 16);

  // The ordered replica set for a key (primary first), size = min(RF, #nodes).
  std::vector<NodeId> ReplicasFor(const std::string& key) const;

  // The primary (first) replica for a key.
  NodeId PrimaryFor(const std::string& key) const;

  int replication_factor() const { return replication_factor_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  // Fraction of a large synthetic keyspace owned (as primary) by each node; used by
  // balance tests.
  std::map<NodeId, double> PrimaryLoadEstimate(int sample_keys) const;

 private:
  static uint64_t HashToken(const std::string& key);

  std::vector<NodeId> nodes_;
  int replication_factor_;
  std::map<uint64_t, NodeId> ring_;  // token -> node
};

}  // namespace icg

#endif  // ICG_KVSTORE_PARTITIONER_H_
