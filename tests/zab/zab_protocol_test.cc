// Zab-protocol tests: commit ordering, quorum behaviour, session-server routing, CZK
// local simulation with speculative cursors, and the client-driven dequeue recipes.
#include <gtest/gtest.h>

#include "src/harness/deployment.h"

namespace icg {
namespace {

class ZabTest : public ::testing::Test {
 protected:
  ZabTest() : world_(/*seed=*/3, /*jitter_sigma=*/0.0) {}

  ZooKeeperStack MakeStack(Region client = Region::kIreland, Region session = Region::kFrankfurt,
                           Region leader = Region::kIreland) {
    return MakeZooKeeperStack(world_, ZabConfig{}, client, session, leader);
  }

  SimWorld world_;
};

TEST_F(ZabTest, LeaderFlagSetCorrectly) {
  auto stack = MakeStack();
  EXPECT_TRUE(stack.cluster->ServerIn(Region::kIreland)->is_leader());
  EXPECT_FALSE(stack.cluster->ServerIn(Region::kFrankfurt)->is_leader());
  EXPECT_FALSE(stack.cluster->ServerIn(Region::kVirginia)->is_leader());
}

TEST_F(ZabTest, EnqueueCommitsOnAllServers) {
  auto stack = MakeStack();
  bool done = false;
  stack.zab_client->Enqueue("q", "x", /*icg=*/false,
                            [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                              ASSERT_TRUE(r.ok());
                              if (is_final) {
                                EXPECT_EQ(r->seqno, 0);
                                done = true;
                              }
                            });
  world_.loop().Run();
  ASSERT_TRUE(done);
  world_.loop().RunFor(Seconds(1));
  for (const auto& server : stack.cluster->servers()) {
    EXPECT_EQ(server->LocalQueue("q").Size(), 1u);
    EXPECT_EQ(server->last_applied_zxid(), 1u);
  }
}

TEST_F(ZabTest, OpsApplyInZxidOrderEverywhere) {
  auto stack = MakeStack();
  for (int i = 0; i < 20; ++i) {
    stack.zab_client->Enqueue("q", "e" + std::to_string(i), false,
                              [](StatusOr<OpResult>, bool, ResponseKind) {});
  }
  world_.loop().Run();
  for (const auto& server : stack.cluster->servers()) {
    const auto& entries = server->LocalQueue("q").entries();
    ASSERT_EQ(entries.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(entries[static_cast<size_t>(i)].data, "e" + std::to_string(i));
      EXPECT_EQ(entries[static_cast<size_t>(i)].seq, i);
    }
  }
}

TEST_F(ZabTest, StateConsistentUnderJitterReordering) {
  // With jitter, commit messages can overtake each other; the apply path must still
  // produce identical queue contents on every server.
  SimWorld jittery(/*seed=*/11, /*jitter_sigma=*/0.4);
  auto stack = MakeZooKeeperStack(jittery, ZabConfig{});
  auto second = AddZooKeeperClient(jittery, stack, Region::kVirginia, Region::kVirginia);
  for (int i = 0; i < 30; ++i) {
    stack.zab_client->Enqueue("q", "a" + std::to_string(i), false,
                              [](StatusOr<OpResult>, bool, ResponseKind) {});
    second.zab_client->Enqueue("q", "b" + std::to_string(i), false,
                               [](StatusOr<OpResult>, bool, ResponseKind) {});
  }
  jittery.loop().Run();
  const auto& reference = stack.cluster->servers().front()->LocalQueue("q").entries();
  ASSERT_EQ(reference.size(), 60u);
  for (const auto& server : stack.cluster->servers()) {
    EXPECT_EQ(server->LocalQueue("q").entries(), reference);
  }
}

TEST_F(ZabTest, SessionThroughLeaderSkipsForwardHop) {
  auto via_follower = MakeStack(Region::kIreland, Region::kFrankfurt, Region::kIreland);
  SimTime follower_final = 0;
  via_follower.zab_client->Enqueue("q", "x", false,
                                   [&](StatusOr<OpResult>, bool is_final, ResponseKind) {
                                     if (is_final) {
                                       follower_final = world_.loop().Now();
                                     }
                                   });
  world_.loop().Run();

  SimWorld world2(/*seed=*/3, /*jitter_sigma=*/0.0);
  auto via_leader = MakeZooKeeperStack(world2, ZabConfig{}, Region::kIreland, Region::kIreland,
                                       Region::kIreland);
  SimTime leader_final = 0;
  via_leader.zab_client->Enqueue("q", "x", false,
                                 [&](StatusOr<OpResult>, bool is_final, ResponseKind) {
                                   if (is_final) {
                                     leader_final = world2.loop().Now();
                                   }
                                 });
  world2.loop().Run();
  EXPECT_LT(leader_final, follower_final);  // no client->follower->leader detour
}

TEST_F(ZabTest, DequeueEmptyQueueReturnsNotFound) {
  auto stack = MakeStack();
  bool done = false;
  stack.zab_client->Dequeue("q", false, [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
    if (is_final) {
      ASSERT_TRUE(r.ok());
      EXPECT_FALSE(r->found);
      done = true;
    }
  });
  world_.loop().Run();
  EXPECT_TRUE(done);
}

TEST_F(ZabTest, IcgEnqueuePredictsCorrectZnodeName) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 5, "t");
  int64_t predicted = -1;
  int64_t committed = -1;
  stack.zab_client->Enqueue("q", "x", /*icg=*/true,
                            [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                              if (is_final) {
                                committed = r->seqno;
                              } else {
                                predicted = r->seqno;
                              }
                            });
  world_.loop().Run();
  EXPECT_EQ(predicted, 5);
  EXPECT_EQ(committed, 5);
}

TEST_F(ZabTest, ConcurrentIcgDequeuesPromiseDistinctElements) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 10, "t");
  std::vector<int64_t> promised;
  for (int i = 0; i < 4; ++i) {
    stack.zab_client->Dequeue("q", /*icg=*/true,
                              [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                                if (!is_final && r.ok() && r->found) {
                                  promised.push_back(r->seqno);
                                }
                              });
  }
  world_.loop().Run();
  ASSERT_EQ(promised.size(), 4u);
  EXPECT_EQ(promised, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST_F(ZabTest, SpeculativeCursorResyncsAfterCommits) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 4, "t");
  // First ICG dequeue promises seq 0 and commits.
  stack.zab_client->Dequeue("q", true, [](StatusOr<OpResult>, bool, ResponseKind) {});
  world_.loop().Run();
  // Next promise must be seq 1 (cursor resynced, not double-advanced).
  int64_t promised = -1;
  stack.zab_client->Dequeue("q", true,
                            [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                              if (!is_final) {
                                promised = r->seqno;
                              }
                            });
  world_.loop().Run();
  EXPECT_EQ(promised, 1);
}

TEST_F(ZabTest, GetChildrenListsWholeQueue) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 7, "t");
  std::vector<int64_t> children;
  stack.zab_client->GetChildren("q", [&](std::vector<int64_t> c) { children = std::move(c); });
  world_.loop().Run();
  ASSERT_EQ(children.size(), 7u);
  EXPECT_EQ(children.front(), 0);
  EXPECT_EQ(children.back(), 6);
}

TEST_F(ZabTest, GetChildrenBytesGrowWithQueueSize) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 100, "t");
  stack.zab_client->GetChildren("q", [](std::vector<int64_t>) {});
  world_.loop().Run();
  const int64_t small_bytes = stack.zab_client->LinkBytes();

  auto big = MakeZooKeeperStack(world_, ZabConfig{});
  big.cluster->PreloadQueue("q", 1000, "t");
  big.zab_client->GetChildren("q", [](std::vector<int64_t>) {});
  world_.loop().Run();
  EXPECT_GT(big.zab_client->LinkBytes(), 5 * small_bytes);
}

TEST_F(ZabTest, ReadDataFetchesElementBySeq) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 3, "elem");
  std::string data;
  stack.zab_client->ReadData("q", 1, [&](StatusOr<OpResult> r, bool, ResponseKind) {
    data = r->value;
  });
  world_.loop().Run();
  EXPECT_EQ(data, "elem1");
}

TEST_F(ZabTest, RecipeDequeueZkTakesHead) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 3, "t");
  StatusOr<OpResult> out(Status::Internal("none"));
  stack.zab_client->RecipeDequeueZk("q", [&](StatusOr<OpResult> r) { out = std::move(r); });
  world_.loop().Run();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->found);
  EXPECT_EQ(out->seqno, 0);
  EXPECT_EQ(out->value, "t0");
  world_.loop().RunFor(Seconds(1));
  EXPECT_EQ(stack.cluster->ServerIn(Region::kIreland)->LocalQueue("q").Size(), 2u);
}

TEST_F(ZabTest, RecipeDequeueZkEmptyQueue) {
  auto stack = MakeStack();
  StatusOr<OpResult> out(Status::Internal("none"));
  stack.zab_client->RecipeDequeueZk("q", [&](StatusOr<OpResult> r) { out = std::move(r); });
  world_.loop().Run();
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->found);
}

TEST_F(ZabTest, RecipeDequeueCzkTakesHead) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 3, "t");
  StatusOr<OpResult> out(Status::Internal("none"));
  stack.zab_client->RecipeDequeueCzk("q", [&](StatusOr<OpResult> r) { out = std::move(r); });
  world_.loop().Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->seqno, 0);
}

TEST_F(ZabTest, ContendingRecipesNeverDuplicate) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 20, "t");
  auto c1 = stack.cluster->MakeClient(Region::kFrankfurt, Region::kFrankfurt);
  auto c2 = stack.cluster->MakeClient(Region::kFrankfurt, Region::kFrankfurt);
  std::vector<int64_t> taken;
  for (int i = 0; i < 10; ++i) {
    c1->RecipeDequeueZk("q", [&](StatusOr<OpResult> r) {
      if (r.ok() && r->found) {
        taken.push_back(r->seqno);
      }
    });
    c2->RecipeDequeueZk("q", [&](StatusOr<OpResult> r) {
      if (r.ok() && r->found) {
        taken.push_back(r->seqno);
      }
    });
  }
  world_.loop().Run();
  ASSERT_EQ(taken.size(), 20u);
  std::sort(taken.begin(), taken.end());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(taken[static_cast<size_t>(i)], i);  // each element taken exactly once
  }
}

TEST_F(ZabTest, FollowerCrashQuorumStillCommits) {
  auto stack = MakeStack();
  world_.network().Crash(stack.cluster->ServerIn(Region::kVirginia)->id());
  bool done = false;
  stack.zab_client->Enqueue("q", "x", false,
                            [&](StatusOr<OpResult>, bool is_final, ResponseKind) {
                              done |= is_final;
                            });
  world_.loop().Run();
  EXPECT_TRUE(done);  // leader + FRK follower form a majority
}

TEST_F(ZabTest, LeaderCrashBlocksCommitsButNotPreliminaries) {
  auto stack = MakeStack();
  stack.cluster->PreloadQueue("q", 5, "t");
  world_.network().Crash(stack.cluster->leader()->id());
  stack.client->SetTimeout(Seconds(2));
  bool got_preliminary = false;
  bool got_error = false;
  stack.client->Invoke(Operation::Dequeue("q"))
      .SetCallbacks([&](const View<OpResult>&) { got_preliminary = true; },
                    [&](const View<OpResult>&) { FAIL() << "commit impossible"; },
                    [&](const Status& s) {
                      got_error = true;
                      EXPECT_EQ(s.code(), StatusCode::kTimeout);
                    });
  world_.loop().Run();
  EXPECT_TRUE(got_preliminary);  // ICG still delivered the weak view
  EXPECT_TRUE(got_error);
}

}  // namespace
}  // namespace icg
