#include "src/zab/queue_state.h"

#include <gtest/gtest.h>

namespace icg {
namespace {

TEST(QueueState, StartsEmpty) {
  QueueState q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.next_seq(), 0);
  EXPECT_FALSE(q.Head().has_value());
  EXPECT_FALSE(q.Dequeue().has_value());
}

TEST(QueueState, EnqueueAssignsSequentialNames) {
  QueueState q;
  EXPECT_EQ(q.Enqueue("a"), 0);
  EXPECT_EQ(q.Enqueue("b"), 1);
  EXPECT_EQ(q.Enqueue("c"), 2);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.next_seq(), 3);
}

TEST(QueueState, DequeueIsFifo) {
  QueueState q;
  q.Enqueue("a");
  q.Enqueue("b");
  const auto first = q.Dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->data, "a");
  EXPECT_EQ(first->seq, 0);
  const auto second = q.Dequeue();
  EXPECT_EQ(second->data, "b");
  EXPECT_TRUE(q.Empty());
}

TEST(QueueState, HeadDoesNotRemove) {
  QueueState q;
  q.Enqueue("a");
  EXPECT_EQ(q.Head()->data, "a");
  EXPECT_EQ(q.Size(), 1u);
}

TEST(QueueState, DeleteBySeq) {
  QueueState q;
  q.Enqueue("a");
  q.Enqueue("b");
  q.Enqueue("c");
  EXPECT_TRUE(q.Delete(1));
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_FALSE(q.Delete(1));  // already gone
  EXPECT_EQ(q.Head()->seq, 0);
  EXPECT_TRUE(q.Delete(0));
  EXPECT_EQ(q.Head()->seq, 2);
}

TEST(QueueState, SeqNamesNeverReused) {
  QueueState q;
  q.Enqueue("a");
  q.Dequeue();
  EXPECT_EQ(q.Enqueue("b"), 1);  // 0 is never reassigned
}

TEST(QueueState, DeleteMissingSeqFails) {
  QueueState q;
  EXPECT_FALSE(q.Delete(0));
  q.Enqueue("a");
  EXPECT_FALSE(q.Delete(5));
}

TEST(QueueState, EntriesOrderedBySeq) {
  QueueState q;
  for (int i = 0; i < 10; ++i) {
    q.Enqueue(std::to_string(i));
  }
  q.Delete(3);
  q.Delete(7);
  int64_t last = -1;
  for (const QueueEntry& e : q.entries()) {
    EXPECT_GT(e.seq, last);
    last = e.seq;
  }
}

}  // namespace
}  // namespace icg
