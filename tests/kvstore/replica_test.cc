// Quorum-store protocol tests: coordinator read/write paths, replication, read repair,
// ICG preliminary flushing, confirmations, multireads, and crash behaviour.
#include "src/kvstore/replica.h"

#include <gtest/gtest.h>

#include "src/kvstore/cluster.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"

namespace icg {
namespace {

class ReplicaTest : public ::testing::Test {
 protected:
  ReplicaTest()
      : topology_(RttMatrix::Ec2Default()),
        network_(&loop_, &topology_, /*seed=*/1, /*jitter_sigma=*/0.0),
        cluster_(&network_, &topology_, &config_,
                 {Region::kFrankfurt, Region::kIreland, Region::kVirginia}) {
    client_ = cluster_.MakeClient(Region::kIreland, Region::kFrankfurt);
  }

  // Convenience synchronous-style helpers driving the loop to completion.
  StatusOr<OpResult> Read(const std::string& key, int quorum) {
    StatusOr<OpResult> out(Status::Internal("no response"));
    ReadOptions options;
    options.read_quorum = quorum;
    client_->Read(key, options,
                  [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                    if (is_final) {
                      out = std::move(r);
                    }
                  });
    loop_.Run();
    return out;
  }

  StatusOr<OpResult> Write(const std::string& key, const std::string& value) {
    StatusOr<OpResult> out(Status::Internal("no response"));
    client_->Write(key, value,
                   [&](StatusOr<OpResult> r, bool, ResponseKind) { out = std::move(r); });
    loop_.Run();
    return out;
  }

  EventLoop loop_;
  Topology topology_;
  Network network_;
  KvConfig config_;
  KvCluster cluster_;
  std::unique_ptr<KvClient> client_;
};

TEST_F(ReplicaTest, ReadMissingKeyReturnsNotFound) {
  const auto result = Read("nope", 1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found);
}

TEST_F(ReplicaTest, PreloadedValueReadableAtAllQuorums) {
  cluster_.Preload("k", "v");
  for (const int quorum : {1, 2, 3}) {
    const auto result = Read("k", quorum);
    ASSERT_TRUE(result.ok()) << "R=" << quorum;
    EXPECT_EQ(result->value, "v") << "R=" << quorum;
  }
}

TEST_F(ReplicaTest, WriteAcksWithVersion) {
  const auto ack = Write("k", "v1");
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack->found);
  EXPECT_GT(ack->version.timestamp, 0);
  EXPECT_EQ(ack->version.writer, client_->coordinator_id());
}

TEST_F(ReplicaTest, WriteReplicatesToAllReplicasEventually) {
  Write("k", "v1");
  loop_.RunFor(Seconds(1));
  for (const auto& replica : cluster_.replicas()) {
    const auto local = replica->LocalGet("k");
    ASSERT_TRUE(local.has_value());
    EXPECT_EQ(local->value, "v1");
  }
}

TEST_F(ReplicaTest, LastWriterWinsAcrossCoordinators) {
  auto other_client = cluster_.MakeClient(Region::kVirginia, Region::kVirginia);
  Write("k", "first");
  bool done = false;
  other_client->Write("k", "second",
                      [&](StatusOr<OpResult>, bool, ResponseKind) { done = true; });
  loop_.Run();
  ASSERT_TRUE(done);
  loop_.RunFor(Seconds(1));  // replication settles
  for (const auto& replica : cluster_.replicas()) {
    EXPECT_EQ(replica->LocalGet("k")->value, "second");
  }
}

TEST_F(ReplicaTest, QuorumReadSeesFreshestReplica) {
  // Install a stale copy on the coordinator and a fresh one elsewhere.
  cluster_.Preload("k", "stale");
  cluster_.ReplicaIn(Region::kIreland)->LocalPut("k", "fresh", Version{999, 1});
  const auto weak = Read("k", 1);
  EXPECT_EQ(weak->value, "stale");  // local read at FRK
  const auto strong = Read("k", 2);
  EXPECT_EQ(strong->value, "fresh");  // quorum includes IRL
}

TEST_F(ReplicaTest, ReadRepairUpdatesCoordinator) {
  cluster_.Preload("k", "stale");
  cluster_.ReplicaIn(Region::kIreland)->LocalPut("k", "fresh", Version{999, 1});
  Read("k", 2);
  loop_.RunFor(Seconds(1));
  EXPECT_EQ(cluster_.ReplicaIn(Region::kFrankfurt)->LocalGet("k")->value, "fresh");
}

TEST_F(ReplicaTest, ReadRepairDisabledLeavesStaleCopy) {
  config_.read_repair = false;
  cluster_.Preload("k", "stale");
  cluster_.ReplicaIn(Region::kIreland)->LocalPut("k", "fresh", Version{999, 1});
  Read("k", 2);
  loop_.RunFor(Seconds(1));
  EXPECT_EQ(cluster_.ReplicaIn(Region::kFrankfurt)->LocalGet("k")->value, "stale");
}

TEST_F(ReplicaTest, IcgReadDeliversPreliminaryBeforeFinal) {
  cluster_.Preload("k", "v");
  ReadOptions options;
  options.read_quorum = 2;
  options.want_preliminary = true;
  std::vector<bool> finality;
  client_->Read("k", options, [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
    ASSERT_TRUE(r.ok());
    finality.push_back(is_final);
  });
  loop_.Run();
  EXPECT_EQ(finality, (std::vector<bool>{false, true}));
}

TEST_F(ReplicaTest, IcgConfirmationWhenPreliminaryMatches) {
  cluster_.Preload("k", "v");
  ReadOptions options;
  options.read_quorum = 2;
  options.want_preliminary = true;
  options.confirmations = true;
  ResponseKind final_kind = ResponseKind::kValue;
  client_->Read("k", options, [&](StatusOr<OpResult>, bool is_final, ResponseKind kind) {
    if (is_final) {
      final_kind = kind;
    }
  });
  loop_.Run();
  EXPECT_EQ(final_kind, ResponseKind::kConfirmation);
  EXPECT_EQ(cluster_.ReplicaIn(Region::kFrankfurt)->metrics().Value("confirmations_sent"), 1);
}

TEST_F(ReplicaTest, IcgFullFinalWhenDiverged) {
  cluster_.Preload("k", "stale");
  cluster_.ReplicaIn(Region::kIreland)->LocalPut("k", "fresh", Version{999, 1});
  ReadOptions options;
  options.read_quorum = 2;
  options.want_preliminary = true;
  options.confirmations = true;
  ResponseKind final_kind = ResponseKind::kConfirmation;
  std::string final_value;
  client_->Read("k", options, [&](StatusOr<OpResult> r, bool is_final, ResponseKind kind) {
    if (is_final) {
      final_kind = kind;
      final_value = r->value;
    }
  });
  loop_.Run();
  EXPECT_EQ(final_kind, ResponseKind::kValue);
  EXPECT_EQ(final_value, "fresh");
  EXPECT_EQ(cluster_.ReplicaIn(Region::kFrankfurt)->metrics().Value("divergent_finals"), 1);
}

TEST_F(ReplicaTest, QuorumTimesOutWhenPeersCrashed) {
  cluster_.Preload("k", "v");
  network_.Crash(cluster_.ReplicaIn(Region::kIreland)->id());
  network_.Crash(cluster_.ReplicaIn(Region::kVirginia)->id());
  const auto result = Read("k", 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(ReplicaTest, R2SurvivesOneCrash) {
  cluster_.Preload("k", "v");
  network_.Crash(cluster_.ReplicaIn(Region::kVirginia)->id());
  const auto result = Read("k", 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "v");
}

TEST_F(ReplicaTest, WeakReadUnaffectedByRemoteCrashes) {
  cluster_.Preload("k", "v");
  network_.Crash(cluster_.ReplicaIn(Region::kIreland)->id());
  network_.Crash(cluster_.ReplicaIn(Region::kVirginia)->id());
  const auto result = Read("k", 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "v");
}

TEST_F(ReplicaTest, MultiReadReturnsJoinedValues) {
  cluster_.Preload("a", "va");
  cluster_.Preload("b", "vb");
  StatusOr<OpResult> out(Status::Internal("none"));
  ReadOptions options;
  options.read_quorum = 2;
  client_->MultiRead({"a", "b"}, options,
                     [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                       if (is_final) {
                         out = std::move(r);
                       }
                     });
  loop_.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->found);
  EXPECT_EQ(out->seqno, 2);  // both found
  EXPECT_EQ(out->value, std::string("va") + kMultiValueSeparator + "vb");
}

TEST_F(ReplicaTest, MultiReadMissingKeyClearsFound) {
  cluster_.Preload("a", "va");
  StatusOr<OpResult> out(Status::Internal("none"));
  ReadOptions options;
  options.read_quorum = 1;
  client_->MultiRead({"a", "missing"}, options,
                     [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                       if (is_final) {
                         out = std::move(r);
                       }
                     });
  loop_.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->found);
  EXPECT_EQ(out->seqno, 1);
}

TEST_F(ReplicaTest, MultiReadMergesPerKeyAcrossReplicas) {
  cluster_.Preload("a", "stale-a");
  cluster_.Preload("b", "stale-b");
  cluster_.ReplicaIn(Region::kIreland)->LocalPut("a", "fresh-a", Version{999, 1});
  cluster_.ReplicaIn(Region::kVirginia)->LocalPut("b", "fresh-b", Version{999, 2});
  StatusOr<OpResult> out(Status::Internal("none"));
  ReadOptions options;
  options.read_quorum = 3;
  client_->MultiRead({"a", "b"}, options,
                     [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
                       if (is_final) {
                         out = std::move(r);
                       }
                     });
  loop_.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->value, std::string("fresh-a") + kMultiValueSeparator + "fresh-b");
}

TEST_F(ReplicaTest, MultiReadIcgConfirmation) {
  cluster_.Preload("a", "va");
  cluster_.Preload("b", "vb");
  ReadOptions options;
  options.read_quorum = 2;
  options.want_preliminary = true;
  options.confirmations = true;
  std::vector<ResponseKind> kinds;
  client_->MultiRead({"a", "b"}, options,
                     [&](StatusOr<OpResult>, bool, ResponseKind kind) {
                       kinds.push_back(kind);
                     });
  loop_.Run();
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], ResponseKind::kValue);
  EXPECT_EQ(kinds[1], ResponseKind::kConfirmation);
}

TEST_F(ReplicaTest, ConcurrentReadsIndependent) {
  cluster_.Preload("a", "va");
  cluster_.Preload("b", "vb");
  std::string got_a;
  std::string got_b;
  ReadOptions options;
  options.read_quorum = 2;
  client_->Read("a", options, [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
    if (is_final) {
      got_a = r->value;
    }
  });
  client_->Read("b", options, [&](StatusOr<OpResult> r, bool is_final, ResponseKind) {
    if (is_final) {
      got_b = r->value;
    }
  });
  loop_.Run();
  EXPECT_EQ(got_a, "va");
  EXPECT_EQ(got_b, "vb");
}

TEST_F(ReplicaTest, CoordinatorMetricsCount) {
  cluster_.Preload("k", "v");
  Read("k", 2);
  Write("k", "v2");
  auto& metrics = cluster_.ReplicaIn(Region::kFrankfurt)->metrics();
  EXPECT_EQ(metrics.Value("reads_coordinated"), 1);
  EXPECT_EQ(metrics.Value("writes_coordinated"), 1);
}

// --- Crash & recovery (WAL + snapshot durability) --------------------------------------

TEST_F(ReplicaTest, CrashWipesVolatileStateAndDropsNewTraffic) {
  Write("k", "v1");
  KvReplica* frk = cluster_.ReplicaIn(Region::kFrankfurt);
  EXPECT_EQ(frk->incarnation(), 0u);
  network_.Crash(frk->id());
  frk->Crash();
  EXPECT_TRUE(frk->crashed());
  EXPECT_EQ(frk->incarnation(), 1u);
  EXPECT_EQ(frk->LocalSize(), 0u);
  EXPECT_FALSE(frk->LocalGet("k").has_value());
  // A write aimed at the corpse vanishes: no response, no state, no crash.
  bool responded = false;
  client_->Write("k", "v2",
                 [&](StatusOr<OpResult>, bool, ResponseKind) { responded = true; });
  loop_.Run();
  EXPECT_FALSE(responded);
  EXPECT_EQ(frk->LocalSize(), 0u);
}

TEST_F(ReplicaTest, RecoverRestoresAckedWriteFromWalAfterTotalClusterCrash) {
  // Every replica dies, so nothing survives in volatile state or in-flight replication:
  // the acked write must come back from the coordinator's synced WAL alone.
  const auto ack = Write("k", "v1");
  ASSERT_TRUE(ack.ok());
  for (const auto& replica : cluster_.replicas()) {
    network_.Crash(replica->id());
    replica->Crash();
  }
  for (const auto& replica : cluster_.replicas()) {
    network_.Restart(replica->id());
    replica->Recover();
  }
  loop_.RunFor(Seconds(2));  // anti-entropy bootstraps settle
  KvReplica* frk = cluster_.ReplicaIn(Region::kFrankfurt);
  const auto local = frk->LocalGet("k");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->value, "v1");
  // Exactly the acked version: replay neither lost the write nor duplicated it under a
  // fresh stamp.
  EXPECT_EQ(local->version, ack->version);
  EXPECT_EQ(frk->last_recovery().wal_records_replayed, 1u);
  EXPECT_TRUE(frk->last_recovery().bootstrap_complete);
}

TEST_F(ReplicaTest, CrashBeforeAckLosesNothingAcknowledged) {
  // The client's write dies with the coordinator before any ack: after recovery the
  // store must NOT contain it (it was never acknowledged, losing it is correct — and
  // resurrecting half of a dead in-flight op would be wrong).
  KvReplica* frk = cluster_.ReplicaIn(Region::kFrankfurt);
  bool responded = false;
  client_->Write("k", "v1",
                 [&](StatusOr<OpResult>, bool, ResponseKind) { responded = true; });
  // Crash before the loop runs: the request is still on the wire (sent pre-crash, so it
  // delivers) and the entry guard drops it.
  network_.Crash(frk->id());
  frk->Crash();
  loop_.Run();
  EXPECT_FALSE(responded);
  network_.Restart(frk->id());
  frk->Recover();
  loop_.RunFor(Seconds(2));
  EXPECT_FALSE(frk->LocalGet("k").has_value());
  EXPECT_EQ(frk->last_recovery().wal_records_replayed, 0u);
}

TEST_F(ReplicaTest, RecoveredReplicaCatchesUpViaBootstrap) {
  KvReplica* irl = cluster_.ReplicaIn(Region::kIreland);
  Write("k1", "v1");
  network_.Crash(irl->id());
  irl->Crash();
  Write("k2", "v2");  // replication toward the corpse is dropped at send
  network_.Restart(irl->id());
  irl->Recover();
  loop_.RunFor(Seconds(2));
  // IRL never logged k2 (it was down) and its lazy replicated copy of k1 was unsynced;
  // both arrive through the anti-entropy dump from the nearest live peer.
  ASSERT_TRUE(irl->LocalGet("k1").has_value());
  ASSERT_TRUE(irl->LocalGet("k2").has_value());
  EXPECT_EQ(irl->LocalGet("k2")->value, "v2");
  EXPECT_TRUE(irl->last_recovery().bootstrap_complete);
  EXPECT_GE(irl->last_recovery().bootstrap_keys_merged, 2u);
  EXPECT_GE(cluster_.ReplicaIn(Region::kFrankfurt)->metrics().Value("bootstraps_served"), 1);
}

TEST_F(ReplicaTest, SnapshotPlusWalTailRebuildsExactState) {
  config_.snapshot_every = 2;
  for (int i = 0; i < 5; ++i) {
    Write("k" + std::to_string(i), "v" + std::to_string(i));
  }
  loop_.RunFor(Seconds(1));  // background snapshots land
  KvReplica* frk = cluster_.ReplicaIn(Region::kFrankfurt);
  ASSERT_NE(frk->snapshots(), nullptr);
  EXPECT_TRUE(frk->snapshots()->HasSnapshot());
  EXPECT_GT(frk->wal()->truncated_through(), 0u);  // covered prefix truncated
  for (const auto& replica : cluster_.replicas()) {
    network_.Crash(replica->id());
    replica->Crash();
  }
  for (const auto& replica : cluster_.replicas()) {
    network_.Restart(replica->id());
    replica->Recover();
  }
  loop_.RunFor(Seconds(2));
  for (int i = 0; i < 5; ++i) {
    const auto local = frk->LocalGet("k" + std::to_string(i));
    ASSERT_TRUE(local.has_value()) << "k" << i;
    EXPECT_EQ(local->value, "v" + std::to_string(i));
  }
  EXPECT_GT(frk->last_recovery().snapshot_entries, 0u);
  EXPECT_LT(frk->last_recovery().wal_records_replayed, 5u);  // snapshot bounded replay
}

TEST_F(ReplicaTest, WriteVersionsStayMonotoneAcrossRecovery) {
  const auto first = Write("k", "v1");
  ASSERT_TRUE(first.ok());
  KvReplica* frk = cluster_.ReplicaIn(Region::kFrankfurt);
  network_.Crash(frk->id());
  frk->Crash();
  network_.Restart(frk->id());
  frk->Recover();
  loop_.RunFor(Seconds(1));
  const auto second = Write("k", "v2");
  ASSERT_TRUE(second.ok());
  // The restored write clock keeps LWW stamps advancing: the post-recovery write wins.
  EXPECT_TRUE(first->version < second->version);
  EXPECT_EQ(frk->LocalGet("k")->value, "v2");
}

TEST_F(ReplicaTest, MultiWriteGroupCommitSurvivesTotalCrashAtomically) {
  // One cohort, one fsync: either the whole batch is durable or none of it. After the
  // ack the whole batch must replay.
  StatusOr<OpResult> ack(Status::Internal("none"));
  client_->MultiWrite({"a", "b", "c"}, {"1", "2", "3"},
                      [&](StatusOr<OpResult> r, bool, ResponseKind) { ack = std::move(r); });
  loop_.Run();
  ASSERT_TRUE(ack.ok());
  for (const auto& replica : cluster_.replicas()) {
    network_.Crash(replica->id());
    replica->Crash();
  }
  for (const auto& replica : cluster_.replicas()) {
    network_.Restart(replica->id());
    replica->Recover();
  }
  loop_.RunFor(Seconds(2));
  KvReplica* frk = cluster_.ReplicaIn(Region::kFrankfurt);
  EXPECT_EQ(frk->last_recovery().wal_records_replayed, 3u);
  EXPECT_EQ(frk->LocalGet("a")->value, "1");
  EXPECT_EQ(frk->LocalGet("b")->value, "2");
  EXPECT_EQ(frk->LocalGet("c")->value, "3");
}

}  // namespace
}  // namespace icg
