#include "src/kvstore/partitioner.h"

#include <gtest/gtest.h>

#include <set>

namespace icg {
namespace {

TEST(Partitioner, ReplicaSetHasRfDistinctNodes) {
  Partitioner p({0, 1, 2}, /*replication_factor=*/3);
  const auto replicas = p.ReplicasFor("some-key");
  EXPECT_EQ(replicas.size(), 3u);
  EXPECT_EQ(std::set<NodeId>(replicas.begin(), replicas.end()).size(), 3u);
}

TEST(Partitioner, RfCappedByNodeCount) {
  Partitioner p({0, 1}, /*replication_factor=*/3);
  EXPECT_EQ(p.ReplicasFor("k").size(), 2u);
}

TEST(Partitioner, RfOneSelectsSingleNode) {
  Partitioner p({0, 1, 2, 3}, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.ReplicasFor("key" + std::to_string(i)).size(), 1u);
  }
}

TEST(Partitioner, Deterministic) {
  Partitioner a({0, 1, 2}, 2);
  Partitioner b({0, 1, 2}, 2);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a.ReplicasFor(key), b.ReplicasFor(key));
  }
}

TEST(Partitioner, PrimaryIsFirstReplica) {
  Partitioner p({0, 1, 2}, 3);
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(p.PrimaryFor(key), p.ReplicasFor(key).front());
  }
}

TEST(Partitioner, DifferentKeysSpreadAcrossPrimaries) {
  Partitioner p({0, 1, 2, 3, 4}, 1);
  std::set<NodeId> primaries;
  for (int i = 0; i < 200; ++i) {
    primaries.insert(p.PrimaryFor("key" + std::to_string(i)));
  }
  EXPECT_EQ(primaries.size(), 5u);  // every node owns something
}

TEST(Partitioner, LoadRoughlyBalanced) {
  Partitioner p({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  const auto load = p.PrimaryLoadEstimate(20000);
  for (const auto& [node, share] : load) {
    EXPECT_GT(share, 0.15) << "node " << node;
    EXPECT_LT(share, 0.40) << "node " << node;
  }
}

class PartitionerVnodes : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerVnodes, MoreVnodesImproveBalance) {
  Partitioner p({0, 1, 2}, 1, GetParam());
  const auto load = p.PrimaryLoadEstimate(9000);
  double max_share = 0;
  for (const auto& [node, share] : load) {
    max_share = std::max(max_share, share);
  }
  // Perfect balance is 1/3; allow generous skew for few vnodes, tight for many.
  const double bound = GetParam() >= 64 ? 0.45 : 0.80;
  EXPECT_LT(max_share, bound);
}

INSTANTIATE_TEST_SUITE_P(VnodeSweep, PartitionerVnodes, ::testing::Values(1, 4, 16, 64, 256));

TEST(Partitioner, SingleNodeOwnsEverything) {
  Partitioner p({7}, 3);
  EXPECT_EQ(p.ReplicasFor("anything"), std::vector<NodeId>{7});
}

// --- Ring-rebalance stability: the property sharded routing depends on ------------------
// Consistent hashing's contract is that membership changes move only the departing or
// arriving node's share of primary ownership (~1/N), never reshuffling keys between
// surviving nodes. This is what makes adding a coordinator to a BindingRouter ring cheap.

TEST(Partitioner, AddingOneNodeStealsOnlyItsShare) {
  constexpr int kKeys = 20000;
  const Partitioner before({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  const Partitioner after({0, 1, 2, 3, 4}, 1, /*vnodes_per_node=*/64);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    const NodeId pb = before.PrimaryFor(key);
    const NodeId pa = after.PrimaryFor(key);
    if (pb != pa) {
      moved++;
      // Every move must be a capture by the new node; two old nodes never trade keys.
      EXPECT_EQ(pa, 4) << key << " moved between surviving nodes";
    }
  }
  // Ideal share is 1/5 of the keyspace; allow vnode-placement skew around it.
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.35);
}

TEST(Partitioner, RemovingOneNodeRedistributesOnlyItsKeys) {
  constexpr int kKeys = 20000;
  const Partitioner before({0, 1, 2, 3, 4}, 1, /*vnodes_per_node=*/64);
  const Partitioner after({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  int orphaned = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    const NodeId pb = before.PrimaryFor(key);
    const NodeId pa = after.PrimaryFor(key);
    if (pb == 4) {
      orphaned++;
      EXPECT_NE(pa, 4) << key;
    } else {
      // Keys not owned by the removed node keep their primary untouched.
      EXPECT_EQ(pa, pb) << key << " reshuffled between surviving nodes";
    }
  }
  const double fraction = static_cast<double>(orphaned) / kKeys;
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.35);
}

}  // namespace
}  // namespace icg
