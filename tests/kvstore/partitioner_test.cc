#include "src/kvstore/partitioner.h"

#include <gtest/gtest.h>

#include <set>

namespace icg {
namespace {

TEST(Partitioner, ReplicaSetHasRfDistinctNodes) {
  Partitioner p({0, 1, 2}, /*replication_factor=*/3);
  const auto replicas = p.ReplicasFor("some-key");
  EXPECT_EQ(replicas.size(), 3u);
  EXPECT_EQ(std::set<NodeId>(replicas.begin(), replicas.end()).size(), 3u);
}

TEST(Partitioner, RfCappedByNodeCount) {
  Partitioner p({0, 1}, /*replication_factor=*/3);
  EXPECT_EQ(p.ReplicasFor("k").size(), 2u);
}

TEST(Partitioner, RfOneSelectsSingleNode) {
  Partitioner p({0, 1, 2, 3}, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.ReplicasFor("key" + std::to_string(i)).size(), 1u);
  }
}

TEST(Partitioner, Deterministic) {
  Partitioner a({0, 1, 2}, 2);
  Partitioner b({0, 1, 2}, 2);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a.ReplicasFor(key), b.ReplicasFor(key));
  }
}

TEST(Partitioner, PrimaryIsFirstReplica) {
  Partitioner p({0, 1, 2}, 3);
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(p.PrimaryFor(key), p.ReplicasFor(key).front());
  }
}

TEST(Partitioner, DifferentKeysSpreadAcrossPrimaries) {
  Partitioner p({0, 1, 2, 3, 4}, 1);
  std::set<NodeId> primaries;
  for (int i = 0; i < 200; ++i) {
    primaries.insert(p.PrimaryFor("key" + std::to_string(i)));
  }
  EXPECT_EQ(primaries.size(), 5u);  // every node owns something
}

TEST(Partitioner, LoadRoughlyBalanced) {
  Partitioner p({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  const auto load = p.PrimaryLoadEstimate(20000);
  for (const auto& [node, share] : load) {
    EXPECT_GT(share, 0.15) << "node " << node;
    EXPECT_LT(share, 0.40) << "node " << node;
  }
}

class PartitionerVnodes : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerVnodes, MoreVnodesImproveBalance) {
  Partitioner p({0, 1, 2}, 1, GetParam());
  const auto load = p.PrimaryLoadEstimate(9000);
  double max_share = 0;
  for (const auto& [node, share] : load) {
    max_share = std::max(max_share, share);
  }
  // Perfect balance is 1/3; allow generous skew for few vnodes, tight for many.
  const double bound = GetParam() >= 64 ? 0.45 : 0.80;
  EXPECT_LT(max_share, bound);
}

INSTANTIATE_TEST_SUITE_P(VnodeSweep, PartitionerVnodes, ::testing::Values(1, 4, 16, 64, 256));

TEST(Partitioner, SingleNodeOwnsEverything) {
  Partitioner p({7}, 3);
  EXPECT_EQ(p.ReplicasFor("anything"), std::vector<NodeId>{7});
}

// --- Ring-rebalance stability: the property sharded routing depends on ------------------
// Consistent hashing's contract is that membership changes move only the departing or
// arriving node's share of primary ownership (~1/N), never reshuffling keys between
// surviving nodes. This is what makes adding a coordinator to a BindingRouter ring cheap.

TEST(Partitioner, AddingOneNodeStealsOnlyItsShare) {
  constexpr int kKeys = 20000;
  const Partitioner before({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  const Partitioner after({0, 1, 2, 3, 4}, 1, /*vnodes_per_node=*/64);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    const NodeId pb = before.PrimaryFor(key);
    const NodeId pa = after.PrimaryFor(key);
    if (pb != pa) {
      moved++;
      // Every move must be a capture by the new node; two old nodes never trade keys.
      EXPECT_EQ(pa, 4) << key << " moved between surviving nodes";
    }
  }
  // Ideal share is 1/5 of the keyspace; allow vnode-placement skew around it.
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.35);
}

TEST(Partitioner, RemovingOneNodeRedistributesOnlyItsKeys) {
  constexpr int kKeys = 20000;
  const Partitioner before({0, 1, 2, 3, 4}, 1, /*vnodes_per_node=*/64);
  const Partitioner after({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  int orphaned = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    const NodeId pb = before.PrimaryFor(key);
    const NodeId pa = after.PrimaryFor(key);
    if (pb == 4) {
      orphaned++;
      EXPECT_NE(pa, 4) << key;
    } else {
      // Keys not owned by the removed node keep their primary untouched.
      EXPECT_EQ(pa, pb) << key << " reshuffled between surviving nodes";
    }
  }
  const double fraction = static_cast<double>(orphaned) / kKeys;
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.35);
}

// --- Versioned rings + Diff: what live rebalancing consumes -----------------------------

TEST(PartitionerDiff, EpochsStrictlyIncreaseAlongSuccessorChains) {
  Partitioner ring({0, 1, 2}, 1);
  EXPECT_EQ(ring.epoch(), 0u);
  Partitioner grown = ring.WithNodes({0, 1, 2, 3});
  Partitioner shrunk = grown.WithNodes({0, 1, 3});
  EXPECT_EQ(grown.epoch(), 1u);
  EXPECT_EQ(shrunk.epoch(), 2u);
  EXPECT_GT(grown.epoch(), ring.epoch());
  EXPECT_GT(shrunk.epoch(), grown.epoch());
  // The diff records the epochs it spans, and membership deltas come out right.
  const auto diff = Partitioner::Diff(ring, grown);
  EXPECT_EQ(diff.from_epoch, 0u);
  EXPECT_EQ(diff.to_epoch, 1u);
  EXPECT_EQ(diff.added_nodes, std::vector<NodeId>{3});
  EXPECT_TRUE(diff.removed_nodes.empty());
  const auto back = Partitioner::Diff(grown, shrunk);
  EXPECT_EQ(back.removed_nodes, std::vector<NodeId>{2});
  EXPECT_TRUE(back.added_nodes.empty());
}

TEST(PartitionerDiff, ConsistentWithReplicasForOnEveryProbedKey) {
  const Partitioner before({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  const Partitioner after = before.WithNodes({0, 1, 2, 3, 4});
  const auto diff = Partitioner::Diff(before, after);
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "key" + std::to_string(i);
    const NodeId primary_before = before.ReplicasFor(key).front();
    const NodeId primary_after = after.ReplicasFor(key).front();
    EXPECT_EQ(diff.MovedKey(key), primary_before != primary_after)
        << key << ": diff and ReplicasFor disagree";
  }
}

TEST(PartitionerDiff, MovedShareMatchesOneOverNExpectation) {
  // Joining the 5th node should capture ~1/5 of the token space (vnode placement skew
  // allowed), and the key-level moved set must match the range-level fraction.
  const Partitioner before({0, 1, 2, 3}, 1, /*vnodes_per_node=*/64);
  const Partitioner after = before.WithNodes({0, 1, 2, 3, 4});
  const auto diff = Partitioner::Diff(before, after);
  EXPECT_GT(diff.MovedFraction(), 0.10);
  EXPECT_LT(diff.MovedFraction(), 0.35);

  constexpr int kKeys = 20000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (diff.MovedKey(key)) {
      moved++;
      // Every move must be a capture by the newcomer; survivors never trade keys.
      EXPECT_EQ(after.PrimaryFor(key), 4) << key;
    }
  }
  const double key_fraction = static_cast<double>(moved) / kKeys;
  EXPECT_NEAR(key_fraction, diff.MovedFraction(), 0.02)
      << "sampled keys disagree with the diff's token-space fraction";
}

TEST(PartitionerDiff, RemovalMovesExactlyTheDepartedNodesShare) {
  const Partitioner before({0, 1, 2, 3, 4}, 1, /*vnodes_per_node=*/64);
  const Partitioner after = before.WithNodes({0, 1, 2, 3});
  const auto diff = Partitioner::Diff(before, after);
  for (const auto& range : diff.moved) {
    EXPECT_EQ(range.from, 4) << "a survivor lost a range it should have kept";
    EXPECT_NE(range.to, 4);
  }
  EXPECT_GT(diff.MovedFraction(), 0.10);
  EXPECT_LT(diff.MovedFraction(), 0.35);
}

TEST(PartitionerDiff, IdenticalRingsProduceAnEmptyDiff) {
  const Partitioner ring({0, 1, 2}, 1, 32);
  const auto diff = Partitioner::Diff(ring, ring.WithNodes({0, 1, 2}));
  EXPECT_TRUE(diff.moved.empty());
  EXPECT_EQ(diff.MovedFraction(), 0.0);
  EXPECT_FALSE(diff.MovedKey("anything"));
}

TEST(PartitionerDiff, MovedRangesAreDisjointAndClassifyTokensExactly) {
  const Partitioner before({0, 1, 2}, 1, 16);
  const Partitioner after = before.WithNodes({0, 1, 2, 3});
  const auto diff = Partitioner::Diff(before, after);
  ASSERT_FALSE(diff.moved.empty());
  // Range boundary tokens behave per the (begin, end] contract: begin is outside (it
  // belongs to the preceding unmoved segment unless ranges abut), end is inside.
  for (const auto& range : diff.moved) {
    EXPECT_TRUE(range.Contains(range.end));
    EXPECT_TRUE(diff.MovedToken(range.end));
  }
  // No token is claimed by two ranges.
  for (size_t i = 0; i < diff.moved.size(); ++i) {
    int claims = 0;
    for (const auto& range : diff.moved) {
      if (range.Contains(diff.moved[i].end)) {
        claims++;
      }
    }
    EXPECT_EQ(claims, 1);
  }
}

TEST(Partitioner, LoadEstimateIsSeedableAndDeterministic) {
  const Partitioner p({0, 1, 2, 3}, 1, 64);
  const auto a = p.PrimaryLoadEstimate(5000, /*seed=*/42);
  const auto b = p.PrimaryLoadEstimate(5000, /*seed=*/42);
  EXPECT_EQ(a, b) << "same seed must reproduce the same sample";
  // A different seed probes a different key universe; estimates agree only roughly.
  const auto c = p.PrimaryLoadEstimate(5000, /*seed=*/43);
  EXPECT_NE(a, c) << "distinct seeds should draw distinct samples";
  for (const auto& [node, share] : c) {
    EXPECT_NEAR(share, a.at(node), 0.05);
  }
}

}  // namespace
}  // namespace icg
