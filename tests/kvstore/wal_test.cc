// WAL + snapshot durability semantics: append/sync watermarks, crash tail loss, torn
// records, replay after a covered LSN, truncation, and snapshot load/validation.
#include "src/kvstore/wal.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/kvstore/snapshot.h"
#include "src/kvstore/versioned_value.h"

namespace icg {
namespace {

Wal::ReplayResult ReplayInto(const Wal& wal, std::vector<Wal::Record>* out,
                             uint64_t from_lsn = 0) {
  return wal.Replay(from_lsn, [out](const Wal::Record& r) { out->push_back(r); });
}

TEST(WalTest, AppendAssignsIncreasingLsns) {
  Wal wal("w");
  EXPECT_EQ(wal.Append("a", "1", Version{10, 1}), 1u);
  EXPECT_EQ(wal.Append("b", "2", Version{20, 1}), 2u);
  EXPECT_EQ(wal.Append("c", "3", Version{30, 2}), 3u);
  EXPECT_EQ(wal.next_lsn(), 4u);
  EXPECT_EQ(wal.appended_records(), 3);
}

TEST(WalTest, ReplayReturnsRecordsInAppendOrder) {
  Wal wal("w");
  wal.Append("a", "1", Version{10, 1});
  wal.Append("b", "22", Version{20, 3});
  wal.Sync();
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records);
  ASSERT_EQ(result.records, 2u);
  EXPECT_EQ(result.last_lsn, 2u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[0].value, "1");
  EXPECT_EQ(records[0].version, (Version{10, 1}));
  EXPECT_EQ(records[1].key, "b");
  EXPECT_EQ(records[1].value, "22");
  EXPECT_EQ(records[1].version, (Version{20, 3}));
}

TEST(WalTest, SyncAdvancesWatermarkAndChargesConfiguredLatency) {
  Wal wal("w");
  wal.SetFaults(WalFaults{.fsync_latency = Micros(150), .torn_tail = false});
  wal.Append("a", "1", Version{1, 1});
  EXPECT_GT(wal.unsynced_bytes(), 0);
  EXPECT_EQ(wal.Sync(), Micros(150));
  EXPECT_EQ(wal.unsynced_bytes(), 0);
  EXPECT_EQ(wal.synced_bytes(), wal.device_bytes());
  // An empty sync is free regardless of the configured latency: nothing to flush.
  EXPECT_EQ(wal.Sync(), SimDuration{0});
  EXPECT_EQ(wal.syncs(), 1);
}

TEST(WalTest, CrashDropsUnsyncedTail) {
  Wal wal("w");
  wal.Append("durable", "v", Version{1, 1});
  wal.Sync();
  wal.Append("lost", "v", Version{2, 1});  // never synced
  wal.Crash();
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records);
  EXPECT_EQ(result.records, 1u);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "durable");
}

TEST(WalTest, TornTailFaultLeavesInvalidPartialRecord) {
  Wal wal("w");
  wal.SetFaults(WalFaults{.fsync_latency = 0, .torn_tail = true});
  wal.Append("durable", "v", Version{1, 1});
  wal.Sync();
  wal.Append("torn", "vvvvvvvv", Version{2, 1});
  const int64_t synced_before = wal.synced_bytes();
  const int64_t full = wal.device_bytes();
  wal.Crash();
  // A strict partial prefix of the unsynced record survived on the device (everything
  // still on the medium counts as synced after the crash — it IS the disk contents)...
  EXPECT_GT(wal.device_bytes(), synced_before);
  EXPECT_LT(wal.device_bytes(), full);
  // ...and replay rejects it without losing the synced record before it.
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records);
  EXPECT_EQ(result.records, 1u);
  EXPECT_TRUE(result.torn_tail);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "durable");
}

TEST(WalTest, TornTailCutIsDeterministic) {
  auto run = [] {
    Wal wal("w");
    wal.SetFaults(WalFaults{.fsync_latency = 0, .torn_tail = true});
    wal.Append("k1", "value-one", Version{1, 1});
    wal.Sync();
    wal.Append("k2", "value-two", Version{2, 1});
    wal.Crash();
    return wal.device_bytes();
  };
  EXPECT_EQ(run(), run());
}

TEST(WalTest, CorruptedByteFailsChecksumAndEndsReplay) {
  Wal wal("w");
  wal.Append("a", "1", Version{1, 1});
  wal.Append("b", "2", Version{2, 1});
  wal.Sync();
  // Corrupt the second record through the torn-tail machinery's replay validation by
  // replaying a device whose tail was cut mid-record: truncate-by-hand via a fresh WAL
  // is not exposed, so corrupt by crashing with a partial unsynced third record.
  wal.SetFaults(WalFaults{.fsync_latency = 0, .torn_tail = true});
  wal.Append("c", "3", Version{3, 1});
  wal.Crash();
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records);
  EXPECT_EQ(result.records, 2u);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.last_lsn, 2u);
}

TEST(WalTest, ReplayFromLsnSkipsCoveredRecords) {
  Wal wal("w");
  wal.Append("a", "1", Version{1, 1});
  wal.Append("b", "2", Version{2, 1});
  wal.Append("c", "3", Version{3, 1});
  wal.Sync();
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records, /*from_lsn=*/2);
  EXPECT_EQ(result.records, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "c");
  EXPECT_EQ(records[0].lsn, 3u);
}

TEST(WalTest, TruncateThroughDropsPrefixAndPreservesSuffix) {
  Wal wal("w");
  wal.Append("a", "1", Version{1, 1});
  wal.Append("b", "2", Version{2, 1});
  wal.Append("c", "3", Version{3, 1});
  wal.Sync();
  const int64_t before = wal.device_bytes();
  wal.TruncateThrough(2);
  EXPECT_LT(wal.device_bytes(), before);
  EXPECT_EQ(wal.truncated_through(), 2u);
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records, /*from_lsn=*/2);
  EXPECT_EQ(result.records, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "c");
}

TEST(WalTest, CrashThenMoreAppendsKeepsLsnMonotone) {
  Wal wal("w");
  wal.Append("a", "1", Version{1, 1});
  wal.Sync();
  wal.Append("lost", "x", Version{2, 1});
  wal.Crash();
  // The restarted writer continues from the in-memory LSN counter: LSNs never repeat
  // even though record 2's bytes died with the tail.
  const uint64_t lsn = wal.Append("b", "2", Version{3, 1});
  EXPECT_GT(lsn, 2u);
  wal.Sync();
  std::vector<Wal::Record> records;
  const auto result = ReplayInto(wal, &records);
  EXPECT_EQ(result.records, 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
}

TEST(SnapshotTest, LoadRoundTripsStorageAndCoveredLsn) {
  SnapshotManager snap("s");
  EXPECT_FALSE(snap.HasSnapshot());
  std::map<std::string, VersionedValue> storage;
  storage["a"] = VersionedValue{"1", Version{10, 1}};
  storage["b"] = VersionedValue{"two", Version{20, 2}};
  snap.Take(storage, /*through_lsn=*/7);
  EXPECT_TRUE(snap.HasSnapshot());
  EXPECT_EQ(snap.covered_lsn(), 7u);
  EXPECT_EQ(snap.snapshots_taken(), 1);

  std::map<std::string, VersionedValue> loaded;
  uint64_t through = 0;
  ASSERT_TRUE(snap.Load(&loaded, &through));
  EXPECT_EQ(through, 7u);
  EXPECT_EQ(loaded, storage);
}

TEST(SnapshotTest, LoadWithoutSnapshotReturnsFalse) {
  SnapshotManager snap("s");
  std::map<std::string, VersionedValue> loaded;
  uint64_t through = 99;
  EXPECT_FALSE(snap.Load(&loaded, &through));
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(through, 0u);
}

TEST(SnapshotTest, TakeReplacesPreviousSnapshotAtomically) {
  SnapshotManager snap("s");
  std::map<std::string, VersionedValue> v1;
  v1["a"] = VersionedValue{"old", Version{1, 1}};
  snap.Take(v1, 3);
  std::map<std::string, VersionedValue> v2;
  v2["a"] = VersionedValue{"new", Version{5, 1}};
  v2["b"] = VersionedValue{"fresh", Version{6, 1}};
  snap.Take(v2, 9);
  EXPECT_EQ(snap.snapshots_taken(), 2);

  std::map<std::string, VersionedValue> loaded;
  uint64_t through = 0;
  ASSERT_TRUE(snap.Load(&loaded, &through));
  EXPECT_EQ(through, 9u);
  EXPECT_EQ(loaded, v2);
}

TEST(SnapshotTest, SnapshotPlusReplayRebuildsExactState) {
  // The recovery composition the replica uses: snapshot covers a prefix, replay covers
  // the synced suffix, LWW application makes any overlap harmless.
  Wal wal("w");
  SnapshotManager snap("s");
  std::map<std::string, VersionedValue> storage;
  auto put = [&](const std::string& key, const std::string& value, Version version) {
    wal.Append(key, value, version);
    storage[key] = VersionedValue{value, version};
  };
  put("a", "1", Version{10, 1});
  put("b", "2", Version{20, 1});
  wal.Sync();
  snap.Take(storage, /*through_lsn=*/2);
  wal.TruncateThrough(2);
  put("a", "1b", Version{30, 1});
  put("c", "3", Version{40, 1});
  wal.Sync();
  put("lost", "x", Version{50, 1});  // unsynced: dies with the crash
  wal.Crash();

  std::map<std::string, VersionedValue> rebuilt;
  uint64_t through = 0;
  ASSERT_TRUE(snap.Load(&rebuilt, &through));
  const auto replay = wal.Replay(through, [&](const Wal::Record& r) {
    auto it = rebuilt.find(r.key);
    if (it == rebuilt.end() || it->second.OlderThan(r.version)) {
      rebuilt[r.key] = VersionedValue{r.value, r.version};
    }
  });
  EXPECT_EQ(replay.records, 2u);
  std::map<std::string, VersionedValue> expected = storage;
  expected.erase("lost");
  EXPECT_EQ(rebuilt, expected);
}

}  // namespace
}  // namespace icg
