// Application-layer tests: ads system, Twissandra, ref-fetch speculation mechanics,
// news reader progressive display, and the Reddit listing rewrite.
#include <gtest/gtest.h>

#include "src/apps/ads.h"
#include "src/apps/news_reader.h"
#include "src/apps/reddit.h"
#include "src/apps/ref_fetch.h"
#include "src/apps/twissandra.h"
#include "src/harness/deployment.h"

namespace icg {
namespace {

AdsConfig SmallAds() {
  AdsConfig c;
  c.num_profiles = 200;
  c.num_ads = 460;
  return c;
}

TwissandraConfig SmallTwissandra() {
  TwissandraConfig c;
  c.num_users = 220;
  c.num_tweets = 650;
  return c;
}

TEST(RefParsing, RoundTrip) {
  const std::vector<int64_t> refs = {1, 42, 0, 999999};
  EXPECT_EQ(RefFetcher::ParseRefs(RefFetcher::JoinRefs(refs)), refs);
}

TEST(RefParsing, EmptyAndSingle) {
  EXPECT_TRUE(RefFetcher::ParseRefs("").empty());
  EXPECT_EQ(RefFetcher::ParseRefs("7"), (std::vector<int64_t>{7}));
  EXPECT_EQ(RefFetcher::JoinRefs({}), "");
}

class AdsTest : public ::testing::Test {
 protected:
  AdsTest() : world_(1, 0.0) {
    CassandraBindingConfig binding;
    binding.strong_read_quorum = 2;
    stack_ = MakeCassandraStack(world_, KvConfig{}, binding);
    ads_ = std::make_unique<AdsSystem>(stack_->client.get(), SmallAds());
    ads_->Preload(stack_->cluster.get());
  }

  SimWorld world_;
  std::optional<CassandraStack> stack_;
  std::unique_ptr<AdsSystem> ads_;
};

TEST_F(AdsTest, DatasetIsDeterministic) {
  EXPECT_EQ(ads_->RefsFor(5, 0), ads_->RefsFor(5, 0));
  EXPECT_NE(ads_->ProfileValue(5, 0), ads_->ProfileValue(5, 1));  // versions differ
  EXPECT_EQ(ads_->AdValue(3).size(), static_cast<size_t>(SmallAds().ad_bytes));
}

TEST_F(AdsTest, RefCountsWithinConfiguredBounds) {
  for (int64_t uid = 0; uid < 100; ++uid) {
    const auto refs = ads_->RefsFor(uid, 0);
    EXPECT_GE(static_cast<int>(refs.size()), SmallAds().min_refs);
    EXPECT_LE(static_cast<int>(refs.size()), SmallAds().max_refs);
    for (const int64_t ad : refs) {
      EXPECT_GE(ad, 0);
      EXPECT_LT(ad, SmallAds().num_ads);
    }
  }
}

TEST_F(AdsTest, FetchReturnsAllReferencedAds) {
  RefFetchOutcome outcome;
  ads_->FetchAdsByUserId(7, /*use_icg=*/true, [&](RefFetchOutcome o) { outcome = o; });
  world_.loop().Run();
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.objects, ads_->RefsFor(7, 0).size());
  EXPECT_TRUE(outcome.speculated);
  EXPECT_FALSE(outcome.misspeculated);
}

TEST_F(AdsTest, IcgFetchFasterThanBaseline) {
  RefFetchOutcome icg;
  RefFetchOutcome base;
  ads_->FetchAdsByUserId(7, true, [&](RefFetchOutcome o) { icg = o; });
  world_.loop().Run();
  ads_->FetchAdsByUserId(7, false, [&](RefFetchOutcome o) { base = o; });
  world_.loop().Run();
  ASSERT_TRUE(icg.ok && base.ok);
  EXPECT_LT(icg.latency, base.latency);
  EXPECT_FALSE(base.speculated);
  // Speculation hides the strong read of step 1: ~20 ms of the ~80 ms baseline.
  EXPECT_NEAR(ToMillis(base.latency - icg.latency), 20.0, 6.0);
}

TEST_F(AdsTest, StaleProfileTriggersMisspeculation) {
  // The coordinator's (FRK) copy is stale; quorum partner has a newer profile.
  const std::string fresh = ads_->ProfileValue(7, 1);
  stack_->cluster->ReplicaIn(Region::kIreland)
      ->LocalPut(AdsSystem::ProfileKey(7), fresh, Version{1000000, 99});
  RefFetchOutcome outcome;
  ads_->FetchAdsByUserId(7, true, [&](RefFetchOutcome o) { outcome = o; });
  world_.loop().Run();
  ASSERT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.misspeculated);
  // The re-executed fetch serves the *fresh* reference list.
  EXPECT_EQ(outcome.objects, ads_->RefsFor(7, 1).size());
}

TEST_F(AdsTest, UpdateProfileVisibleToStrongFetch) {
  bool updated = false;
  ads_->UpdateProfile(7, /*version=*/3, [&](bool ok) { updated = ok; });
  world_.loop().Run();
  ASSERT_TRUE(updated);
  RefFetchOutcome outcome;
  ads_->FetchAdsByUserId(7, false, [&](RefFetchOutcome o) { outcome = o; });
  world_.loop().Run();
  EXPECT_EQ(outcome.objects, ads_->RefsFor(7, 3).size());
}

class TwissandraTest : public ::testing::Test {
 protected:
  TwissandraTest() : world_(2, 0.0) {
    CassandraBindingConfig binding;
    binding.strong_read_quorum = 2;
    stack_ = MakeCassandraStack(world_, KvConfig{}, binding, Region::kIreland,
                                Region::kVirginia,
                                {Region::kVirginia, Region::kCalifornia, Region::kOregon});
    twissandra_ = std::make_unique<Twissandra>(stack_->client.get(), SmallTwissandra());
    twissandra_->Preload(stack_->cluster.get());
  }

  SimWorld world_;
  std::optional<CassandraStack> stack_;
  std::unique_ptr<Twissandra> twissandra_;
};

TEST_F(TwissandraTest, TimelineFetchesAllTweets) {
  RefFetchOutcome outcome;
  twissandra_->GetTimeline(12, true, [&](RefFetchOutcome o) { outcome = o; });
  world_.loop().Run();
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.objects, twissandra_->TimelineFor(12, 0).size());
}

TEST_F(TwissandraTest, SpeculationGainMatchesCoordinatorRtt) {
  RefFetchOutcome icg;
  RefFetchOutcome base;
  twissandra_->GetTimeline(12, true, [&](RefFetchOutcome o) { icg = o; });
  world_.loop().Run();
  twissandra_->GetTimeline(12, false, [&](RefFetchOutcome o) { base = o; });
  world_.loop().Run();
  // VRG coordinator with NCA quorum partner: strong read ~145 ms; preliminary ~83 ms.
  EXPECT_NEAR(ToMillis(base.latency - icg.latency), 62.0, 15.0);
}

TEST_F(TwissandraTest, PostTweetRewritesTimeline) {
  bool posted = false;
  twissandra_->PostTweet(12, /*version=*/2, [&](bool ok) { posted = ok; });
  world_.loop().Run();
  ASSERT_TRUE(posted);
  RefFetchOutcome outcome;
  twissandra_->GetTimeline(12, false, [&](RefFetchOutcome o) { outcome = o; });
  world_.loop().Run();
  EXPECT_EQ(outcome.objects, twissandra_->TimelineFor(12, 2).size());
}

class NewsTest : public ::testing::Test {
 protected:
  NewsTest() : world_(3, 0.0) {
    stack_ = MakeNewsStack(world_, PbConfig{});
    reader_ = std::make_unique<NewsReader>(stack_->client.get());
  }

  SimWorld world_;
  std::optional<NewsStack> stack_;
  std::unique_ptr<NewsReader> reader_;
};

TEST_F(NewsTest, ItemsParseAndJoinRoundTrip) {
  const std::vector<std::string> items = {"a", "b", "c"};
  EXPECT_EQ(NewsReader::ParseItems(NewsReader::JoinItems(items)), items);
  EXPECT_TRUE(NewsReader::ParseItems("").empty());
}

TEST_F(NewsTest, ProgressiveDisplayRefreshesPerView) {
  stack_->cluster->Preload("news:top", "s1\ns2");
  // Warm cache first.
  stack_->client->InvokeStrong(Operation::Get("news:top"));
  world_.loop().Run();

  int refreshes = 0;
  std::vector<NewsRefresh> history;
  reader_->GetLatestNews("top", [&](const NewsRefresh&) { refreshes++; },
                         [&](std::vector<NewsRefresh> h) { history = std::move(h); });
  world_.loop().Run();
  EXPECT_EQ(refreshes, 3);  // cache, backup, primary
  ASSERT_EQ(history.size(), 3u);
  EXPECT_TRUE(history.back().is_final);
  EXPECT_LE(history[0].at, history[1].at);
  EXPECT_LE(history[1].at, history[2].at);
}

TEST_F(NewsTest, FreshPrimaryContentArrivesLast) {
  stack_->cluster->Preload("news:top", "old");
  stack_->client->InvokeStrong(Operation::Get("news:top"));
  world_.loop().Run();
  stack_->cluster->primary()->LocalPut("news:top", "breaking\nold",
                                       Version{1000000, stack_->cluster->primary()->id()});
  std::vector<NewsRefresh> history;
  reader_->GetLatestNews("top", [](const NewsRefresh&) {},
                         [&](std::vector<NewsRefresh> h) { history = std::move(h); });
  world_.loop().Run();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].items, (std::vector<std::string>{"old"}));      // cache
  EXPECT_EQ(history[1].items, (std::vector<std::string>{"old"}));      // backup
  EXPECT_EQ(history[2].items.front(), "breaking");                     // primary
}

TEST_F(NewsTest, PublishThenReadCoherent) {
  bool published = false;
  reader_->PublishNews("top", {"h1", "h2"}, [&](bool ok) { published = ok; });
  world_.loop().Run();
  ASSERT_TRUE(published);
  // The write-through cache now answers instantly with the published items.
  std::vector<NewsRefresh> history;
  reader_->GetLatestNews("top", [](const NewsRefresh&) {},
                         [&](std::vector<NewsRefresh> h) { history = std::move(h); });
  world_.loop().Run();
  EXPECT_EQ(history[0].items, (std::vector<std::string>{"h1", "h2"}));
}

TEST(RedditListing, WeakAndStrongRouteDifferently) {
  SimWorld world(4, 0.0);
  auto stack = MakeNewsStack(world, PbConfig{});
  stack.cluster->Preload(MessagesKey(1), "m1");
  CorrectableClient& client = *stack.client;

  // strong=True bypasses the (cold) cache and reads the primary.
  auto strong = UserMessages(client, 1, /*strong=*/true);
  world.loop().Run();
  EXPECT_EQ(strong.Final().value().value, "m1");

  // default (weak) is served by the cache warmed above, instantly.
  auto weak = UserMessages(client, 1);
  EXPECT_EQ(weak.state(), CorrectableState::kFinal);
  EXPECT_EQ(weak.Final().value().value, "m1");
}

}  // namespace
}  // namespace icg
