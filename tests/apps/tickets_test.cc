// Ticket seller (Listing 5): threshold-based dynamic consistency selection, overselling
// prevention, revocation accounting.
#include "src/apps/tickets.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/harness/deployment.h"

namespace icg {
namespace {

class TicketsTest : public ::testing::Test {
 protected:
  TicketsTest() : world_(5, 0.0) {
    stack_ = MakeZooKeeperStack(world_, ZabConfig{}, Region::kFrankfurt, Region::kFrankfurt,
                                Region::kIreland);
  }

  TicketConfig Config(int64_t stock, int64_t threshold) {
    TicketConfig c;
    c.event = "show";
    c.stock = stock;
    c.threshold = threshold;
    return c;
  }

  SimWorld world_;
  std::optional<ZooKeeperStack> stack_;
};

TEST_F(TicketsTest, FastPathWhenStockPlentiful) {
  stack_->cluster->PreloadQueue("show", 100, "t");
  TicketSeller seller(stack_->client.get(), Config(100, 20));
  PurchaseOutcome outcome;
  seller.PurchaseTicket([&](PurchaseOutcome o) { outcome = o; });
  world_.loop().Run();
  EXPECT_TRUE(outcome.purchased);
  EXPECT_TRUE(outcome.via_preliminary);
  EXPECT_EQ(outcome.ticket_seq, 0);
  EXPECT_LT(outcome.latency, Millis(10));  // local-RTT decision
  EXPECT_EQ(seller.preliminary_purchases(), 1);
}

TEST_F(TicketsTest, FinalPathNearStockEnd) {
  stack_->cluster->PreloadQueue("show", 10, "t");
  TicketSeller seller(stack_->client.get(), Config(10, 20));  // threshold > remaining
  PurchaseOutcome outcome;
  seller.PurchaseTicket([&](PurchaseOutcome o) { outcome = o; });
  world_.loop().Run();
  EXPECT_TRUE(outcome.purchased);
  EXPECT_FALSE(outcome.via_preliminary);
  EXPECT_GT(outcome.latency, Millis(30));  // waited for the Zab commit
  EXPECT_EQ(seller.final_purchases(), 1);
}

TEST_F(TicketsTest, SoldOutReported) {
  TicketSeller seller(stack_->client.get(), Config(0, 5));
  PurchaseOutcome outcome;
  seller.PurchaseTicket([&](PurchaseOutcome o) { outcome = o; });
  world_.loop().Run();
  EXPECT_FALSE(outcome.purchased);
  EXPECT_TRUE(outcome.sold_out);
}

TEST_F(TicketsTest, ExactlyStockTicketsSoldUnderContention) {
  constexpr int64_t kStock = 40;
  stack_->cluster->PreloadQueue("show", kStock, "t");
  std::vector<ZooKeeperClientEndpoint> endpoints;
  std::vector<std::unique_ptr<TicketSeller>> sellers;
  for (int i = 0; i < 4; ++i) {
    endpoints.push_back(
        AddZooKeeperClient(world_, *stack_, Region::kFrankfurt, Region::kFrankfurt));
    sellers.push_back(
        std::make_unique<TicketSeller>(endpoints.back().client.get(), Config(kStock, 8)));
  }
  std::set<int64_t> sold;
  int64_t duplicates = 0;
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (auto& seller : sellers) {
    auto next = std::make_shared<std::function<void()>>();
    TicketSeller* s = seller.get();
    *next = [s, next, &sold, &duplicates]() {
      s->PurchaseTicket([next, &sold, &duplicates](PurchaseOutcome o) {
        if (o.purchased) {
          if (!sold.insert(o.ticket_seq).second) {
            duplicates++;
          }
          (*next)();
        }
      });
    };
    loops.push_back(next);
    (*next)();
  }
  world_.loop().Run();
  EXPECT_EQ(duplicates, 0);
  EXPECT_EQ(sold.size(), static_cast<size_t>(kStock));  // every ticket sold exactly once
  int64_t revocations = 0;
  for (const auto& seller : sellers) {
    revocations += seller->revocations();
  }
  EXPECT_LE(revocations, 6);  // the paper's observed maximum
}

TEST_F(TicketsTest, ThresholdBoundaryRespected) {
  // With stock 30 and threshold 25, only the first few tickets qualify for the fast
  // path (remaining-after must exceed 25).
  stack_->cluster->PreloadQueue("show", 30, "t");
  TicketSeller seller(stack_->client.get(), Config(30, 25));
  std::vector<bool> fast;
  auto next = std::make_shared<std::function<void()>>();
  *next = [&, next]() {
    seller.PurchaseTicket([&, next](PurchaseOutcome o) {
      if (o.purchased) {
        fast.push_back(o.via_preliminary);
        (*next)();
      }
    });
  };
  (*next)();
  world_.loop().Run();
  ASSERT_EQ(fast.size(), 30u);
  // Tickets 0..3 leave >25 remaining; from ticket 4 on, the seller waits for finals.
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], i < 4) << "ticket " << i;
  }
}

TEST_F(TicketsTest, ZkModeNeverUsesFastPath) {
  stack_->cluster->PreloadQueue("show", 50, "t");
  // threshold > stock disables the preliminary path entirely (the ZK baseline).
  TicketSeller seller(stack_->client.get(), Config(50, 51));
  PurchaseOutcome outcome;
  seller.PurchaseTicket([&](PurchaseOutcome o) { outcome = o; });
  world_.loop().Run();
  EXPECT_TRUE(outcome.purchased);
  EXPECT_FALSE(outcome.via_preliminary);
}

}  // namespace
}  // namespace icg
