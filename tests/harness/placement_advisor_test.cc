#include "src/harness/placement_advisor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

namespace icg {
namespace {

// Counters fed to the advisor are cumulative (like LoopGroup metrics); these helpers
// build one observation interval's worth of samples.
std::vector<LaneSample> Lanes(std::vector<std::pair<int, int64_t>> loads) {
  std::vector<LaneSample> out;
  for (const auto& [slot, load] : loads) {
    out.push_back({slot, load});
  }
  return out;
}

std::vector<EntitySample> Entities(std::vector<std::tuple<int, int, int64_t>> rows) {
  std::vector<EntitySample> out;
  for (const auto& [entity, slot, load] : rows) {
    out.push_back({entity, slot, load});
  }
  return out;
}

TEST(PlacementAdvisor, FirstCallOnlyBaselines) {
  PlacementAdvisor advisor;
  const auto moves = advisor.Advise(Lanes({{0, 100000}, {1, 10}}),
                                    Entities({{0, 0, 100000}, {1, 1, 10}}));
  EXPECT_TRUE(moves.empty());
  EXPECT_EQ(advisor.intervals_observed(), 1);
  EXPECT_EQ(advisor.moves_emitted(), 0);
}

TEST(PlacementAdvisor, MovesHottestEntityOffTheHotLane) {
  PlacementAdvisor advisor;
  advisor.Advise(Lanes({{0, 0}, {1, 0}, {2, 0}}),
                 Entities({{0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 2, 0}}));
  // Interval delta: lane 0 carries 900 (entity 0: 600, entity 1: 300), lanes 1 and 2
  // carry 50 each. Entity 0 should move to the coldest lane (slot 1, lowest-slot tie).
  const auto moves = advisor.Advise(
      Lanes({{0, 900}, {1, 50}, {2, 50}}),
      Entities({{0, 0, 600}, {1, 0, 300}, {2, 1, 50}, {3, 2, 50}}));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].entity, 0);
  EXPECT_EQ(moves[0].from_slot, 0);
  EXPECT_EQ(moves[0].to_slot, 1);
  EXPECT_EQ(advisor.moves_emitted(), 1);
}

TEST(PlacementAdvisor, DeltasNotCumulativeTotalsDriveTheDecision) {
  PlacementAdvisor advisor;
  // Lane 0 was hot historically but the *latest interval* is balanced: cumulative
  // counters grow equally, so no move should be advised.
  advisor.Advise(Lanes({{0, 10000}, {1, 100}}),
                 Entities({{0, 0, 10000}, {1, 1, 100}}));
  const auto moves = advisor.Advise(Lanes({{0, 10500}, {1, 600}}),
                                    Entities({{0, 0, 10500}, {1, 1, 600}}));
  EXPECT_TRUE(moves.empty());
}

TEST(PlacementAdvisor, CooldownSuppressesBackToBackMoves) {
  PlacementAdvisorOptions options;
  options.cooldown_intervals = 2;
  PlacementAdvisor advisor(options);
  const auto lanes = [](int64_t scale) {
    return Lanes({{0, scale * 900}, {1, scale * 50}, {2, scale * 50}});
  };
  const auto entities = [](int64_t scale) {
    return Entities({{0, 0, scale * 600},
                     {1, 0, scale * 300},
                     {2, 1, scale * 50},
                     {3, 2, scale * 50}});
  };
  advisor.Advise(lanes(1), entities(1));
  EXPECT_EQ(advisor.Advise(lanes(2), entities(2)).size(), 1u);
  // The skew persists in the counters, but the next two intervals are inside the
  // cooldown window; only the third may move again.
  EXPECT_TRUE(advisor.Advise(lanes(3), entities(3)).empty());
  EXPECT_TRUE(advisor.Advise(lanes(4), entities(4)).empty());
  EXPECT_EQ(advisor.Advise(lanes(5), entities(5)).size(), 1u);
  EXPECT_EQ(advisor.moves_emitted(), 2);
}

TEST(PlacementAdvisor, QuietIntervalsAreLeftAlone) {
  PlacementAdvisorOptions options;
  options.min_total_load = 256;
  PlacementAdvisor advisor(options);
  advisor.Advise(Lanes({{0, 0}, {1, 0}}), Entities({{0, 0, 0}, {1, 1, 0}}));
  // 100:10 is a 10x skew but only 110 units of load — under min_total_load, moving a
  // shard would cost more than the imbalance does.
  const auto moves =
      advisor.Advise(Lanes({{0, 100}, {1, 10}}), Entities({{0, 0, 100}, {1, 1, 10}}));
  EXPECT_TRUE(moves.empty());
}

TEST(PlacementAdvisor, BalancedLanesNeverMove) {
  PlacementAdvisor advisor;
  advisor.Advise(Lanes({{0, 0}, {1, 0}, {2, 0}}),
                 Entities({{0, 0, 0}, {1, 1, 0}, {2, 2, 0}}));
  const auto moves =
      advisor.Advise(Lanes({{0, 400}, {1, 380}, {2, 390}}),
                     Entities({{0, 0, 400}, {1, 1, 380}, {2, 2, 390}}));
  EXPECT_TRUE(moves.empty());
}

TEST(PlacementAdvisor, SoleTenantSwapWithEqualLaneIsRejected) {
  PlacementAdvisor advisor;
  advisor.Advise(Lanes({{0, 0}, {1, 0}}), Entities({{0, 0, 0}, {1, 1, 0}}));
  // Lane 0's entire load is one entity; moving it to lane 1 would just relabel the hot
  // lane (projected max 1000 + 50 > 1000 is even worse). Must not move.
  const auto moves = advisor.Advise(Lanes({{0, 1000}, {1, 50}}),
                                    Entities({{0, 0, 1000}, {1, 1, 50}}));
  EXPECT_TRUE(moves.empty());
}

TEST(PlacementAdvisor, TiesBreakDeterministicallyRegardlessOfInputOrder) {
  // Two equally hot lanes and two equally cold ones: the decision must not depend on
  // sample order — lowest slot wins both the hot and the cold pick, lowest ordinal
  // wins the entity pick.
  for (const bool reversed : {false, true}) {
    PlacementAdvisor advisor;
    auto lanes = Lanes({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    auto entities = Entities(
        {{0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0}, {4, 2, 0}, {5, 3, 0}});
    if (reversed) {
      std::reverse(lanes.begin(), lanes.end());
      std::reverse(entities.begin(), entities.end());
    }
    advisor.Advise(lanes, entities);
    auto hot = Lanes({{0, 800}, {1, 800}, {2, 20}, {3, 20}});
    auto loaded = Entities(
        {{0, 0, 400}, {1, 0, 400}, {2, 1, 400}, {3, 1, 400}, {4, 2, 20}, {5, 3, 20}});
    if (reversed) {
      std::reverse(hot.begin(), hot.end());
      std::reverse(loaded.begin(), loaded.end());
    }
    const auto moves = advisor.Advise(hot, loaded);
    ASSERT_EQ(moves.size(), 1u) << "reversed=" << reversed;
    EXPECT_EQ(moves[0].entity, 0) << "reversed=" << reversed;
    EXPECT_EQ(moves[0].from_slot, 0) << "reversed=" << reversed;
    EXPECT_EQ(moves[0].to_slot, 2) << "reversed=" << reversed;
  }
}

TEST(PlacementAdvisor, HotRatioThresholdGatesTheMove) {
  PlacementAdvisorOptions options;
  options.hot_ratio = 2.0;
  PlacementAdvisor advisor(options);
  advisor.Advise(Lanes({{0, 0}, {1, 0}}), Entities({{0, 0, 0}, {1, 0, 0}, {2, 1, 0}}));
  // Mean is 300; lane 0 at 400 is hot-ish but below 2x the mean — no move.
  EXPECT_TRUE(advisor
                  .Advise(Lanes({{0, 400}, {1, 200}}),
                          Entities({{0, 0, 250}, {1, 0, 150}, {2, 1, 200}}))
                  .empty());
}

}  // namespace
}  // namespace icg
