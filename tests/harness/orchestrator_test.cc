#include "src/harness/orchestrator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace icg {
namespace {

// One control interval's sample. `shards` rows are (outstanding, primary_share); the
// defaults describe a healthy 4-rung deployment sitting on rung 1 with spares on hand.
ControlSample Sample(std::vector<std::pair<size_t, double>> shards, int64_t shed_delta,
                     size_t spares = 2, size_t window_index = 1, size_t ladder = 4) {
  ControlSample sample;
  sample.ring_epoch = 1;
  for (size_t i = 0; i < shards.size(); ++i) {
    sample.shards.push_back(ShardSignal{i, shards[i].first, shards[i].second});
  }
  sample.shed_delta = shed_delta;
  sample.spare_replicas = spares;
  sample.window_index = window_index;
  sample.window_ladder_size = ladder;
  return sample;
}

OrchestratorOptions FastOptions() {
  OrchestratorOptions options;
  options.widen_outstanding_per_shard = 16.0;
  options.shrink_outstanding_per_shard = 2.0;
  options.shed_intervals_to_scale_out = 2;
  options.cool_intervals_to_scale_in = 3;
  options.cool_outstanding_per_shard = 1.0;
  options.cooldown_intervals = 2;
  return options;
}

TEST(OrchestratorPolicy, EmptySampleIsANoOpAndResetsTheEpisode) {
  OrchestratorPolicy policy(FastOptions());
  // Cool samples at rung 0 (so the shrink leg cannot fire first).
  const ControlSample cool = Sample({{0, 0.5}, {0, 0.5}}, 0, 2, /*window_index=*/0);
  // Two cool intervals toward the scale-in streak...
  EXPECT_EQ(policy.Decide(cool).kind, ControlActionKind::kNone);
  EXPECT_EQ(policy.Decide(cool).kind, ControlActionKind::kNone);
  // ...interrupted by a degenerate (empty) window, which must both no-op and reset.
  EXPECT_EQ(policy.Decide(Sample({}, 1000)).kind, ControlActionKind::kNone);
  // The streak restarted: three more cool intervals are needed, not one.
  EXPECT_EQ(policy.Decide(cool).kind, ControlActionKind::kNone);
  EXPECT_EQ(policy.Decide(cool).kind, ControlActionKind::kNone);
  EXPECT_EQ(policy.Decide(cool).kind, ControlActionKind::kScaleIn);
}

TEST(OrchestratorPolicy, SustainedShedsScaleOutOneIntervalDoesNot) {
  OrchestratorPolicy policy(FastOptions());
  // One shedding interval is a burst, not a trend — widen fires instead (shedding is
  // itself a saturation signal), and scale-out waits for the streak.
  const ControlAction first = policy.Decide(Sample({{20, 0.5}, {20, 0.5}}, 50));
  EXPECT_EQ(first.kind, ControlActionKind::kWidenWindow);

  OrchestratorPolicy fresh(FastOptions());
  ControlSample shedding = Sample({{20, 0.5}, {20, 0.5}}, 50, /*spares=*/2,
                                  /*window_index=*/3);  // ladder topped out: no widen
  EXPECT_EQ(fresh.Decide(shedding).kind, ControlActionKind::kNone);
  EXPECT_EQ(fresh.Decide(shedding).kind, ControlActionKind::kScaleOut);
}

TEST(OrchestratorPolicy, ShedsWithoutSparesWidenTheWindowInstead) {
  OrchestratorPolicy policy(FastOptions());
  const ControlSample starved = Sample({{20, 0.5}, {20, 0.5}}, 50, /*spares=*/0);
  EXPECT_EQ(policy.Decide(starved).kind, ControlActionKind::kWidenWindow);
  // The emitted detail is the next rung up.
  OrchestratorPolicy again(FastOptions());
  EXPECT_EQ(again.Decide(starved).detail, 2u);
}

TEST(OrchestratorPolicy, WidenFiresExactlyAtTheBoundary) {
  // Mean outstanding per shard == the widen band must widen; one below must not.
  OrchestratorPolicy at(FastOptions());
  EXPECT_EQ(at.Decide(Sample({{16, 0.5}, {16, 0.5}}, 0)).kind,
            ControlActionKind::kWidenWindow);
  OrchestratorPolicy below(FastOptions());
  EXPECT_EQ(below.Decide(Sample({{15, 0.5}, {15, 0.5}}, 0)).kind,
            ControlActionKind::kNone);
}

TEST(OrchestratorPolicy, ShrinkFiresExactlyAtTheBoundaryAndNeverBelowRungZero) {
  OrchestratorPolicy at(FastOptions());
  const ControlAction shrink = at.Decide(Sample({{2, 0.5}, {2, 0.5}}, 0));
  EXPECT_EQ(shrink.kind, ControlActionKind::kShrinkWindow);
  EXPECT_EQ(shrink.detail, 0u);

  OrchestratorPolicy above(FastOptions());
  EXPECT_EQ(above.Decide(Sample({{3, 0.5}, {3, 0.5}}, 0)).kind, ControlActionKind::kNone);

  // Already at the bottom rung: idle queues cannot shrink further.
  OrchestratorPolicy bottom(FastOptions());
  EXPECT_EQ(bottom.Decide(Sample({{2, 0.5}, {2, 0.5}}, 0, 2, /*window_index=*/0)).kind,
            ControlActionKind::kNone);
}

TEST(OrchestratorPolicy, HysteresisGapHoldsTheWindowSteady) {
  // Load between the bands (shrink < per-shard < widen) must never move the window in
  // either direction, no matter how long it persists.
  OrchestratorPolicy policy(FastOptions());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.Decide(Sample({{8, 0.5}, {8, 0.5}}, 0)).kind,
              ControlActionKind::kNone)
        << "interval " << i;
  }
}

TEST(OrchestratorPolicy, StrictlyHigherShedDeltasNeverScaleIn) {
  // Metamorphic monotonicity: take a history whose final interval scales in, then
  // replay it with the final shed_delta raised to increasingly extreme values — the
  // mutated runs must never emit scale-in (sheds mean load, and scaling in under load
  // is the one catastrophic direction).
  const auto cool = Sample({{0, 0.7}, {0, 0.3}}, 0, 2, /*window_index=*/0);
  OrchestratorPolicy baseline(FastOptions());
  baseline.Decide(cool);
  baseline.Decide(cool);
  EXPECT_EQ(baseline.Decide(cool).kind, ControlActionKind::kScaleIn);

  for (const int64_t delta : {int64_t{1}, int64_t{100}, int64_t{1000000}}) {
    OrchestratorPolicy mutated(FastOptions());
    mutated.Decide(cool);
    mutated.Decide(cool);
    const ControlAction action =
        mutated.Decide(Sample({{0, 0.7}, {0, 0.3}}, delta, 2, /*window_index=*/0));
    EXPECT_NE(action.kind, ControlActionKind::kScaleIn) << "shed_delta=" << delta;
  }
}

TEST(OrchestratorPolicy, CooldownSuppressesBackToBackActionsButStreaksAccumulate) {
  OrchestratorPolicy policy(FastOptions());
  const ControlSample shedding = Sample({{20, 0.5}, {20, 0.5}}, 50);
  // t1: widen (first shedding interval) and enter cooldown.
  EXPECT_EQ(policy.Decide(shedding).kind, ControlActionKind::kWidenWindow);
  // t2, t3: cooldown eats the intervals — but the shed streak keeps counting.
  EXPECT_EQ(policy.Decide(shedding).kind, ControlActionKind::kNone);
  EXPECT_EQ(policy.Decide(shedding).kind, ControlActionKind::kNone);
  // t4: cooldown expired; the accumulated streak (4 >= 2) scales out immediately.
  EXPECT_EQ(policy.Decide(shedding).kind, ControlActionKind::kScaleOut);
}

TEST(OrchestratorPolicy, DecisionsAreInputOrderInvariant) {
  // Same shard multiset, forward and reversed: identical action AND identical victim.
  for (const bool reversed : {false, true}) {
    OrchestratorPolicy policy(FastOptions());
    auto rows = std::vector<std::pair<size_t, double>>{{0, 0.5}, {1, 0.2}, {0, 0.3}};
    ControlSample cool;
    cool.spare_replicas = 2;
    cool.window_index = 0;  // rung 0: the shrink leg cannot preempt scale-in
    cool.window_ladder_size = 4;
    for (size_t i = 0; i < rows.size(); ++i) {
      cool.shards.push_back(ShardSignal{i, rows[i].first, rows[i].second});
    }
    if (reversed) {
      std::reverse(cool.shards.begin(), cool.shards.end());
    }
    policy.Decide(cool);
    policy.Decide(cool);
    const ControlAction action = policy.Decide(cool);
    ASSERT_EQ(action.kind, ControlActionKind::kScaleIn) << "reversed=" << reversed;
    EXPECT_EQ(action.detail, 1u) << "reversed=" << reversed;  // smallest primary share
  }
}

TEST(OrchestratorPolicy, ScaleInTiesBreakTowardTheLowestShard) {
  OrchestratorPolicy policy(FastOptions());
  const auto tied = Sample({{0, 0.25}, {0, 0.5}, {0, 0.25}}, 0, 2, /*window_index=*/0);
  policy.Decide(tied);
  policy.Decide(tied);
  const ControlAction action = policy.Decide(tied);
  ASSERT_EQ(action.kind, ControlActionKind::kScaleIn);
  EXPECT_EQ(action.detail, 0u);  // shards 0 and 2 tie at 0.25; lowest index wins
}

TEST(OrchestratorPolicy, ScaleInRespectsMinCoordinators) {
  OrchestratorOptions options = FastOptions();
  options.min_coordinators = 2;
  OrchestratorPolicy policy(options);
  const auto cool = Sample({{0, 0.5}, {0, 0.5}}, 0, 2, /*window_index=*/0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.Decide(cool).kind, ControlActionKind::kNone) << "interval " << i;
  }
}

TEST(OrchestratorPolicy, LadderTopAndExternalActionsShareTheCooldown) {
  OrchestratorPolicy policy(FastOptions());
  // Topped-out ladder: saturation without sheds has no action left to take.
  const auto saturated = Sample({{100, 0.5}, {100, 0.5}}, 0, 2, /*window_index=*/3);
  EXPECT_EQ(policy.Decide(saturated).kind, ControlActionKind::kNone);
  // An external action (placement move) starts the shared cooldown: the next interval
  // may not emit even though its own conditions hold.
  policy.NoteExternalAction();
  EXPECT_EQ(policy.Decide(Sample({{20, 0.5}, {20, 0.5}}, 0)).kind,
            ControlActionKind::kNone);
  EXPECT_EQ(policy.Decide(Sample({{20, 0.5}, {20, 0.5}}, 0)).kind,
            ControlActionKind::kNone);
  EXPECT_EQ(policy.Decide(Sample({{20, 0.5}, {20, 0.5}}, 0)).kind,
            ControlActionKind::kWidenWindow);
}

}  // namespace
}  // namespace icg
