// Unit tests for the Correctable<T> abstraction: state machine, callbacks, monotonicity,
// and the Map/Speculate/WhenAll combinators.
#include "src/correctables/correctable.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace icg {
namespace {

TEST(CorrectableStates, StartsUpdatingAndClosesFinal) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);
  EXPECT_FALSE(c.HasView());
  EXPECT_FALSE(c.Final().ok());
  EXPECT_EQ(c.Final().status().code(), StatusCode::kUnavailable);

  EXPECT_TRUE(src.Update(1, ConsistencyLevel::kWeak));
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);
  EXPECT_TRUE(c.HasView());
  EXPECT_EQ(c.LatestView().value, 1);
  EXPECT_FALSE(c.LatestView().is_final);

  EXPECT_TRUE(src.Close(2, ConsistencyLevel::kStrong));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_TRUE(c.LatestView().is_final);
  ASSERT_TRUE(c.Final().ok());
  EXPECT_EQ(c.Final().value(), 2);
}

TEST(CorrectableStates, ErrorState) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  EXPECT_TRUE(src.Fail(Status::Timeout()));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kTimeout);
}

TEST(CorrectableStates, NoTransitionsAfterClose) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  ASSERT_TRUE(src.Close(7, ConsistencyLevel::kStrong));
  EXPECT_FALSE(src.Update(8, ConsistencyLevel::kWeak));
  EXPECT_FALSE(src.Close(9, ConsistencyLevel::kStrong));
  EXPECT_FALSE(src.Fail(Status::Internal("late")));
  EXPECT_EQ(c.Final().value(), 7);
}

TEST(CorrectableStates, NoTransitionsAfterError) {
  CorrectableSource<int> src;
  ASSERT_TRUE(src.Fail(Status::Timeout()));
  EXPECT_FALSE(src.Update(1, ConsistencyLevel::kWeak));
  EXPECT_FALSE(src.Close(1, ConsistencyLevel::kStrong));
}

TEST(CorrectableMonotonicity, DropsRegressingLevels) {
  CorrectableSource<int> src;
  ASSERT_TRUE(src.Update(1, ConsistencyLevel::kCausal));
  // A weaker view arriving later (network reordering) must be suppressed.
  EXPECT_FALSE(src.Update(0, ConsistencyLevel::kWeak));
  // Equal level is allowed (multi-view streams, e.g. blockchain confirmations).
  EXPECT_TRUE(src.Update(2, ConsistencyLevel::kCausal));
  // Stronger is allowed.
  EXPECT_TRUE(src.Update(3, ConsistencyLevel::kStrong));
}

TEST(CorrectableCallbacks, UpdateFinalErrorFire) {
  CorrectableSource<std::string> src;
  auto c = src.GetCorrectable();
  std::vector<std::string> updates;
  std::string final_value;
  int finals = 0;
  c.SetCallbacks([&](const View<std::string>& v) { updates.push_back(v.value); },
                 [&](const View<std::string>& v) {
                   final_value = v.value;
                   finals++;
                 });
  src.Update("a", ConsistencyLevel::kWeak);
  src.Update("b", ConsistencyLevel::kCausal);
  src.Close("c", ConsistencyLevel::kStrong);
  EXPECT_EQ(updates, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(final_value, "c");
  EXPECT_EQ(finals, 1);
}

TEST(CorrectableCallbacks, LateSubscribersReplayState) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  src.Update(5, ConsistencyLevel::kWeak);

  int update_seen = -1;
  c.OnUpdate([&](const View<int>& v) { update_seen = v.value; });
  EXPECT_EQ(update_seen, 5);  // replayed immediately

  src.Close(6, ConsistencyLevel::kStrong);
  int final_seen = -1;
  c.OnFinal([&](const View<int>& v) { final_seen = v.value; });
  EXPECT_EQ(final_seen, 6);  // fired immediately on attach

  CorrectableSource<int> err_src;
  auto e = err_src.GetCorrectable();
  err_src.Fail(Status::Unavailable("down"));
  Status seen;
  e.OnError([&](const Status& s) { seen = s; });
  EXPECT_EQ(seen.code(), StatusCode::kUnavailable);
}

TEST(CorrectableCallbacks, MultipleCallbacksAllFire) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  int count = 0;
  c.OnFinal([&](const View<int>&) { count++; });
  c.OnFinal([&](const View<int>&) { count++; });
  src.Close(1, ConsistencyLevel::kStrong);
  EXPECT_EQ(count, 2);
}

TEST(CorrectableCallbacks, CallbackAttachingCallbackIsSafe) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  int inner_fired = 0;
  c.OnUpdate([&](const View<int>&) {
    c.OnFinal([&](const View<int>&) { inner_fired++; });
  });
  src.Update(1, ConsistencyLevel::kWeak);
  src.Close(2, ConsistencyLevel::kStrong);
  EXPECT_EQ(inner_fired, 1);
}

TEST(CorrectableConfirmation, CloseConfirmedUsesPreliminaryValue) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  src.Update(42, ConsistencyLevel::kWeak);
  EXPECT_TRUE(src.CloseConfirmed(ConsistencyLevel::kStrong));
  ASSERT_TRUE(c.Final().ok());
  EXPECT_EQ(c.Final().value(), 42);
  EXPECT_TRUE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kStrong);
}

TEST(CorrectableConfirmation, ConfirmationWithoutPreliminaryIsError) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  EXPECT_FALSE(src.CloseConfirmed(ConsistencyLevel::kStrong));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kInternal);
}

TEST(CorrectableFactories, FromValueAndFailed) {
  auto v = Correctable<int>::FromValue(3);
  EXPECT_EQ(v.state(), CorrectableState::kFinal);
  EXPECT_EQ(v.Final().value(), 3);

  auto f = Correctable<int>::Failed(Status::NotFound("x"));
  EXPECT_EQ(f.state(), CorrectableState::kError);
  EXPECT_EQ(f.Final().status().code(), StatusCode::kNotFound);
}

TEST(CorrectableMap, TransformsAllViews) {
  CorrectableSource<int> src;
  auto doubled = src.GetCorrectable().Map([](const int& x) { return x * 2; });
  std::vector<int> seen;
  doubled.OnUpdate([&](const View<int>& v) { seen.push_back(v.value); });
  src.Update(1, ConsistencyLevel::kWeak);
  src.Update(2, ConsistencyLevel::kCausal);
  src.Close(3, ConsistencyLevel::kStrong);
  EXPECT_EQ(seen, (std::vector<int>{2, 4}));
  EXPECT_EQ(doubled.Final().value(), 6);
  EXPECT_EQ(doubled.LatestView().level, ConsistencyLevel::kStrong);
}

TEST(CorrectableMap, PropagatesErrors) {
  CorrectableSource<int> src;
  auto mapped = src.GetCorrectable().Map([](const int& x) { return x + 1; });
  src.Fail(Status::Timeout());
  EXPECT_EQ(mapped.state(), CorrectableState::kError);
}

TEST(CorrectableMap, TypeChangingMap) {
  CorrectableSource<int> src;
  auto str = src.GetCorrectable().Map([](const int& x) { return std::to_string(x); });
  src.Close(12, ConsistencyLevel::kStrong);
  EXPECT_EQ(str.Final().value(), "12");
}

// --- Speculate ---------------------------------------------------------------------

TEST(Speculate, HitClosesWithSpeculationResult) {
  CorrectableSource<int> src;
  int spec_runs = 0;
  auto result = src.GetCorrectable().Speculate([&](const int& x) {
    spec_runs++;
    return x * 10;
  });
  src.Update(4, ConsistencyLevel::kWeak);
  EXPECT_EQ(spec_runs, 1);
  // Preliminary speculation result is exposed as an update.
  ASSERT_TRUE(result.HasView());
  EXPECT_EQ(result.LatestView().value, 40);
  EXPECT_FALSE(result.is_final());

  src.Close(4, ConsistencyLevel::kStrong);  // same value: hit
  EXPECT_EQ(spec_runs, 1);                  // not re-executed
  EXPECT_EQ(result.Final().value(), 40);
}

TEST(Speculate, MissAbortsAndReexecutes) {
  CorrectableSource<int> src;
  int spec_runs = 0;
  std::vector<int> aborted_inputs;
  auto result = src.GetCorrectable().Speculate(
      [&](const int& x) {
        spec_runs++;
        return x * 10;
      },
      [&](const int& bad) { aborted_inputs.push_back(bad); });
  src.Update(4, ConsistencyLevel::kWeak);
  src.Close(5, ConsistencyLevel::kStrong);  // diverged
  EXPECT_EQ(spec_runs, 2);
  EXPECT_EQ(aborted_inputs, (std::vector<int>{4}));
  EXPECT_EQ(result.Final().value(), 50);
}

TEST(Speculate, NoPreliminaryStillProducesResult) {
  CorrectableSource<int> src;
  auto result = src.GetCorrectable().Speculate([](const int& x) { return x + 1; });
  src.Close(9, ConsistencyLevel::kStrong);
  EXPECT_EQ(result.Final().value(), 10);
}

TEST(Speculate, IdenticalConsecutiveViewsSpeculateOnce) {
  CorrectableSource<int> src;
  int spec_runs = 0;
  auto result = src.GetCorrectable().Speculate([&](const int& x) {
    spec_runs++;
    return x;
  });
  src.Update(1, ConsistencyLevel::kWeak);
  src.Update(1, ConsistencyLevel::kWeak);    // same value, same level
  src.Update(1, ConsistencyLevel::kCausal);  // same value, stronger level
  EXPECT_EQ(spec_runs, 1);
  src.Close(1, ConsistencyLevel::kStrong);
  EXPECT_EQ(result.Final().value(), 1);
}

TEST(Speculate, SupersededSpeculationAborts) {
  CorrectableSource<int> src;
  std::vector<int> aborted;
  auto result = src.GetCorrectable().Speculate([](const int& x) { return x; },
                                               [&](const int& bad) { aborted.push_back(bad); });
  src.Update(1, ConsistencyLevel::kWeak);
  src.Update(2, ConsistencyLevel::kCausal);  // supersedes input 1
  src.Close(2, ConsistencyLevel::kStrong);
  EXPECT_EQ(aborted, (std::vector<int>{1}));
  EXPECT_EQ(result.Final().value(), 2);
}

TEST(Speculate, AsyncSpeculationHit) {
  CorrectableSource<int> src;
  CorrectableSource<std::string> inner;
  int spec_runs = 0;
  auto result = src.GetCorrectable().Speculate([&](const int&) {
    spec_runs++;
    return inner.GetCorrectable();
  });
  src.Update(1, ConsistencyLevel::kWeak);
  src.Close(1, ConsistencyLevel::kStrong);  // final confirms before inner resolves
  EXPECT_EQ(result.state(), CorrectableState::kUpdating);
  inner.Close("done", ConsistencyLevel::kStrong);
  EXPECT_EQ(result.Final().value(), "done");
  EXPECT_EQ(spec_runs, 1);
}

TEST(Speculate, AsyncSpeculationResolvesBeforeFinal) {
  CorrectableSource<int> src;
  auto result = src.GetCorrectable().Speculate([](const int& x) {
    return Correctable<int>::FromValue(x * 2);
  });
  src.Update(3, ConsistencyLevel::kWeak);
  ASSERT_TRUE(result.HasView());
  EXPECT_EQ(result.LatestView().value, 6);
  src.Close(3, ConsistencyLevel::kStrong);
  EXPECT_EQ(result.Final().value(), 6);
}

TEST(Speculate, UpstreamErrorFailsResult) {
  CorrectableSource<int> src;
  auto result = src.GetCorrectable().Speculate([](const int& x) { return x; });
  src.Update(1, ConsistencyLevel::kWeak);
  src.Fail(Status::Unavailable("gone"));
  EXPECT_EQ(result.state(), CorrectableState::kError);
}

// --- WhenAll -------------------------------------------------------------------------

TEST(WhenAll, EmptyClosesImmediately) {
  auto all = WhenAll<int>({});
  EXPECT_EQ(all.state(), CorrectableState::kFinal);
  EXPECT_TRUE(all.Final().value().empty());
}

TEST(WhenAll, ClosesWhenAllFinal) {
  CorrectableSource<int> a;
  CorrectableSource<int> b;
  auto all = WhenAll<int>({a.GetCorrectable(), b.GetCorrectable()});
  a.Close(1, ConsistencyLevel::kStrong);
  EXPECT_EQ(all.state(), CorrectableState::kUpdating);
  b.Close(2, ConsistencyLevel::kStrong);
  ASSERT_EQ(all.state(), CorrectableState::kFinal);
  EXPECT_EQ(all.Final().value(), (std::vector<int>{1, 2}));
}

TEST(WhenAll, UpdatesCarryWeakestLevel) {
  CorrectableSource<int> a;
  CorrectableSource<int> b;
  auto all = WhenAll<int>({a.GetCorrectable(), b.GetCorrectable()});
  std::vector<ConsistencyLevel> levels;
  all.OnUpdate([&](const View<std::vector<int>>& v) { levels.push_back(v.level); });
  a.Update(1, ConsistencyLevel::kStrong);
  EXPECT_TRUE(levels.empty());  // b has no view yet
  b.Update(2, ConsistencyLevel::kWeak);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], ConsistencyLevel::kWeak);
}

TEST(WhenAll, ErrorFailsAggregate) {
  CorrectableSource<int> a;
  CorrectableSource<int> b;
  auto all = WhenAll<int>({a.GetCorrectable(), b.GetCorrectable()});
  a.Fail(Status::Timeout());
  EXPECT_EQ(all.state(), CorrectableState::kError);
}

// --- Terminal-state callback hardening ------------------------------------------------
// Callbacks attached after a final/error must fire immediately with the terminal view
// (promise semantics), and the terminal transition must release every stored callback so
// captured resources do not outlive the invocation.

TEST(CorrectableTerminal, AttachAfterFinalFiresImmediatelyWithTerminalView) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  src.Update(1, ConsistencyLevel::kWeak);
  src.Close(2, ConsistencyLevel::kStrong);

  int final_value = -1;
  ConsistencyLevel final_level = ConsistencyLevel::kCache;
  bool was_final = false;
  c.OnFinal([&](const View<int>& v) {
    final_value = v.value;
    final_level = v.level;
    was_final = v.is_final;
  });
  EXPECT_EQ(final_value, 2);
  EXPECT_EQ(final_level, ConsistencyLevel::kStrong);
  EXPECT_TRUE(was_final);

  // OnUpdate after close must NOT fire: there will never be another preliminary.
  int updates = 0;
  c.OnUpdate([&](const View<int>&) { updates++; });
  EXPECT_EQ(updates, 0);
}

TEST(CorrectableTerminal, SetCallbacksAfterErrorFiresOnlyErrorCallback) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  src.Update(1, ConsistencyLevel::kWeak);
  src.Fail(Status::Unavailable("down"));

  int updates = 0;
  int finals = 0;
  Status seen;
  c.SetCallbacks([&](const View<int>&) { updates++; }, [&](const View<int>&) { finals++; },
                 [&](const Status& s) { seen = s; });
  EXPECT_EQ(updates, 0);
  EXPECT_EQ(finals, 0);
  EXPECT_EQ(seen.code(), StatusCode::kUnavailable);
}

TEST(CorrectableTerminal, CloseReleasesStoredCallbacks) {
  auto resource = std::make_shared<int>(7);
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  c.OnUpdate([resource](const View<int>&) {});
  c.OnFinal([resource](const View<int>&) {});
  c.OnError([resource](const Status&) {});
  EXPECT_EQ(resource.use_count(), 4);

  src.Close(1, ConsistencyLevel::kStrong);
  // All three lists were consumed; only the local handle keeps the resource alive.
  EXPECT_EQ(resource.use_count(), 1);
}

TEST(CorrectableTerminal, FailReleasesStoredCallbacks) {
  auto resource = std::make_shared<int>(7);
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  c.OnUpdate([resource](const View<int>&) {});
  c.OnFinal([resource](const View<int>&) {});
  src.Fail(Status::Timeout());
  EXPECT_EQ(resource.use_count(), 1);
}

TEST(CorrectableTerminal, CallbackAttachedDuringFinalFireRunsExactlyOnce) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  int inner = 0;
  c.OnFinal([&](const View<int>&) {
    c.OnFinal([&](const View<int>&) { inner++; });  // attach while terminal fire runs
  });
  src.Close(1, ConsistencyLevel::kStrong);
  EXPECT_EQ(inner, 1);
}

TEST(CorrectableTerminal, UpdateCallbackAttachedDuringUpdateFiresOnce) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  int inner = 0;
  c.OnUpdate([&](const View<int>&) {
    c.OnUpdate([&](const View<int>&) { inner++; });  // replays the pending view at attach
  });
  src.Update(1, ConsistencyLevel::kWeak);
  EXPECT_EQ(inner, 1);  // exactly once: attach-replay, not a second live delivery
}

TEST(CorrectableTerminal, CallbackFailingSourceDuringUpdateIsSafe) {
  CorrectableSource<int> src;
  auto c = src.GetCorrectable();
  int errors = 0;
  c.OnError([&](const Status&) { errors++; });
  c.OnUpdate([&](const View<int>&) { src.Fail(Status::Aborted("mid-update")); });
  src.Update(1, ConsistencyLevel::kWeak);
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(errors, 1);
  // The error fire consumed the callback lists; a second Fail is a no-op.
  EXPECT_FALSE(src.Fail(Status::Internal("late")));
}

}  // namespace
}  // namespace icg
