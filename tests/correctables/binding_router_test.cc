// BindingRouter semantics against synthetic shard bindings: per-key delegation,
// coalescing scope, and cross-shard multiget scatter-gather (ordering, merge,
// confirmation reconstruction, error fan-in).
#include "src/correctables/binding_router.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/correctables/client.h"

namespace icg {
namespace {

// A synchronous shard binding: gets answer "<name>/<key>", multigets join
// "<name>/<key>" per key, puts acknowledge. When `confirm_finals` is set, the strong
// final of a multi-level read arrives as a §5.2 digest confirmation instead of a value.
class FakeShardBinding : public Binding {
 public:
  explicit FakeShardBinding(std::string name, bool confirm_finals = false)
      : name_(std::move(name)), confirm_finals_(confirm_finals) {}

  std::string Name() const override { return name_; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }
  bool SupportsBatchedReads() const override { return supports_batched; }
  bool SupportsBatchedWrites() const override { return supports_batched; }

  bool supports_batched = true;
  int plans = 0;
  Status fail_final = Status::Ok();  // non-OK: the strong view reports this error
  std::vector<Operation> planned_ops;  // every operation this shard was asked to serve

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override {
    plans++;
    planned_ops.push_back(op);
    InvocationPlan plan;
    if (op.type == OpType::kMultiPut) {
      // Batched write: acknowledge the whole batch once at the strongest level.
      plan.AddStep(levels.strongest(), [this, level = levels.strongest()](
                                           const Operation& puts, LevelEmitter emit) {
        OpResult ack;
        ack.found = true;
        ack.seqno = static_cast<int64_t>(puts.keys.size());
        emit(level, fail_final.ok() ? StatusOr<OpResult>(ack) : StatusOr<OpResult>(fail_final));
      });
      return plan;
    }
    plan.AddSpan(levels.levels(), [this, levels](const Operation& o, LevelEmitter emit) {
      const bool multi_level = !levels.single();
      OpResult result;
      result.found = true;
      if (o.type == OpType::kMultiGet) {
        result.seqno = static_cast<int64_t>(o.keys.size());
        for (size_t i = 0; i < o.keys.size(); ++i) {
          if (i > 0) {
            result.value += kMultiValueSeparator;
          }
          result.value += name_ + "/" + o.keys[i];
        }
      } else {
        result.value = name_ + "/" + o.key;
      }
      if (multi_level) {
        emit(levels.weakest(), result);
      }
      if (!fail_final.ok()) {
        emit(levels.strongest(), fail_final);
      } else if (confirm_finals_ && multi_level) {
        emit(levels.strongest(), OpResult{}, ResponseKind::kConfirmation);
      } else {
        emit(levels.strongest(), result);
      }
    });
    return plan;
  }

 private:
  std::string name_;
  bool confirm_finals_;
};

// Routes by the numeric suffix of the key ("k7" -> shard 7 % n).
ShardFn SuffixShardFn(size_t n) {
  return [n](const std::string& key) -> size_t {
    return static_cast<size_t>(key.back() - '0') % n;
  };
}

std::string Joined(std::initializer_list<std::string> parts) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) {
      out += kMultiValueSeparator;
    }
    out += part;
  }
  return out;
}

struct RouterFixture {
  std::shared_ptr<FakeShardBinding> s0 = std::make_shared<FakeShardBinding>("s0");
  std::shared_ptr<FakeShardBinding> s1 = std::make_shared<FakeShardBinding>("s1");
  std::shared_ptr<BindingRouter> router =
      std::make_shared<BindingRouter>(std::vector<std::shared_ptr<Binding>>{s0, s1},
                                      SuffixShardFn(2));
  CorrectableClient client{router};
};

TEST(BindingRouter, AdvertisesChildLevelsAndName) {
  RouterFixture f;
  EXPECT_EQ(f.router->SupportedLevels(), f.s0->SupportedLevels());
  EXPECT_EQ(f.router->Name(), "router(s0 x2)");
  EXPECT_EQ(f.router->num_shards(), 2u);
}

TEST(BindingRouter, RoutesSingleKeyOpsToOwningShard) {
  RouterFixture f;
  auto a = f.client.InvokeStrong(Operation::Get("k0"));
  auto b = f.client.InvokeStrong(Operation::Get("k1"));
  auto c = f.client.InvokeStrong(Operation::Get("k2"));
  EXPECT_EQ(a.Final().value().value, "s0/k0");
  EXPECT_EQ(b.Final().value().value, "s1/k1");
  EXPECT_EQ(c.Final().value().value, "s0/k2");
  EXPECT_EQ(f.s0->plans, 2);
  EXPECT_EQ(f.s1->plans, 1);
}

TEST(BindingRouter, CoalescingScopeNamesEpochAndShard) {
  RouterFixture f;
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k0")), "0:0");
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k3")), "0:1");
  // Same key, same scope — stable across calls.
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k0")),
            f.router->CoalescingScope(Operation::Get("k0")));
  // A ring installation bumps the epoch component, so pre- and post-rebalance traffic
  // never shares a scope even when the shard index happens to coincide.
  ASSERT_TRUE(f.router
                  ->ApplyRing(3, {f.s0, f.s1}, SuffixShardFn(2))
                  .ok());
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k0")), "3:0");
}

TEST(BindingRouter, SingleShardMultigetDelegatesWholesale) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::MultiGet({"k0", "k2", "k4"}));
  EXPECT_EQ(c.Final().value().value, Joined({"s0/k0", "s0/k2", "s0/k4"}));
  EXPECT_EQ(f.s0->plans, 1);
  EXPECT_EQ(f.s1->plans, 0);  // never consulted
}

TEST(BindingRouter, CrossShardMultigetMergesInRequestOrder) {
  RouterFixture f;
  auto c = f.client.Invoke(Operation::MultiGet({"k1", "k0", "k3", "k2"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  // Positions interleave shards; the merged payload must follow the request order, not
  // per-shard grouping.
  EXPECT_EQ(c.Final().value().value, Joined({"s1/k1", "s0/k0", "s1/k3", "s0/k2"}));
  EXPECT_EQ(c.Final().value().seqno, 4);
  EXPECT_TRUE(c.Final().value().found);
  // Full incremental sequence: one merged preliminary, one merged final.
  EXPECT_EQ(c.views_delivered(), 2);
}

TEST(BindingRouter, CrossShardMultigetViewsStayMonotone) {
  RouterFixture f;
  auto c = f.client.Invoke(Operation::MultiGet({"k0", "k1"}));
  // Two views delivered and the last one strong: the pipeline would have suppressed the
  // weak view (views_delivered == 1) had the merged sequence arrived out of order.
  // (Callback-level ordering over a live loop is covered by the routing integration
  // test; this synchronous binding resolves before callbacks could attach.)
  EXPECT_EQ(c.views_delivered(), 2);
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kStrong);
  EXPECT_EQ(f.client.stats().stale_views_dropped, 0);
}

TEST(BindingRouter, AllShardsConfirmingYieldsMergedConfirmation) {
  auto s0 = std::make_shared<FakeShardBinding>("s0", /*confirm_finals=*/true);
  auto s1 = std::make_shared<FakeShardBinding>("s1", /*confirm_finals=*/true);
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{s0, s1}, SuffixShardFn(2));
  CorrectableClient client(router);

  auto c = client.Invoke(Operation::MultiGet({"k0", "k1"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  // Confirmation close: the final view carries the preliminary's merged value.
  EXPECT_TRUE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(c.Final().value().value, Joined({"s0/k0", "s1/k1"}));
  EXPECT_EQ(client.stats().confirmations, 1);
}

TEST(BindingRouter, MixedConfirmationReconstructsConfirmedShardsValue) {
  auto s0 = std::make_shared<FakeShardBinding>("s0", /*confirm_finals=*/true);
  auto s1 = std::make_shared<FakeShardBinding>("s1", /*confirm_finals=*/false);
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{s0, s1}, SuffixShardFn(2));
  CorrectableClient client(router);

  auto c = client.Invoke(Operation::MultiGet({"k0", "k1"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  // s0 confirmed (value reconstructed from its preliminary), s1 sent a full final: the
  // merged final is a full value, not a confirmation.
  EXPECT_FALSE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(c.Final().value().value, Joined({"s0/k0", "s1/k1"}));
}

TEST(BindingRouter, ShardFinalErrorFailsTheMergedFinal) {
  RouterFixture f;
  f.s1->fail_final = Status::Unavailable("shard 1 down");
  auto c = f.client.Invoke(Operation::MultiGet({"k0", "k1"}));
  ASSERT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.error().code(), StatusCode::kUnavailable);
  // The merged preliminary still got through before the final failed.
  EXPECT_EQ(c.views_delivered(), 1);
}

TEST(BindingRouter, EmptyMultigetRejected) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::MultiGet({}));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.error().code(), StatusCode::kInvalidArgument);
}

TEST(BindingRouter, WritesRouteByKey) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::Put("k1", "v"));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(f.s0->plans, 0);
  EXPECT_EQ(f.s1->plans, 1);
}

// --- Cross-tick write batching through the router -------------------------------------

TEST(BindingRouter, BatchedWritesNeverCrossShardBoundaries) {
  EventLoop loop;
  auto s0 = std::make_shared<FakeShardBinding>("s0");
  auto s1 = std::make_shared<FakeShardBinding>("s1");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{s0, s1}, SuffixShardFn(2));
  CorrectableClient client(router, &loop);
  BatchConfig batch;
  batch.batch_window = Millis(5);
  client.SetBatchConfig(batch);

  // Four writes inside one window, interleaving shards. The scheduler queues them per
  // scope, so each shard must receive exactly one multiput carrying only its own keys.
  auto a = client.InvokeStrong(Operation::Put("k0", "a"));
  auto b = client.InvokeStrong(Operation::Put("k1", "b"));
  auto c = client.InvokeStrong(Operation::Put("k2", "c"));
  auto d = client.InvokeStrong(Operation::Put("k3", "d"));
  EXPECT_EQ(s0->plans + s1->plans, 0);  // nothing reaches a shard before the flush
  loop.Run();

  for (const auto& result : {a, b, c, d}) {
    EXPECT_EQ(result.state(), CorrectableState::kFinal);
  }
  ASSERT_EQ(s0->planned_ops.size(), 1u);
  ASSERT_EQ(s1->planned_ops.size(), 1u);
  EXPECT_EQ(s0->planned_ops[0].type, OpType::kMultiPut);
  EXPECT_EQ(s0->planned_ops[0].keys, (std::vector<std::string>{"k0", "k2"}));
  EXPECT_EQ(s0->planned_ops[0].values, (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(s1->planned_ops[0].type, OpType::kMultiPut);
  EXPECT_EQ(s1->planned_ops[0].keys, (std::vector<std::string>{"k1", "k3"}));
  EXPECT_EQ(client.stats().batched_writes, 4);
  EXPECT_EQ(client.stats().cross_tick_batches, 2);
}

TEST(BindingRouter, RebalanceMidWindowReRoutesThePendingBatch) {
  EventLoop loop;
  auto s0 = std::make_shared<FakeShardBinding>("s0");
  auto s1 = std::make_shared<FakeShardBinding>("s1");
  // A mutable ring: keys map through `owner`, which the test rewires mid-window.
  auto owner = std::make_shared<std::map<std::string, size_t>>();
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{s0, s1},
      [owner](const std::string& key) -> size_t {
        auto it = owner->find(key);
        return it != owner->end() ? it->second : 0;
      });
  CorrectableClient client(router, &loop);
  BatchConfig batch;
  batch.batch_window = Millis(5);
  client.SetBatchConfig(batch);

  (*owner)["ka"] = 0;
  (*owner)["kb"] = 0;
  auto a = client.InvokeStrong(Operation::Put("ka", "1"));
  auto b = client.InvokeStrong(Operation::Put("kb", "2"));
  // Rebalance while the batch window is still open: kb moves to shard 1. The flush must
  // consult the *current* ring and split the cohort instead of sending kb to shard 0.
  (*owner)["kb"] = 1;
  loop.Run();

  EXPECT_EQ(a.state(), CorrectableState::kFinal);
  EXPECT_EQ(b.state(), CorrectableState::kFinal);
  ASSERT_EQ(s0->planned_ops.size(), 1u);
  ASSERT_EQ(s1->planned_ops.size(), 1u);
  EXPECT_EQ(s0->planned_ops[0].type, OpType::kPut);  // a lone write launches unbatched
  EXPECT_EQ(s0->planned_ops[0].key, "ka");
  EXPECT_EQ(s1->planned_ops[0].type, OpType::kPut);
  EXPECT_EQ(s1->planned_ops[0].key, "kb");
}

TEST(BindingRouter, CrossShardMultiPutRejectedWhenBypassingTheScheduler) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::MultiPut({"k0", "k1"}, {"a", "b"}));
  ASSERT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.error().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(f.s0->plans, 0);
  EXPECT_EQ(f.s1->plans, 0);
}

TEST(BindingRouter, ShardLocalMultiPutDelegatesWholesale) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::MultiPut({"k0", "k2"}, {"a", "b"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().seqno, 2);
  EXPECT_EQ(f.s0->plans, 1);
  EXPECT_EQ(f.s1->plans, 0);
}

TEST(BindingRouter, BatchingCapabilitiesPassThroughShards) {
  RouterFixture f;
  EXPECT_TRUE(f.router->SupportsBatchedReads());
  EXPECT_TRUE(f.router->SupportsBatchedWrites());
}

TEST(BindingRouter, OneNonBatchingShardDisablesBatchingForTheWholeRouter) {
  // Heterogeneous backends: if any shard cannot serve multiget/multiput, the router must
  // not advertise batching — the pipeline would queue batches that shard then rejects.
  RouterFixture f;
  f.s1->supports_batched = false;
  EXPECT_FALSE(f.router->SupportsBatchedReads());
  EXPECT_FALSE(f.router->SupportsBatchedWrites());

  // And with batching advertised off, windowed writes fall back to per-write launches.
  EventLoop loop;
  CorrectableClient client(f.router, &loop);
  BatchConfig batch;
  batch.batch_window = Millis(5);
  client.SetBatchConfig(batch);
  auto a = client.InvokeStrong(Operation::Put("k0", "a"));
  auto b = client.InvokeStrong(Operation::Put("k2", "b"));
  loop.Run();
  EXPECT_EQ(a.state(), CorrectableState::kFinal);
  EXPECT_EQ(b.state(), CorrectableState::kFinal);
  ASSERT_EQ(f.s0->planned_ops.size(), 2u);
  EXPECT_EQ(f.s0->planned_ops[0].type, OpType::kPut);
  EXPECT_EQ(f.s0->planned_ops[1].type, OpType::kPut);
  EXPECT_EQ(client.stats().batched_writes, 0);
}

// --- Live ring installation (ApplyRing) -----------------------------------------------

TEST(BindingRouter, ApplyRingRejectsStaleEpochs) {
  RouterFixture f;
  auto s2 = std::make_shared<FakeShardBinding>("s2");
  // Same epoch (0) and an older one: both stale, both rejected, ring untouched.
  EXPECT_EQ(f.router->ApplyRing(0, {f.s0, f.s1, s2}, SuffixShardFn(3)).code(),
            StatusCode::kConflict);
  EXPECT_EQ(f.router->num_shards(), 2u);
  EXPECT_EQ(f.router->ring_epoch(), 0u);

  ASSERT_TRUE(f.router->ApplyRing(2, {f.s0, f.s1, s2}, SuffixShardFn(3)).ok());
  EXPECT_EQ(f.router->ring_epoch(), 2u);
  EXPECT_EQ(f.router->ApplyRing(2, {f.s0, f.s1}, SuffixShardFn(2)).code(),
            StatusCode::kConflict);
  EXPECT_EQ(f.router->num_shards(), 3u);  // the stale shrink did not land
}

TEST(BindingRouter, ApplyRingAddsShardAndReroutes) {
  RouterFixture f;
  auto s2 = std::make_shared<FakeShardBinding>("s2");
  // Under the 2-shard ring, k2 belongs to s0.
  EXPECT_EQ(f.client.InvokeStrong(Operation::Get("k2")).Final().value().value, "s0/k2");
  ASSERT_TRUE(f.router->ApplyRing(1, {f.s0, f.s1, s2}, SuffixShardFn(3)).ok());
  EXPECT_EQ(f.router->num_shards(), 3u);
  // The same key now routes to the newcomer; survivors keep their other keys.
  EXPECT_EQ(f.client.InvokeStrong(Operation::Get("k2")).Final().value().value, "s2/k2");
  EXPECT_EQ(f.client.InvokeStrong(Operation::Get("k0")).Final().value().value, "s0/k0");
  EXPECT_EQ(f.client.InvokeStrong(Operation::Get("k1")).Final().value().value, "s1/k1");
}

TEST(BindingRouter, ApplyRingRemovalRoutesDepartedKeysToSurvivors) {
  RouterFixture f;
  auto c_before = f.client.InvokeStrong(Operation::Get("k1"));
  EXPECT_EQ(c_before.Final().value().value, "s1/k1");
  ASSERT_TRUE(f.router->ApplyRing(1, {f.s0}, [](const std::string&) -> size_t { return 0; })
                  .ok());
  EXPECT_EQ(f.client.InvokeStrong(Operation::Get("k1")).Final().value().value, "s0/k1");
}

// --- Per-shard backpressure -----------------------------------------------------------

// Holds every planned fetch open until released, so tests can park invocations
// in-flight on a shard and observe the router's outstanding accounting.
class HoldingBinding : public Binding {
 public:
  explicit HoldingBinding(std::string name) : name_(std::move(name)) {}

  std::string Name() const override { return name_; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }
  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override {
    InvocationPlan plan;
    plan.AddSpan(levels.levels(), [this](const Operation& o, LevelEmitter emit) {
      held_.emplace_back(o, std::move(emit));
    });
    return plan;
  }
  size_t held() const { return held_.size(); }
  void ReleaseAll() {
    std::vector<std::pair<Operation, LevelEmitter>> draining;
    draining.swap(held_);
    for (auto& [op, emit] : draining) {
      OpResult result;
      result.found = true;
      result.value = name_ + "/" + op.key;
      emit(ConsistencyLevel::kStrong, result);
    }
  }

 private:
  std::string name_;
  std::vector<std::pair<Operation, LevelEmitter>> held_;
};

TEST(BindingRouter, HotShardShedsAloneWithRetryableStatus) {
  auto h0 = std::make_shared<HoldingBinding>("h0");
  auto h1 = std::make_shared<HoldingBinding>("h1");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{h0, h1}, SuffixShardFn(2));
  router->SetShardQueueLimit(2);
  CorrectableClient client(router);

  // Fill shard 0's queue; both invocations park in flight.
  auto a = client.InvokeStrong(Operation::Get("k0"));
  auto b = client.InvokeStrong(Operation::Get("k2"));
  EXPECT_EQ(router->ShardOutstanding(0), 2u);

  // The next shard-0 invocation is shed with a retryable OVERLOADED error...
  auto shed = client.InvokeStrong(Operation::Get("k4"));
  ASSERT_EQ(shed.state(), CorrectableState::kError);
  EXPECT_EQ(shed.error().code(), StatusCode::kOverloaded);
  EXPECT_TRUE(IsRetryable(shed.error()));
  EXPECT_EQ(router->ShardSheds(0), 1);
  EXPECT_EQ(client.stats().overload_sheds, 1);

  // ...while shard 1 keeps admitting: the hot shard degrades alone.
  auto healthy = client.InvokeStrong(Operation::Get("k1"));
  EXPECT_EQ(healthy.state(), CorrectableState::kUpdating);
  EXPECT_EQ(h1->held(), 1u);
  EXPECT_EQ(router->ShardSheds(1), 0);

  // Draining the queue frees the slots; the retried invocation is admitted.
  h0->ReleaseAll();
  EXPECT_EQ(a.Final().value().value, "h0/k0");
  EXPECT_EQ(b.Final().value().value, "h0/k2");
  EXPECT_EQ(router->ShardOutstanding(0), 0u);
  auto retried = client.InvokeStrong(Operation::Get("k4"));
  EXPECT_EQ(retried.state(), CorrectableState::kUpdating);
  EXPECT_EQ(h0->held(), 1u);
  h0->ReleaseAll();
  h1->ReleaseAll();
  EXPECT_EQ(retried.Final().value().value, "h0/k4");
}

TEST(BindingRouter, OutstandingAccountingSurvivesRingChanges) {
  auto h0 = std::make_shared<HoldingBinding>("h0");
  auto h1 = std::make_shared<HoldingBinding>("h1");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{h0, h1}, SuffixShardFn(2));
  CorrectableClient client(router);

  auto parked_on_h0 = client.InvokeStrong(Operation::Get("k0"));
  auto parked_on_h1 = client.InvokeStrong(Operation::Get("k1"));
  EXPECT_EQ(router->ShardOutstanding(0), 1u);
  EXPECT_EQ(router->ShardOutstanding(1), 1u);

  // Remove h1 from the ring while it still holds an invocation. The surviving shard's
  // slot accounting is untouched, and the departed shard's eventual completion drains
  // into its retired counter block instead of corrupting the new ring's slots.
  ASSERT_TRUE(router->ApplyRing(1, {h0}, [](const std::string&) -> size_t { return 0; })
                  .ok());
  EXPECT_EQ(router->num_shards(), 1u);
  EXPECT_EQ(router->ShardOutstanding(0), 1u);
  h1->ReleaseAll();  // drains the in-flight invocation against the departed shard
  EXPECT_EQ(parked_on_h1.Final().value().value, "h1/k1");
  EXPECT_EQ(router->ShardOutstanding(0), 1u);  // survivor still holds its own slot
  h0->ReleaseAll();
  EXPECT_EQ(parked_on_h0.Final().value().value, "h0/k0");
  EXPECT_EQ(router->ShardOutstanding(0), 0u);
}

TEST(BindingRouter, CrashedShardRetiresCountersWithoutUnderflow) {
  // The failover regression: a shard crashes with in-flight invocations pinning its
  // outstanding counter at the queue limit, the detector removes it from the ring, and
  // whatever terminals eventually arrive (or never do) must neither underflow the
  // counter nor leak phantom load into the successor ring.
  auto h0 = std::make_shared<HoldingBinding>("h0");
  auto h1 = std::make_shared<HoldingBinding>("h1");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{h0, h1}, SuffixShardFn(2));
  router->SetShardQueueLimit(2);
  CorrectableClient client(router);

  // Fill the doomed shard to its limit; a crashed coordinator never answers, so these
  // slots would be pinned forever...
  auto a = client.InvokeStrong(Operation::Get("k0"));
  auto b = client.InvokeStrong(Operation::Get("k2"));
  EXPECT_EQ(router->ShardOutstanding(0), 2u);
  auto shed = client.InvokeStrong(Operation::Get("k4"));
  EXPECT_EQ(shed.state(), CorrectableState::kError);
  EXPECT_EQ(router->ShardSheds(0), 1);

  // ...until failover retires the block atomically with the ring swap: index 0 of the
  // new ring (the survivor) starts clean.
  ASSERT_TRUE(
      router->ApplyRing(1, {h1}, [](const std::string&) -> size_t { return 0; }).ok());
  EXPECT_EQ(router->num_shards(), 1u);
  EXPECT_EQ(router->ShardOutstanding(0), 0u);

  // Late terminals from the corpse land on the retired block and clamp at zero instead
  // of wrapping a size_t (the pre-retirement code asserted/underflowed here).
  h0->ReleaseAll();
  EXPECT_EQ(a.state(), CorrectableState::kFinal);
  EXPECT_EQ(b.state(), CorrectableState::kFinal);
  EXPECT_EQ(router->ShardOutstanding(0), 0u);

  // The survivor serves the whole keyspace with clean admission accounting.
  auto c = client.InvokeStrong(Operation::Get("k4"));
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);
  EXPECT_EQ(router->ShardOutstanding(0), 1u);
  h1->ReleaseAll();
  EXPECT_EQ(c.Final().value().value, "h1/k4");
  EXPECT_EQ(router->ShardOutstanding(0), 0u);

  // Re-admission after recovery: the returning shard gets a fresh, unretired block and
  // counts from zero again.
  ASSERT_TRUE(router->ApplyRing(2, {h1, h0}, SuffixShardFn(2)).ok());
  EXPECT_EQ(router->ShardOutstanding(1), 0u);
  auto d = client.InvokeStrong(Operation::Get("k1"));  // suffix 1 -> index 1 = h0
  EXPECT_EQ(router->ShardOutstanding(1), 1u);
  h0->ReleaseAll();
  EXPECT_EQ(d.Final().value().value, "h0/k1");
  EXPECT_EQ(router->ShardOutstanding(1), 0u);
}

TEST(BindingRouter, ZeroLimitDisablesShedding) {
  auto h0 = std::make_shared<HoldingBinding>("h0");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{h0}, [](const std::string&) -> size_t { return 0; });
  CorrectableClient client(router);
  std::vector<Correctable<OpResult>> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(client.InvokeStrong(Operation::Get("k" + std::to_string(i))));
  }
  EXPECT_EQ(router->ShardOutstanding(0), 64u);
  EXPECT_EQ(router->TotalSheds(), 0);
  h0->ReleaseAll();
  for (auto& handle : handles) {
    EXPECT_EQ(handle.state(), CorrectableState::kFinal);
  }
}

// --- RouterLoadSnapshot: one consistent, epoch-safe read of the load surface ----------

TEST(BindingRouter, LoadSnapshotReportsEpochAndPerShardRows) {
  auto h0 = std::make_shared<HoldingBinding>("h0");
  auto h1 = std::make_shared<HoldingBinding>("h1");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{h0, h1}, SuffixShardFn(2));
  router->SetShardQueueLimit(1);
  CorrectableClient client(router);

  auto parked = client.InvokeStrong(Operation::Get("k0"));
  auto shed = client.InvokeStrong(Operation::Get("k2"));
  EXPECT_EQ(shed.state(), CorrectableState::kError);

  const RouterLoadSnapshot snapshot = router->LoadSnapshot();
  EXPECT_EQ(snapshot.epoch, 0u);
  ASSERT_EQ(snapshot.shards.size(), 2u);
  EXPECT_EQ(snapshot.shards[0].outstanding, 1u);
  EXPECT_EQ(snapshot.shards[0].sheds, 1);
  EXPECT_EQ(snapshot.shards[1].outstanding, 0u);
  EXPECT_EQ(snapshot.shards[1].sheds, 0);
  EXPECT_EQ(snapshot.retired_sheds, 0);
  EXPECT_EQ(snapshot.total_outstanding(), 1u);
  EXPECT_EQ(snapshot.total_sheds(), 1);
  h0->ReleaseAll();
  EXPECT_EQ(parked.state(), CorrectableState::kFinal);
}

TEST(BindingRouter, LoadSnapshotTotalShedsIsMonotoneAcrossRingChanges) {
  // The torn-read hazard the snapshot exists to close: per-index shed counters vanish
  // with their block when a shard departs the ring, so a controller differencing raw
  // reads across an ApplyRing would see sheds go BACKWARD and misread a membership
  // change as recovery. total_sheds() must never decrease, whatever the ring does.
  auto h0 = std::make_shared<HoldingBinding>("h0");
  auto h1 = std::make_shared<HoldingBinding>("h1");
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{h0, h1}, SuffixShardFn(2));
  router->SetShardQueueLimit(1);
  CorrectableClient client(router);

  // Shed twice on shard 0 and once on shard 1.
  auto parked0 = client.InvokeStrong(Operation::Get("k0"));
  client.InvokeStrong(Operation::Get("k2"));
  client.InvokeStrong(Operation::Get("k4"));
  auto parked1 = client.InvokeStrong(Operation::Get("k1"));
  client.InvokeStrong(Operation::Get("k3"));
  const int64_t before = router->LoadSnapshot().total_sheds();
  EXPECT_EQ(before, 3);

  // Shard 0 departs. Its per-index counter block is retired, but the snapshot folds
  // the retired sheds into the aggregate: nothing is lost, nothing double-counts.
  ASSERT_TRUE(
      router->ApplyRing(1, {h1}, [](const std::string&) -> size_t { return 0; }).ok());
  const RouterLoadSnapshot after = router->LoadSnapshot();
  EXPECT_EQ(after.epoch, 1u);
  ASSERT_EQ(after.shards.size(), 1u);
  EXPECT_EQ(after.shards[0].sheds, 1);     // the survivor keeps its own count
  EXPECT_EQ(after.retired_sheds, 2);       // the departed shard's sheds, preserved
  EXPECT_EQ(after.total_sheds(), before);  // monotone: no regression at the swap

  // New sheds on the survivor keep accumulating on top of the retired aggregate.
  client.InvokeStrong(Operation::Get("k9"));
  EXPECT_EQ(router->LoadSnapshot().total_sheds(), before + 1);
  h0->ReleaseAll();
  h1->ReleaseAll();
  EXPECT_EQ(parked0.state(), CorrectableState::kFinal);
  EXPECT_EQ(parked1.state(), CorrectableState::kFinal);
}

}  // namespace
}  // namespace icg
