// BindingRouter semantics against synthetic shard bindings: per-key delegation,
// coalescing scope, and cross-shard multiget scatter-gather (ordering, merge,
// confirmation reconstruction, error fan-in).
#include "src/correctables/binding_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/correctables/client.h"

namespace icg {
namespace {

// A synchronous shard binding: gets answer "<name>/<key>", multigets join
// "<name>/<key>" per key, puts acknowledge. When `confirm_finals` is set, the strong
// final of a multi-level read arrives as a §5.2 digest confirmation instead of a value.
class FakeShardBinding : public Binding {
 public:
  explicit FakeShardBinding(std::string name, bool confirm_finals = false)
      : name_(std::move(name)), confirm_finals_(confirm_finals) {}

  std::string Name() const override { return name_; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  int plans = 0;
  Status fail_final = Status::Ok();  // non-OK: the strong view reports this error

  InvocationPlan PlanInvocation(const Operation& /*op*/, const LevelSet& levels) override {
    plans++;
    InvocationPlan plan;
    plan.AddSpan(levels.levels(), [this, levels](const Operation& o, LevelEmitter emit) {
      const bool multi_level = !levels.single();
      OpResult result;
      result.found = true;
      if (o.type == OpType::kMultiGet) {
        result.seqno = static_cast<int64_t>(o.keys.size());
        for (size_t i = 0; i < o.keys.size(); ++i) {
          if (i > 0) {
            result.value += kMultiValueSeparator;
          }
          result.value += name_ + "/" + o.keys[i];
        }
      } else {
        result.value = name_ + "/" + o.key;
      }
      if (multi_level) {
        emit(levels.weakest(), result);
      }
      if (!fail_final.ok()) {
        emit(levels.strongest(), fail_final);
      } else if (confirm_finals_ && multi_level) {
        emit(levels.strongest(), OpResult{}, ResponseKind::kConfirmation);
      } else {
        emit(levels.strongest(), result);
      }
    });
    return plan;
  }

 private:
  std::string name_;
  bool confirm_finals_;
};

// Routes by the numeric suffix of the key ("k7" -> shard 7 % n).
ShardFn SuffixShardFn(size_t n) {
  return [n](const std::string& key) -> size_t {
    return static_cast<size_t>(key.back() - '0') % n;
  };
}

std::string Joined(std::initializer_list<std::string> parts) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) {
      out += kMultiValueSeparator;
    }
    out += part;
  }
  return out;
}

struct RouterFixture {
  std::shared_ptr<FakeShardBinding> s0 = std::make_shared<FakeShardBinding>("s0");
  std::shared_ptr<FakeShardBinding> s1 = std::make_shared<FakeShardBinding>("s1");
  std::shared_ptr<BindingRouter> router =
      std::make_shared<BindingRouter>(std::vector<std::shared_ptr<Binding>>{s0, s1},
                                      SuffixShardFn(2));
  CorrectableClient client{router};
};

TEST(BindingRouter, AdvertisesChildLevelsAndName) {
  RouterFixture f;
  EXPECT_EQ(f.router->SupportedLevels(), f.s0->SupportedLevels());
  EXPECT_EQ(f.router->Name(), "router(s0 x2)");
  EXPECT_EQ(f.router->num_shards(), 2u);
}

TEST(BindingRouter, RoutesSingleKeyOpsToOwningShard) {
  RouterFixture f;
  auto a = f.client.InvokeStrong(Operation::Get("k0"));
  auto b = f.client.InvokeStrong(Operation::Get("k1"));
  auto c = f.client.InvokeStrong(Operation::Get("k2"));
  EXPECT_EQ(a.Final().value().value, "s0/k0");
  EXPECT_EQ(b.Final().value().value, "s1/k1");
  EXPECT_EQ(c.Final().value().value, "s0/k2");
  EXPECT_EQ(f.s0->plans, 2);
  EXPECT_EQ(f.s1->plans, 1);
}

TEST(BindingRouter, CoalescingScopeNamesTheShard) {
  RouterFixture f;
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k0")), "0");
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k3")), "1");
  // Same key, same scope — stable across calls.
  EXPECT_EQ(f.router->CoalescingScope(Operation::Get("k0")),
            f.router->CoalescingScope(Operation::Get("k0")));
}

TEST(BindingRouter, SingleShardMultigetDelegatesWholesale) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::MultiGet({"k0", "k2", "k4"}));
  EXPECT_EQ(c.Final().value().value, Joined({"s0/k0", "s0/k2", "s0/k4"}));
  EXPECT_EQ(f.s0->plans, 1);
  EXPECT_EQ(f.s1->plans, 0);  // never consulted
}

TEST(BindingRouter, CrossShardMultigetMergesInRequestOrder) {
  RouterFixture f;
  auto c = f.client.Invoke(Operation::MultiGet({"k1", "k0", "k3", "k2"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  // Positions interleave shards; the merged payload must follow the request order, not
  // per-shard grouping.
  EXPECT_EQ(c.Final().value().value, Joined({"s1/k1", "s0/k0", "s1/k3", "s0/k2"}));
  EXPECT_EQ(c.Final().value().seqno, 4);
  EXPECT_TRUE(c.Final().value().found);
  // Full incremental sequence: one merged preliminary, one merged final.
  EXPECT_EQ(c.views_delivered(), 2);
}

TEST(BindingRouter, CrossShardMultigetViewsStayMonotone) {
  RouterFixture f;
  auto c = f.client.Invoke(Operation::MultiGet({"k0", "k1"}));
  // Two views delivered and the last one strong: the pipeline would have suppressed the
  // weak view (views_delivered == 1) had the merged sequence arrived out of order.
  // (Callback-level ordering over a live loop is covered by the routing integration
  // test; this synchronous binding resolves before callbacks could attach.)
  EXPECT_EQ(c.views_delivered(), 2);
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kStrong);
  EXPECT_EQ(f.client.stats().stale_views_dropped, 0);
}

TEST(BindingRouter, AllShardsConfirmingYieldsMergedConfirmation) {
  auto s0 = std::make_shared<FakeShardBinding>("s0", /*confirm_finals=*/true);
  auto s1 = std::make_shared<FakeShardBinding>("s1", /*confirm_finals=*/true);
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{s0, s1}, SuffixShardFn(2));
  CorrectableClient client(router);

  auto c = client.Invoke(Operation::MultiGet({"k0", "k1"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  // Confirmation close: the final view carries the preliminary's merged value.
  EXPECT_TRUE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(c.Final().value().value, Joined({"s0/k0", "s1/k1"}));
  EXPECT_EQ(client.stats().confirmations, 1);
}

TEST(BindingRouter, MixedConfirmationReconstructsConfirmedShardsValue) {
  auto s0 = std::make_shared<FakeShardBinding>("s0", /*confirm_finals=*/true);
  auto s1 = std::make_shared<FakeShardBinding>("s1", /*confirm_finals=*/false);
  auto router = std::make_shared<BindingRouter>(
      std::vector<std::shared_ptr<Binding>>{s0, s1}, SuffixShardFn(2));
  CorrectableClient client(router);

  auto c = client.Invoke(Operation::MultiGet({"k0", "k1"}));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  // s0 confirmed (value reconstructed from its preliminary), s1 sent a full final: the
  // merged final is a full value, not a confirmation.
  EXPECT_FALSE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(c.Final().value().value, Joined({"s0/k0", "s1/k1"}));
}

TEST(BindingRouter, ShardFinalErrorFailsTheMergedFinal) {
  RouterFixture f;
  f.s1->fail_final = Status::Unavailable("shard 1 down");
  auto c = f.client.Invoke(Operation::MultiGet({"k0", "k1"}));
  ASSERT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.error().code(), StatusCode::kUnavailable);
  // The merged preliminary still got through before the final failed.
  EXPECT_EQ(c.views_delivered(), 1);
}

TEST(BindingRouter, EmptyMultigetRejected) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::MultiGet({}));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.error().code(), StatusCode::kInvalidArgument);
}

TEST(BindingRouter, WritesRouteByKey) {
  RouterFixture f;
  auto c = f.client.InvokeStrong(Operation::Put("k1", "v"));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(f.s0->plans, 0);
  EXPECT_EQ(f.s1->plans, 1);
}

}  // namespace
}  // namespace icg
