#include "src/correctables/consistency.h"

#include <gtest/gtest.h>

#include "src/correctables/operation.h"

namespace icg {
namespace {

TEST(ConsistencyLevels, TotalOrderWeakestToStrongest) {
  EXPECT_TRUE(IsStronger(ConsistencyLevel::kWeak, ConsistencyLevel::kCache));
  EXPECT_TRUE(IsStronger(ConsistencyLevel::kCausal, ConsistencyLevel::kWeak));
  EXPECT_TRUE(IsStronger(ConsistencyLevel::kStrong, ConsistencyLevel::kCausal));
  EXPECT_FALSE(IsStronger(ConsistencyLevel::kWeak, ConsistencyLevel::kWeak));
  EXPECT_TRUE(IsStrongerOrEqual(ConsistencyLevel::kWeak, ConsistencyLevel::kWeak));
  EXPECT_FALSE(IsStrongerOrEqual(ConsistencyLevel::kCache, ConsistencyLevel::kStrong));
}

TEST(ConsistencyLevels, Names) {
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kCache), "CACHE");
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kWeak), "WEAK");
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kCausal), "CAUSAL");
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kStrong), "STRONG");
}

TEST(ValidLevelSelection, AcceptsAscendingSupportedSubsets) {
  const std::vector<ConsistencyLevel> supported = {ConsistencyLevel::kWeak,
                                                   ConsistencyLevel::kStrong};
  EXPECT_TRUE(ValidLevelSelection({ConsistencyLevel::kWeak}, supported));
  EXPECT_TRUE(ValidLevelSelection({ConsistencyLevel::kStrong}, supported));
  EXPECT_TRUE(
      ValidLevelSelection({ConsistencyLevel::kWeak, ConsistencyLevel::kStrong}, supported));
}

TEST(ValidLevelSelection, RejectsEmpty) {
  EXPECT_FALSE(ValidLevelSelection({}, {ConsistencyLevel::kWeak}));
}

TEST(ValidLevelSelection, RejectsDescendingOrDuplicate) {
  const std::vector<ConsistencyLevel> supported = {ConsistencyLevel::kWeak,
                                                   ConsistencyLevel::kStrong};
  EXPECT_FALSE(
      ValidLevelSelection({ConsistencyLevel::kStrong, ConsistencyLevel::kWeak}, supported));
  EXPECT_FALSE(
      ValidLevelSelection({ConsistencyLevel::kWeak, ConsistencyLevel::kWeak}, supported));
}

TEST(ValidLevelSelection, RejectsUnsupported) {
  EXPECT_FALSE(ValidLevelSelection({ConsistencyLevel::kCausal},
                                   {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong}));
}

TEST(ValidLevelSelection, ThreeLevelBinding) {
  const std::vector<ConsistencyLevel> supported = {
      ConsistencyLevel::kCache, ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  EXPECT_TRUE(ValidLevelSelection(LevelVec(supported.begin(), supported.end()), supported));
  EXPECT_TRUE(ValidLevelSelection({ConsistencyLevel::kCache, ConsistencyLevel::kStrong},
                                  supported));
}

TEST(LevelsToString, FormatsList) {
  EXPECT_EQ(LevelsToString({ConsistencyLevel::kWeak, ConsistencyLevel::kStrong}),
            "[WEAK, STRONG]");
  EXPECT_EQ(LevelsToString({}), "[]");
}

TEST(Operation, Factories) {
  const Operation get = Operation::Get("k");
  EXPECT_EQ(get.type, OpType::kGet);
  EXPECT_EQ(get.key, "k");
  EXPECT_TRUE(get.IsRead());
  EXPECT_FALSE(get.IsQueueOp());

  const Operation put = Operation::Put("k", "v");
  EXPECT_EQ(put.type, OpType::kPut);
  EXPECT_EQ(put.value, "v");
  EXPECT_FALSE(put.IsRead());

  const Operation enq = Operation::Enqueue("q", "e");
  EXPECT_EQ(enq.type, OpType::kEnqueue);
  EXPECT_TRUE(enq.IsQueueOp());

  const Operation deq = Operation::Dequeue("q");
  EXPECT_EQ(deq.type, OpType::kDequeue);
  EXPECT_TRUE(deq.IsQueueOp());

  const Operation peek = Operation::Peek("q");
  EXPECT_EQ(peek.type, OpType::kPeek);
  EXPECT_TRUE(peek.IsRead());

  const Operation multi = Operation::MultiGet({"a", "b"});
  EXPECT_EQ(multi.type, OpType::kMultiGet);
  EXPECT_EQ(multi.keys.size(), 2u);
  EXPECT_TRUE(multi.IsRead());
}

TEST(Operation, WireBytesGrowWithPayload) {
  EXPECT_GT(Operation::Put("key", "0123456789").WireBytes(),
            Operation::Put("key", "").WireBytes());
  EXPECT_EQ(Operation::Put("key", "0123456789").WireBytes(),
            kRequestHeaderBytes + 3 + 10);
  EXPECT_GT(Operation::MultiGet({"a", "b", "c"}).WireBytes(),
            Operation::MultiGet({"a"}).WireBytes());
}

TEST(Operation, ToStringIsReadable) {
  EXPECT_EQ(Operation::Get("user1").ToString(), "GET(user1)");
  EXPECT_EQ(Operation::Put("k", "xyz").ToString(), "PUT(k, 3B)");
}

TEST(OpResultTest, WireBytesIncludeValue) {
  OpResult r;
  r.found = true;
  r.value = std::string(100, 'v');
  EXPECT_EQ(r.WireBytes(), kResponseHeaderBytes + 100);
}

TEST(OpResultTest, EqualityIsStructural) {
  OpResult a;
  a.found = true;
  a.value = "x";
  a.seqno = 3;
  OpResult b = a;
  EXPECT_EQ(a, b);
  b.seqno = 4;
  EXPECT_FALSE(a == b);
}

TEST(OpResultTest, ToStringVariants) {
  OpResult missing;
  EXPECT_EQ(missing.ToString(), "(not found)");
  OpResult queue_elem;
  queue_elem.found = true;
  queue_elem.value = "abc";
  queue_elem.seqno = 7;
  EXPECT_NE(queue_elem.ToString().find("seq=7"), std::string::npos);
}

}  // namespace
}  // namespace icg
