// CorrectableClient behaviour against a scriptable mock binding: level selection,
// response-to-view translation, confirmation handling, monotonicity enforcement against
// misbehaving storage, timeouts, and statistics.
#include "src/correctables/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace icg {
namespace {

// A binding whose responses are scripted by the test.
class MockBinding : public Binding {
 public:
  struct Call {
    Operation op;
    std::vector<ConsistencyLevel> levels;
    ResponseCallback callback;
  };

  std::string Name() const override { return "mock"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override { return supported_; }

  void SubmitOperation(const Operation& op, const std::vector<ConsistencyLevel>& levels,
                       ResponseCallback callback) override {
    calls_.push_back(Call{op, levels, std::move(callback)});
  }

  Call& last() { return calls_.back(); }
  size_t call_count() const { return calls_.size(); }

  std::vector<ConsistencyLevel> supported_ = {ConsistencyLevel::kWeak,
                                              ConsistencyLevel::kStrong};
  std::vector<Call> calls_;
};

OpResult Result(const std::string& value) {
  OpResult r;
  r.found = true;
  r.value = value;
  return r;
}

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : binding_(std::make_shared<MockBinding>()), client_(binding_) {}

  std::shared_ptr<MockBinding> binding_;
  CorrectableClient client_;
};

TEST_F(ClientTest, InvokeWeakRequestsWeakestLevel) {
  client_.InvokeWeak(Operation::Get("k"));
  ASSERT_EQ(binding_->call_count(), 1u);
  EXPECT_EQ(binding_->last().levels,
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak}));
}

TEST_F(ClientTest, InvokeStrongRequestsStrongestLevel) {
  client_.InvokeStrong(Operation::Get("k"));
  EXPECT_EQ(binding_->last().levels,
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kStrong}));
}

TEST_F(ClientTest, InvokeRequestsAllLevels) {
  client_.Invoke(Operation::Get("k"));
  EXPECT_EQ(binding_->last().levels, binding_->supported_);
}

TEST_F(ClientTest, InvokeWithSubsetPassesThrough) {
  client_.Invoke(Operation::Get("k"), {ConsistencyLevel::kWeak});
  EXPECT_EQ(binding_->last().levels,
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak}));
}

TEST_F(ClientTest, InvalidLevelSelectionFailsFast) {
  // Descending order is invalid.
  auto c = client_.Invoke(Operation::Get("k"),
                          {ConsistencyLevel::kStrong, ConsistencyLevel::kWeak});
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(binding_->call_count(), 0u);  // never reached the binding
}

TEST_F(ClientTest, UnsupportedLevelFailsFast) {
  auto c = client_.Invoke(Operation::Get("k"), {ConsistencyLevel::kCausal});
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(client_.stats().errors, 1);
}

TEST_F(ClientTest, EmptyLevelSelectionFailsFast) {
  auto c = client_.Invoke(Operation::Get("k"), {});
  EXPECT_EQ(c.state(), CorrectableState::kError);
}

TEST_F(ClientTest, PreliminaryThenFinalViews) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Result("v1"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);
  EXPECT_EQ(c.LatestView().value.value, "v1");
  call.callback(Result("v2"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().value, "v2");
  EXPECT_EQ(client_.stats().views_delivered, 2);
}

TEST_F(ClientTest, ConfirmationClosesWithPreliminaryValue) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Result("v1"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  call.callback(OpResult{}, ConsistencyLevel::kStrong, ResponseKind::kConfirmation);
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().value, "v1");
  EXPECT_TRUE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(client_.stats().confirmations, 1);
  EXPECT_EQ(client_.stats().divergences, 0);
}

TEST_F(ClientTest, DivergenceCounted) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Result("stale"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  call.callback(Result("fresh"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(client_.stats().divergences, 1);
  EXPECT_EQ(c.Final().value().value, "fresh");
}

TEST_F(ClientTest, MatchingFullFinalIsNotDivergence) {
  client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Result("same"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  call.callback(Result("same"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(client_.stats().divergences, 0);
}

TEST_F(ClientTest, WeakOnlyClosesAtWeakLevel) {
  auto c = client_.InvokeWeak(Operation::Get("k"));
  binding_->last().callback(Result("v"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kWeak);
}

TEST_F(ClientTest, ErrorOnFinalLevelFailsCorrectable) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Result("v1"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  call.callback(Status::Unavailable("no quorum"), ConsistencyLevel::kStrong,
                ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(client_.stats().errors, 1);
}

TEST_F(ClientTest, ErrorOnPreliminaryLevelIsTolerated) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Status::Unavailable("replica slow"), ConsistencyLevel::kWeak,
                ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);  // still waiting for the final
  call.callback(Result("v"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(client_.stats().errors, 0);
}

TEST_F(ClientTest, ReorderedWeakerViewDropped) {
  // A misbehaving binding delivers the strong view, then a stale weak view.
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.callback(Result("strong"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  call.callback(Result("weak-late"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  EXPECT_EQ(c.Final().value().value, "strong");  // unchanged
  EXPECT_EQ(client_.stats().stale_views_dropped, 1);
}

TEST_F(ClientTest, StatsCountInvocationKinds) {
  client_.InvokeWeak(Operation::Get("a"));
  client_.InvokeStrong(Operation::Get("b"));
  client_.Invoke(Operation::Get("c"));
  const ClientStats& s = client_.stats();
  EXPECT_EQ(s.invocations, 3);
  EXPECT_EQ(s.weak_invocations, 1);
  EXPECT_EQ(s.strong_invocations, 1);
  EXPECT_EQ(s.icg_invocations, 1);
}

TEST_F(ClientTest, ResetStatsZeroes) {
  client_.InvokeWeak(Operation::Get("a"));
  client_.ResetStats();
  EXPECT_EQ(client_.stats().invocations, 0);
}

TEST(ClientTimeout, FailsWhenNoFinalArrives) {
  EventLoop loop;
  auto binding = std::make_shared<MockBinding>();
  CorrectableClient client(binding, &loop);
  client.SetTimeout(Millis(100));

  auto c = client.Invoke(Operation::Get("k"));
  // Only a preliminary ever arrives.
  binding->last().callback(Result("v1"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  loop.RunFor(Millis(200));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kTimeout);
  EXPECT_EQ(client.stats().timeouts, 1);
}

TEST(ClientTimeout, CancelledWhenFinalArrives) {
  EventLoop loop;
  auto binding = std::make_shared<MockBinding>();
  CorrectableClient client(binding, &loop);
  client.SetTimeout(Millis(100));

  auto c = client.Invoke(Operation::Get("k"));
  binding->last().callback(Result("v"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  loop.RunFor(Millis(200));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(client.stats().timeouts, 0);
}

TEST(ClientTimeout, ViewTimestampsComeFromLoop) {
  EventLoop loop;
  auto binding = std::make_shared<MockBinding>();
  CorrectableClient client(binding, &loop);
  auto c = client.Invoke(Operation::Get("k"));
  loop.RunFor(Millis(7));
  binding->last().callback(Result("v"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(c.LatestView().delivered_at, Millis(7));
}

TEST(ClientThreeLevels, AllLevelsDeliveredInOrder) {
  auto binding = std::make_shared<MockBinding>();
  binding->supported_ = {ConsistencyLevel::kCache, ConsistencyLevel::kWeak,
                         ConsistencyLevel::kStrong};
  CorrectableClient client(binding);
  auto c = client.Invoke(Operation::Get("k"));
  auto& call = binding->last();
  std::vector<ConsistencyLevel> seen;
  c.OnUpdate([&](const View<OpResult>& v) { seen.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { seen.push_back(v.level); });
  call.callback(Result("a"), ConsistencyLevel::kCache, ResponseKind::kValue);
  call.callback(Result("b"), ConsistencyLevel::kWeak, ResponseKind::kValue);
  call.callback(Result("c"), ConsistencyLevel::kStrong, ResponseKind::kValue);
  EXPECT_EQ(seen, (std::vector<ConsistencyLevel>{ConsistencyLevel::kCache,
                                                 ConsistencyLevel::kWeak,
                                                 ConsistencyLevel::kStrong}));
}

}  // namespace
}  // namespace icg
