// CorrectableClient behaviour against a scriptable mock binding: level selection,
// response-to-view translation, confirmation handling, monotonicity enforcement against
// misbehaving storage, timeouts, and statistics.
#include "src/correctables/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace icg {
namespace {

// A binding whose responses are scripted by the test: the plan's single fetch step
// records the emitter so the test can deliver responses (including adversarially
// reordered ones) whenever it wants.
class MockBinding : public Binding {
 public:
  struct Call {
    Operation op;
    std::vector<ConsistencyLevel> levels;
    LevelEmitter emit;
  };

  std::string Name() const override { return "mock"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override { return supported_; }

  InvocationPlan PlanInvocation(const Operation& op, const LevelSet& levels) override {
    InvocationPlan plan;
    plan.AddSpan(levels.levels(),
                 [this, requested = levels.levels()](const Operation& planned,
                                                     LevelEmitter emit) {
                   calls_.push_back(Call{
                       planned,
                       std::vector<ConsistencyLevel>(requested.begin(), requested.end()),
                       std::move(emit)});
                 });
    (void)op;
    return plan;
  }

  Call& last() { return calls_.back(); }
  size_t call_count() const { return calls_.size(); }

  std::vector<ConsistencyLevel> supported_ = {ConsistencyLevel::kWeak,
                                              ConsistencyLevel::kStrong};
  std::vector<Call> calls_;
};

OpResult Result(const std::string& value) {
  OpResult r;
  r.found = true;
  r.value = value;
  return r;
}

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : binding_(std::make_shared<MockBinding>()), client_(binding_) {}

  std::shared_ptr<MockBinding> binding_;
  CorrectableClient client_;
};

TEST_F(ClientTest, InvokeWeakRequestsWeakestLevel) {
  client_.InvokeWeak(Operation::Get("k"));
  ASSERT_EQ(binding_->call_count(), 1u);
  EXPECT_EQ(binding_->last().levels,
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak}));
}

TEST_F(ClientTest, InvokeStrongRequestsStrongestLevel) {
  client_.InvokeStrong(Operation::Get("k"));
  EXPECT_EQ(binding_->last().levels,
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kStrong}));
}

TEST_F(ClientTest, InvokeRequestsAllLevels) {
  client_.Invoke(Operation::Get("k"));
  EXPECT_EQ(binding_->last().levels, binding_->supported_);
}

TEST_F(ClientTest, InvokeWithSubsetPassesThrough) {
  client_.Invoke(Operation::Get("k"), {ConsistencyLevel::kWeak});
  EXPECT_EQ(binding_->last().levels,
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak}));
}

TEST_F(ClientTest, InvalidLevelSelectionFailsFast) {
  // Descending order is invalid.
  auto c = client_.Invoke(Operation::Get("k"),
                          {ConsistencyLevel::kStrong, ConsistencyLevel::kWeak});
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(binding_->call_count(), 0u);  // never reached the binding
}

TEST_F(ClientTest, UnsupportedLevelFailsFast) {
  auto c = client_.Invoke(Operation::Get("k"), {ConsistencyLevel::kCausal});
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(client_.stats().errors, 1);
}

TEST_F(ClientTest, EmptyLevelSelectionFailsFast) {
  auto c = client_.Invoke(Operation::Get("k"), {});
  EXPECT_EQ(c.state(), CorrectableState::kError);
}

TEST_F(ClientTest, PreliminaryThenFinalViews) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kWeak, Result("v1"));
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);
  EXPECT_EQ(c.LatestView().value.value, "v1");
  call.emit(ConsistencyLevel::kStrong, Result("v2"));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().value, "v2");
  EXPECT_EQ(client_.stats().views_delivered, 2);
}

TEST_F(ClientTest, ConfirmationClosesWithPreliminaryValue) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kWeak, Result("v1"));
  call.emit(ConsistencyLevel::kStrong, OpResult{}, ResponseKind::kConfirmation);
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().value, "v1");
  EXPECT_TRUE(c.LatestView().confirmed_preliminary);
  EXPECT_EQ(client_.stats().confirmations, 1);
  EXPECT_EQ(client_.stats().divergences, 0);
}

TEST_F(ClientTest, DivergenceCounted) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kWeak, Result("stale"));
  call.emit(ConsistencyLevel::kStrong, Result("fresh"));
  EXPECT_EQ(client_.stats().divergences, 1);
  EXPECT_EQ(c.Final().value().value, "fresh");
}

TEST_F(ClientTest, MatchingFullFinalIsNotDivergence) {
  client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kWeak, Result("same"));
  call.emit(ConsistencyLevel::kStrong, Result("same"));
  EXPECT_EQ(client_.stats().divergences, 0);
}

TEST_F(ClientTest, WeakOnlyClosesAtWeakLevel) {
  auto c = client_.InvokeWeak(Operation::Get("k"));
  binding_->last().emit(ConsistencyLevel::kWeak, Result("v"));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kWeak);
}

TEST_F(ClientTest, ErrorOnFinalLevelFailsCorrectable) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kWeak, Result("v1"));
  call.emit(ConsistencyLevel::kStrong, Status::Unavailable("no quorum"));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(client_.stats().errors, 1);
}

TEST_F(ClientTest, ErrorOnPreliminaryLevelIsTolerated) {
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kWeak, Status::Unavailable("replica slow"));
  EXPECT_EQ(c.state(), CorrectableState::kUpdating);  // still waiting for the final
  call.emit(ConsistencyLevel::kStrong, Result("v"));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(client_.stats().errors, 0);
}

TEST_F(ClientTest, ReorderedWeakerViewDropped) {
  // A misbehaving binding delivers the strong view, then a stale weak view.
  auto c = client_.Invoke(Operation::Get("k"));
  auto& call = binding_->last();
  call.emit(ConsistencyLevel::kStrong, Result("strong"));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  call.emit(ConsistencyLevel::kWeak, Result("weak-late"));
  EXPECT_EQ(c.Final().value().value, "strong");  // unchanged
  EXPECT_EQ(client_.stats().stale_views_dropped, 1);
}

TEST_F(ClientTest, StatsCountInvocationKinds) {
  client_.InvokeWeak(Operation::Get("a"));
  client_.InvokeStrong(Operation::Get("b"));
  client_.Invoke(Operation::Get("c"));
  const ClientStats& s = client_.stats();
  EXPECT_EQ(s.invocations, 3);
  EXPECT_EQ(s.weak_invocations, 1);
  EXPECT_EQ(s.strong_invocations, 1);
  EXPECT_EQ(s.icg_invocations, 1);
}

TEST_F(ClientTest, ResetStatsZeroes) {
  client_.InvokeWeak(Operation::Get("a"));
  client_.ResetStats();
  EXPECT_EQ(client_.stats().invocations, 0);
}

TEST(ClientTimeout, FailsWhenNoFinalArrives) {
  EventLoop loop;
  auto binding = std::make_shared<MockBinding>();
  CorrectableClient client(binding, &loop);
  client.SetTimeout(Millis(100));

  auto c = client.Invoke(Operation::Get("k"));
  // Only a preliminary ever arrives.
  binding->last().emit(ConsistencyLevel::kWeak, Result("v1"));
  loop.RunFor(Millis(200));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kTimeout);
  EXPECT_EQ(client.stats().timeouts, 1);
}

TEST(ClientTimeout, CancelledWhenFinalArrives) {
  EventLoop loop;
  auto binding = std::make_shared<MockBinding>();
  CorrectableClient client(binding, &loop);
  client.SetTimeout(Millis(100));

  auto c = client.Invoke(Operation::Get("k"));
  binding->last().emit(ConsistencyLevel::kStrong, Result("v"));
  loop.RunFor(Millis(200));
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(client.stats().timeouts, 0);
}

TEST(ClientTimeout, ViewTimestampsComeFromLoop) {
  EventLoop loop;
  auto binding = std::make_shared<MockBinding>();
  CorrectableClient client(binding, &loop);
  auto c = client.Invoke(Operation::Get("k"));
  loop.RunFor(Millis(7));
  binding->last().emit(ConsistencyLevel::kStrong, Result("v"));
  EXPECT_EQ(c.LatestView().delivered_at, Millis(7));
}

TEST(ClientThreeLevels, AllLevelsDeliveredInOrder) {
  auto binding = std::make_shared<MockBinding>();
  binding->supported_ = {ConsistencyLevel::kCache, ConsistencyLevel::kWeak,
                         ConsistencyLevel::kStrong};
  CorrectableClient client(binding);
  auto c = client.Invoke(Operation::Get("k"));
  auto& call = binding->last();
  std::vector<ConsistencyLevel> seen;
  c.OnUpdate([&](const View<OpResult>& v) { seen.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { seen.push_back(v.level); });
  call.emit(ConsistencyLevel::kCache, Result("a"));
  call.emit(ConsistencyLevel::kWeak, Result("b"));
  call.emit(ConsistencyLevel::kStrong, Result("c"));
  EXPECT_EQ(seen, (std::vector<ConsistencyLevel>{ConsistencyLevel::kCache,
                                                 ConsistencyLevel::kWeak,
                                                 ConsistencyLevel::kStrong}));
}

// Adversarial response reordering: a misbehaving binding delivers STRONG before the
// weaker levels. The pipeline must surface exactly one view per level actually
// deliverable (only STRONG here), suppress the late weaker views, and never regress
// the delivered level.
TEST(ClientReordering, StrongFirstYieldsOneViewPerSurfacedLevel) {
  auto binding = std::make_shared<MockBinding>();
  binding->supported_ = {ConsistencyLevel::kCache, ConsistencyLevel::kWeak,
                         ConsistencyLevel::kStrong};
  CorrectableClient client(binding);
  auto c = client.Invoke(Operation::Get("k"));

  std::vector<ConsistencyLevel> surfaced;
  c.OnUpdate([&](const View<OpResult>& v) { surfaced.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { surfaced.push_back(v.level); });

  auto& call = binding->last();
  call.emit(ConsistencyLevel::kStrong, Result("strong"));
  call.emit(ConsistencyLevel::kWeak, Result("weak-late"));
  call.emit(ConsistencyLevel::kCache, Result("cache-late"));

  EXPECT_EQ(surfaced, (std::vector<ConsistencyLevel>{ConsistencyLevel::kStrong}));
  EXPECT_EQ(client.stats().views_delivered, 1);
  EXPECT_EQ(client.stats().stale_views_dropped, 2);
  EXPECT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kStrong);  // no regression
  EXPECT_EQ(c.Final().value().value, "strong");
}

// Partial reorder: WEAK lands, then STRONG, then the stale CACHE view. Every level that
// can legally surface does so exactly once, in ascending order.
TEST(ClientReordering, LateCacheViewAfterWeakAndStrongIsDropped) {
  auto binding = std::make_shared<MockBinding>();
  binding->supported_ = {ConsistencyLevel::kCache, ConsistencyLevel::kWeak,
                         ConsistencyLevel::kStrong};
  CorrectableClient client(binding);
  auto c = client.Invoke(Operation::Get("k"));

  std::vector<ConsistencyLevel> surfaced;
  c.OnUpdate([&](const View<OpResult>& v) { surfaced.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { surfaced.push_back(v.level); });

  auto& call = binding->last();
  call.emit(ConsistencyLevel::kWeak, Result("w"));
  call.emit(ConsistencyLevel::kCache, Result("stale-cache"));  // regressed: dropped
  call.emit(ConsistencyLevel::kStrong, Result("s"));

  EXPECT_EQ(surfaced, (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak,
                                                     ConsistencyLevel::kStrong}));
  EXPECT_EQ(client.stats().stale_views_dropped, 1);
  EXPECT_EQ(client.stats().views_delivered, 2);
}

}  // namespace
}  // namespace icg
