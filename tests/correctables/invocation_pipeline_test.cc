// InvocationPipeline behaviour that is not visible through the plain client surface:
// same-tick read coalescing (batch formation, fan-out, history replay to late joiners),
// plan rejection, and suppression of emissions at unrequested levels.
#include "src/correctables/invocation_pipeline.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/correctables/client.h"

namespace icg {
namespace {

OpResult Result(const std::string& value) {
  OpResult r;
  r.found = true;
  r.value = value;
  return r;
}

// Two-level binding over a scriptable asynchronous "store": every fetch is counted and
// answered through the event loop, so reads issued in the same tick are observably
// coalesced (or not) by the fetch count.
class CountingBinding : public Binding {
 public:
  explicit CountingBinding(EventLoop* loop) : loop_(loop) {}

  std::string Name() const override { return "counting"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation&, const LevelSet& levels) override {
    InvocationPlan plan;
    const bool icg =
        levels.Contains(ConsistencyLevel::kWeak) && levels.Contains(ConsistencyLevel::kStrong);
    plan.AddSpan(levels.levels(), [this, icg, strongest = levels.strongest()](
                                      const Operation& op, LevelEmitter emit) {
      fetches_++;
      if (icg) {
        loop_->Schedule(Millis(1), [emit, key = op.key]() {
          emit(ConsistencyLevel::kWeak, Result("weak:" + key));
        });
      }
      loop_->Schedule(Millis(2), [emit, strongest, key = op.key]() {
        emit(strongest, Result("strong:" + key));
      });
    });
    return plan;
  }

  int fetches_ = 0;

 private:
  EventLoop* loop_;
};

class CoalescingTest : public ::testing::Test {
 protected:
  CoalescingTest()
      : binding_(std::make_shared<CountingBinding>(&loop_)), client_(binding_, &loop_) {}

  EventLoop loop_;
  std::shared_ptr<CountingBinding> binding_;
  CorrectableClient client_;
};

TEST_F(CoalescingTest, SameTickSameKeyReadsShareOneRoundTrip) {
  auto a = client_.Invoke(Operation::Get("k"));
  auto b = client_.Invoke(Operation::Get("k"));
  loop_.Run();

  EXPECT_EQ(binding_->fetches_, 1);  // one store round-trip served both
  EXPECT_EQ(a.Final().value().value, "strong:k");
  EXPECT_EQ(b.Final().value().value, "strong:k");
  EXPECT_EQ(a.views_delivered(), 2);  // weak + strong each
  EXPECT_EQ(b.views_delivered(), 2);
  EXPECT_EQ(client_.stats().coalesced_reads, 1);
  EXPECT_EQ(client_.stats().batched_invocations, 1);
  EXPECT_EQ(client_.stats().views_delivered, 4);
}

TEST_F(CoalescingTest, ThreeWayBatchCountsOneBatchTwoCoalesced) {
  client_.Invoke(Operation::Get("k"));
  client_.Invoke(Operation::Get("k"));
  client_.Invoke(Operation::Get("k"));
  loop_.Run();
  EXPECT_EQ(binding_->fetches_, 1);
  EXPECT_EQ(client_.stats().batched_invocations, 1);
  EXPECT_EQ(client_.stats().coalesced_reads, 2);
}

TEST_F(CoalescingTest, DifferentKeysDoNotCoalesce) {
  client_.Invoke(Operation::Get("k1"));
  client_.Invoke(Operation::Get("k2"));
  loop_.Run();
  EXPECT_EQ(binding_->fetches_, 2);
  EXPECT_EQ(client_.stats().coalesced_reads, 0);
}

TEST_F(CoalescingTest, DifferentLevelSetsDoNotCoalesce) {
  // An ICG read and a strong-only read need different view sequences.
  auto icg = client_.Invoke(Operation::Get("k"));
  auto strong = client_.InvokeStrong(Operation::Get("k"));
  loop_.Run();
  EXPECT_EQ(binding_->fetches_, 2);
  EXPECT_EQ(client_.stats().coalesced_reads, 0);
  EXPECT_EQ(icg.views_delivered(), 2);
  EXPECT_EQ(strong.views_delivered(), 1);
}

TEST_F(CoalescingTest, LaterTickDoesNotCoalesce) {
  client_.Invoke(Operation::Get("k"));
  loop_.RunFor(Micros(1));  // advance virtual time past the submission tick
  client_.Invoke(Operation::Get("k"));
  loop_.Run();
  EXPECT_EQ(binding_->fetches_, 2);
  EXPECT_EQ(client_.stats().coalesced_reads, 0);
}

TEST_F(CoalescingTest, WritesDoNotCoalesce) {
  client_.InvokeStrong(Operation::Put("k", "v"));
  client_.InvokeStrong(Operation::Put("k", "v"));
  loop_.Run();
  EXPECT_EQ(binding_->fetches_, 2);
  EXPECT_EQ(client_.stats().coalesced_reads, 0);
}

TEST(CoalescingNoLoop, SynchronousClientsNeverCoalesce) {
  // Without an event loop there is no tick to coalesce within.
  EventLoop loop;  // only drives the binding; the client runs loop-less
  auto binding = std::make_shared<CountingBinding>(&loop);
  CorrectableClient client(binding);
  client.Invoke(Operation::Get("k"));
  client.Invoke(Operation::Get("k"));
  loop.Run();
  EXPECT_EQ(binding->fetches_, 2);
  EXPECT_EQ(client.stats().coalesced_reads, 0);
}

// A cache-over-store binding: the CACHE level resolves synchronously during submission,
// the STRONG level via the loop. A same-tick joiner must still observe the cache view —
// the pipeline replays the batch history to late joiners.
class SyncCacheBinding : public Binding {
 public:
  explicit SyncCacheBinding(EventLoop* loop) : loop_(loop) {}

  std::string Name() const override { return "sync-cache"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kCache, ConsistencyLevel::kStrong};
  }

  InvocationPlan PlanInvocation(const Operation&, const LevelSet& levels) override {
    InvocationPlan plan;
    if (levels.Contains(ConsistencyLevel::kCache)) {
      plan.AddStep(ConsistencyLevel::kCache, [this](const Operation&, LevelEmitter emit) {
        cache_fetches_++;
        emit(ConsistencyLevel::kCache, Result("cached"));
      });
    }
    if (levels.Contains(ConsistencyLevel::kStrong)) {
      plan.AddStep(ConsistencyLevel::kStrong, [this](const Operation&, LevelEmitter emit) {
        store_fetches_++;
        loop_->Schedule(Millis(1),
                        [emit]() { emit(ConsistencyLevel::kStrong, Result("fresh")); });
      });
    }
    return plan;
  }

  int cache_fetches_ = 0;
  int store_fetches_ = 0;

 private:
  EventLoop* loop_;
};

TEST(CoalescingReplay, SynchronousViewsReplayedToLateJoiners) {
  EventLoop loop;
  auto binding = std::make_shared<SyncCacheBinding>(&loop);
  CorrectableClient client(binding, &loop);

  auto leader = client.Invoke(Operation::Get("k"));
  ASSERT_TRUE(leader.HasView());  // cache view surfaced synchronously
  auto joiner = client.Invoke(Operation::Get("k"));
  // The joiner missed the live cache emission but must receive it from history.
  ASSERT_TRUE(joiner.HasView());
  EXPECT_EQ(joiner.LatestView().level, ConsistencyLevel::kCache);
  EXPECT_EQ(joiner.LatestView().value.value, "cached");

  loop.Run();
  EXPECT_EQ(binding->cache_fetches_, 1);
  EXPECT_EQ(binding->store_fetches_, 1);
  EXPECT_EQ(leader.views_delivered(), 2);
  EXPECT_EQ(joiner.views_delivered(), 2);
  EXPECT_EQ(leader.Final().value().value, "fresh");
  EXPECT_EQ(joiner.Final().value().value, "fresh");
}

// A scriptable binding in the style of the client tests, for pathological emissions.
class ScriptedBinding : public Binding {
 public:
  std::string Name() const override { return "scripted"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }
  InvocationPlan PlanInvocation(const Operation&, const LevelSet& levels) override {
    InvocationPlan plan;
    plan.AddSpan(levels.levels(), [this](const Operation&, LevelEmitter emit) {
      emitters_.push_back(std::move(emit));
    });
    return plan;
  }
  std::vector<LevelEmitter> emitters_;
};

TEST(PipelineValidation, EmissionAtUnrequestedLevelIsDropped) {
  auto binding = std::make_shared<ScriptedBinding>();
  CorrectableClient client(binding);
  auto c = client.InvokeStrong(Operation::Get("k"));  // only STRONG requested
  auto& emit = binding->emitters_.back();
  emit(ConsistencyLevel::kWeak, Result("never-asked-for"));
  EXPECT_FALSE(c.HasView());  // dropped before reaching the Correctable
  emit(ConsistencyLevel::kStrong, Result("s"));
  EXPECT_EQ(c.Final().value().value, "s");
  EXPECT_EQ(client.stats().views_delivered, 1);
}

class RejectingBinding : public Binding {
 public:
  std::string Name() const override { return "rejecting"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }
  InvocationPlan PlanInvocation(const Operation&, const LevelSet&) override {
    return InvocationPlan::Rejected(Status::InvalidArgument("unsupported operation"));
  }
};

TEST(PipelineValidation, RejectedPlanFailsWithoutFetching) {
  auto binding = std::make_shared<RejectingBinding>();
  CorrectableClient client(binding);
  auto c = client.Invoke(Operation::Get("k"));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.stats().errors, 1);
}

// A buggy binding whose plan never covers the strongest requested level (here: no steps
// at all, or only a WEAK step for an ICG request). Without the coverage check the
// Correctable would hang in kUpdating forever — with no loop there is not even a
// timeout to save it.
class UnderCoveringBinding : public Binding {
 public:
  std::string Name() const override { return "under-covering"; }
  std::vector<ConsistencyLevel> SupportedLevels() const override {
    return {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong};
  }
  InvocationPlan PlanInvocation(const Operation&, const LevelSet& levels) override {
    InvocationPlan plan;
    if (levels.Contains(ConsistencyLevel::kWeak)) {
      plan.AddStep(ConsistencyLevel::kWeak, [](const Operation&, LevelEmitter emit) {
        emit(ConsistencyLevel::kWeak, Result("w"));
      });
    }
    return plan;  // never declares the strongest level
  }
};

TEST(PipelineValidation, PlanMissingFinalLevelFailsFastInsteadOfHanging) {
  auto binding = std::make_shared<UnderCoveringBinding>();
  CorrectableClient client(binding);

  auto icg = client.Invoke(Operation::Get("k"));  // WEAK step only, STRONG uncovered
  EXPECT_EQ(icg.state(), CorrectableState::kError);
  EXPECT_EQ(icg.Final().status().code(), StatusCode::kInternal);

  auto strong = client.InvokeStrong(Operation::Get("k"));  // empty plan
  EXPECT_EQ(strong.state(), CorrectableState::kError);
  EXPECT_EQ(strong.Final().status().code(), StatusCode::kInternal);
  EXPECT_EQ(client.stats().errors, 2);

  // The raw binding-level path reports the same protocol error.
  Status raw;
  binding->SubmitOperation(Operation::Get("k"),
                           {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong},
                           [&](StatusOr<OpResult> r, ConsistencyLevel level, ResponseKind) {
                             raw = r.status();
                             EXPECT_EQ(level, ConsistencyLevel::kStrong);
                           });
  EXPECT_EQ(raw.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace icg
