// Runtime batch reconfiguration: SetConfig must re-arm every pending cohort against
// the new window without dropping or double-flushing a single waiter. This is the
// safety contract the orchestrator's widen/shrink actuator leans on — it reconfigures
// live pipelines with cohorts mid-window, so every edge (shrink past the deadline,
// shrink-to-0, widen, cap shrink) has to flush exactly once.
#include "src/correctables/batch_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/correctables/consistency.h"
#include "src/correctables/operation.h"
#include "src/sim/event_loop.h"

namespace icg {
namespace {

LevelVec StrongOnly() {
  LevelVec levels;
  levels.push_back(ConsistencyLevel::kStrong);
  return levels;
}

// Records every flushed cohort with its flush time so tests can assert both delivery
// (each admitted op appears exactly once) and timing (deadlines re-derive from the
// cohort's original open time, not from the reconfiguration instant).
struct Recorder {
  struct Flushed {
    SimTime at;
    BatchScheduler::Cohort cohort;
  };

  explicit Recorder(EventLoop* loop) : loop(loop) {}

  BatchScheduler::FlushFn Fn() {
    return [this](BatchScheduler::Cohort cohort) {
      flushed.push_back(Flushed{loop->Now(), std::move(cohort)});
    };
  }

  size_t TotalOps() const {
    size_t total = 0;
    for (const Flushed& f : flushed) total += f.cohort.ops.size();
    return total;
  }

  EventLoop* loop;
  std::vector<Flushed> flushed;
};

void AdmitGets(BatchScheduler& scheduler, int count, const std::string& prefix) {
  for (int i = 0; i < count; ++i) {
    scheduler.Admit(/*is_read=*/true, "scope", StrongOnly(),
                    Operation::Get(prefix + std::to_string(i)),
                    std::make_shared<int>(i));
  }
}

TEST(BatchReconfig, ShrinkMidCohortReArmsFromTheOriginalOpenTime) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{/*batch_window=*/Millis(20), /*max_batch_ops=*/128});

  loop.Schedule(0, [&] { AdmitGets(scheduler, 3, "k"); });
  // At t=2ms, shrink 20ms -> 5ms: the cohort opened at t=0, so its new deadline is
  // t=5ms — NOT 2ms+5ms=7ms, and certainly not the original 20ms.
  loop.Schedule(Millis(2), [&] {
    scheduler.SetConfig(BatchConfig{Millis(5), 128});
  });
  loop.RunUntil(Millis(30));

  ASSERT_EQ(recorder.flushed.size(), 1u);
  EXPECT_EQ(recorder.flushed[0].at, Millis(5));
  EXPECT_EQ(recorder.flushed[0].cohort.ops.size(), 3u);
  EXPECT_EQ(scheduler.pending_cohorts(), 0u);
}

TEST(BatchReconfig, ShrinkToZeroFlushesPendingCohortsSynchronously) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{Millis(20), 128});

  loop.Schedule(0, [&] {
    AdmitGets(scheduler, 4, "r");
    scheduler.Admit(/*is_read=*/false, "scope", StrongOnly(), Operation::Put("w0", "v"),
                    std::make_shared<int>(0));
  });
  loop.Schedule(Millis(3), [&] {
    // Window collapses to 0 with two cohorts (reads + writes) mid-window: both must
    // flush inside this SetConfig call, not at some later timer.
    scheduler.SetConfig(BatchConfig{0, 128});
    EXPECT_EQ(scheduler.pending_cohorts(), 0u);
    EXPECT_EQ(recorder.TotalOps(), 5u);
  });
  loop.RunUntil(Millis(30));

  ASSERT_EQ(recorder.flushed.size(), 2u);
  EXPECT_EQ(recorder.flushed[0].at, Millis(3));
  EXPECT_EQ(recorder.flushed[1].at, Millis(3));
  EXPECT_EQ(recorder.TotalOps(), 5u);  // nothing dropped, nothing flushed twice
}

TEST(BatchReconfig, ShrinkPastTheDeadlineFlushesImmediately) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{Millis(20), 128});

  loop.Schedule(0, [&] { AdmitGets(scheduler, 2, "k"); });
  // At t=8ms, shrink to 5ms: the re-derived deadline (opened + 5ms = 5ms) is already
  // in the past, so the cohort flushes synchronously rather than waiting or dying.
  loop.Schedule(Millis(8), [&] { scheduler.SetConfig(BatchConfig{Millis(5), 128}); });
  loop.RunUntil(Millis(30));

  ASSERT_EQ(recorder.flushed.size(), 1u);
  EXPECT_EQ(recorder.flushed[0].at, Millis(8));
  EXPECT_EQ(recorder.flushed[0].cohort.ops.size(), 2u);
}

TEST(BatchReconfig, WidenMidCohortExtendsTheDeadline) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{Millis(1), 128});

  loop.Schedule(0, [&] {
    AdmitGets(scheduler, 2, "k");
    // Widen 1ms -> 20ms in the same tick the cohort opened: the old 1ms timer must be
    // cancelled (no early flush) and the cohort holds until opened + 20ms.
    scheduler.SetConfig(BatchConfig{Millis(20), 128});
  });
  loop.Schedule(Millis(10), [&] { AdmitGets(scheduler, 1, "late"); });
  loop.RunUntil(Millis(40));

  ASSERT_EQ(recorder.flushed.size(), 1u);
  EXPECT_EQ(recorder.flushed[0].at, Millis(20));
  EXPECT_EQ(recorder.flushed[0].cohort.ops.size(), 3u);  // the late admission rode along
}

TEST(BatchReconfig, ShrinkingTheOpsCapFlushesOversizedCohorts) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{Millis(20), 128});

  loop.Schedule(0, [&] { AdmitGets(scheduler, 6, "k"); });
  loop.Schedule(Millis(2), [&] {
    // Same window, tighter cap: a pending cohort already at/over the new cap must not
    // sit out the rest of the window holding more ops than the cap allows.
    scheduler.SetConfig(BatchConfig{Millis(20), /*max_batch_ops=*/4});
  });
  loop.RunUntil(Millis(40));

  ASSERT_EQ(recorder.flushed.size(), 1u);
  EXPECT_EQ(recorder.flushed[0].at, Millis(2));
  EXPECT_EQ(recorder.flushed[0].cohort.ops.size(), 6u);
}

TEST(BatchReconfig, RepeatedReconfigurationNeverDropsOrDuplicatesWaiters) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{Millis(10), 128});

  // A churn storm: admissions interleaved with widens and shrinks every millisecond.
  // Whatever the timers did, exactly the 12 admitted ops come out exactly once.
  const std::vector<SimDuration> windows = {Millis(10), Millis(3),  Millis(25),
                                            Millis(1),  Millis(15), 0};
  for (int t = 0; t < 6; ++t) {
    loop.Schedule(Millis(t), [&scheduler, t] {
      AdmitGets(scheduler, 2, "t" + std::to_string(t) + "-");
    });
    loop.Schedule(Millis(t) + 500, [&scheduler, &windows, t] {
      scheduler.SetConfig(BatchConfig{windows[static_cast<size_t>(t)], 128});
    });
  }
  loop.RunUntil(Millis(100));

  EXPECT_EQ(recorder.TotalOps(), 12u);
  EXPECT_EQ(scheduler.pending_cohorts(), 0u);
  EXPECT_EQ(scheduler.pending_ops(), 0u);
}

TEST(BatchReconfig, SetConfigWithNoPendingCohortsOnlyChangesFutureAdmissions) {
  EventLoop loop;
  Recorder recorder(&loop);
  BatchScheduler scheduler(&loop, recorder.Fn());
  scheduler.SetConfig(BatchConfig{Millis(5), 128});
  EXPECT_TRUE(scheduler.enabled());
  scheduler.SetConfig(BatchConfig{0, 128});
  EXPECT_FALSE(scheduler.enabled());
  EXPECT_EQ(recorder.flushed.size(), 0u);
}

}  // namespace
}  // namespace icg
