// Blockchain binding: multi-view confirmation tracking through the Correctables API.
#include "src/bindings/blockchain_binding.h"

#include <gtest/gtest.h>

#include "src/correctables/client.h"
#include "src/stores/chain_sim.h"

namespace icg {
namespace {

ChainConfig FastChain(double orphan_probability = 0.0) {
  ChainConfig c;
  c.mean_block_interval = Seconds(10);
  c.orphan_probability = orphan_probability;
  c.confirm_depth = 6;
  return c;
}

class BlockchainBindingTest : public ::testing::Test {
 protected:
  BlockchainBindingTest()
      : chain_(&loop_, FastChain(), 9),
        binding_(std::make_shared<BlockchainBinding>(&chain_)),
        client_(binding_, &loop_) {
    chain_.Start();
  }

  EventLoop loop_;
  ChainSim chain_;
  std::shared_ptr<BlockchainBinding> binding_;
  CorrectableClient client_;
};

TEST_F(BlockchainBindingTest, InvokeStreamsConfirmationsThenCloses) {
  std::vector<int64_t> confirmations;
  auto c = client_.Invoke(Operation::Put("tx1", "payload"));
  c.OnUpdate([&](const View<OpResult>& v) { confirmations.push_back(v.value.seqno); });
  loop_.RunFor(Seconds(300));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().seqno, 6);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kStrong);
  // Preliminary views 1..5 (6 closes the correctable).
  EXPECT_EQ(confirmations, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST_F(BlockchainBindingTest, InvokeWeakClosesAtFirstConfirmation) {
  auto c = client_.InvokeWeak(Operation::Put("tx1", "payload"));
  loop_.RunFor(Seconds(100));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().seqno, 1);
  EXPECT_EQ(c.LatestView().level, ConsistencyLevel::kWeak);
}

TEST_F(BlockchainBindingTest, InvokeStrongSkipsIntermediateViews) {
  auto c = client_.InvokeStrong(Operation::Put("tx1", "payload"));
  loop_.RunFor(Seconds(300));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.views_delivered(), 1);
  EXPECT_EQ(c.Final().value().seqno, 6);
}

TEST_F(BlockchainBindingTest, NonPutRejected) {
  auto c = client_.InvokeStrong(Operation::Get("balance"));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kInvalidArgument);
}

TEST(BlockchainBindingReorg, RegressionsDeliveredAsRepeatedWeakViews) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(/*orphan_probability=*/0.4), 11);
  chain.Start();
  auto binding = std::make_shared<BlockchainBinding>(&chain);
  CorrectableClient client(binding, &loop);

  std::vector<int64_t> seen;
  auto c = client.Invoke(Operation::Put("tx1", "payload"));
  c.OnUpdate([&](const View<OpResult>& v) { seen.push_back(v.value.seqno); });
  loop.RunFor(Seconds(3000));
  ASSERT_EQ(c.state(), CorrectableState::kFinal);
  EXPECT_EQ(c.Final().value().seqno, 6);
  // With heavy orphaning some prefix of the stream is non-monotonic; the API contract
  // (same-level repeated updates) makes that legal. The stream must end below 6.
  ASSERT_FALSE(seen.empty());
  for (const int64_t conf : seen) {
    EXPECT_GE(conf, 0);
    EXPECT_LT(conf, 6);
  }
}

}  // namespace
}  // namespace icg
