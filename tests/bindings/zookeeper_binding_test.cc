// ZooKeeper binding: queue ops over weak/strong levels, the weak-only background-commit
// semantics used by the ticket fast path, and operation validation.
#include "src/bindings/zookeeper_binding.h"

#include <gtest/gtest.h>

#include "src/harness/deployment.h"

namespace icg {
namespace {

class ZkBindingTest : public ::testing::Test {
 protected:
  ZkBindingTest() : world_(1, 0.0) { stack_ = MakeZooKeeperStack(world_, ZabConfig{}); }

  SimWorld world_;
  std::optional<ZooKeeperStack> stack_;
};

TEST_F(ZkBindingTest, AdvertisesWeakAndStrong) {
  EXPECT_EQ(stack_->binding->SupportedLevels(),
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak, ConsistencyLevel::kStrong}));
}

TEST_F(ZkBindingTest, IcgEnqueueDeliversBothLevels) {
  std::vector<ConsistencyLevel> seen;
  stack_->binding->SubmitOperation(
      Operation::Enqueue("q", "e"), {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong},
      [&](StatusOr<OpResult> r, ConsistencyLevel level, ResponseKind) {
        ASSERT_TRUE(r.ok());
        seen.push_back(level);
      });
  world_.loop().Run();
  EXPECT_EQ(seen, (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak,
                                                 ConsistencyLevel::kStrong}));
}

TEST_F(ZkBindingTest, StrongOnlyEnqueueSingleView) {
  int callbacks = 0;
  stack_->binding->SubmitOperation(Operation::Enqueue("q", "e"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult>, ConsistencyLevel level,
                                       ResponseKind) {
                                     callbacks++;
                                     EXPECT_EQ(level, ConsistencyLevel::kStrong);
                                   });
  world_.loop().Run();
  EXPECT_EQ(callbacks, 1);
}

TEST_F(ZkBindingTest, WeakOnlyEnqueueReturnsFastAndCommitsInBackground) {
  stack_->cluster->PreloadQueue("q", 0, "t");
  SimTime responded_at = 0;
  stack_->binding->SubmitOperation(Operation::Enqueue("q", "e"), {ConsistencyLevel::kWeak},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel level,
                                       ResponseKind) {
                                     ASSERT_TRUE(r.ok());
                                     EXPECT_EQ(level, ConsistencyLevel::kWeak);
                                     responded_at = world_.loop().Now();
                                   });
  world_.loop().Run();
  // The weak response arrives at ~client-session RTT, far before the commit.
  EXPECT_LT(responded_at, Millis(30));
  // "The dequeue completes in the background": the element is eventually durable.
  for (const auto& server : stack_->cluster->servers()) {
    EXPECT_EQ(server->LocalQueue("q").Size(), 1u);
  }
}

TEST_F(ZkBindingTest, WeakOnlyDequeueDrainsInBackground) {
  stack_->cluster->PreloadQueue("q", 3, "t");
  StatusOr<OpResult> weak(Status::Internal("none"));
  stack_->binding->SubmitOperation(Operation::Dequeue("q"), {ConsistencyLevel::kWeak},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel,
                                       ResponseKind) { weak = std::move(r); });
  world_.loop().Run();
  ASSERT_TRUE(weak.ok());
  EXPECT_TRUE(weak->found);
  EXPECT_EQ(weak->seqno, 0);
  for (const auto& server : stack_->cluster->servers()) {
    EXPECT_EQ(server->LocalQueue("q").Size(), 2u);  // the dequeue committed
  }
}

TEST_F(ZkBindingTest, PeekIsWeakOnly) {
  stack_->cluster->PreloadQueue("q", 2, "t");
  StatusOr<OpResult> head(Status::Internal("none"));
  stack_->binding->SubmitOperation(Operation::Peek("q"), {ConsistencyLevel::kWeak},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel,
                                       ResponseKind) { head = std::move(r); });
  world_.loop().Run();
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->value, "t0");

  Status strong_status;
  stack_->binding->SubmitOperation(Operation::Peek("q"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel,
                                       ResponseKind) { strong_status = r.status(); });
  EXPECT_EQ(strong_status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ZkBindingTest, KeyValueOpsRejected) {
  Status status;
  stack_->binding->SubmitOperation(Operation::Get("k"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel,
                                       ResponseKind) { status = r.status(); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  stack_->binding->SubmitOperation(Operation::Put("k", "v"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel,
                                       ResponseKind) { status = r.status(); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ZkBindingTest, ThroughCorrectableClientEndToEnd) {
  stack_->cluster->PreloadQueue("q", 2, "t");
  auto c = stack_->client->Invoke(Operation::Dequeue("q"));
  std::vector<ConsistencyLevel> levels;
  c.OnUpdate([&](const View<OpResult>& v) { levels.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { levels.push_back(v.level); });
  world_.loop().Run();
  EXPECT_EQ(levels, (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak,
                                                   ConsistencyLevel::kStrong}));
  EXPECT_EQ(c.Final().value().value, "t0");
}

}  // namespace
}  // namespace icg
