// Cassandra binding: level -> quorum mapping, the single-request ICG path, confirmation
// passthrough, and level-subset optimizations (a weak-only invoke must not pay the
// multi-response protocol cost).
#include "src/bindings/cassandra_binding.h"

#include <gtest/gtest.h>

#include "src/harness/deployment.h"

namespace icg {
namespace {

class CassandraBindingTest : public ::testing::Test {
 protected:
  CassandraBindingTest() : world_(1, 0.0) {
    CassandraBindingConfig config;
    config.strong_read_quorum = 2;
    stack_ = MakeCassandraStack(world_, KvConfig{}, config);
    stack_->cluster->Preload("k", "v");
  }

  SimWorld world_;
  std::optional<CassandraStack> stack_;
};

TEST_F(CassandraBindingTest, AdvertisesWeakAndStrong) {
  EXPECT_EQ(stack_->binding->SupportedLevels(),
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak, ConsistencyLevel::kStrong}));
  EXPECT_EQ(stack_->binding->Name(), "cassandra");
}

TEST_F(CassandraBindingTest, WeakOnlyGetSingleResponse) {
  int callbacks = 0;
  stack_->binding->SubmitOperation(Operation::Get("k"), {ConsistencyLevel::kWeak},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel level,
                                       ResponseKind kind) {
                                     callbacks++;
                                     EXPECT_EQ(level, ConsistencyLevel::kWeak);
                                     EXPECT_EQ(kind, ResponseKind::kValue);
                                     EXPECT_EQ(r->value, "v");
                                   });
  world_.loop().Run();
  EXPECT_EQ(callbacks, 1);
  // Weak-only = R1 local read: no peer quorum traffic beyond the client link.
  EXPECT_EQ(stack_->cluster->ReplicaIn(Region::kFrankfurt)->metrics().Value("icg_reads"), 0);
}

TEST_F(CassandraBindingTest, StrongOnlyGetSingleResponse) {
  int callbacks = 0;
  stack_->binding->SubmitOperation(Operation::Get("k"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult>, ConsistencyLevel level,
                                       ResponseKind) {
                                     callbacks++;
                                     EXPECT_EQ(level, ConsistencyLevel::kStrong);
                                   });
  world_.loop().Run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(
      stack_->cluster->ReplicaIn(Region::kFrankfurt)->metrics().Value("preliminaries_sent"), 0);
}

TEST_F(CassandraBindingTest, BothLevelsUseIcgPath) {
  std::vector<ConsistencyLevel> seen;
  stack_->binding->SubmitOperation(
      Operation::Get("k"), {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong},
      [&](StatusOr<OpResult>, ConsistencyLevel level, ResponseKind) { seen.push_back(level); });
  world_.loop().Run();
  EXPECT_EQ(seen, (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak,
                                                 ConsistencyLevel::kStrong}));
  EXPECT_EQ(stack_->cluster->ReplicaIn(Region::kFrankfurt)->metrics().Value("icg_reads"), 1);
}

TEST_F(CassandraBindingTest, ConfirmationsOnlyWhenConfigured) {
  // Default config: confirmations off -> final arrives as a full value even if matching.
  ResponseKind final_kind = ResponseKind::kConfirmation;
  stack_->binding->SubmitOperation(
      Operation::Get("k"), {ConsistencyLevel::kWeak, ConsistencyLevel::kStrong},
      [&](StatusOr<OpResult>, ConsistencyLevel level, ResponseKind kind) {
        if (level == ConsistencyLevel::kStrong) {
          final_kind = kind;
        }
      });
  world_.loop().Run();
  EXPECT_EQ(final_kind, ResponseKind::kValue);
}

TEST_F(CassandraBindingTest, PutReportsAtStrongestRequestedLevel) {
  ConsistencyLevel seen = ConsistencyLevel::kCache;
  stack_->binding->SubmitOperation(Operation::Put("k", "v2"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel level,
                                       ResponseKind) {
                                     ASSERT_TRUE(r.ok());
                                     seen = level;
                                   });
  world_.loop().Run();
  EXPECT_EQ(seen, ConsistencyLevel::kStrong);
}

TEST_F(CassandraBindingTest, QueueOpsRejected) {
  Status status;
  stack_->binding->SubmitOperation(Operation::Dequeue("q"), {ConsistencyLevel::kStrong},
                                   [&](StatusOr<OpResult> r, ConsistencyLevel, ResponseKind) {
                                     status = r.status();
                                   });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CassandraBindingQuorum, Cc3UsesThreeReplicas) {
  SimWorld world(1, 0.0);
  CassandraBindingConfig config;
  config.strong_read_quorum = 3;
  auto stack = MakeCassandraStack(world, KvConfig{}, config);
  stack.cluster->Preload("k", "v");

  SimTime final_at = 0;
  auto c = stack.client->InvokeStrong(Operation::Get("k"));
  c.OnFinal([&](const View<OpResult>& v) { final_at = v.delivered_at; });
  world.loop().Run();
  // R=3 must wait for the VRG replica: ~20 (client RTT) + ~90 (FRK-VRG RTT) ms.
  EXPECT_GT(final_at, Millis(100));
}

TEST(CassandraBindingConfirm, ConfirmationsShrinkClientTraffic) {
  for (const bool confirmations : {false, true}) {
    SimWorld world(1, 0.0);
    CassandraBindingConfig config;
    config.strong_read_quorum = 2;
    config.confirmations = confirmations;
    auto stack = MakeCassandraStack(world, KvConfig{}, config);
    stack.cluster->Preload("k", std::string(1000, 'v'));
    auto c = stack.client->Invoke(Operation::Get("k"));
    world.loop().Run();
    ASSERT_EQ(c.state(), CorrectableState::kFinal);
    EXPECT_EQ(c.Final().value().value, std::string(1000, 'v'));
    const int64_t bytes = stack.kv_client->LinkBytes();
    if (confirmations) {
      EXPECT_LT(bytes, 1300);  // request + one full value + small confirmation
    } else {
      EXPECT_GT(bytes, 2000);  // request + two full values
    }
  }
}

}  // namespace
}  // namespace icg
