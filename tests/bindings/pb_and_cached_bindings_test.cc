// Primary-backup binding (Listing 7), cached primary-backup binding (news reader), and
// cached-causal binding (mobile/disconnected): level routing, coherence, staleness.
#include <gtest/gtest.h>

#include "src/bindings/cached_causal_binding.h"
#include "src/bindings/cached_pb_binding.h"
#include "src/bindings/primary_backup_binding.h"
#include "src/harness/deployment.h"
#include "src/stores/causal_store.h"

namespace icg {
namespace {

// --- PrimaryBackupBinding (Listing 7) --------------------------------------------------

class PbBindingTest : public ::testing::Test {
 protected:
  PbBindingTest() : world_(1, 0.0) {
    cluster_ = std::make_unique<PbCluster>(
        &world_.network(), &world_.topology(), &config_,
        std::vector<Region>{Region::kVirginia, Region::kIreland, Region::kFrankfurt});
    client_ = cluster_->MakeClient(Region::kIreland, Region::kIreland);
    binding_ = std::make_shared<PrimaryBackupBinding>(client_.get());
    correctable_client_ = std::make_unique<CorrectableClient>(binding_, &world_.loop());
  }

  SimWorld world_;
  PbConfig config_;
  std::unique_ptr<PbCluster> cluster_;
  std::unique_ptr<PbClient> client_;
  std::shared_ptr<PrimaryBackupBinding> binding_;
  std::unique_ptr<CorrectableClient> correctable_client_;
};

TEST_F(PbBindingTest, WeakReadsBackupStrongReadsPrimary) {
  // Backup and primary intentionally disagree.
  cluster_->NodeIn(Region::kIreland)->LocalPut("k", "backup-version", Version{1, 0});
  cluster_->primary()->LocalPut("k", "primary-version", Version{2, 0});

  auto weak = correctable_client_->InvokeWeak(Operation::Get("k"));
  auto strong = correctable_client_->InvokeStrong(Operation::Get("k"));
  world_.loop().Run();
  EXPECT_EQ(weak.Final().value().value, "backup-version");
  EXPECT_EQ(strong.Final().value().value, "primary-version");
}

TEST_F(PbBindingTest, InvokeDeliversBothViewsWeakFirst) {
  cluster_->Preload("k", "v");
  std::vector<ConsistencyLevel> levels;
  auto c = correctable_client_->Invoke(Operation::Get("k"));
  c.OnUpdate([&](const View<OpResult>& v) { levels.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { levels.push_back(v.level); });
  world_.loop().Run();
  // Both requests run in parallel (the "more sophisticated binding"); the nearby backup
  // answers first, the distant primary closes.
  EXPECT_EQ(levels, (std::vector<ConsistencyLevel>{ConsistencyLevel::kWeak,
                                                   ConsistencyLevel::kStrong}));
}

TEST_F(PbBindingTest, WritesGoToPrimary) {
  auto put = correctable_client_->InvokeStrong(Operation::Put("k", "v1"));
  world_.loop().Run();
  ASSERT_TRUE(put.Final().ok());
  EXPECT_EQ(cluster_->primary()->LocalGet("k").value(), "v1");
}

TEST_F(PbBindingTest, QueueOpsRejected) {
  auto c = correctable_client_->InvokeStrong(Operation::Enqueue("q", "e"));
  EXPECT_EQ(c.state(), CorrectableState::kError);
  EXPECT_EQ(c.Final().status().code(), StatusCode::kInvalidArgument);
}

// --- CachedPbBinding (news reader) ------------------------------------------------------

class CachedPbTest : public ::testing::Test {
 protected:
  CachedPbTest() : world_(1, 0.0) { stack_ = MakeNewsStack(world_, PbConfig{}); }

  void WarmCache(const std::string& key) {
    stack_->client->InvokeStrong(Operation::Get(key));
    world_.loop().Run();
  }

  SimWorld world_;
  std::optional<NewsStack> stack_;
};

TEST_F(CachedPbTest, ThreeLevelsAdvertised) {
  EXPECT_EQ(stack_->binding->SupportedLevels(),
            (std::vector<ConsistencyLevel>{ConsistencyLevel::kCache, ConsistencyLevel::kWeak,
                                           ConsistencyLevel::kStrong}));
}

TEST_F(CachedPbTest, ColdCacheReportsMissAtCacheLevel) {
  stack_->cluster->Preload("k", "v");
  std::vector<std::pair<ConsistencyLevel, bool>> views;
  auto c = stack_->client->Invoke(Operation::Get("k"));
  c.OnUpdate([&](const View<OpResult>& v) { views.push_back({v.level, v.value.found}); });
  c.OnFinal([&](const View<OpResult>& v) { views.push_back({v.level, v.value.found}); });
  world_.loop().Run();
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].first, ConsistencyLevel::kCache);
  EXPECT_FALSE(views[0].second);  // cache miss: found=false
  EXPECT_TRUE(views[1].second);
  EXPECT_TRUE(views[2].second);
}

TEST_F(CachedPbTest, ReadsWarmTheCache) {
  stack_->cluster->Preload("k", "v");
  WarmCache("k");
  EXPECT_EQ(stack_->cache->size(), 1u);
  auto weak = stack_->client->InvokeWeak(Operation::Get("k"));  // cache-only read
  EXPECT_EQ(weak.state(), CorrectableState::kFinal);            // resolves synchronously
  EXPECT_EQ(weak.Final().value().value, "v");
}

TEST_F(CachedPbTest, WriteThroughUpdatesCacheOnAck) {
  auto put = stack_->client->InvokeStrong(Operation::Put("k", "v2"));
  EXPECT_EQ(stack_->cache->size(), 0u);  // not before the ack
  world_.loop().Run();
  ASSERT_TRUE(put.Final().ok());
  const auto cached = stack_->cache->Get("k");
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->value, "v2");
}

TEST_F(CachedPbTest, CacheServesInstantlyAfterWarmup) {
  stack_->cluster->Preload("k", "v");
  WarmCache("k");
  const SimTime start = world_.loop().Now();
  SimTime cache_at = -1;
  auto c = stack_->client->Invoke(Operation::Get("k"));
  c.OnUpdate([&](const View<OpResult>& v) {
    if (v.level == ConsistencyLevel::kCache) {
      cache_at = v.delivered_at - start;
    }
  });
  world_.loop().Run();
  EXPECT_EQ(cache_at, 0);  // synchronous
}

// --- CachedCausalBinding ---------------------------------------------------------------

class CachedCausalTest : public ::testing::Test {
 protected:
  CachedCausalTest() : world_(1, 0.0) {
    cluster_ = std::make_unique<CausalCluster>(
        &world_.network(), &world_.topology(), &config_,
        std::vector<Region>{Region::kIreland, Region::kFrankfurt, Region::kVirginia});
    client_ = cluster_->MakeClient(Region::kIreland, Region::kIreland);
    cache_ = std::make_unique<ClientCache>();
    binding_ = std::make_shared<CachedCausalBinding>(client_.get(), cache_.get());
    correctable_client_ = std::make_unique<CorrectableClient>(binding_, &world_.loop());
  }

  SimWorld world_;
  CausalConfig config_;
  std::unique_ptr<CausalCluster> cluster_;
  std::unique_ptr<CausalClient> client_;
  std::unique_ptr<ClientCache> cache_;
  std::shared_ptr<CachedCausalBinding> binding_;
  std::unique_ptr<CorrectableClient> correctable_client_;
};

TEST_F(CachedCausalTest, TwoLevelInvoke) {
  cluster_->Preload("k", "v");
  std::vector<ConsistencyLevel> levels;
  auto c = correctable_client_->Invoke(Operation::Get("k"));
  c.OnUpdate([&](const View<OpResult>& v) { levels.push_back(v.level); });
  c.OnFinal([&](const View<OpResult>& v) { levels.push_back(v.level); });
  world_.loop().Run();
  EXPECT_EQ(levels, (std::vector<ConsistencyLevel>{ConsistencyLevel::kCache,
                                                   ConsistencyLevel::kCausal}));
  EXPECT_EQ(c.Final().value().value, "v");
}

TEST_F(CachedCausalTest, InvokeStrongBypassesCache) {
  cluster_->Preload("k", "fresh");
  OpResult stale;
  stale.found = true;
  stale.value = "stale";
  cache_->Put("k", stale);
  auto c = correctable_client_->InvokeStrong(Operation::Get("k"));
  world_.loop().Run();
  EXPECT_EQ(c.Final().value().value, "fresh");  // cache bypassed
}

TEST_F(CachedCausalTest, InvokeWeakIsCacheOnly) {
  cluster_->Preload("k", "v");
  auto miss = correctable_client_->InvokeWeak(Operation::Get("k"));
  EXPECT_EQ(miss.state(), CorrectableState::kFinal);
  EXPECT_FALSE(miss.Final().value().found);  // cold cache: miss, no network
}

TEST_F(CachedCausalTest, DisconnectedModeServesCacheFailsStore) {
  cluster_->Preload("k", "v");
  correctable_client_->InvokeStrong(Operation::Get("k"));
  world_.loop().Run();  // warm the cache
  binding_->SetDisconnected(true);

  // Cache-level access still works offline.
  auto weak = correctable_client_->InvokeWeak(Operation::Get("k"));
  EXPECT_EQ(weak.Final().value().value, "v");

  // Store-level access fails fast.
  auto strong = correctable_client_->InvokeStrong(Operation::Get("k"));
  world_.loop().Run();
  EXPECT_EQ(strong.state(), CorrectableState::kError);
  EXPECT_EQ(strong.Final().status().code(), StatusCode::kUnavailable);

  auto put = correctable_client_->InvokeStrong(Operation::Put("k", "v2"));
  EXPECT_EQ(put.state(), CorrectableState::kError);
}

TEST_F(CachedCausalTest, WriteThroughCoherence) {
  auto put = correctable_client_->InvokeStrong(Operation::Put("k", "v1"));
  world_.loop().Run();
  ASSERT_TRUE(put.Final().ok());
  EXPECT_EQ(cache_->Get("k")->value, "v1");
}

}  // namespace
}  // namespace icg
