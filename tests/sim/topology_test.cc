#include "src/sim/topology.h"

#include <gtest/gtest.h>

namespace icg {
namespace {

TEST(RttMatrix, PaperCalibrationPoints) {
  const RttMatrix m = RttMatrix::Ec2Default();
  // Values stated in the paper's evaluation (§6.2).
  EXPECT_EQ(m.Rtt(Region::kIreland, Region::kFrankfurt), Millis(20));
  EXPECT_EQ(m.Rtt(Region::kIreland, Region::kVirginia), Millis(83));
  EXPECT_EQ(m.Rtt(Region::kIreland, Region::kIreland), Millis(2));
}

TEST(RttMatrix, Symmetric) {
  const RttMatrix m = RttMatrix::Ec2Default();
  for (int a = 0; a < kNumRegions; ++a) {
    for (int b = 0; b < kNumRegions; ++b) {
      EXPECT_EQ(m.Rtt(static_cast<Region>(a), static_cast<Region>(b)),
                m.Rtt(static_cast<Region>(b), static_cast<Region>(a)));
    }
  }
}

TEST(RttMatrix, AllPairsPopulated) {
  const RttMatrix m = RttMatrix::Ec2Default();
  for (int a = 0; a < kNumRegions; ++a) {
    for (int b = 0; b < kNumRegions; ++b) {
      EXPECT_GT(m.Rtt(static_cast<Region>(a), static_cast<Region>(b)), 0)
          << RegionName(static_cast<Region>(a)) << "-" << RegionName(static_cast<Region>(b));
    }
  }
}

TEST(RttMatrix, OneWayIsHalfRtt) {
  const RttMatrix m = RttMatrix::Ec2Default();
  EXPECT_EQ(m.OneWay(Region::kIreland, Region::kFrankfurt), Millis(10));
}

TEST(RttMatrix, SetRttIsSymmetric) {
  RttMatrix m = RttMatrix::Ec2Default();
  m.SetRtt(Region::kIreland, Region::kOregon, Millis(111));
  EXPECT_EQ(m.Rtt(Region::kOregon, Region::kIreland), Millis(111));
}

TEST(Topology, AddNodeAssignsDenseIds) {
  Topology t;
  EXPECT_EQ(t.AddNode(Region::kIreland, "a"), 0);
  EXPECT_EQ(t.AddNode(Region::kFrankfurt, "b"), 1);
  EXPECT_EQ(t.NumNodes(), 2);
}

TEST(Topology, RegionAndNameLookup) {
  Topology t;
  const NodeId n = t.AddNode(Region::kVirginia, "replica-vrg");
  EXPECT_EQ(t.RegionOf(n), Region::kVirginia);
  EXPECT_EQ(t.NameOf(n), "replica-vrg");
}

TEST(Topology, RttBetweenNodesUsesRegions) {
  Topology t;
  const NodeId a = t.AddNode(Region::kIreland, "a");
  const NodeId b = t.AddNode(Region::kFrankfurt, "b");
  const NodeId c = t.AddNode(Region::kIreland, "c");
  EXPECT_EQ(t.RttBetween(a, b), Millis(20));
  EXPECT_EQ(t.RttBetween(a, c), Millis(2));
}

TEST(Topology, NodesInFiltersRegion) {
  Topology t;
  t.AddNode(Region::kIreland, "a");
  t.AddNode(Region::kFrankfurt, "b");
  t.AddNode(Region::kIreland, "c");
  const auto irl = t.NodesIn(Region::kIreland);
  ASSERT_EQ(irl.size(), 2u);
  EXPECT_EQ(irl[0], 0);
  EXPECT_EQ(irl[1], 2);
  EXPECT_TRUE(t.NodesIn(Region::kOregon).empty());
}

TEST(RegionNames, MatchPaperAbbreviations) {
  EXPECT_STREQ(RegionName(Region::kIreland), "IRL");
  EXPECT_STREQ(RegionName(Region::kFrankfurt), "FRK");
  EXPECT_STREQ(RegionName(Region::kVirginia), "VRG");
  EXPECT_STREQ(RegionName(Region::kCalifornia), "NCA");
  EXPECT_STREQ(RegionName(Region::kOregon), "ORE");
}

}  // namespace
}  // namespace icg
