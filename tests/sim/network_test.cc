#include "src/sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/sim/loop_group.h"
#include "src/sim/topology.h"

namespace icg {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topology_(RttMatrix::Ec2Default()) {
    irl_ = topology_.AddNode(Region::kIreland, "irl");
    frk_ = topology_.AddNode(Region::kFrankfurt, "frk");
    vrg_ = topology_.AddNode(Region::kVirginia, "vrg");
  }

  EventLoop loop_;
  Topology topology_;
  NodeId irl_ = 0;
  NodeId frk_ = 0;
  NodeId vrg_ = 0;
};

TEST_F(NetworkTest, DelayIsHalfRttWithoutJitter) {
  Network net(&loop_, &topology_, 1, /*jitter_sigma=*/0.0);
  SimTime delivered = -1;
  net.Send(irl_, frk_, 100, [&]() { delivered = loop_.Now(); });
  loop_.Run();
  EXPECT_EQ(delivered, Millis(10));  // IRL-FRK RTT is 20 ms
}

TEST_F(NetworkTest, SelfSendUsesLocalDelay) {
  Network net(&loop_, &topology_, 1, 0.0);
  SimTime delivered = -1;
  net.Send(irl_, irl_, 10, [&]() { delivered = loop_.Now(); });
  loop_.Run();
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, Millis(1));
}

TEST_F(NetworkTest, JitterProducesSpreadAroundMedian) {
  Network net(&loop_, &topology_, 3, /*jitter_sigma=*/0.1);
  LatencyRecorder delays;
  for (int i = 0; i < 2000; ++i) {
    delays.Record(net.SampleDelay(irl_, vrg_));
  }
  const LatencySummary s = delays.Summarize();
  // Median of the lognormal is the base one-way delay: 83/2 = 41.5 ms.
  EXPECT_NEAR(static_cast<double>(s.p50_us), static_cast<double>(Millis(83)) / 2.0,
              static_cast<double>(Millis(2)));
  EXPECT_GT(s.max_us, s.min_us);  // actual spread
  EXPECT_GT(s.p99_us, s.p50_us);
}

TEST_F(NetworkTest, BytesAccountedPerDirection) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Send(irl_, frk_, 100, []() {});
  net.Send(irl_, frk_, 50, []() {});
  net.Send(frk_, irl_, 25, []() {});
  EXPECT_EQ(net.Sent(irl_, frk_).bytes, 150);
  EXPECT_EQ(net.Sent(irl_, frk_).messages, 2);
  EXPECT_EQ(net.Sent(frk_, irl_).bytes, 25);
  EXPECT_EQ(net.BytesBetween(irl_, frk_), 175);
  EXPECT_EQ(net.MessagesBetween(irl_, frk_), 3);
  EXPECT_EQ(net.total_bytes(), 175);
}

TEST_F(NetworkTest, UnusedLinkReportsZero) {
  Network net(&loop_, &topology_, 1, 0.0);
  EXPECT_EQ(net.Sent(irl_, vrg_).bytes, 0);
  EXPECT_EQ(net.BytesBetween(frk_, vrg_), 0);
}

TEST_F(NetworkTest, ResetStatsClears) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Send(irl_, frk_, 100, []() {});
  net.ResetStats();
  EXPECT_EQ(net.total_bytes(), 0);
  EXPECT_EQ(net.BytesBetween(irl_, frk_), 0);
}

TEST_F(NetworkTest, CrashedDestinationDropsMessages) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(frk_);
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_messages(), 1);
}

TEST_F(NetworkTest, CrashedSourceDropsMessages) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(irl_);
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, RestartHealsNode) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(frk_);
  EXPECT_TRUE(net.IsCrashed(frk_));
  net.Restart(frk_);
  EXPECT_FALSE(net.IsCrashed(frk_));
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionCutsBothDirections) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Partition(irl_, frk_);
  int delivered = 0;
  net.Send(irl_, frk_, 10, [&]() { delivered++; });
  net.Send(frk_, irl_, 10, [&]() { delivered++; });
  net.Send(irl_, vrg_, 10, [&]() { delivered++; });  // unaffected pair
  loop_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.dropped_messages(), 2);
}

TEST_F(NetworkTest, HealRestoresPartition) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Partition(irl_, frk_);
  net.Heal(irl_, frk_);
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, LossProbabilityDropsFraction) {
  Network net(&loop_, &topology_, 5, 0.0);
  net.SetLossProbability(0.25);
  int delivered = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    net.Send(irl_, frk_, 1, [&]() { delivered++; });
  }
  loop_.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.75, 0.03);
}

TEST_F(NetworkTest, DroppedMessagesStillAccountBytes) {
  // The sender did transmit; accounting reflects offered bytes.
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(frk_);
  net.Send(irl_, frk_, 77, []() {});
  EXPECT_EQ(net.Sent(irl_, frk_).bytes, 77);
}

// --- Cross-loop mode ---------------------------------------------------------------

class CrossLoopNetworkTest : public NetworkTest {
 protected:
  // Home loop on slot 0, one lane on slot 1, frk placed on the lane.
  void Bind(Network& net, SimDuration quantum) {
    LoopGroup::Options options;
    options.quantum = quantum;
    group_ = std::make_unique<LoopGroup>(options);
    group_->Attach(&loop_);
    group_->Attach(&lane_);
    net.BindGroup(group_.get());
    net.PlaceNode(frk_, 1);
  }

  std::unique_ptr<LoopGroup> group_;
  EventLoop lane_;
};

TEST_F(CrossLoopNetworkTest, PlacementResolvesSlotsAndLoops) {
  Network net(&loop_, &topology_, 1, 0.0);
  EXPECT_FALSE(net.cross_loop());
  EXPECT_EQ(net.SlotOf(frk_), 0);
  EXPECT_EQ(net.LoopFor(frk_), &loop_);
  Bind(net, Millis(1));
  EXPECT_TRUE(net.cross_loop());
  EXPECT_EQ(net.SlotOf(irl_), 0);  // unplaced nodes stay on the home slot
  EXPECT_EQ(net.SlotOf(frk_), 1);
  EXPECT_EQ(net.LoopFor(irl_), &loop_);
  EXPECT_EQ(net.LoopFor(frk_), &lane_);
}

TEST_F(CrossLoopNetworkTest, CrossLoopDeliveryRunsOnPlacedLoop) {
  Network net(&loop_, &topology_, 1, 0.0);
  Bind(net, Millis(1));
  SimTime delivered = -1;
  loop_.Schedule(0, [&]() {
    net.Send(irl_, frk_, 100, [&]() { delivered = lane_.Now(); });
  });
  group_->RunAll();
  // Quantum (1 ms) is well under the 10 ms one-way delay, so barrier clamping adds
  // nothing: delivery lands at the exact raw delay — on the lane's clock.
  EXPECT_EQ(delivered, Millis(10));
}

TEST_F(CrossLoopNetworkTest, QuantumBoundsCrossLoopLatency) {
  Network net(&loop_, &topology_, 1, 0.0);
  Bind(net, Millis(25));
  SimTime delivered = -1;
  loop_.Schedule(0, [&]() {
    net.Send(irl_, frk_, 100, [&]() { delivered = lane_.Now(); });
  });
  group_->RunAll();
  // The raw delay (10 ms) falls inside round 0, so the message is clamped to that
  // round's barrier: the quantum is exactly the added-latency bound documented on Send.
  EXPECT_EQ(delivered, Millis(25));
}

TEST_F(CrossLoopNetworkTest, SameLoopSendsSkipTheChannel) {
  Network net(&loop_, &topology_, 1, 0.0);
  Bind(net, Millis(25));
  SimTime delivered = -1;
  // irl and vrg both live on the home loop: in-loop scheduling, no barrier rounding
  // even with a coarse quantum.
  loop_.Schedule(0, [&]() {
    net.Send(irl_, vrg_, 100, [&]() { delivered = loop_.Now(); });
  });
  group_->RunAll();
  // With jitter off the delay is the constant half-RTT, not rounded to any barrier.
  EXPECT_EQ(delivered, net.SampleDelay(irl_, vrg_));
  EXPECT_GT(delivered % Millis(25), 0);  // not a barrier multiple: delivered in-round
  EXPECT_EQ(group_->metrics().Value("channel_messages"), 0);
}

TEST_F(CrossLoopNetworkTest, FifoHoldsAcrossTheBarrier) {
  // Jitter on: delays vary, but a later message on the same directed link must never
  // overtake an earlier one even though both cross the channel.
  Network net(&loop_, &topology_, 99, /*jitter_sigma=*/0.4);
  Bind(net, Millis(1));
  std::vector<int> order;
  loop_.Schedule(0, [&]() {
    for (int i = 0; i < 32; ++i) {
      net.Send(irl_, frk_, 1, [&order, i]() { order.push_back(i); });
    }
  });
  group_->RunAll();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST_F(CrossLoopNetworkTest, AccountingAggregatesAcrossShards) {
  Network net(&loop_, &topology_, 1, 0.0);
  Bind(net, Millis(1));
  loop_.Schedule(0, [&]() { net.Send(irl_, frk_, 100, []() {}); });
  // The reply shard lives on the lane: frk's sends draw from slot 1's state.
  lane_.Schedule(Millis(15), [&]() { net.Send(frk_, irl_, 40, []() {}); });
  group_->RunAll();
  EXPECT_EQ(net.Sent(irl_, frk_).bytes, 100);
  EXPECT_EQ(net.Sent(frk_, irl_).bytes, 40);
  EXPECT_EQ(net.BytesBetween(irl_, frk_), 140);
  EXPECT_EQ(net.MessagesBetween(irl_, frk_), 2);
  EXPECT_EQ(net.total_bytes(), 140);
  net.ResetStats();
  EXPECT_EQ(net.total_bytes(), 0);
  EXPECT_EQ(net.Sent(frk_, irl_).bytes, 0);
}

}  // namespace
}  // namespace icg
