#include "src/sim/network.h"

#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/sim/topology.h"

namespace icg {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topology_(RttMatrix::Ec2Default()) {
    irl_ = topology_.AddNode(Region::kIreland, "irl");
    frk_ = topology_.AddNode(Region::kFrankfurt, "frk");
    vrg_ = topology_.AddNode(Region::kVirginia, "vrg");
  }

  EventLoop loop_;
  Topology topology_;
  NodeId irl_ = 0;
  NodeId frk_ = 0;
  NodeId vrg_ = 0;
};

TEST_F(NetworkTest, DelayIsHalfRttWithoutJitter) {
  Network net(&loop_, &topology_, 1, /*jitter_sigma=*/0.0);
  SimTime delivered = -1;
  net.Send(irl_, frk_, 100, [&]() { delivered = loop_.Now(); });
  loop_.Run();
  EXPECT_EQ(delivered, Millis(10));  // IRL-FRK RTT is 20 ms
}

TEST_F(NetworkTest, SelfSendUsesLocalDelay) {
  Network net(&loop_, &topology_, 1, 0.0);
  SimTime delivered = -1;
  net.Send(irl_, irl_, 10, [&]() { delivered = loop_.Now(); });
  loop_.Run();
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, Millis(1));
}

TEST_F(NetworkTest, JitterProducesSpreadAroundMedian) {
  Network net(&loop_, &topology_, 3, /*jitter_sigma=*/0.1);
  LatencyRecorder delays;
  for (int i = 0; i < 2000; ++i) {
    delays.Record(net.SampleDelay(irl_, vrg_));
  }
  const LatencySummary s = delays.Summarize();
  // Median of the lognormal is the base one-way delay: 83/2 = 41.5 ms.
  EXPECT_NEAR(static_cast<double>(s.p50_us), static_cast<double>(Millis(83)) / 2.0,
              static_cast<double>(Millis(2)));
  EXPECT_GT(s.max_us, s.min_us);  // actual spread
  EXPECT_GT(s.p99_us, s.p50_us);
}

TEST_F(NetworkTest, BytesAccountedPerDirection) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Send(irl_, frk_, 100, []() {});
  net.Send(irl_, frk_, 50, []() {});
  net.Send(frk_, irl_, 25, []() {});
  EXPECT_EQ(net.Sent(irl_, frk_).bytes, 150);
  EXPECT_EQ(net.Sent(irl_, frk_).messages, 2);
  EXPECT_EQ(net.Sent(frk_, irl_).bytes, 25);
  EXPECT_EQ(net.BytesBetween(irl_, frk_), 175);
  EXPECT_EQ(net.MessagesBetween(irl_, frk_), 3);
  EXPECT_EQ(net.total_bytes(), 175);
}

TEST_F(NetworkTest, UnusedLinkReportsZero) {
  Network net(&loop_, &topology_, 1, 0.0);
  EXPECT_EQ(net.Sent(irl_, vrg_).bytes, 0);
  EXPECT_EQ(net.BytesBetween(frk_, vrg_), 0);
}

TEST_F(NetworkTest, ResetStatsClears) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Send(irl_, frk_, 100, []() {});
  net.ResetStats();
  EXPECT_EQ(net.total_bytes(), 0);
  EXPECT_EQ(net.BytesBetween(irl_, frk_), 0);
}

TEST_F(NetworkTest, CrashedDestinationDropsMessages) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(frk_);
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_messages(), 1);
}

TEST_F(NetworkTest, CrashedSourceDropsMessages) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(irl_);
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, RestartHealsNode) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(frk_);
  EXPECT_TRUE(net.IsCrashed(frk_));
  net.Restart(frk_);
  EXPECT_FALSE(net.IsCrashed(frk_));
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionCutsBothDirections) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Partition(irl_, frk_);
  int delivered = 0;
  net.Send(irl_, frk_, 10, [&]() { delivered++; });
  net.Send(frk_, irl_, 10, [&]() { delivered++; });
  net.Send(irl_, vrg_, 10, [&]() { delivered++; });  // unaffected pair
  loop_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.dropped_messages(), 2);
}

TEST_F(NetworkTest, HealRestoresPartition) {
  Network net(&loop_, &topology_, 1, 0.0);
  net.Partition(irl_, frk_);
  net.Heal(irl_, frk_);
  bool delivered = false;
  net.Send(irl_, frk_, 10, [&]() { delivered = true; });
  loop_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, LossProbabilityDropsFraction) {
  Network net(&loop_, &topology_, 5, 0.0);
  net.SetLossProbability(0.25);
  int delivered = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    net.Send(irl_, frk_, 1, [&]() { delivered++; });
  }
  loop_.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.75, 0.03);
}

TEST_F(NetworkTest, DroppedMessagesStillAccountBytes) {
  // The sender did transmit; accounting reflects offered bytes.
  Network net(&loop_, &topology_, 1, 0.0);
  net.Crash(frk_);
  net.Send(irl_, frk_, 77, []() {});
  EXPECT_EQ(net.Sent(irl_, frk_).bytes, 77);
}

}  // namespace
}  // namespace icg
