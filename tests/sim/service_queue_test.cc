#include "src/sim/service_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_loop.h"

namespace icg {
namespace {

TEST(ServiceQueue, SingleJobTakesServiceTime) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  SimTime done_at = -1;
  q.Submit(Millis(3), [&]() { done_at = loop.Now(); });
  loop.Run();
  EXPECT_EQ(done_at, Millis(3));
}

TEST(ServiceQueue, JobsQueueFifo) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    q.Submit(Millis(2), [&]() { completions.push_back(loop.Now()); });
  }
  loop.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Millis(2));
  EXPECT_EQ(completions[1], Millis(4));
  EXPECT_EQ(completions[2], Millis(6));
}

TEST(ServiceQueue, IdleServerStartsImmediately) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  SimTime first = -1;
  SimTime second = -1;
  q.Submit(Millis(1), [&]() { first = loop.Now(); });
  loop.Run();
  // Server idle for 10 ms, then a new job.
  loop.RunUntil(Millis(11));
  q.Submit(Millis(1), [&]() { second = loop.Now(); });
  loop.Run();
  EXPECT_EQ(first, Millis(1));
  EXPECT_EQ(second, Millis(12));  // starts at 11, not at busy_until=1
}

TEST(ServiceQueue, ZeroServiceTimeCompletesNow) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  SimTime done_at = -1;
  q.Submit(0, [&]() { done_at = loop.Now(); });
  loop.Run();
  EXPECT_EQ(done_at, 0);
}

TEST(ServiceQueue, CountsSubmittedAndCompleted) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  q.Submit(Millis(1), []() {});
  q.Submit(Millis(1), []() {});
  EXPECT_EQ(q.submitted(), 2);
  EXPECT_EQ(q.completed(), 0);
  EXPECT_EQ(q.InFlight(), 2);
  loop.Run();
  EXPECT_EQ(q.completed(), 2);
  EXPECT_EQ(q.InFlight(), 0);
}

TEST(ServiceQueue, BusyTimeAccumulates) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  q.Submit(Millis(3), []() {});
  q.Submit(Millis(4), []() {});
  loop.Run();
  EXPECT_EQ(q.total_busy_time(), Millis(7));
  EXPECT_DOUBLE_EQ(q.Utilization(Millis(14)), 0.5);
}

TEST(ServiceQueue, ResetStatsKeepsSchedule) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  q.Submit(Millis(1), []() {});
  loop.Run();
  q.ResetStats();
  EXPECT_EQ(q.submitted(), 0);
  EXPECT_EQ(q.total_busy_time(), 0);
  // busy_until_ is preserved: the server's timeline is physical, stats are per-window.
  EXPECT_EQ(q.busy_until(), Millis(1));
}

TEST(ServiceQueue, SaturationDelaysGrowLinearly) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  // Offered load 2x capacity: 100 jobs of 1 ms arriving instantly.
  std::vector<SimTime> completions;
  for (int i = 0; i < 100; ++i) {
    q.Submit(Millis(1), [&]() { completions.push_back(loop.Now()); });
  }
  loop.Run();
  EXPECT_EQ(completions.back(), Millis(100));  // pure serial service
}

TEST(ServiceQueue, InterleavedSubmissionRespectsArrivalTime) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  std::vector<SimTime> completions;
  q.Submit(Millis(5), [&]() { completions.push_back(loop.Now()); });
  loop.Schedule(Millis(2), [&]() {
    q.Submit(Millis(5), [&]() { completions.push_back(loop.Now()); });
  });
  loop.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], Millis(5));
  EXPECT_EQ(completions[1], Millis(10));  // waits for the first job
}

TEST(ServiceQueue, CancelPendingAbandonsInFlightJobs) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  int ran = 0;
  q.Submit(Millis(5), [&]() { ran++; });
  q.Submit(Millis(5), [&]() { ran++; });
  EXPECT_EQ(q.InFlight(), 2);
  q.CancelPending();
  EXPECT_EQ(q.InFlight(), 0);
  EXPECT_EQ(q.cancellations(), 1);
  loop.Run();  // the stale completion events drain but no-op
  EXPECT_EQ(ran, 0);
}

TEST(ServiceQueue, CancelPendingFreesServerImmediately) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  q.Submit(Millis(50), []() {});
  q.CancelPending();
  EXPECT_EQ(q.busy_until(), 0);
  // A job submitted after the kill starts from idle, not behind the dead backlog.
  SimTime completed_at = -1;
  q.Submit(Millis(1), [&]() { completed_at = loop.Now(); });
  loop.Run();
  EXPECT_EQ(completed_at, Millis(1));
}

TEST(ServiceQueue, JobsSubmittedAfterCancelStillComplete) {
  EventLoop loop;
  ServiceQueue q(&loop, "s");
  int ran = 0;
  q.Submit(Millis(5), [&]() { ran++; });
  loop.RunFor(Millis(1));
  q.CancelPending();
  q.Submit(Millis(2), [&]() { ran += 10; });
  loop.Run();
  EXPECT_EQ(ran, 10);  // only the post-cancel generation runs
  EXPECT_EQ(q.completed(), 1 + 0);
}

TEST(ServiceQueue, RebindLegalAfterCancelPending) {
  EventLoop a;
  EventLoop b;
  ServiceQueue q(&a, "s");
  q.Submit(Millis(5), []() {});
  // In flight on loop `a`: rebind would assert. CancelPending quiesces it first — the
  // crashed-replica RebindLoop path.
  q.CancelPending();
  q.RebindLoop(&b);
  SimTime completed_at = -1;
  q.Submit(Millis(3), [&]() { completed_at = b.Now(); });
  a.Run();  // drains the abandoned completion event harmlessly
  b.Run();
  EXPECT_EQ(completed_at, Millis(3));
}

}  // namespace
}  // namespace icg
