#include "src/sim/loop_group.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"

namespace icg {
namespace {

// A ping-pong workload across `n_loops` loops: every event appends a record to its
// loop's trace and posts a follow-up to the next loop. The concatenated traces are a
// fingerprint of the whole execution — equal fingerprints mean bit-for-bit equal runs.
struct Mesh {
  explicit Mesh(int n_loops, LoopGroup::Options options) : group(options) {
    loops.reserve(static_cast<size_t>(n_loops));
    traces.resize(static_cast<size_t>(n_loops));
    for (int i = 0; i < n_loops; ++i) {
      loops.push_back(std::make_unique<EventLoop>());
      group.Attach(loops.back().get());
    }
  }

  void Record(int loop_index, const std::string& tag) {
    std::ostringstream line;
    line << tag << "@" << loops[static_cast<size_t>(loop_index)]->Now();
    traces[static_cast<size_t>(loop_index)].push_back(line.str());
  }

  // Schedules a hop chain starting on `origin`: each hop records, then posts the next
  // hop to (loop + 1) % n with a small virtual delay.
  void StartChain(int origin, int hops, const std::string& tag) {
    loops[static_cast<size_t>(origin)]->Schedule(0, [this, origin, hops, tag]() {
      Hop(origin, hops, tag);
    });
  }

  void Hop(int at, int remaining, const std::string& tag) {
    Record(at, tag + ":" + std::to_string(remaining));
    if (remaining == 0) return;
    const int next = (at + 1) % group.size();
    group.Post(next, loops[static_cast<size_t>(at)]->Now() + 100,
               [this, next, remaining, tag]() { Hop(next, remaining - 1, tag); });
  }

  std::string Fingerprint() const {
    std::ostringstream out;
    for (size_t i = 0; i < traces.size(); ++i) {
      out << "loop" << i << "{";
      for (const std::string& line : traces[i]) out << line << ";";
      out << "}";
    }
    return out.str();
  }

  LoopGroup group;
  std::vector<std::unique_ptr<EventLoop>> loops;
  std::vector<std::vector<std::string>> traces;
};

std::string RunMesh(int n_loops, int threads) {
  LoopGroup::Options options;
  options.threads = threads;
  options.quantum = 500;
  Mesh mesh(n_loops, options);
  for (int i = 0; i < n_loops; ++i) {
    mesh.StartChain(i, /*hops=*/20, "chain" + std::to_string(i));
  }
  mesh.group.RunAll();
  EXPECT_EQ(mesh.group.pending_messages(), 0u);
  return mesh.Fingerprint();
}

TEST(LoopGroup, AttachAssignsIndices) {
  LoopGroup group;
  EventLoop a, b;
  EXPECT_EQ(group.Attach(&a), 0);
  EXPECT_EQ(group.Attach(&b), 1);
  EXPECT_EQ(group.size(), 2);
  EXPECT_EQ(&group.loop(0), &a);
  EXPECT_EQ(&group.loop(1), &b);
}

TEST(LoopGroup, RunUntilAdvancesAllLoopsTogether) {
  LoopGroup::Options options;
  options.quantum = 250;
  LoopGroup group(options);
  EventLoop a, b;
  group.Attach(&a);
  group.Attach(&b);
  int fired = 0;
  a.Schedule(600, [&]() { ++fired; });
  b.Schedule(900, [&]() { ++fired; });
  group.RunUntil(1000);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(group.Now(), 1000);
  EXPECT_EQ(a.Now(), 1000);
  EXPECT_EQ(b.Now(), 1000);
  EXPECT_EQ(group.rounds(), 4);  // 1000 / 250
}

TEST(LoopGroup, PostDeliversAtNextBarrierNotBefore) {
  LoopGroup::Options options;
  options.quantum = 1000;
  LoopGroup group(options);
  EventLoop a, b;
  group.Attach(&a);
  group.Attach(&b);
  SimTime delivered_at = -1;
  // Loop 0 posts to loop 1 mid-round at virtual time 100; the message is drained at the
  // round-2 barrier (group time 1000) and must run at max(when, 1000).
  a.Schedule(100, [&]() {
    group.Post(1, a.Now() + 50, [&]() { delivered_at = b.Now(); });
  });
  group.RunUntil(1000);
  EXPECT_EQ(delivered_at, -1);  // still queued: drained at the *start* of the next round
  EXPECT_EQ(group.pending_messages(), 1u);
  group.RunUntil(2000);
  EXPECT_EQ(delivered_at, 1000);
}

TEST(LoopGroup, ExternalPostsKeepSubmissionOrder) {
  LoopGroup group;
  EventLoop a;
  group.Attach(&a);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    group.Post(0, 500, [&order, i]() { order.push_back(i); });
  }
  group.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(LoopGroup, RunAllTerminatesAndDrainsEverything) {
  const std::string fp = RunMesh(/*n_loops=*/3, /*threads=*/0);
  EXPECT_NE(fp.find("chain0:0"), std::string::npos);
  EXPECT_NE(fp.find("chain2:0"), std::string::npos);
}

TEST(LoopGroup, SequentialMatchesSingleThreadMode) {
  EXPECT_EQ(RunMesh(4, /*threads=*/0), RunMesh(4, /*threads=*/1));
}

TEST(LoopGroup, ThreadedIsBitForBitDeterministic) {
  const std::string sequential = RunMesh(4, /*threads=*/0);
  // Repeat the threaded widths a few times: any nondeterministic interleaving leaking
  // into delivery order would eventually produce a different fingerprint.
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(RunMesh(4, /*threads=*/2), sequential) << "threads=2 attempt " << attempt;
    EXPECT_EQ(RunMesh(4, /*threads=*/4), sequential) << "threads=4 attempt " << attempt;
  }
}

TEST(LoopGroup, ThreadedManyLoopsFewThreads) {
  // More loops than workers: work stealing must still cover every loop.
  EXPECT_EQ(RunMesh(7, /*threads=*/3), RunMesh(7, /*threads=*/0));
}

TEST(LoopGroup, ThreadedWidthEight) {
  // Width 8: as many workers as loops hammering the steal index — the TSan job runs
  // this to shake races out of claim_/barrier signalling at full contention.
  EXPECT_EQ(RunMesh(8, /*threads=*/8), RunMesh(8, /*threads=*/0));
}

TEST(LoopGroup, HardwareThreadsIsPositive) {
  EXPECT_GE(LoopGroup::HardwareThreads(), 1);
}

TEST(LoopGroup, SequentialModeNeverStartsWorkers) {
  // The sequential driver (threads = 0 or 1) must never construct a thread or block:
  // Post takes the lock-free fast path and rounds run inline on the caller.
  for (const int threads : {0, 1}) {
    LoopGroup::Options options;
    options.threads = threads;
    options.quantum = 500;
    Mesh mesh(4, options);
    for (int i = 0; i < 4; ++i) {
      mesh.StartChain(i, /*hops=*/10, "chain" + std::to_string(i));
    }
    mesh.group.RunAll();
    EXPECT_EQ(mesh.group.workers_started(), 0) << "threads=" << threads;
    EXPECT_EQ(mesh.group.metrics().Value("rounds_threaded"), 0) << "threads=" << threads;
  }
}

TEST(LoopGroup, ThreadedStartsBoundedWorkers) {
  // min(K, loops) workers, created lazily on the first threaded round. Chains on every
  // loop keep several claim units active per round, so the pool actually runs rounds.
  LoopGroup::Options options;
  options.threads = 8;
  options.quantum = 500;
  Mesh mesh(3, options);
  EXPECT_EQ(mesh.group.workers_started(), 0);  // lazy: nothing ran yet
  for (int i = 0; i < 3; ++i) {
    mesh.StartChain(i, /*hops=*/6, "chain" + std::to_string(i));
  }
  mesh.group.RunAll();
  EXPECT_EQ(mesh.group.workers_started(), 3);
  EXPECT_GT(mesh.group.metrics().Value("rounds_threaded"), 0);
}

TEST(LoopGroup, SingleActiveLaneRoundsSkipThePool) {
  // With one chain bouncing between loops, every round has exactly one loop with due
  // events — the driver runs it inline instead of waking workers, so no round pays a
  // barrier wait. The pool is still constructed (lazily) in case a later round fans out.
  LoopGroup::Options options;
  options.threads = 4;
  options.quantum = 500;
  Mesh mesh(3, options);
  mesh.StartChain(0, /*hops=*/6, "chain0");
  mesh.group.RunAll();
  EXPECT_EQ(mesh.group.workers_started(), 3);
  EXPECT_EQ(mesh.group.metrics().Value("rounds_threaded"), 0);
  EXPECT_GT(mesh.group.metrics().Value("rounds_inline"), 0);
  EXPECT_EQ(mesh.group.metrics().Value("barrier_wait_ns"), 0);
}

TEST(LoopGroup, IndexOfFindsAttachedLoops) {
  LoopGroup group;
  EventLoop a, b, stranger;
  group.Attach(&a);
  group.Attach(&b);
  EXPECT_EQ(group.IndexOf(&a), 0);
  EXPECT_EQ(group.IndexOf(&b), 1);
  EXPECT_EQ(group.IndexOf(&stranger), -1);
}

TEST(LoopGroup, RoundStatsTrackWorkAndChannelTraffic) {
  LoopGroup::Options options;
  options.threads = 2;
  options.quantum = 500;
  Mesh mesh(4, options);
  for (int i = 0; i < 4; ++i) {
    mesh.StartChain(i, /*hops=*/20, "chain" + std::to_string(i));
  }
  mesh.group.RunAll();
  const MetricRegistry& m = mesh.group.metrics();
  // Every hop crosses loops, so the channel carried all of them.
  EXPECT_GE(m.Value("channel_messages"), 4 * 20);
  EXPECT_GT(m.Value("channel_depth_highwater"), 0);
  EXPECT_LE(m.Value("channel_depth_highwater"), m.Value("channel_messages"));
  // Some loop processed at least one event in some round, and the per-round total
  // dominates the per-loop high-water.
  EXPECT_GT(m.Value("loop_events_highwater"), 0);
  EXPECT_GE(m.Value("round_events_highwater"), m.Value("loop_events_highwater"));
  EXPECT_GT(m.Value("rounds_threaded"), 0);
}

// Pulsed workload for the adaptive-quantum tests: a hop burst at t=0 and another after
// a long quiescent gap. Returns {fingerprint, rounds, schedule hash, barrier history}.
struct AdaptiveRun {
  std::string fingerprint;
  int64_t rounds = 0;
  uint64_t schedule_hash = 0;
  std::vector<SimTime> barriers;
};

AdaptiveRun RunPulsedMesh(int threads, bool adaptive) {
  LoopGroup::Options options;
  options.threads = threads;
  options.quantum = 500;
  options.adaptive_quantum = adaptive;
  options.max_quantum = 20000;
  options.record_barrier_schedule = true;
  Mesh mesh(4, options);
  for (int i = 0; i < 4; ++i) {
    mesh.StartChain(i, /*hops=*/12, "burst0-" + std::to_string(i));
  }
  // Second burst after ~190k us of silence — the stretch fixed quanta pay 380 barriers
  // for and adaptive quanta cross in ~10 capped rounds.
  mesh.loops[0]->Schedule(200000, [&mesh]() { mesh.Hop(0, 12, "burst1"); });
  mesh.group.RunUntil(250000);
  AdaptiveRun run;
  run.fingerprint = mesh.Fingerprint();
  run.rounds = mesh.group.rounds();
  run.schedule_hash = mesh.group.barrier_schedule_hash();
  run.barriers = mesh.group.barrier_history();
  return run;
}

TEST(LoopGroup, AdaptiveQuantumScheduleIsIdenticalAcrossWidths) {
  // The quantum schedule is a pure function of virtual-time state, so the sequence of
  // barrier times — not just the event histories — must be byte-identical at widths
  // 0/2/4/8.
  const AdaptiveRun sequential = RunPulsedMesh(/*threads=*/0, /*adaptive=*/true);
  EXPECT_GT(sequential.barriers.size(), 0u);
  EXPECT_EQ(sequential.barriers.size(), static_cast<size_t>(sequential.rounds));
  for (const int threads : {2, 4, 8}) {
    const AdaptiveRun threaded = RunPulsedMesh(threads, /*adaptive=*/true);
    EXPECT_EQ(threaded.fingerprint, sequential.fingerprint) << "threads=" << threads;
    EXPECT_EQ(threaded.barriers, sequential.barriers) << "threads=" << threads;
    EXPECT_EQ(threaded.schedule_hash, sequential.schedule_hash)
        << "threads=" << threads;
  }
}

TEST(LoopGroup, AdaptiveQuantumCompressesQuiescentStretches) {
  // Same workload, same deliveries — the event fingerprint must not change — but the
  // quiescent gap collapses into capped wide rounds instead of one barrier per quantum.
  const AdaptiveRun fixed = RunPulsedMesh(/*threads=*/0, /*adaptive=*/false);
  const AdaptiveRun adaptive = RunPulsedMesh(/*threads=*/0, /*adaptive=*/true);
  EXPECT_EQ(adaptive.fingerprint, fixed.fingerprint);
  EXPECT_LT(adaptive.rounds, fixed.rounds / 4);
}

TEST(LoopGroup, AdaptiveQuantumBoundsLateDeliveryByBaseQuantum) {
  // Messages posted mid-round are clamped to the barrier; with activity-following
  // widths the clamp is never worse than one base quantum, so every hop (+100 us) must
  // run within quantum of its nominal time. The Mesh records loop Now() at each hop —
  // compare against a fixed-quantum run whose lateness bound is the same base quantum.
  LoopGroup::Options options;
  options.quantum = 500;
  options.adaptive_quantum = true;
  options.max_quantum = 50000;
  Mesh mesh(3, options);
  mesh.StartChain(0, /*hops=*/10, "chain0");
  // A far-future event forces wide idle rounds to be *available* while the chain is
  // still hopping at +100 us steps — the horizon must hold widths down to the floor.
  mesh.loops[2]->Schedule(100000, []() {});
  mesh.group.RunAll();
  // Hop k runs at most one base quantum after the previous hop's delivery time.
  for (const auto& trace : mesh.traces) {
    for (const std::string& line : trace) {
      const auto at = line.find('@');
      ASSERT_NE(at, std::string::npos);
      const SimTime when = std::stoll(line.substr(at + 1));
      if (when < 100000) {
        // 10 hops, 100 us apart, each clamp <= 500: nothing may drift past ~hop budget.
        EXPECT_LE(when, 10 * 100 + 10 * 500) << line;
      }
    }
  }
}

TEST(LoopGroup, ResetMetricsZeroesCountersButNotClockOrSchedule) {
  LoopGroup::Options options;
  options.quantum = 500;
  Mesh mesh(2, options);
  mesh.StartChain(0, /*hops=*/8, "chain0");
  mesh.group.RunAll();
  EXPECT_GT(mesh.group.metrics().Value("channel_messages"), 0);
  const int64_t rounds_before = mesh.group.rounds();
  const uint64_t hash_before = mesh.group.barrier_schedule_hash();
  mesh.group.ResetMetrics();
  EXPECT_EQ(mesh.group.metrics().Value("channel_messages"), 0);
  EXPECT_EQ(mesh.group.metrics().Value("loop_events_highwater"), 0);
  EXPECT_EQ(mesh.group.rounds(), rounds_before);
  EXPECT_EQ(mesh.group.barrier_schedule_hash(), hash_before);
  // Counters start accumulating again from zero for the next phase.
  mesh.StartChain(1, /*hops=*/4, "chain1");
  mesh.group.RunAll();
  EXPECT_GE(mesh.group.metrics().Value("channel_messages"), 4);
}

std::string RunFusedMesh(int threads) {
  LoopGroup::Options options;
  options.threads = threads;
  options.quantum = 500;
  Mesh mesh(4, options);
  for (int i = 0; i < 4; ++i) {
    mesh.StartChain(i, /*hops=*/20, "chain" + std::to_string(i));
  }
  mesh.group.RunUntil(2000);
  // Fuse two busy lanes mid-run (the live-migration safety window) and let the window
  // expire while traffic is still flowing.
  mesh.group.FuseLanes({1, 3}, mesh.group.Now() + 3000);
  EXPECT_EQ(mesh.group.active_fusions(), 1);
  mesh.group.RunUntil(4000);
  mesh.group.RunAll();
  EXPECT_EQ(mesh.group.active_fusions(), 0);  // dissolved at the expiry barrier
  return mesh.Fingerprint();
}

TEST(LoopGroup, FusedLanesAreInvisibleToDeterminism) {
  // A fused unit is driven by one thread in ascending slot order — the sequential
  // order — so fusing lanes must not change any event history at any width.
  const std::string sequential = RunFusedMesh(/*threads=*/0);
  EXPECT_EQ(RunFusedMesh(/*threads=*/2), sequential);
  EXPECT_EQ(RunFusedMesh(/*threads=*/4), sequential);
  EXPECT_EQ(sequential, RunMesh(4, /*threads=*/0));  // and matches the unfused run
}

TEST(LoopGroup, PinWorkersIsAGracefulOptIn) {
  LoopGroup::Options options;
  options.threads = 2;
  options.quantum = 500;
  options.pin_workers = true;
  Mesh mesh(4, options);
  for (int i = 0; i < 4; ++i) {
    mesh.StartChain(i, /*hops=*/20, "chain" + std::to_string(i));
  }
  mesh.group.RunAll();
  // Pinning may be refused (non-Linux, restricted sandbox) but never breaks the run.
  EXPECT_GE(mesh.group.workers_pinned(), 0);
  EXPECT_LE(mesh.group.workers_pinned(), mesh.group.workers_started());
  EXPECT_EQ(mesh.Fingerprint(), RunMesh(4, /*threads=*/0));
}

TEST(LoopGroup, ChannelMetricsCountInSequentialModeToo) {
  LoopGroup::Options options;
  options.threads = 0;
  options.quantum = 500;
  Mesh mesh(2, options);
  mesh.StartChain(0, /*hops=*/8, "chain0");
  mesh.group.RunAll();
  EXPECT_GE(mesh.group.metrics().Value("channel_messages"), 8);
  EXPECT_EQ(mesh.group.metrics().Value("barrier_wait_ns"), 0);  // never blocked
}

// --- Driver tasks: between-rounds callbacks on the barrier schedule ------------------

TEST(LoopGroup, DriverTaskFiresAtFirstBarrierAtOrAfterItsTime) {
  LoopGroup::Options options;
  options.quantum = 500;
  Mesh mesh(2, options);
  std::vector<SimTime> fired;
  // 750 sits mid-round: the task must fire at the 1000 barrier, not at 500 and not
  // inside a loop's execution.
  mesh.group.ScheduleDriverTask(750, [&] { fired.push_back(mesh.group.Now()); });
  EXPECT_EQ(mesh.group.pending_driver_tasks(), 1u);
  mesh.group.RunUntil(2000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1000);
  EXPECT_EQ(mesh.group.pending_driver_tasks(), 0u);
}

TEST(LoopGroup, DriverTasksRunInTimeThenSubmissionOrder) {
  LoopGroup::Options options;
  options.quantum = 500;
  Mesh mesh(2, options);
  std::vector<std::string> order;
  mesh.group.ScheduleDriverTask(600, [&] { order.push_back("b"); });
  mesh.group.ScheduleDriverTask(100, [&] { order.push_back("a"); });
  mesh.group.ScheduleDriverTask(600, [&] { order.push_back("c"); });  // ties: seq order
  mesh.group.RunUntil(1500);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
}

TEST(LoopGroup, SelfReschedulingDriverTaskTicksPeriodically) {
  LoopGroup::Options options;
  options.quantum = 500;
  Mesh mesh(2, options);
  std::vector<SimTime> ticks;
  // The control-loop pattern: each firing re-arms itself one period out.
  std::function<void()> tick = [&] {
    ticks.push_back(mesh.group.Now());
    if (ticks.size() < 4) {
      mesh.group.ScheduleDriverTask(mesh.group.Now() + 1000, tick);
    }
  };
  mesh.group.ScheduleDriverTask(1000, tick);
  mesh.group.RunUntil(5000);
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_EQ(ticks[0], 1000);
  EXPECT_EQ(ticks[1], 2000);
  EXPECT_EQ(ticks[2], 3000);
  EXPECT_EQ(ticks[3], 4000);
}

TEST(LoopGroup, AdaptiveQuantumLandsABarrierExactlyOnDriverTasks) {
  // With adaptive quanta and a quiescent mesh, rounds would stretch to max_quantum —
  // but a pending driver task clamps the horizon so a barrier lands exactly at (or,
  // for already-due times, at the first barrier after) the task's virtual time.
  LoopGroup::Options options;
  options.quantum = 500;
  options.adaptive_quantum = true;
  options.max_quantum = 100000;
  Mesh mesh(2, options);
  std::vector<SimTime> fired;
  mesh.group.ScheduleDriverTask(7300, [&] { fired.push_back(mesh.group.Now()); });
  mesh.group.RunUntil(50000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7300);
}

TEST(LoopGroup, DriverTaskScheduleIsIdenticalSequentialAndThreaded) {
  auto run = [](int threads) {
    LoopGroup::Options options;
    options.threads = threads;
    options.quantum = 500;
    Mesh mesh(4, options);
    for (int i = 0; i < 4; ++i) {
      mesh.StartChain(i, /*hops=*/12, "chain" + std::to_string(i));
    }
    std::ostringstream log;
    std::function<void()> tick = [&] {
      log << mesh.group.Now() << ";";
      if (mesh.group.Now() < 4000) {
        mesh.group.ScheduleDriverTask(mesh.group.Now() + 1000, tick);
      }
    };
    mesh.group.ScheduleDriverTask(1000, tick);
    mesh.group.RunUntil(6000);
    return log.str() + "|" + mesh.Fingerprint();
  };
  const std::string sequential = run(0);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(4), sequential);
}

TEST(LoopGroup, RunAllIgnoresPendingDriverTasksAsActivity) {
  // A self-rescheduling controller must not make RunAll spin forever: drain stops when
  // the *loops* go quiet, leaving the future driver task parked. (Callers stop the
  // source first — same contract as failure-detection probes.)
  LoopGroup::Options options;
  options.quantum = 500;
  Mesh mesh(2, options);
  mesh.StartChain(0, /*hops=*/4, "chain0");
  bool fired = false;
  mesh.group.ScheduleDriverTask(1000000000, [&] { fired = true; });
  mesh.group.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(mesh.group.pending_driver_tasks(), 1u);
  EXPECT_EQ(mesh.group.pending_messages(), 0u);
}

}  // namespace
}  // namespace icg
