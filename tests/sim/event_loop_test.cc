#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

namespace icg {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.Now(), 0);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(Millis(30), [&]() { order.push_back(3); });
  loop.Schedule(Millis(10), [&]() { order.push_back(1); });
  loop.Schedule(Millis(20), [&]() { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), Millis(30));
}

TEST(EventLoop, SameTimeEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(Millis(5), [&order, i]() { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoop, NowAdvancesToEventTime) {
  EventLoop loop;
  SimTime seen = -1;
  loop.Schedule(Micros(123), [&]() { seen = loop.Now(); });
  loop.Run();
  EXPECT_EQ(seen, Micros(123));
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<SimTime> times;
  loop.Schedule(Millis(1), [&]() {
    times.push_back(loop.Now());
    loop.Schedule(Millis(1), [&]() { times.push_back(loop.Now()); });
  });
  loop.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Millis(1));
  EXPECT_EQ(times[1], Millis(2));
}

TEST(EventLoop, ZeroDelayRunsAtCurrentTime) {
  EventLoop loop;
  bool ran = false;
  loop.Schedule(0, [&]() { ran = true; });
  EXPECT_TRUE(loop.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.Now(), 0);
}

TEST(EventLoop, RunOneReturnsFalseWhenEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.RunOne());
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const TimerId id = loop.Schedule(Millis(1), [&]() { ran = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelUnknownIdIsNoop) {
  EventLoop loop;
  loop.Cancel(99999);
  bool ran = false;
  loop.Schedule(Millis(1), [&]() { ran = true; });
  loop.Run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, CancelOneOfMany) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(Millis(1), [&]() { order.push_back(1); });
  const TimerId id = loop.Schedule(Millis(2), [&]() { order.push_back(2); });
  loop.Schedule(Millis(3), [&]() { order.push_back(3); });
  loop.Cancel(id);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoop, RunUntilStopsAtBoundaryInclusive) {
  EventLoop loop;
  std::vector<int> ran;
  loop.Schedule(Millis(10), [&]() { ran.push_back(10); });
  loop.Schedule(Millis(20), [&]() { ran.push_back(20); });
  loop.Schedule(Millis(30), [&]() { ran.push_back(30); });
  loop.RunUntil(Millis(20));
  EXPECT_EQ(ran, (std::vector<int>{10, 20}));
  EXPECT_EQ(loop.Now(), Millis(20));
  loop.Run();
  EXPECT_EQ(ran, (std::vector<int>{10, 20, 30}));
}

TEST(EventLoop, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventLoop loop;
  loop.RunUntil(Seconds(5));
  EXPECT_EQ(loop.Now(), Seconds(5));
}

TEST(EventLoop, RunForIsRelative) {
  EventLoop loop;
  loop.RunFor(Millis(10));
  loop.RunFor(Millis(10));
  EXPECT_EQ(loop.Now(), Millis(20));
}

TEST(EventLoop, ScheduleAtAbsoluteTime) {
  EventLoop loop;
  SimTime seen = -1;
  loop.ScheduleAt(Millis(7), [&]() { seen = loop.Now(); });
  loop.Run();
  EXPECT_EQ(seen, Millis(7));
}

TEST(EventLoop, EventsProcessedCounts) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(i, []() {});
  }
  loop.Run();
  EXPECT_EQ(loop.events_processed(), 5);
}

TEST(EventLoop, CancelledEventNotCounted) {
  EventLoop loop;
  const TimerId id = loop.Schedule(1, []() {});
  loop.Cancel(id);
  loop.Run();
  EXPECT_EQ(loop.events_processed(), 0);
}

TEST(EventLoop, CancelAfterFireDoesNotLeakTombstones) {
  EventLoop loop;
  // Cancelling ids that already fired used to insert a tombstone forever; with more
  // tombstones than queued events, pending_events() (queue size minus tombstones)
  // underflowed size_t to an astronomically large value.
  const TimerId a = loop.Schedule(Millis(1), []() {});
  const TimerId b = loop.Schedule(Millis(2), []() {});
  loop.Run();
  loop.Cancel(a);
  loop.Cancel(b);
  loop.Cancel(a);  // repeated cancels of fired ids must stay no-ops
  EXPECT_EQ(loop.pending_events(), 0u);

  int ran = 0;
  loop.Schedule(Millis(1), [&]() { ran++; });
  EXPECT_EQ(loop.pending_events(), 1u);  // previously underflowed here
  loop.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelOfFiredTimerFromInsideACallback) {
  EventLoop loop;
  // Mid-run cancels of ids that already fired this run (including the currently
  // executing one) must be no-ops that neither disturb still-pending timers nor skew
  // pending_events() accounting.
  std::vector<int> order;
  TimerId first = 0;
  TimerId second = 0;
  first = loop.Schedule(Micros(10), [&]() { order.push_back(1); });
  second = loop.Schedule(Micros(20), [&]() {
    order.push_back(2);
    loop.Cancel(first);   // already fired
    loop.Cancel(second);  // currently executing
  });
  loop.Schedule(Micros(30), [&]() { order.push_back(3); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.events_processed(), 3);

  // The fired ids stay dead no-ops even once new timers occupy the same wheel region.
  int late = 0;
  loop.Schedule(Micros(10), [&]() { late++; });
  loop.Cancel(first);
  loop.Cancel(second);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_EQ(late, 1);
}

TEST(EventLoop, PendingEventsExcludesCancelled) {
  EventLoop loop;
  const TimerId id = loop.Schedule(Millis(1), []() {});
  loop.Schedule(Millis(2), []() {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.Cancel(id);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Cancel(id);  // double cancel of a pending id counts once
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CascadeAcrossWheelLevelsPreservesOrder) {
  EventLoop loop;
  std::vector<int> order;
  // One event per wheel level: 10us (L0), 1ms (L1), 100ms (L2), 5s (L3), 20min (L4),
  // 2h (L5) — interleaved with near-boundary times that force multi-step cascades.
  const SimTime times[] = {
      Micros(10),     Micros(63),      Micros(64),     Micros(4095),
      Micros(4096),   Millis(1),       Millis(100),    Micros(262143),
      Micros(262144), Seconds(5),      Seconds(1200),  Seconds(7200),
  };
  std::vector<SimTime> sorted(std::begin(times), std::end(times));
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < static_cast<int>(std::size(times)); ++i) {
    loop.ScheduleAt(times[i], [&order, i]() { order.push_back(i); });
  }
  std::vector<int> expect;
  for (const SimTime t : sorted) {
    for (int i = 0; i < static_cast<int>(std::size(times)); ++i) {
      if (times[i] == t) {
        expect.push_back(i);
      }
    }
  }
  loop.Run();
  EXPECT_EQ(order, expect);
  EXPECT_EQ(loop.Now(), Seconds(7200));
}

TEST(EventLoop, SameTimeFifoSurvivesCascade) {
  EventLoop loop;
  // Two events at the same far-future instant scheduled from different wheel epochs:
  // the first goes in while the wheel is at t=0 (lands in a high level), the second
  // after the wheel advanced (lands lower). Cascading must not reorder them.
  std::vector<int> order;
  const SimTime target = Millis(50);
  loop.Schedule(target, [&]() { order.push_back(1); });
  loop.Schedule(Millis(10), [&]() {
    loop.ScheduleAt(target, [&]() { order.push_back(2); });
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, OverflowHorizonEvents) {
  EventLoop loop;
  // Beyond the top wheel level's span (~19.1h of virtual time) events sit in the
  // overflow list and must still fire in order.
  std::vector<int> order;
  loop.ScheduleAt(Seconds(100000), [&]() { order.push_back(2); });  // ~27.8h
  loop.ScheduleAt(Seconds(90000), [&]() { order.push_back(1); });
  loop.ScheduleAt(Seconds(110000), [&]() { order.push_back(3); });
  loop.Schedule(Millis(1), [&]() { order.push_back(0); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.Now(), Seconds(110000));
}

TEST(EventLoop, CancelEventParkedInHighLevel) {
  EventLoop loop;
  bool ran = false;
  const TimerId id = loop.ScheduleAt(Seconds(5), [&]() { ran = true; });  // L3 territory
  loop.RunUntil(Seconds(1));
  loop.Cancel(id);
  EXPECT_EQ(loop.pending_events(), 0u);
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.events_processed(), 0);
}

TEST(EventLoop, StaleIdAfterSlotReuseIsNoop) {
  EventLoop loop;
  int ran = 0;
  const TimerId old_id = loop.Schedule(Millis(1), [&]() { ran += 1; });
  loop.Run();
  // The pool slot is recycled for the next timer under a fresh generation; cancelling
  // with the stale id must not kill the new occupant.
  loop.Schedule(Millis(1), [&]() { ran += 10; });
  loop.Cancel(old_id);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_EQ(ran, 11);
}

TEST(EventLoop, ScheduleAfterLongIdleRunUntil) {
  EventLoop loop;
  // An event-free RunUntil drags now_ far past the wheel's position; a fresh schedule
  // must re-anchor instead of landing in a distant level.
  loop.RunUntil(Seconds(50000));
  std::vector<int> order;
  loop.Schedule(Micros(5), [&]() { order.push_back(1); });
  loop.Schedule(Millis(3), [&]() { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.Now(), Seconds(50000) + Millis(3));
}

TEST(EventLoop, NextEventTimeReportsEarliest) {
  EventLoop loop;
  EXPECT_FALSE(loop.NextEventTime().has_value());
  loop.Schedule(Millis(20), []() {});
  const TimerId id = loop.Schedule(Millis(5), []() {});
  ASSERT_TRUE(loop.NextEventTime().has_value());
  EXPECT_EQ(*loop.NextEventTime(), Millis(5));
  loop.Cancel(id);
  ASSERT_TRUE(loop.NextEventTime().has_value());
  EXPECT_EQ(*loop.NextEventTime(), Millis(20));
  loop.Run();
  EXPECT_FALSE(loop.NextEventTime().has_value());
}

TEST(EventLoop, ManyEventsStressOrdering) {
  EventLoop loop;
  SimTime last = -1;
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    // Pseudo-random but deterministic delays.
    loop.Schedule((i * 7919) % 1000, [&, i]() {
      if (loop.Now() < last) {
        monotonic = false;
      }
      last = loop.Now();
    });
  }
  loop.Run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(loop.events_processed(), 10000);
}

}  // namespace
}  // namespace icg
