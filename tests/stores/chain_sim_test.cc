#include "src/stores/chain_sim.h"

#include <gtest/gtest.h>

#include <vector>

namespace icg {
namespace {

ChainConfig FastChain(double orphan_probability = 0.0) {
  ChainConfig c;
  c.mean_block_interval = Seconds(10);
  c.orphan_probability = orphan_probability;
  c.confirm_depth = 6;
  return c;
}

TEST(ChainSim, HeightGrowsOverTime) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(), 1);
  chain.Start();
  loop.RunFor(Seconds(300));
  EXPECT_GT(chain.height(), 10);
  EXPECT_EQ(chain.orphans(), 0);
  EXPECT_EQ(chain.blocks_mined(), chain.height());
}

TEST(ChainSim, StartIsIdempotent) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(), 1);
  chain.Start();
  chain.Start();
  loop.RunFor(Seconds(100));
  // Double-start must not double the block production rate: ~10 blocks in 100 s.
  EXPECT_LT(chain.blocks_mined(), 25);
}

TEST(ChainSim, MeanBlockIntervalRoughlyRespected) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(), 2);
  chain.Start();
  loop.RunFor(Seconds(10000));
  // ~1000 blocks expected with mean interval 10 s.
  EXPECT_NEAR(static_cast<double>(chain.blocks_mined()), 1000.0, 120.0);
}

TEST(ChainSim, ConfirmationsAccumulateMonotonicallyWithoutForks) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(0.0), 3);
  chain.Start();
  std::vector<int> confirmations;
  bool finished = false;
  chain.SubmitTransaction("tx1", [&](int c, bool irreversible) {
    confirmations.push_back(c);
    finished |= irreversible;
  });
  loop.RunFor(Seconds(300));
  ASSERT_TRUE(finished);
  ASSERT_GE(confirmations.size(), 6u);
  for (size_t i = 1; i < confirmations.size(); ++i) {
    EXPECT_EQ(confirmations[i], confirmations[i - 1] + 1);
  }
  EXPECT_EQ(confirmations.back(), 6);
}

TEST(ChainSim, TrackingStopsAtDepth) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(0.0), 4);
  chain.Start();
  int notifications = 0;
  chain.SubmitTransaction("tx1", [&](int, bool) { notifications++; });
  loop.RunFor(Seconds(1000));  // far past irreversibility
  EXPECT_EQ(notifications, 6);  // 1..6, then silence
}

TEST(ChainSim, ReorgsRegressConfirmations) {
  // A transaction only regresses while it sits at the tip, so any single chain may
  // escape unscathed; across 20 independent chains with 50% orphan probability, at
  // least one regression is (deterministically, given the seeds) observed.
  bool saw_regression = false;
  int64_t total_orphans = 0;
  for (uint64_t seed = 1; seed <= 20 && !saw_regression; ++seed) {
    EventLoop loop;
    ChainSim chain(&loop, FastChain(/*orphan_probability=*/0.5), seed);
    chain.Start();
    int last = 0;
    chain.SubmitTransaction("tx1", [&](int c, bool) {
      if (c < last) {
        saw_regression = true;
      }
      last = c;
    });
    loop.RunFor(Seconds(2000));
    total_orphans += chain.orphans();
  }
  EXPECT_GT(total_orphans, 0);
  EXPECT_TRUE(saw_regression);
}

TEST(ChainSim, ReorgedTransactionReincluded) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(0.3), 6);
  chain.Start();
  bool finished = false;
  chain.SubmitTransaction("tx1", [&](int, bool irreversible) { finished |= irreversible; });
  loop.RunFor(Seconds(5000));
  EXPECT_TRUE(finished);  // despite reorgs, the tx eventually buries deep enough
}

TEST(ChainSim, MultipleTransactionsTrackedIndependently) {
  EventLoop loop;
  ChainSim chain(&loop, FastChain(0.0), 7);
  chain.Start();
  int done = 0;
  chain.SubmitTransaction("a", [&](int, bool irr) { done += irr ? 1 : 0; });
  loop.RunFor(Seconds(25));  // a has a head start
  chain.SubmitTransaction("b", [&](int, bool irr) { done += irr ? 1 : 0; });
  loop.RunFor(Seconds(300));
  EXPECT_EQ(done, 2);
}

TEST(ChainSim, DeterministicForSeed) {
  EventLoop loop1;
  ChainSim c1(&loop1, FastChain(0.2), 42);
  c1.Start();
  loop1.RunFor(Seconds(1000));
  EventLoop loop2;
  ChainSim c2(&loop2, FastChain(0.2), 42);
  c2.Start();
  loop2.RunFor(Seconds(1000));
  EXPECT_EQ(c1.height(), c2.height());
  EXPECT_EQ(c1.orphans(), c2.orphans());
}

}  // namespace
}  // namespace icg
