#include "src/stores/causal_store.h"

#include <gtest/gtest.h>

#include "src/sim/network.h"

namespace icg {
namespace {

class CausalStoreTest : public ::testing::Test {
 protected:
  CausalStoreTest()
      : topology_(RttMatrix::Ec2Default()),
        network_(&loop_, &topology_, 1, 0.0),
        cluster_(&network_, &topology_, &config_,
                 {Region::kIreland, Region::kFrankfurt, Region::kVirginia}) {}

  EventLoop loop_;
  Topology topology_;
  Network network_;
  CausalConfig config_;
  CausalCluster cluster_;
};

TEST_F(CausalStoreTest, ReadOwnWriteAtOriginReplica) {
  auto client = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  bool acked = false;
  client->Write("k", "v", [&](StatusOr<OpResult>) { acked = true; });
  loop_.Run();
  ASSERT_TRUE(acked);
  StatusOr<OpResult> read(Status::Internal("none"));
  client->Read("k", [&](StatusOr<OpResult> r) { read = std::move(r); });
  loop_.Run();
  EXPECT_EQ(read->value, "v");
}

TEST_F(CausalStoreTest, WritesPropagateToAllReplicas) {
  auto client = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  client->Write("k", "v", [](StatusOr<OpResult>) {});
  loop_.Run();
  for (const Region r : {Region::kFrankfurt, Region::kVirginia}) {
    EXPECT_EQ(cluster_.ReplicaIn(r)->LocalGet("k").value(), "v");
  }
}

TEST_F(CausalStoreTest, PerOriginFifoOrder) {
  auto client = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  client->Write("k", "v1", [](StatusOr<OpResult>) {});
  client->Write("k", "v2", [](StatusOr<OpResult>) {});
  client->Write("k", "v3", [](StatusOr<OpResult>) {});
  loop_.Run();
  // All replicas converge to the last write of the FIFO stream.
  for (const Region r : {Region::kIreland, Region::kFrankfurt, Region::kVirginia}) {
    EXPECT_EQ(cluster_.ReplicaIn(r)->LocalGet("k").value(), "v3");
  }
}

TEST_F(CausalStoreTest, CausalDependencyRespected) {
  // Writer A (IRL) writes x; writer B (FRK) reads x, then writes y depending on it.
  // No replica may apply y before x.
  auto writer_a = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  auto writer_b = cluster_.MakeClient(Region::kFrankfurt, Region::kFrankfurt);

  writer_a->Write("x", "1", [](StatusOr<OpResult>) {});
  loop_.Run();  // x reaches FRK

  StatusOr<OpResult> seen(Status::Internal("none"));
  writer_b->Read("x", [&](StatusOr<OpResult> r) { seen = std::move(r); });
  loop_.Run();
  ASSERT_EQ(seen->value, "1");

  writer_b->Write("y", "after-x", [](StatusOr<OpResult>) {});
  loop_.Run();
  // Every replica that has y must also have x (causal cut).
  for (const Region r : {Region::kIreland, Region::kFrankfurt, Region::kVirginia}) {
    CausalReplica* replica = cluster_.ReplicaIn(r);
    if (replica->LocalGet("y").has_value()) {
      EXPECT_TRUE(replica->LocalGet("x").has_value()) << RegionName(r);
    }
  }
  EXPECT_EQ(cluster_.ReplicaIn(Region::kVirginia)->LocalGet("y").value(), "after-x");
}

TEST_F(CausalStoreTest, AppliedClockAdvances) {
  auto client = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  client->Write("a", "1", [](StatusOr<OpResult>) {});
  client->Write("b", "2", [](StatusOr<OpResult>) {});
  loop_.Run();
  // Origin 0 (IRL) has issued two writes; every replica applied both.
  for (const Region r : {Region::kIreland, Region::kFrankfurt, Region::kVirginia}) {
    EXPECT_EQ(cluster_.ReplicaIn(r)->applied_clock()[0], 2) << RegionName(r);
  }
}

TEST_F(CausalStoreTest, ConcurrentWritesConvergeLww) {
  auto a = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  auto b = cluster_.MakeClient(Region::kVirginia, Region::kVirginia);
  a->Write("k", "from-a", [](StatusOr<OpResult>) {});
  b->Write("k", "from-b", [](StatusOr<OpResult>) {});
  loop_.Run();
  const auto v0 = cluster_.ReplicaIn(Region::kIreland)->LocalGet("k");
  for (const Region r : {Region::kFrankfurt, Region::kVirginia}) {
    EXPECT_EQ(cluster_.ReplicaIn(r)->LocalGet("k"), v0);  // all replicas agree
  }
}

TEST(ClientCache, HitAndMissCounting) {
  ClientCache cache;
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.misses(), 1);
  OpResult r;
  r.found = true;
  r.value = "v";
  cache.Put("k", r);
  ASSERT_TRUE(cache.Get("k").has_value());
  EXPECT_EQ(cache.Get("k")->value, "v");
  EXPECT_EQ(cache.hits(), 2);
}

TEST(ClientCache, PutOverwrites) {
  ClientCache cache;
  OpResult r1;
  r1.found = true;
  r1.value = "v1";
  OpResult r2 = r1;
  r2.value = "v2";
  cache.Put("k", r1);
  cache.Put("k", r2);
  EXPECT_EQ(cache.Get("k")->value, "v2");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ClientCache, InvalidateRemoves) {
  ClientCache cache;
  OpResult r;
  r.found = true;
  cache.Put("k", r);
  cache.Invalidate("k");
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST(ClientCache, EvictsAtCapacity) {
  ClientCache cache(/*capacity=*/3);
  OpResult r;
  r.found = true;
  for (int i = 0; i < 5; ++i) {
    cache.Put("k" + std::to_string(i), r);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Get("k0").has_value());  // oldest evicted
  EXPECT_TRUE(cache.Get("k4").has_value());
}

TEST(ClientCache, ClearEmpties) {
  ClientCache cache;
  OpResult r;
  r.found = true;
  cache.Put("k", r);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace icg
