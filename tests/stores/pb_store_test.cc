#include "src/stores/pb_store.h"

#include <gtest/gtest.h>

#include "src/sim/network.h"

namespace icg {
namespace {

class PbStoreTest : public ::testing::Test {
 protected:
  PbStoreTest()
      : topology_(RttMatrix::Ec2Default()),
        network_(&loop_, &topology_, 1, 0.0),
        cluster_(&network_, &topology_, &config_,
                 {Region::kVirginia, Region::kIreland, Region::kFrankfurt}) {
    client_ = cluster_.MakeClient(Region::kIreland, Region::kIreland);
  }

  StatusOr<OpResult> ReadWeak(const std::string& key) {
    StatusOr<OpResult> out(Status::Internal("none"));
    client_->ReadWeak(key, [&](StatusOr<OpResult> r) { out = std::move(r); });
    loop_.Run();
    return out;
  }
  StatusOr<OpResult> ReadStrong(const std::string& key) {
    StatusOr<OpResult> out(Status::Internal("none"));
    client_->ReadStrong(key, [&](StatusOr<OpResult> r) { out = std::move(r); });
    loop_.Run();
    return out;
  }
  StatusOr<OpResult> Write(const std::string& key, const std::string& value) {
    StatusOr<OpResult> out(Status::Internal("none"));
    client_->Write(key, value, [&](StatusOr<OpResult> r) { out = std::move(r); });
    loop_.Run();
    return out;
  }

  EventLoop loop_;
  Topology topology_;
  Network network_;
  PbConfig config_;
  PbCluster cluster_;
  std::unique_ptr<PbClient> client_;
};

TEST_F(PbStoreTest, PrimaryIsFirstRegion) {
  EXPECT_EQ(topology_.RegionOf(cluster_.primary()->id()), Region::kVirginia);
}

TEST_F(PbStoreTest, MissingKeyNotFound) {
  const auto r = ReadWeak("none");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST_F(PbStoreTest, WriteThenStrongReadIsFresh) {
  Write("k", "v1");
  const auto r = ReadStrong("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, "v1");
}

TEST_F(PbStoreTest, WeakReadEventuallyFresh) {
  Write("k", "v1");
  loop_.RunFor(Seconds(1));  // propagation settles
  EXPECT_EQ(ReadWeak("k")->value, "v1");
}

TEST_F(PbStoreTest, WeakReadCanBeStaleDuringPropagation) {
  cluster_.Preload("k", "old");
  // The write reaches the primary (VRG) after ~41.5 ms one-way; propagation back to the
  // IRL backup needs another ~41.5 ms. A weak read issued in between sees the old value.
  client_->Write("k", "new", [](StatusOr<OpResult>) {});
  StatusOr<OpResult> weak(Status::Internal("none"));
  loop_.RunFor(Millis(50));  // write applied at primary; propagation still in flight
  client_->ReadWeak("k", [&](StatusOr<OpResult> r) { weak = std::move(r); });
  loop_.RunFor(Millis(5));
  ASSERT_TRUE(weak.ok());
  EXPECT_EQ(weak->value, "old");  // stale: the backup has not heard yet
  loop_.Run();
  EXPECT_EQ(ReadWeak("k")->value, "new");  // eventually fresh
}

TEST_F(PbStoreTest, WeakIsFasterThanStrong) {
  cluster_.Preload("k", "v");
  SimTime weak_done = 0;
  SimTime strong_done = 0;
  const SimTime start = loop_.Now();
  client_->ReadWeak("k", [&](StatusOr<OpResult>) { weak_done = loop_.Now() - start; });
  client_->ReadStrong("k", [&](StatusOr<OpResult>) { strong_done = loop_.Now() - start; });
  loop_.Run();
  EXPECT_LT(weak_done, strong_done);
  EXPECT_LT(weak_done, Millis(5));     // local backup, 2 ms RTT
  EXPECT_GT(strong_done, Millis(80));  // primary in VRG, 83 ms RTT
}

TEST_F(PbStoreTest, LastWriterWinsOnBackups) {
  Write("k", "v1");
  Write("k", "v2");
  loop_.RunFor(Seconds(1));
  for (const Region r : {Region::kIreland, Region::kFrankfurt}) {
    EXPECT_EQ(cluster_.NodeIn(r)->LocalGet("k").value(), "v2");
  }
}

TEST_F(PbStoreTest, PreloadReachesAllNodes) {
  cluster_.Preload("k", "v");
  EXPECT_EQ(cluster_.NodeIn(Region::kVirginia)->LocalGet("k").value(), "v");
  EXPECT_EQ(cluster_.NodeIn(Region::kIreland)->LocalGet("k").value(), "v");
  EXPECT_EQ(cluster_.NodeIn(Region::kFrankfurt)->LocalGet("k").value(), "v");
}

}  // namespace
}  // namespace icg
