// Closed-loop runner semantics: throughput math, warmup/cooldown elision, outcome
// accounting, and multi-client aggregation, using synthetic constant-latency executors.
#include "src/ycsb/runner.h"

#include <gtest/gtest.h>

#include "src/ycsb/multi_runner.h"

namespace icg {
namespace {

// Executor answering every op after a fixed virtual delay.
OpExecutor FixedLatencyExecutor(EventLoop* loop, SimDuration latency,
                                bool with_preliminary = false, bool diverged = false) {
  return [loop, latency, with_preliminary, diverged](const YcsbOp&,
                                                     std::function<void(OpOutcome)> done) {
    loop->Schedule(latency, [latency, with_preliminary, diverged, done]() {
      OpOutcome outcome;
      outcome.final_latency = latency;
      if (with_preliminary) {
        outcome.preliminary_latency = latency / 2;
        outcome.diverged = diverged;
      }
      done(outcome);
    });
  };
}

RunnerConfig ShortTrial(int threads) {
  RunnerConfig c;
  c.threads = threads;
  c.duration = Seconds(30);
  c.warmup = Seconds(5);
  c.cooldown = Seconds(5);
  return c;
}

TEST(LoadRunner, ClosedLoopThroughputMatchesLittleLaw) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 1);
  // 4 sessions x (1 op / 100 ms) = 40 ops/s.
  LoadRunner runner(&loop, &workload, FixedLatencyExecutor(&loop, Millis(100)),
                    ShortTrial(4));
  const RunnerResult result = runner.Run();
  EXPECT_NEAR(result.throughput_ops, 40.0, 2.0);
  EXPECT_NEAR(result.final_view.mean_ms(), 100.0, 1.0);
}

TEST(LoadRunner, SingleThreadSingleOpAtATime) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 2);
  LoadRunner runner(&loop, &workload, FixedLatencyExecutor(&loop, Millis(10)), ShortTrial(1));
  const RunnerResult result = runner.Run();
  EXPECT_NEAR(result.throughput_ops, 100.0, 5.0);
}

TEST(LoadRunner, WarmupAndCooldownElided) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 3);
  LoadRunner runner(&loop, &workload, FixedLatencyExecutor(&loop, Millis(100)), ShortTrial(2));
  const RunnerResult result = runner.Run();
  // Measured window is 20 s of the 30 s trial: ~2 sessions x 10 ops/s x 20 s = 400 ops.
  EXPECT_NEAR(static_cast<double>(result.measured_ops), 400.0, 20.0);
}

TEST(LoadRunner, PreliminaryStatsRecorded) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 4);
  LoadRunner runner(&loop, &workload,
                    FixedLatencyExecutor(&loop, Millis(40), /*with_preliminary=*/true),
                    ShortTrial(2));
  const RunnerResult result = runner.Run();
  EXPECT_EQ(result.ops_with_preliminary, result.measured_ops);
  EXPECT_NEAR(result.preliminary.mean_ms(), 20.0, 1.0);
  EXPECT_DOUBLE_EQ(result.DivergencePercent(), 0.0);
}

TEST(LoadRunner, DivergenceCounted) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 5);
  LoadRunner runner(&loop, &workload,
                    FixedLatencyExecutor(&loop, Millis(40), true, /*diverged=*/true),
                    ShortTrial(1));
  const RunnerResult result = runner.Run();
  EXPECT_EQ(result.divergences, result.ops_with_preliminary);
  EXPECT_DOUBLE_EQ(result.DivergencePercent(), 100.0);
}

TEST(LoadRunner, ErrorsCountedSeparately) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 6);
  OpExecutor failing = [&loop](const YcsbOp&, std::function<void(OpOutcome)> done) {
    loop.Schedule(Millis(10), [done]() {
      OpOutcome outcome;
      outcome.error = true;
      outcome.final_latency = Millis(10);
      done(outcome);
    });
  };
  LoadRunner runner(&loop, &workload, failing, ShortTrial(1));
  const RunnerResult result = runner.Run();
  EXPECT_GT(result.errors, 0);
  EXPECT_EQ(result.final_view.count, 0);  // errored ops do not pollute latency stats
}

TEST(LoadRunner, ConcurrentRunnersShareOneLoop) {
  EventLoop loop;
  CoreWorkload w1(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 7);
  CoreWorkload w2(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 8);
  RunnerConfig config = ShortTrial(1);
  LoadRunner r1(&loop, &w1, FixedLatencyExecutor(&loop, Millis(50)), config);
  LoadRunner r2(&loop, &w2, FixedLatencyExecutor(&loop, Millis(50)), config);
  r1.Begin();
  r2.Begin();
  loop.RunUntil(loop.Now() + config.duration + Seconds(5));
  EXPECT_NEAR(r1.Collect().throughput_ops, 20.0, 2.0);
  EXPECT_NEAR(r2.Collect().throughput_ops, 20.0, 2.0);
}

// --- MergeRunnerResults: histogram-aware aggregation ------------------------------------

RunnerResult SyntheticResult(int samples, SimDuration latency, double throughput) {
  RunnerResult r;
  for (int i = 0; i < samples; ++i) {
    r.final_samples.Record(latency);
    r.preliminary_samples.Record(latency / 2);
  }
  r.final_view = r.final_samples.Summarize();
  r.preliminary = r.preliminary_samples.Summarize();
  r.measured_ops = samples;
  r.ops_with_preliminary = samples;
  r.throughput_ops = throughput;
  return r;
}

TEST(MergeRunnerResults, PercentilesComeFromTheUnionNotFromAverages) {
  // 300 fast ops and 100 slow ops: the merged p50 must stay at the fast latency (the
  // union's median), where averaging per-runner summaries would report 30 ms.
  const RunnerResult fast = SyntheticResult(300, Millis(10), 30.0);
  const RunnerResult slow = SyntheticResult(100, Millis(50), 10.0);
  const RunnerResult merged = MergeRunnerResults({fast, slow});

  EXPECT_EQ(merged.final_view.count, 400);
  EXPECT_EQ(merged.final_view.p50_us, Millis(10));
  EXPECT_EQ(merged.final_view.p99_us, Millis(50));
  EXPECT_EQ(merged.preliminary.p50_us, Millis(5));
  EXPECT_NEAR(merged.final_view.mean_ms(), 20.0, 0.1);  // (300*10 + 100*50) / 400
}

TEST(MergeRunnerResults, CountersAndThroughputAdd) {
  RunnerResult a = SyntheticResult(50, Millis(10), 25.0);
  a.divergences = 3;
  a.errors = 2;
  RunnerResult b = SyntheticResult(150, Millis(10), 75.0);
  b.divergences = 1;
  const RunnerResult merged = MergeRunnerResults({a, b});
  EXPECT_EQ(merged.measured_ops, 200);
  EXPECT_EQ(merged.ops_with_preliminary, 200);
  EXPECT_EQ(merged.divergences, 4);
  EXPECT_EQ(merged.errors, 2);
  EXPECT_DOUBLE_EQ(merged.throughput_ops, 100.0);
  EXPECT_DOUBLE_EQ(merged.DivergencePercent(), 2.0);
}

TEST(MergeRunnerResults, EmptyInputYieldsEmptyResult) {
  const RunnerResult merged = MergeRunnerResults({});
  EXPECT_EQ(merged.measured_ops, 0);
  EXPECT_EQ(merged.final_view.count, 0);
  EXPECT_DOUBLE_EQ(merged.throughput_ops, 0.0);
}

// --- MultiRunner: several closed-loop clients over one loop -----------------------------

TEST(MultiRunner, MergedThroughputSumsClients) {
  EventLoop loop;
  MultiRunner runner(&loop, ShortTrial(2));
  const WorkloadConfig workload = WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100);
  // 3 clients x 2 sessions x (1 op / 100 ms) = 60 ops/s system-wide.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    runner.AddClient(workload, seed, FixedLatencyExecutor(&loop, Millis(100)));
  }
  const RunnerResult merged = runner.Run();
  EXPECT_EQ(runner.num_clients(), 3u);
  EXPECT_NEAR(merged.throughput_ops, 60.0, 4.0);
  EXPECT_NEAR(merged.final_view.mean_ms(), 100.0, 1.0);
  // Per-client views of the same trial are still reachable.
  EXPECT_NEAR(runner.CollectClient(0).throughput_ops, 20.0, 2.0);
}

TEST(MultiRunner, ClientsWithDifferentLatenciesMergeHistogramAware) {
  EventLoop loop;
  MultiRunner runner(&loop, ShortTrial(1));
  const WorkloadConfig workload = WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100);
  runner.AddClient(workload, 10, FixedLatencyExecutor(&loop, Millis(10)));
  runner.AddClient(workload, 11, FixedLatencyExecutor(&loop, Millis(100)));
  const RunnerResult merged = runner.Run();
  // The fast client issues ~10x the ops, so the union's median sits at the fast latency
  // and the tail at the slow one.
  EXPECT_EQ(merged.final_view.p50_us, Millis(10));
  EXPECT_EQ(merged.final_view.p99_us, Millis(100));
}

TEST(LoadRunner, MoreThreadsMoreThroughputUntilExecutorLimits) {
  EventLoop loop;
  CoreWorkload w1(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 9);
  LoadRunner small(&loop, &w1, FixedLatencyExecutor(&loop, Millis(100)), ShortTrial(2));
  const double t2 = small.Run().throughput_ops;
  CoreWorkload w2(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 10);
  LoadRunner big(&loop, &w2, FixedLatencyExecutor(&loop, Millis(100)), ShortTrial(8));
  const double t8 = big.Run().throughput_ops;
  EXPECT_NEAR(t8 / t2, 4.0, 0.3);  // ideal scaling with a latency-only executor
}

}  // namespace
}  // namespace icg
