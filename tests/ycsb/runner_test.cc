// Closed-loop runner semantics: throughput math, warmup/cooldown elision, and outcome
// accounting, using a synthetic constant-latency executor.
#include "src/ycsb/runner.h"

#include <gtest/gtest.h>

namespace icg {
namespace {

// Executor answering every op after a fixed virtual delay.
OpExecutor FixedLatencyExecutor(EventLoop* loop, SimDuration latency,
                                bool with_preliminary = false, bool diverged = false) {
  return [loop, latency, with_preliminary, diverged](const YcsbOp&,
                                                     std::function<void(OpOutcome)> done) {
    loop->Schedule(latency, [latency, with_preliminary, diverged, done]() {
      OpOutcome outcome;
      outcome.final_latency = latency;
      if (with_preliminary) {
        outcome.preliminary_latency = latency / 2;
        outcome.diverged = diverged;
      }
      done(outcome);
    });
  };
}

RunnerConfig ShortTrial(int threads) {
  RunnerConfig c;
  c.threads = threads;
  c.duration = Seconds(30);
  c.warmup = Seconds(5);
  c.cooldown = Seconds(5);
  return c;
}

TEST(LoadRunner, ClosedLoopThroughputMatchesLittleLaw) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 1);
  // 4 sessions x (1 op / 100 ms) = 40 ops/s.
  LoadRunner runner(&loop, &workload, FixedLatencyExecutor(&loop, Millis(100)),
                    ShortTrial(4));
  const RunnerResult result = runner.Run();
  EXPECT_NEAR(result.throughput_ops, 40.0, 2.0);
  EXPECT_NEAR(result.final_view.mean_ms(), 100.0, 1.0);
}

TEST(LoadRunner, SingleThreadSingleOpAtATime) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 2);
  LoadRunner runner(&loop, &workload, FixedLatencyExecutor(&loop, Millis(10)), ShortTrial(1));
  const RunnerResult result = runner.Run();
  EXPECT_NEAR(result.throughput_ops, 100.0, 5.0);
}

TEST(LoadRunner, WarmupAndCooldownElided) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 3);
  LoadRunner runner(&loop, &workload, FixedLatencyExecutor(&loop, Millis(100)), ShortTrial(2));
  const RunnerResult result = runner.Run();
  // Measured window is 20 s of the 30 s trial: ~2 sessions x 10 ops/s x 20 s = 400 ops.
  EXPECT_NEAR(static_cast<double>(result.measured_ops), 400.0, 20.0);
}

TEST(LoadRunner, PreliminaryStatsRecorded) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 4);
  LoadRunner runner(&loop, &workload,
                    FixedLatencyExecutor(&loop, Millis(40), /*with_preliminary=*/true),
                    ShortTrial(2));
  const RunnerResult result = runner.Run();
  EXPECT_EQ(result.ops_with_preliminary, result.measured_ops);
  EXPECT_NEAR(result.preliminary.mean_ms(), 20.0, 1.0);
  EXPECT_DOUBLE_EQ(result.DivergencePercent(), 0.0);
}

TEST(LoadRunner, DivergenceCounted) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 5);
  LoadRunner runner(&loop, &workload,
                    FixedLatencyExecutor(&loop, Millis(40), true, /*diverged=*/true),
                    ShortTrial(1));
  const RunnerResult result = runner.Run();
  EXPECT_EQ(result.divergences, result.ops_with_preliminary);
  EXPECT_DOUBLE_EQ(result.DivergencePercent(), 100.0);
}

TEST(LoadRunner, ErrorsCountedSeparately) {
  EventLoop loop;
  CoreWorkload workload(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 6);
  OpExecutor failing = [&loop](const YcsbOp&, std::function<void(OpOutcome)> done) {
    loop.Schedule(Millis(10), [done]() {
      OpOutcome outcome;
      outcome.error = true;
      outcome.final_latency = Millis(10);
      done(outcome);
    });
  };
  LoadRunner runner(&loop, &workload, failing, ShortTrial(1));
  const RunnerResult result = runner.Run();
  EXPECT_GT(result.errors, 0);
  EXPECT_EQ(result.final_view.count, 0);  // errored ops do not pollute latency stats
}

TEST(LoadRunner, ConcurrentRunnersShareOneLoop) {
  EventLoop loop;
  CoreWorkload w1(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 7);
  CoreWorkload w2(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 8);
  RunnerConfig config = ShortTrial(1);
  LoadRunner r1(&loop, &w1, FixedLatencyExecutor(&loop, Millis(50)), config);
  LoadRunner r2(&loop, &w2, FixedLatencyExecutor(&loop, Millis(50)), config);
  r1.Begin();
  r2.Begin();
  loop.RunUntil(loop.Now() + config.duration + Seconds(5));
  EXPECT_NEAR(r1.Collect().throughput_ops, 20.0, 2.0);
  EXPECT_NEAR(r2.Collect().throughput_ops, 20.0, 2.0);
}

TEST(LoadRunner, MoreThreadsMoreThroughputUntilExecutorLimits) {
  EventLoop loop;
  CoreWorkload w1(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 9);
  LoadRunner small(&loop, &w1, FixedLatencyExecutor(&loop, Millis(100)), ShortTrial(2));
  const double t2 = small.Run().throughput_ops;
  CoreWorkload w2(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 10);
  LoadRunner big(&loop, &w2, FixedLatencyExecutor(&loop, Millis(100)), ShortTrial(8));
  const double t8 = big.Run().throughput_ops;
  EXPECT_NEAR(t8 / t2, 4.0, 0.3);  // ideal scaling with a latency-only executor
}

}  // namespace
}  // namespace icg
