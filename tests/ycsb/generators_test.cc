// YCSB generator properties: skew, support, determinism. Parameterized sweeps verify the
// distribution invariants that the paper's divergence results depend on (Latest is more
// concentrated than scrambled Zipfian).
#include "src/ycsb/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace icg {
namespace {

std::map<int64_t, int> Sample(IntegerGenerator& gen, Rng& rng, int n) {
  std::map<int64_t, int> counts;
  for (int i = 0; i < n; ++i) {
    counts[gen.Next(rng)]++;
  }
  return counts;
}

TEST(UniformGenerator, CoversRangeUniformly) {
  Rng rng(1);
  UniformGenerator gen(0, 9);
  const auto counts = Sample(gen, rng, 100000);
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [value, count] : counts) {
    EXPECT_GE(value, 0);
    EXPECT_LE(value, 9);
    EXPECT_NEAR(count, 10000, 600);
  }
}

TEST(ZipfianGenerator, RankZeroIsMostPopular) {
  Rng rng(2);
  ZipfianGenerator gen(1000);
  const auto counts = Sample(gen, rng, 100000);
  int max_count = 0;
  int64_t max_rank = -1;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 0);
}

TEST(ZipfianGenerator, PopularityDecreasesWithRank) {
  Rng rng(3);
  ZipfianGenerator gen(1000);
  const auto counts = Sample(gen, rng, 400000);
  // Compare well-separated ranks to dodge sampling noise.
  EXPECT_GT(counts.at(0), counts.at(10) * 2);
  EXPECT_GT(counts.at(10), counts.count(500) ? counts.at(500) * 2 : 2);
}

TEST(ZipfianGenerator, TopRankProbabilityMatchesTheory) {
  // p(rank 0) = 1 / zeta(n, theta); for n=1000, theta=0.99: zeta ~ 7.51, p ~ 13.3%.
  Rng rng(4);
  ZipfianGenerator gen(1000);
  const auto counts = Sample(gen, rng, 200000);
  const double p0 = counts.at(0) / 200000.0;
  const double zeta = ZipfianGenerator::ComputeZeta(1000, 0.99);
  EXPECT_NEAR(p0, 1.0 / zeta, 0.01);
}

TEST(ZipfianGenerator, StaysInRange) {
  Rng rng(5);
  ZipfianGenerator gen(100);
  for (int i = 0; i < 50000; ++i) {
    const int64_t v = gen.Next(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(ZipfianGenerator, ComputeZetaKnownValues) {
  EXPECT_NEAR(ZipfianGenerator::ComputeZeta(1, 0.99), 1.0, 1e-9);
  EXPECT_NEAR(ZipfianGenerator::ComputeZeta(2, 0.99), 1.0 + std::pow(2.0, -0.99), 1e-9);
}

TEST(ScrambledZipfian, StaysInRange) {
  Rng rng(6);
  ScrambledZipfianGenerator gen(1000);
  for (int i = 0; i < 50000; ++i) {
    const int64_t v = gen.Next(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(ScrambledZipfian, LessConcentratedThanLatest) {
  // The property behind Figure 7's Latest > Zipfian divergence ordering: the scrambled
  // distribution's hottest key carries less probability mass than Latest's.
  Rng rng1(7);
  Rng rng2(7);
  ScrambledZipfianGenerator scrambled(1000);
  SkewedLatestGenerator latest(1000);
  constexpr int kN = 300000;
  const auto scrambled_counts = [&]() {
    std::map<int64_t, int> counts;
    for (int i = 0; i < kN; ++i) {
      counts[scrambled.Next(rng1)]++;
    }
    return counts;
  }();
  const auto latest_counts = [&]() {
    std::map<int64_t, int> counts;
    for (int i = 0; i < kN; ++i) {
      counts[latest.Next(rng2)]++;
    }
    return counts;
  }();
  int scrambled_max = 0;
  for (const auto& [k, c] : scrambled_counts) {
    scrambled_max = std::max(scrambled_max, c);
  }
  int latest_max = 0;
  for (const auto& [k, c] : latest_counts) {
    latest_max = std::max(latest_max, c);
  }
  EXPECT_GT(latest_max, 2 * scrambled_max);
}

TEST(SkewedLatest, MostRecentIsHottest) {
  Rng rng(8);
  SkewedLatestGenerator gen(1000);
  const auto counts = Sample(gen, rng, 200000);
  int max_count = 0;
  int64_t max_key = -1;
  for (const auto& [key, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_key = key;
    }
  }
  EXPECT_EQ(max_key, 999);  // the latest insert
}

TEST(SkewedLatest, AdvanceLastShiftsHotSpot) {
  Rng rng(9);
  SkewedLatestGenerator gen(1000);
  EXPECT_EQ(gen.last(), 999);
  gen.AdvanceLast();
  EXPECT_EQ(gen.last(), 1000);
  const auto counts = Sample(gen, rng, 100000);
  EXPECT_GT(counts.at(1000), counts.count(990) ? counts.at(990) : 0);
}

TEST(SkewedLatest, NeverNegative) {
  Rng rng(10);
  SkewedLatestGenerator gen(5);  // tiny horizon forces clamping
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(gen.Next(rng), 0);
  }
}

class GeneratorDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorDeterminism, SameSeedSameStream) {
  Rng rng1(GetParam());
  Rng rng2(GetParam());
  ScrambledZipfianGenerator g1(1000);
  ScrambledZipfianGenerator g2(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(g1.Next(rng1), g2.Next(rng2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism, ::testing::Values(1u, 7u, 99u, 12345u));

}  // namespace
}  // namespace icg
