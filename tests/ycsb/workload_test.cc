#include "src/ycsb/workload.h"

#include <gtest/gtest.h>

namespace icg {
namespace {

TEST(WorkloadConfig, PresetMixes) {
  const auto a = WorkloadConfig::YcsbA(RequestDistribution::kZipfian, 1000);
  EXPECT_DOUBLE_EQ(a.read_proportion, 0.5);
  EXPECT_DOUBLE_EQ(a.update_proportion, 0.5);
  const auto b = WorkloadConfig::YcsbB(RequestDistribution::kLatest, 1000);
  EXPECT_DOUBLE_EQ(b.read_proportion, 0.95);
  const auto c = WorkloadConfig::YcsbC(RequestDistribution::kUniform, 1000);
  EXPECT_DOUBLE_EQ(c.read_proportion, 1.0);
  EXPECT_DOUBLE_EQ(c.update_proportion, 0.0);
}

TEST(WorkloadConfig, ValueBytes) {
  WorkloadConfig c;
  c.field_length = 100;
  c.field_count = 10;
  EXPECT_EQ(c.ValueBytes(), 1000);
}

TEST(CoreWorkload, KeyNaming) {
  EXPECT_EQ(CoreWorkload::KeyForIndex(0), "user0");
  EXPECT_EQ(CoreWorkload::KeyForIndex(123), "user123");
}

TEST(CoreWorkload, KeysStayInRecordRange) {
  CoreWorkload w(WorkloadConfig::YcsbA(RequestDistribution::kLatest, 50), 1);
  for (int i = 0; i < 5000; ++i) {
    const YcsbOp op = w.NextOp();
    const int64_t index = std::stoll(op.key.substr(4));
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 50);
  }
}

TEST(CoreWorkload, ReadWriteMixMatchesProportion) {
  CoreWorkload w(WorkloadConfig::YcsbB(RequestDistribution::kZipfian, 1000), 2);
  int reads = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    reads += w.NextOp().is_read ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, 0.95, 0.01);
}

TEST(CoreWorkload, ReadOnlyWorkloadNeverWrites) {
  CoreWorkload w(WorkloadConfig::YcsbC(RequestDistribution::kUniform, 100), 3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(w.NextOp().is_read);
  }
}

TEST(CoreWorkload, UpdatesCarryFullSizedValues) {
  WorkloadConfig config = WorkloadConfig::YcsbA(RequestDistribution::kUniform, 100);
  config.field_length = 100;
  config.field_count = 10;
  CoreWorkload w(config, 4);
  for (int i = 0; i < 1000; ++i) {
    const YcsbOp op = w.NextOp();
    if (!op.is_read) {
      EXPECT_EQ(op.value.size(), 1000u);
    } else {
      EXPECT_TRUE(op.value.empty());
    }
  }
}

TEST(CoreWorkload, SuccessiveUpdateValuesDiffer) {
  CoreWorkload w(WorkloadConfig::YcsbA(RequestDistribution::kUniform, 10), 5);
  std::string first;
  std::string second;
  while (second.empty()) {
    const YcsbOp op = w.NextOp();
    if (!op.is_read) {
      if (first.empty()) {
        first = op.value;
      } else {
        second = op.value;
      }
    }
  }
  EXPECT_NE(first, second);  // version counter distinguishes writes
}

TEST(CoreWorkload, DeterministicForSeed) {
  CoreWorkload w1(WorkloadConfig::YcsbA(RequestDistribution::kLatest, 1000), 42);
  CoreWorkload w2(WorkloadConfig::YcsbA(RequestDistribution::kLatest, 1000), 42);
  for (int i = 0; i < 500; ++i) {
    const YcsbOp a = w1.NextOp();
    const YcsbOp b = w2.NextOp();
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.is_read, b.is_read);
    EXPECT_EQ(a.value, b.value);
  }
}

TEST(RequestDistributionNames, Readable) {
  EXPECT_STREQ(RequestDistributionName(RequestDistribution::kUniform), "Uniform");
  EXPECT_STREQ(RequestDistributionName(RequestDistribution::kZipfian), "Zipfian");
  EXPECT_STREQ(RequestDistributionName(RequestDistribution::kLatest), "Latest");
}

}  // namespace
}  // namespace icg
