// Self-driving control plane oracle: ONE sharded-Cassandra world (5 replicas, 2
// starting coordinators, every replica on its own LoopGroup lane) under a seeded
// randomized multi-client load whose offered rate ramps 10x mid-run and then decays.
// The Orchestrator runs as a real control loop inside the deployment — sampling router
// snapshots and keyspace shares every 250ms of virtual time, widening/shrinking the
// batch window, scaling coordinators out on sustained sheds and back in as the ring
// cools — while the full ICG contract is enforced through every controller action:
// weakest-first monotone delivery, exactly one terminal per admitted invocation, no
// views after a terminal, per-key program order into replica state. Overload sheds are
// the one sanctioned "failure": they surface synchronously as retryable kOverloaded
// errors and the workload retries them with a virtual-time backoff.
//
// The trial runs at thread widths 0, 2, and 4 (and 8 when ICG_ORACLE_WIDTH8=1 — the
// TSan job sets it). Every width must produce a bit-for-bit identical fingerprint,
// INCLUDING the orchestrator's applied-action log: same actions, same virtual
// timestamps, same ring epochs. On top of determinism the trial asserts the episode
// shape — the ramp provokes sheds and at least one scale-out, the controller returns
// the deployment to a quiescent config once load settles (no actions at all in the
// final settle window), and each knob flips direction at most once per episode
// (out...out,in...in — never out,in,out thrash).
//
// The RNG seed comes from ICG_ORACLE_SEED (default 12345); CI sweeps several seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/harness/deployment.h"
#include "src/harness/executors.h"
#include "src/harness/orchestrator.h"
#include "src/sim/loop_group.h"

namespace icg {
namespace {

uint64_t OracleSeed() {
  const char* env = std::getenv("ICG_ORACLE_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 12345;
}

bool Width8Enabled() {
  const char* env = std::getenv("ICG_ORACLE_WIDTH8");
  return env != nullptr && *env == '1';
}

constexpr int kReplicas = 5;
constexpr int kStartCoordinators = 2;
constexpr int kKeys = 24;
constexpr int kClients = 3;
constexpr size_t kQueueLimit = 8;
constexpr SimDuration kRetryBackoff = Millis(50);

std::string OracleKey(int index) { return "akey" + std::to_string(index); }

struct Observation {
  bool is_write = false;
  std::string key;
  ConsistencyLevel weakest = ConsistencyLevel::kStrong;
  ConsistencyLevel strongest = ConsistencyLevel::kStrong;
  std::vector<ConsistencyLevel> delivered;
  int finals = 0;
  int errors = 0;
  StatusCode error_code = StatusCode::kOk;
  bool view_after_terminal = false;
  OpResult final_value;
  SimTime final_at = -1;
};

// Every invocation owes the ICG contract: exactly one terminal, no views after it,
// monotone weakest-first delivery. The ONE sanctioned terminal error is a retryable
// overload shed — backpressure is how the deployment signals the controller, so the
// oracle admits it (and the workload retries it) but nothing else may fail.
void CheckObservation(const Observation& obs) {
  SCOPED_TRACE("key=" + obs.key);
  EXPECT_EQ(obs.finals + obs.errors, 1) << "invocation must close exactly once";
  if (obs.errors == 1) {
    EXPECT_EQ(obs.error_code, StatusCode::kOverloaded)
        << "only backpressure sheds may fail an invocation";
  }
  EXPECT_FALSE(obs.view_after_terminal);
  for (size_t i = 1; i < obs.delivered.size(); ++i) {
    EXPECT_TRUE(IsStrongerOrEqual(obs.delivered[i], obs.delivered[i - 1]))
        << "view level regressed at position " << i;
  }
  if (obs.finals == 1) {
    ASSERT_FALSE(obs.delivered.empty());
    EXPECT_EQ(obs.delivered.back(), obs.strongest);
    for (const ConsistencyLevel level : obs.delivered) {
      EXPECT_TRUE(IsStrongerOrEqual(obs.strongest, level));
      EXPECT_TRUE(IsStrongerOrEqual(level, obs.weakest));
    }
  }
}

struct TrialState {
  explicit TrialState(uint64_t seed) : world(seed) {}

  SimWorld world;
  std::unique_ptr<ShardedCassandraStack> stack;
  std::vector<std::shared_ptr<Observation>> observations;
  std::map<std::string, std::vector<std::string>> submitted;
  int64_t shed_attempts = 0;
};

// Submits one logical operation, retrying overload sheds after a virtual-time backoff.
// Sheds surface two ways and both retry: synchronously at admission (queue over limit
// when the invocation routes) and asynchronously at cohort flush (the batch window
// held the op while the shard went over). A synchronous shed never creates an
// Observation; an async shed closes its Observation with the one sanctioned error and
// re-invokes — a fresh invocation with a fresh LWW stamp, so `submitted` (appended at
// admission, un-appended on a shed) always lists admitted writes in stamp order.
void Launch(TrialState& trial, EventLoop* front, CorrectableClient* client,
            bool is_write, int flavor, const std::string& key,
            const std::string& value) {
  Correctable<OpResult> c =
      is_write      ? client->InvokeStrong(Operation::Put(key, value))
      : flavor == 0 ? client->InvokeWeak(Operation::Get(key))
      : flavor == 1 ? client->InvokeStrong(Operation::Get(key))
                    : client->Invoke(Operation::Get(key));
  const auto retry = [&trial, front, client, is_write, flavor, key, value]() {
    front->Schedule(kRetryBackoff, [&trial, front, client, is_write, flavor, key,
                                    value]() {
      Launch(trial, front, client, is_write, flavor, key, value);
    });
  };
  if (c.state() == CorrectableState::kError &&
      c.error().code() == StatusCode::kOverloaded) {
    ++trial.shed_attempts;
    retry();
    return;
  }
  auto obs = std::make_shared<Observation>();
  obs->is_write = is_write;
  obs->key = key;
  if (is_write || flavor == 1) {
    obs->weakest = obs->strongest = ConsistencyLevel::kStrong;
  } else if (flavor == 0) {
    obs->weakest = obs->strongest = ConsistencyLevel::kWeak;
  } else {
    obs->weakest = ConsistencyLevel::kWeak;
    obs->strongest = ConsistencyLevel::kStrong;
  }
  if (is_write) {
    trial.submitted[key].push_back(value);
  }
  trial.observations.push_back(obs);
  c.SetCallbacks(
      [obs](const View<OpResult>& v) {
        if (obs->finals + obs->errors > 0) obs->view_after_terminal = true;
        obs->delivered.push_back(v.level);
      },
      [obs, front](const View<OpResult>& v) {
        if (obs->finals + obs->errors > 0) obs->view_after_terminal = true;
        obs->finals++;
        obs->delivered.push_back(v.level);
        obs->final_value = v.value;
        obs->final_at = front->Now();
      },
      [obs, retry, &trial, is_write, key, value](const Status& status) {
        if (obs->finals + obs->errors > 0) obs->view_after_terminal = true;
        obs->errors++;
        obs->error_code = status.code();
        if (status.code() == StatusCode::kOverloaded) {
          ++trial.shed_attempts;
          if (is_write) {
            // The shed write never applied; drop it so `submitted` keeps listing
            // exactly the admitted-and-applied stamps in order (values are unique).
            auto& values = trial.submitted[key];
            values.erase(std::remove(values.begin(), values.end(), value),
                         values.end());
          }
          retry();
        }
      });
}

std::string Fingerprint(const TrialState& trial) {
  std::ostringstream out;
  for (const auto& obs : trial.observations) {
    out << obs->key << (obs->is_write ? "W" : "R") << "[";
    for (const ConsistencyLevel level : obs->delivered) {
      out << static_cast<int>(level);
    }
    out << "]=" << obs->final_value.value << "#" << obs->final_value.version.timestamp
        << "." << obs->final_value.version.writer << "@" << obs->final_at << ";";
  }
  return out.str();
}

std::string RunAutoscaleTrial(int threads, uint64_t seed) {
  SCOPED_TRACE("autoscale threads=" + std::to_string(threads) +
               " seed=" + std::to_string(seed));
  LoopGroup::Options options;
  options.threads = threads;
  options.quantum = Millis(2);
  LoopGroup group(options);

  CassandraBindingConfig binding;
  binding.strong_read_quorum = 2;

  TrialState trial(seed * 19);
  trial.stack = std::make_unique<ShardedCassandraStack>(MakeShardedCassandraStack(
      trial.world, kStartCoordinators, KvConfig{}, binding, Region::kIreland,
      {Region::kFrankfurt, Region::kIreland, Region::kVirginia, Region::kCalifornia,
       Region::kOregon}));
  auto& frk = AddShardedCassandraClient(trial.world, *trial.stack, binding,
                                        Region::kFrankfurt);
  auto& vrg = AddShardedCassandraClient(trial.world, *trial.stack, binding,
                                        Region::kVirginia);
  std::vector<CorrectableClient*> clients = {trial.stack->client(), frk.client.get(),
                                             vrg.client.get()};
  trial.stack->SetShardQueueLimit(kQueueLimit);
  for (int i = 0; i < kKeys; ++i) {
    trial.stack->cluster->Preload(OracleKey(i), "init");
  }

  IntraWorldPlacement placement =
      PlaceShardsAcrossLoops(group, trial.world, *trial.stack);
  EXPECT_EQ(group.size(), kReplicas + 1);

  // The controller under test. min_coordinators = kStartCoordinators gives the
  // scale-in cascade a floor the episode must return to; the placement leg runs with
  // deliberately conservative thresholds — migration behaviour has its own oracle
  // (IntraWorldOracle.RebalanceMigratesHotShardAcrossWidths), here it only needs to
  // ride the idle intervals without perturbing the episode.
  OrchestratorOptions orch_options;
  orch_options.min_coordinators = kStartCoordinators;
  Orchestrator orchestrator(&group, &trial.world, trial.stack.get(), orch_options);
  PlacementAdvisorOptions advisor_options;
  advisor_options.hot_ratio = 4.0;
  advisor_options.min_total_load = 1 << 20;
  orchestrator.EnablePlacement(&placement, advisor_options);
  orchestrator.Start();
  EXPECT_EQ(orchestrator.window_index(), 0u);  // batching starts disabled (rung 0)

  // Offered load: ~80 ops/s for 2s, a 10x ramp (~800 ops/s) for 1.5s, then ~80 ops/s
  // again for 2s. Writes are key-partitioned per client so per-key program order stays
  // a checkable invariant even with shed-and-retry in the mix.
  struct Phase {
    SimTime start;
    SimDuration length;
    int ops;
  };
  const Phase phases[] = {
      {0, Seconds(2), 160},
      {Seconds(2), Millis(1500), 1200},
      {Seconds(2) + Millis(1500), Seconds(2), 160},
  };
  Rng rng(seed * 53);
  EventLoop* front = &trial.world.loop();
  int write_counter = 0;
  for (const Phase& phase : phases) {
    for (int i = 0; i < phase.ops; ++i) {
      const SimTime at =
          phase.start + static_cast<SimTime>(rng.NextBounded(phase.length));
      const size_t client_index = static_cast<size_t>(rng.NextBounded(kClients));
      const bool is_write = rng.NextBool(0.25);
      const int flavor = static_cast<int>(rng.NextBounded(3));
      int key_index = static_cast<int>(rng.NextBounded(kKeys));
      if (is_write) {
        key_index = (key_index / kClients) * kClients + static_cast<int>(client_index);
      }
      const std::string key = OracleKey(key_index);
      std::string value;
      if (is_write) {
        value = "c" + std::to_string(client_index) + "-" +
                std::to_string(write_counter++);
      }
      CorrectableClient* client = clients[client_index];
      front->Schedule(at, [&trial, front, client, is_write, flavor, key, value]() {
        Launch(trial, front, client, is_write, flavor, key, value);
      });
    }
  }

  // Drive well past the load so the controller can finish the whole episode: widen and
  // scale out through the ramp, then shrink and scale back in as the ring cools.
  group.RunUntil(Seconds(12));
  orchestrator.Stop();
  group.RunAll();
  EXPECT_EQ(group.pending_messages(), 0u);
  EXPECT_GT(group.metrics().Value("channel_messages"), 0);

  for (const auto& obs : trial.observations) {
    CheckObservation(*obs);
  }
  // Per-key program order across every controller action: each replica converged to
  // the last admitted write whatever the ring did in between.
  for (const auto& [key, values] : trial.submitted) {
    for (const auto& replica : trial.stack->cluster->replicas()) {
      const auto stored = replica->LocalGet(key);
      EXPECT_TRUE(stored.has_value()) << key;
      if (!stored.has_value()) continue;
      EXPECT_EQ(stored->value, values.back())
          << "replica diverged from program order for " << key;
    }
  }

  // Episode shape. The ramp must overflow the shard queues and provoke a scale-out;
  // once load settles the controller must hand back a quiescent deployment: window at
  // the bottom rung, ring back at the floor, and NO actions in the settle window.
  EXPECT_GT(trial.shed_attempts, 0) << "the 10x ramp never overflowed a shard queue";
  int scale_outs = 0;
  for (const OrchestratorEvent& event : orchestrator.events()) {
    if (event.kind == ControlActionKind::kScaleOut) ++scale_outs;
    EXPECT_LT(event.at, Seconds(10))
        << "controller still acting long after the load settled: "
        << ControlActionName(event.kind) << " at " << event.at;
  }
  EXPECT_GE(scale_outs, 1);
  EXPECT_EQ(orchestrator.window_index(), 0u);
  EXPECT_EQ(trial.stack->coordinator_ids().size(),
            static_cast<size_t>(kStartCoordinators));

  // At most one direction flip per knob per episode: the window may widen then come
  // back down, the ring may grow then shrink — but never thrash out/in/out.
  int window_flips = 0;
  int ring_flips = 0;
  int last_window_dir = 0;
  int last_ring_dir = 0;
  for (const OrchestratorEvent& event : orchestrator.events()) {
    int dir = 0;
    bool ring = false;
    switch (event.kind) {
      case ControlActionKind::kWidenWindow: dir = +1; break;
      case ControlActionKind::kShrinkWindow: dir = -1; break;
      case ControlActionKind::kScaleOut: dir = +1; ring = true; break;
      case ControlActionKind::kScaleIn: dir = -1; ring = true; break;
      default: break;
    }
    if (dir == 0) continue;
    if (ring) {
      if (last_ring_dir != 0 && dir != last_ring_dir) ++ring_flips;
      last_ring_dir = dir;
    } else {
      if (last_window_dir != 0 && dir != last_window_dir) ++window_flips;
      last_window_dir = dir;
    }
  }
  EXPECT_LE(window_flips, 1) << "batch window thrashed";
  EXPECT_LE(ring_flips, 1) << "coordinator ring thrashed";

  // The applied-action log is part of the cross-width contract: same decisions, same
  // virtual timestamps, same ring epochs at every LoopGroup width.
  return Fingerprint(trial) + "|orch:" + orchestrator.EventLogFingerprint() + "|epoch" +
         std::to_string(trial.stack->ring_epoch()) + "|sheds" +
         std::to_string(trial.shed_attempts) + "|rounds" +
         std::to_string(group.rounds()) + "|sched" +
         std::to_string(group.barrier_schedule_hash());
}

TEST(OrchestratorOracle, ControlDecisionsAreBitIdenticalAcrossWidths) {
  const uint64_t seed = OracleSeed();
  const std::string sequential = RunAutoscaleTrial(/*threads=*/0, seed);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(RunAutoscaleTrial(/*threads=*/2, seed), sequential);
  EXPECT_EQ(RunAutoscaleTrial(/*threads=*/4, seed), sequential);
  if (Width8Enabled()) {
    EXPECT_EQ(RunAutoscaleTrial(/*threads=*/8, seed), sequential);
  }
}

}  // namespace
}  // namespace icg
