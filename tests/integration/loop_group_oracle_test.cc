// Randomized consistency oracle over parallel worlds: W independent sharded-Cassandra
// SimWorlds pinned to one LoopGroup, driven at thread widths 0 (deterministic
// sequential), 2, and 4. Each world carries the same 3-client random read/write load the
// batch oracle uses, plus cross-world relay reads posted through the group's channel so
// the striped MPSC path sees real mid-round traffic. Every width must (a) leave every
// observation oracle-clean — weakest-first monotone delivery, exactly one terminal,
// per-key program order into replica state — and (b) produce a bit-for-bit identical
// outcome fingerprint, validating the threaded modes against the sequential one.
//
// The RNG seed comes from ICG_ORACLE_SEED (default 12345); CI sweeps several seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/harness/deployment.h"
#include "src/harness/executors.h"
#include "src/sim/loop_group.h"

namespace icg {
namespace {

uint64_t OracleSeed() {
  const char* env = std::getenv("ICG_ORACLE_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 12345;
}

constexpr int kWorlds = 3;
constexpr int kKeys = 39;
constexpr int kClients = 3;
constexpr int kOps = 220;
constexpr int kRelays = 40;

std::string OracleKey(int index) { return "okey" + std::to_string(index); }

struct Observation {
  bool is_write = false;
  std::string key;
  std::string written_value;
  ConsistencyLevel weakest = ConsistencyLevel::kStrong;
  ConsistencyLevel strongest = ConsistencyLevel::kStrong;
  std::vector<ConsistencyLevel> delivered;
  int finals = 0;
  int errors = 0;
  bool view_after_terminal = false;
  OpResult final_value;
  SimTime final_at = -1;  // virtual delivery time: part of the cross-width fingerprint
};

void Observe(Correctable<OpResult> c, const std::shared_ptr<Observation>& obs,
             EventLoop* loop) {
  c.SetCallbacks(
      [obs](const View<OpResult>& v) {
        if (obs->finals + obs->errors > 0) obs->view_after_terminal = true;
        obs->delivered.push_back(v.level);
      },
      [obs, loop](const View<OpResult>& v) {
        if (obs->finals + obs->errors > 0) obs->view_after_terminal = true;
        obs->finals++;
        obs->delivered.push_back(v.level);
        obs->final_value = v.value;
        obs->final_at = loop->Now();
      },
      [obs](const Status&) {
        if (obs->finals + obs->errors > 0) obs->view_after_terminal = true;
        obs->errors++;
      });
}

void CheckObservation(const Observation& obs, const std::string& context) {
  SCOPED_TRACE(context + " key=" + obs.key);
  EXPECT_EQ(obs.finals + obs.errors, 1) << "invocation must close exactly once";
  EXPECT_EQ(obs.errors, 0) << "no failure injected, so nothing may fail";
  EXPECT_FALSE(obs.view_after_terminal);
  for (size_t i = 1; i < obs.delivered.size(); ++i) {
    EXPECT_TRUE(IsStrongerOrEqual(obs.delivered[i], obs.delivered[i - 1]))
        << "view level regressed at position " << i;
  }
  if (obs.finals == 1) {
    ASSERT_FALSE(obs.delivered.empty());
    EXPECT_EQ(obs.delivered.back(), obs.strongest);
    for (const ConsistencyLevel level : obs.delivered) {
      EXPECT_TRUE(IsStrongerOrEqual(obs.strongest, level));
      EXPECT_TRUE(IsStrongerOrEqual(level, obs.weakest));
    }
  }
}

// One world's stack, clients, and bookkeeping. Worlds are independent: distinct seeds,
// distinct key spaces (shared key names, separate clusters), one LoopGroup slot each.
struct WorldUnderTest {
  explicit WorldUnderTest(uint64_t seed) : world(seed) {}

  SimWorld world;
  std::unique_ptr<ShardedCassandraStack> stack;
  std::vector<CorrectableClient*> clients;
  std::vector<std::shared_ptr<Observation>> observations;
  std::shared_ptr<std::map<std::string, std::vector<std::string>>> submitted =
      std::make_shared<std::map<std::string, std::vector<std::string>>>();
};

// Everything observable about one world's run, serialized in creation order. Equal
// strings across thread widths == bit-for-bit identical outcomes.
std::string Fingerprint(const WorldUnderTest& wut) {
  std::ostringstream out;
  for (const auto& obs : wut.observations) {
    out << obs->key << (obs->is_write ? "W" : "R") << "[";
    for (const ConsistencyLevel level : obs->delivered) {
      out << static_cast<int>(level);
    }
    out << "]=" << obs->final_value.value << "#" << obs->final_value.version.timestamp
        << "." << obs->final_value.version.writer << "@" << obs->final_at << ";";
  }
  return out.str();
}

void ScheduleWorldLoad(WorldUnderTest& wut, Rng& rng) {
  int write_counter = 0;
  for (int i = 0; i < kOps; ++i) {
    const SimDuration at = static_cast<SimDuration>(rng.NextBounded(Seconds(2)));
    const size_t client_index = static_cast<size_t>(rng.NextBounded(kClients));
    const bool is_write = rng.NextBool(0.25);
    const int flavor = static_cast<int>(rng.NextBounded(3));
    int key_index = static_cast<int>(rng.NextBounded(kKeys));
    if (is_write) {
      key_index = (key_index / kClients) * kClients + static_cast<int>(client_index);
    }
    const std::string key = OracleKey(key_index);

    auto obs = std::make_shared<Observation>();
    obs->is_write = is_write;
    obs->key = key;
    wut.observations.push_back(obs);
    CorrectableClient* client = wut.clients[client_index];
    EventLoop* loop = &wut.world.loop();

    if (is_write) {
      const std::string value = "c" + std::to_string(client_index) + "-" +
                                std::to_string(write_counter++);
      obs->written_value = value;
      obs->weakest = obs->strongest = ConsistencyLevel::kStrong;
      loop->Schedule(at, [client, loop, key, value, obs, submitted = wut.submitted]() {
        (*submitted)[key].push_back(value);
        Observe(client->InvokeStrong(Operation::Put(key, value)), obs, loop);
      });
    } else if (flavor == 0) {
      obs->weakest = obs->strongest = ConsistencyLevel::kWeak;
      loop->Schedule(at, [client, loop, key, obs]() {
        Observe(client->InvokeWeak(Operation::Get(key)), obs, loop);
      });
    } else if (flavor == 1) {
      obs->weakest = obs->strongest = ConsistencyLevel::kStrong;
      loop->Schedule(at, [client, loop, key, obs]() {
        Observe(client->InvokeStrong(Operation::Get(key)), obs, loop);
      });
    } else {
      obs->weakest = ConsistencyLevel::kWeak;
      obs->strongest = ConsistencyLevel::kStrong;
      loop->Schedule(at, [client, loop, key, obs]() {
        Observe(client->Invoke(Operation::Get(key)), obs, loop);
      });
    }
  }
}

// Cross-world relays: world `from` schedules a local event that Posts through the
// group's channel to world `to`, where the task issues an ICG read on `to`'s own
// client. The read runs entirely inside `to` (loop affinity holds); only the *trigger*
// crosses loops, exercising the sender-stamped mid-round Post path.
void ScheduleRelays(LoopGroup& group, std::vector<std::unique_ptr<WorldUnderTest>>& worlds,
                    Rng& rng) {
  for (int i = 0; i < kRelays; ++i) {
    const int from = static_cast<int>(rng.NextBounded(kWorlds));
    const int to = static_cast<int>(rng.NextBounded(kWorlds));
    const SimDuration at = static_cast<SimDuration>(rng.NextBounded(Seconds(2)));
    const std::string key = OracleKey(static_cast<int>(rng.NextBounded(kKeys)));

    auto obs = std::make_shared<Observation>();
    obs->key = key;
    obs->weakest = ConsistencyLevel::kWeak;
    obs->strongest = ConsistencyLevel::kStrong;
    WorldUnderTest* target = worlds[static_cast<size_t>(to)].get();
    target->observations.push_back(obs);

    worlds[static_cast<size_t>(from)]->world.loop().Schedule(at, [&group, to, target, key,
                                                                  obs]() {
      group.Post(to, /*when=*/0, [target, key, obs]() {
        EventLoop* loop = &target->world.loop();
        Observe(target->clients[0]->Invoke(Operation::Get(key)), obs, loop);
      });
    });
  }
}

// Runs the full multi-world trial at one thread width and returns the concatenated
// world fingerprints. Also folds every world's client stats into a ClientStatsGroup
// (slot = LoopGroup index) and sanity-checks the merged view.
std::string RunTrial(int threads, uint64_t seed) {
  SCOPED_TRACE("threads=" + std::to_string(threads) + " seed=" + std::to_string(seed));
  LoopGroup::Options options;
  options.threads = threads;
  options.quantum = Millis(5);
  LoopGroup group(options);
  ClientStatsGroup stats(kWorlds);

  CassandraBindingConfig binding;
  binding.strong_read_quorum = 2;
  BatchConfig batch;
  batch.batch_window = Millis(2);

  std::vector<std::unique_ptr<WorldUnderTest>> worlds;
  for (int w = 0; w < kWorlds; ++w) {
    auto wut = std::make_unique<WorldUnderTest>(seed + static_cast<uint64_t>(w) * 977);
    wut->stack = std::make_unique<ShardedCassandraStack>(MakeShardedCassandraStack(
        wut->world, /*n_coordinators=*/3, KvConfig{}, binding, Region::kIreland,
        {Region::kFrankfurt, Region::kIreland, Region::kVirginia}, batch));
    auto& frk = AddShardedCassandraClient(wut->world, *wut->stack, binding,
                                          Region::kFrankfurt, batch);
    auto& vrg = AddShardedCassandraClient(wut->world, *wut->stack, binding,
                                          Region::kVirginia, batch);
    wut->clients = {wut->stack->client(), frk.client.get(), vrg.client.get()};
    for (int i = 0; i < kKeys; ++i) {
      wut->stack->cluster->Preload(OracleKey(i), "init");
    }
    const int slot = PinWorld(group, wut->world);
    EXPECT_EQ(slot, w);
    worlds.push_back(std::move(wut));
  }

  Rng rng(seed * 41);
  for (auto& wut : worlds) {
    ScheduleWorldLoad(*wut, rng);
  }
  ScheduleRelays(group, worlds, rng);

  group.RunAll();
  EXPECT_EQ(group.pending_messages(), 0u);

  std::ostringstream fingerprint;
  for (int w = 0; w < kWorlds; ++w) {
    const WorldUnderTest& wut = *worlds[static_cast<size_t>(w)];
    const std::string context = "world" + std::to_string(w);
    for (const auto& obs : wut.observations) {
      CheckObservation(*obs, context);
    }
    for (const auto& [key, values] : *wut.submitted) {
      for (const auto& replica : wut.stack->cluster->replicas()) {
        const auto stored = replica->LocalGet(key);
        EXPECT_TRUE(stored.has_value()) << key;
        if (!stored.has_value()) continue;
        EXPECT_EQ(stored->value, values.back())
            << "replica diverged from program order for " << key << " (" << context << ")";
      }
    }
    for (const CorrectableClient* client : wut.clients) {
      stats.Absorb(static_cast<size_t>(w), client->stats());
    }
    fingerprint << "==" << context << "==" << Fingerprint(wut);
  }

  // Merged stats must cover every invocation the trial issued (kOps per world plus the
  // relay reads), with views actually delivered.
  const ClientStats merged = stats.Merged();
  EXPECT_EQ(merged.invocations, kWorlds * kOps + kRelays);
  EXPECT_GE(merged.views_delivered, merged.invocations);
  EXPECT_EQ(merged.errors, 0);
  int64_t per_slot_sum = 0;
  for (size_t w = 0; w < stats.size(); ++w) {
    per_slot_sum += stats.ForLoop(w).invocations;
  }
  EXPECT_EQ(per_slot_sum, merged.invocations);

  return fingerprint.str();
}

TEST(LoopGroupOracle, WidthsAgreeBitForBit) {
  const uint64_t seed = OracleSeed();
  const std::string sequential = RunTrial(/*threads=*/0, seed);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(RunTrial(/*threads=*/2, seed), sequential);
  EXPECT_EQ(RunTrial(/*threads=*/4, seed), sequential);
}

}  // namespace
}  // namespace icg
